//! Integration tests for `roccc-explore`, the design-space exploration
//! engine: beam pruning must be a pure restriction of exhaustive search
//! (an unbounded beam reproduces the exhaustive Pareto set), artifacts
//! must be byte-deterministic across runs, the memo must serve a repeat
//! sweep entirely from cache, failures must be skip-reported instead of
//! aborting, and every Table-1 kernel must yield a non-empty frontier
//! with no dominated points.

use roccc_suite::explore::{
    explore, frontier, render_json, CompileFn, ExploreConfig, Memo, Point, Space, Status,
};
use roccc_suite::ipcores::{kernels, table::benchmarks};
use roccc_suite::roccc::{CompileError, CompileOptions, UnrollStrategy};
use std::sync::Arc;

fn fir() -> (String, &'static str) {
    (kernels::fir_source(), "fir")
}

fn sweep(
    source: &str,
    function: &str,
    space: &Space,
    cfg: &ExploreConfig,
) -> roccc_suite::explore::ExploreResult {
    explore(
        source,
        function,
        &CompileOptions::default(),
        space,
        cfg,
        &Memo::new(),
    )
}

/// An unbounded beam (or a beam at least as wide as the space) must
/// reproduce the exhaustive frontier exactly — beam search only ever
/// *removes* work, never changes what the surviving candidates score.
#[test]
fn infinite_beam_matches_exhaustive_frontier() {
    let (source, function) = fir();
    let space = Space::new(&[1, 2], &[0, 2], false);
    let exhaustive = sweep(&source, function, &space, &ExploreConfig::default());
    let wide_beam = sweep(
        &source,
        function,
        &space,
        &ExploreConfig {
            beam: Some(64),
            ..ExploreConfig::default()
        },
    );
    assert!(!exhaustive.frontier.is_empty(), "fir yields a frontier");
    assert_eq!(
        exhaustive.frontier, wide_beam.frontier,
        "a beam wider than the space is exhaustive search"
    );
    // The per-candidate outcomes agree too (status and metrics).
    for (a, b) in exhaustive.reports.iter().zip(&wide_beam.reports) {
        assert_eq!(a.status, b.status, "candidate {}", a.candidate.id);
        assert_eq!(a.metrics, b.metrics, "candidate {}", a.candidate.id);
    }
}

/// Two sweeps of the same space — fresh memos, parallel workers — must
/// render byte-identical JSON artifacts: scheduling order must never
/// leak into the artifact.
#[test]
fn artifact_is_byte_deterministic() {
    let (source, function) = fir();
    let space = Space::new(&[1, 2, 4], &[0, 4], false);
    let cfg = ExploreConfig {
        workers: 4,
        budget_slices: Some(300),
        ..ExploreConfig::default()
    };
    let a = render_json(&sweep(&source, function, &space, &cfg));
    let b = render_json(&sweep(&source, function, &space, &cfg));
    assert_eq!(a, b, "same sweep, different bytes");
    assert!(a.contains("\"schema\": \"roccc-explore-v1\""));
}

/// The paper's area cut: candidates whose fast estimate exceeds the
/// budget are reported `pruned-budget`, carry their estimate, and never
/// reach the frontier.
#[test]
fn budget_prunes_and_reports() {
    let (source, function) = fir();
    let space = Space::new(&[1], &[0, 4], false);
    let unbudgeted = sweep(&source, function, &space, &ExploreConfig::default());
    let scored_areas: Vec<u64> = unbudgeted
        .reports
        .iter()
        .filter(|r| r.status == Status::Scored)
        .map(|r| r.metrics.unwrap().est_slices)
        .collect();
    assert!(
        scored_areas.len() >= 2,
        "need two scored candidates to cut between"
    );
    let cut = (scored_areas.iter().min().unwrap() + scored_areas.iter().max().unwrap()) / 2;

    let budgeted = sweep(
        &source,
        function,
        &space,
        &ExploreConfig {
            budget_slices: Some(cut),
            ..ExploreConfig::default()
        },
    );
    assert!(budgeted.stats.pruned_budget >= 1, "the cut pruned someone");
    for r in &budgeted.reports {
        if r.status == Status::PrunedBudget {
            let m = r.metrics.expect("pruned candidates keep their estimate");
            assert!(m.est_slices > cut, "pruned only above the budget");
        }
    }
    for &i in &budgeted.frontier {
        assert_eq!(budgeted.reports[i].status, Status::Scored);
    }
}

/// A repeat sweep against the same memo recompiles nothing: every
/// previously scored candidate is a memo hit, failures included, and the
/// frontier is unchanged.
#[test]
fn repeat_sweep_is_served_from_the_memo() {
    let (source, function) = fir();
    let space = Space::new(&[1, 2], &[0, 2, 4], false);
    let memo = Memo::new();
    let base = CompileOptions::default();
    let cfg = ExploreConfig::default();
    let first = explore(&source, function, &base, &space, &cfg, &memo);
    assert!(first.stats.scored > 0);
    let second = explore(&source, function, &base, &space, &cfg, &memo);
    assert_eq!(second.stats.scored, 0, "nothing recompiled");
    assert_eq!(
        second.stats.memo_hits,
        first.stats.scored + first.stats.memo_hits,
        "every scored candidate came back as a hit"
    );
    assert_eq!(
        second.stats.skipped, first.stats.skipped,
        "failures memoized too"
    );
    assert_eq!(first.frontier, second.frontier);
    // Hits report the identical metrics the original scoring produced.
    for (a, b) in first.reports.iter().zip(&second.reports) {
        if a.status == Status::Scored {
            assert_eq!(b.status, Status::MemoHit);
            assert_eq!(a.metrics, b.metrics);
        }
    }
}

/// A failing candidate is skip-reported with its error — including
/// fatal `deny`-level verifier findings, which surface as per-candidate
/// diagnostics — and the rest of the sweep completes normally.
#[test]
fn failures_skip_report_instead_of_aborting() {
    use roccc_suite::verify::{Diagnostic, Loc, Phase};
    let (source, function) = fir();
    // Inject a compiler that rejects unroll factor 2 with a deny-style
    // verification failure and delegates everything else.
    let compiler: CompileFn = Arc::new(|src, func, opts| {
        if opts.unroll == UnrollStrategy::Partial(2) {
            return Err(CompileError::Verify(vec![Diagnostic::error(
                Phase::SuifVm,
                "T999-test",
                Loc::None,
                "injected rejection of the u2 configuration",
            )]));
        }
        roccc::compile_timed(src, func, opts)
    });
    let space = Space::new(&[1, 2], &[0], false);
    let result = explore(
        &source,
        function,
        &CompileOptions::default(),
        &space,
        &ExploreConfig {
            compiler: Some(compiler),
            ..ExploreConfig::default()
        },
        &Memo::new(),
    );
    assert_eq!(result.stats.candidates, 2);
    assert_eq!(result.stats.scored, 1);
    assert_eq!(result.stats.skipped, 1);
    let skipped = result
        .reports
        .iter()
        .find(|r| r.status == Status::Skipped)
        .expect("the u2 candidate is reported");
    assert_eq!(skipped.candidate.unroll, 2);
    assert!(
        skipped
            .error
            .as_deref()
            .unwrap_or("")
            .contains("verification failed"),
        "error text: {:?}",
        skipped.error
    );
    assert!(
        skipped.diagnostics.iter().any(|d| d.contains("T999-test")),
        "the fatal finding is surfaced per candidate: {:?}",
        skipped.diagnostics
    );
    assert_eq!(
        result.frontier.len(),
        1,
        "the surviving candidate is the frontier"
    );
}

/// With modulo scheduling requested in the base options, the sweep
/// carries the achieved initiation interval as a fourth frontier axis:
/// the JSON artifact reports it (byte-deterministically), every scored
/// fir candidate achieves II 1 under the default unlimited-LUT
/// multiplier style, and the frontier stays mutually non-dominating on
/// all four axes.
#[test]
fn achieved_ii_is_a_frontier_axis() {
    let (source, function) = fir();
    let space = Space::new(&[1, 2], &[0, 2], false);
    let base = CompileOptions {
        pipeline_ii: Some(0),
        ..CompileOptions::default()
    };
    let cfg = ExploreConfig::default();
    let result = explore(&source, function, &base, &space, &cfg, &Memo::new());
    assert!(!result.frontier.is_empty());
    for r in &result.reports {
        if matches!(r.status, Status::Scored | Status::MemoHit) {
            let m = r.metrics.expect("scored candidates carry metrics");
            assert_eq!(
                m.achieved_ii, 1,
                "fir schedules at II 1 (candidate {})",
                r.candidate.id
            );
            assert!(m.achieved_ii >= m.min_ii);
        }
    }
    for &i in &result.frontier {
        for &j in &result.frontier {
            if i != j {
                let pi = Point::of(result.reports[i].metrics.as_ref().unwrap());
                let pj = Point::of(result.reports[j].metrics.as_ref().unwrap());
                assert!(!pi.dominates(&pj), "frontier point {i} dominates {j}");
            }
        }
    }
    let a = render_json(&result);
    let b = render_json(&explore(
        &source,
        function,
        &base,
        &space,
        &cfg,
        &Memo::new(),
    ));
    assert_eq!(a, b, "scheduled sweeps stay byte-deterministic");
    assert!(a.contains("\"achieved_ii\":1"), "artifact reports the axis");
    assert!(a.contains("\"ii\":1"), "frontier rows report the axis");
}

/// Every Table-1 kernel must produce a non-empty frontier over a small
/// unroll sweep, and the frontier must contain no dominated points.
#[test]
fn table1_kernels_yield_non_dominated_frontiers() {
    let space = Space::new(&[1, 2], &[0], false);
    for b in benchmarks() {
        let result = explore(
            &b.source,
            b.func,
            &b.opts,
            &space,
            &ExploreConfig::default(),
            &Memo::new(),
        );
        assert!(
            !result.frontier.is_empty(),
            "{}: empty frontier ({:?})",
            b.name,
            result.stats
        );
        assert_eq!(result.frontier, frontier(&result.reports), "{}", b.name);
        for &i in &result.frontier {
            for &j in &result.frontier {
                if i == j {
                    continue;
                }
                let pi = Point::of(result.reports[i].metrics.as_ref().unwrap());
                let pj = Point::of(result.reports[j].metrics.as_ref().unwrap());
                assert!(
                    !pi.dominates(&pj),
                    "{}: frontier point {i} dominates {j}",
                    b.name
                );
            }
        }
    }
}
