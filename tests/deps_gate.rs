//! Dependence-gate differential suite.
//!
//! Generated stencil loops with seeded write-lane layouts: loops whose
//! lanes write disjoint residues must compile and match the golden-model
//! C interpreter bit for bit; loops with a planted carried output
//! dependence (any collision distance) must be refused with the coded
//! `L012` diagnostic, and loops with a short-distance carried dependence
//! must be refused by the unroll/strip-mine legality gates (`L010` /
//! `L011`) before any hardware is built.

use roccc_suite::cparse::{frontend, Interpreter};
use roccc_suite::roccc::{compile, CompileOptions, UnrollStrategy};
use roccc_suite::testrand::exprgen::gen_loop_kernel;
use roccc_suite::testrand::XorShift64;
use std::collections::HashMap;

/// Runs the original C through the golden-model interpreter.
fn golden(source: &str, a: &[i64], b_len: usize) -> Vec<i64> {
    let prog = frontend(source).unwrap();
    let mut arrays = HashMap::new();
    arrays.insert("A".to_string(), a.to_vec());
    arrays.insert("B".to_string(), vec![0; b_len]);
    Interpreter::new(&prog).call("k", &[], &mut arrays).unwrap();
    arrays["B"].clone()
}

/// Disjoint-lane loops (one write per residue modulo the step, like the
/// paper's dct lanes) compile and the hardware matches the interpreter
/// bit for bit on every written element.
#[test]
fn generated_disjoint_lane_loops_match_golden_model() {
    let mut compiled_any = 0;
    for case in 0..12u64 {
        let mut rng = XorShift64::new(0xdead0 + case);
        let lanes = 1 + case % 3; // 1, 2, or 3 write lanes
        let k = gen_loop_kernel(&mut rng, 2, lanes, None);
        let a: Vec<i64> = (0..k.a_len as i64).map(|x| (x * 13) % 251 - 125).collect();
        let expect = golden(&k.source, &a, k.b_len);

        let hw = compile(&k.source, "k", &CompileOptions::default())
            .unwrap_or_else(|e| panic!("case {case}: legal loop refused: {e}\n{}", k.source));
        assert!(hw.deps.min_ii >= 1, "case {case}: MinII is a lower bound");
        let mut arrays = HashMap::new();
        arrays.insert("A".to_string(), a.clone());
        let run = hw
            .run(&arrays, &HashMap::new())
            .unwrap_or_else(|e| panic!("case {case}: simulation failed: {e}"));
        // Compare only the elements the loop writes: the hardware's output
        // memory covers exactly the written footprint.
        for (idx, v) in run.arrays["B"].iter().enumerate() {
            assert_eq!(
                *v, expect[idx],
                "case {case}: B[{idx}] diverged from the interpreter\n{}",
                k.source
            );
        }
        compiled_any += 1;
    }
    assert_eq!(compiled_any, 12);
}

/// A planted write collision at any seeded distance is refused with the
/// coded extraction diagnostic — never silently compiled.
#[test]
fn planted_overlap_distances_are_refused() {
    for case in 0..9u64 {
        let mut rng = XorShift64::new(0xbeef0 + case);
        let lanes = 1 + case % 3;
        let dist = 1 + case / 3; // seeded distances 1, 2, 3
        let k = gen_loop_kernel(&mut rng, 2, lanes, Some(dist));
        let err = compile(&k.source, "k", &CompileOptions::default())
            .err()
            .unwrap_or_else(|| {
                panic!(
                    "case {case}: planted distance-{dist} collision compiled\n{}",
                    k.source
                )
            });
        let msg = err.to_string();
        assert!(
            msg.contains("L012-overlapping-writes"),
            "case {case}: wrong diagnostic: {msg}"
        );
    }
}

/// The shape that used to miscompile: two write lanes at step 1 touch
/// the same element from *different iterations*, and the interpreter
/// shows program order is observable — the later iteration's lane-0
/// write must win over the earlier iteration's lane-1 write. The
/// per-lane BRAM merge is order-insensitive, so the compiler now refuses
/// the loop instead of emitting hardware that picks an arbitrary winner.
#[test]
fn prior_miscompile_shape_is_refused_and_order_matters() {
    let src = "void k(int A[20], int B[20]) { int i;
      for (i = 0; i < 16; i = i + 1) {
        B[i] = A[i] * 3;
        B[i + 1] = A[i] - 7;
      } }";
    // Golden model: element 5 is written by iteration 4 (lane 1: A[4]-7)
    // then by iteration 5 (lane 0: A[5]*3); program order keeps the later.
    let a: Vec<i64> = (0..20).map(|x| x * 10).collect();
    let expect = golden(src, &a, 20);
    assert_eq!(
        expect[5],
        5 * 10 * 3,
        "program order: lane 0 of iter 5 wins"
    );
    assert_ne!(
        expect[5],
        4 * 10 - 7,
        "an order-insensitive merge could have kept iter 4's lane-1 value"
    );

    let Err(err) = compile(src, "k", &CompileOptions::default()) else {
        panic!("overlapping write lanes must be refused");
    };
    assert!(
        err.to_string().contains("L012-overlapping-writes"),
        "wrong diagnostic: {err}"
    );
}

const CARRIED_DIST4: &str = "void k(int A[40], int B[40]) { int i;
  for (i = 0; i < 32; i = i + 1) { B[i] = A[i] + B[i + 4]; } }";

/// The unroll gate blocks factors larger than the carried-dependence
/// distance with the coded `L010` diagnostic, and lets smaller factors
/// through to the rest of the pipeline.
#[test]
fn unroll_gate_blocks_factors_beyond_carried_distance() {
    // Factor 8 > distance 4: the gate must refuse before extraction.
    let Err(err) = compile(
        CARRIED_DIST4,
        "k",
        &CompileOptions {
            unroll: UnrollStrategy::Partial(8),
            ..CompileOptions::default()
        },
    ) else {
        panic!("unrolling past the carried distance must be refused");
    };
    let msg = err.to_string();
    assert!(
        msg.contains("L010-unroll-carried-dep"),
        "wrong diagnostic: {msg}"
    );
    assert!(msg.contains("B"), "diagnostic names the array: {msg}");

    // Factor 2 <= distance 4: the gate passes; the loop is still refused
    // later (B is read and written), but NOT by the unroll gate.
    let Err(err) = compile(
        CARRIED_DIST4,
        "k",
        &CompileOptions {
            unroll: UnrollStrategy::Partial(2),
            ..CompileOptions::default()
        },
    ) else {
        panic!("read+written output array is refused at extraction");
    };
    assert!(
        !err.to_string().contains("L010-unroll-carried-dep"),
        "factor 2 is legal for distance 4: {err}"
    );
}

/// The strip-mine gate emits its own code (`L011`) for the same shape.
#[test]
fn stripmine_gate_blocks_carried_distance() {
    let Err(err) = compile(
        CARRIED_DIST4,
        "k",
        &CompileOptions {
            stripmine: Some(8),
            ..CompileOptions::default()
        },
    ) else {
        panic!("strip-mining past the carried distance must be refused");
    };
    assert!(
        err.to_string().contains("L011-stripmine-carried-dep"),
        "wrong diagnostic: {err}"
    );
}
