//! Differential soundness of range-driven bit-width narrowing.
//!
//! With `CompileOptions::range_narrow` on, the forward value-range
//! analysis lets the narrowing pass shave operator bits beyond what
//! backward demand alone proves, and lets range-proven constants fold.
//! None of that may change a single observable output bit, so this
//! suite compares the narrowed hardware against the IR interpreter
//! (and against the un-narrowed hardware) on:
//!
//! * every Table 1 kernel, over deterministic pseudo-random input
//!   streams wrapped to each port's declared type;
//! * hundreds of randomly generated expression kernels from the
//!   in-tree generator (`roccc_suite::testrand`), replayable by seed.

use roccc_suite::cparse::{frontend, Interpreter};
use roccc_suite::ipcores::benchmarks;
use roccc_suite::netlist::{CompiledSim, SimPlan};
use roccc_suite::roccc::{compile, CompileOptions, Compiled};
use roccc_suite::suifvm::IrMachine;
use roccc_suite::testrand::exprgen::gen_kernel_source;
use roccc_suite::testrand::XorShift64;
use std::collections::HashMap;

fn ranged(base: &CompileOptions) -> CompileOptions {
    CompileOptions {
        range_narrow: true,
        ..base.clone()
    }
}

/// Runs the compiled netlist over `cases` and compares every output row
/// against a fresh IR interpreter fed the same sequence (feedback state
/// evolves identically on both sides).
fn assert_matches_interpreter(hw: &Compiled, cases: &[Vec<i64>], label: &str) {
    let plan = SimPlan::compile(&hw.netlist).expect("netlist compiles to a sim plan");
    let mut sim = CompiledSim::new(&plan);
    let outs = sim.run_stream(cases).expect("netlist simulates");
    assert_eq!(outs.len(), cases.len(), "{label}: one output row per case");
    let mut m = IrMachine::new(&hw.ir);
    for (args, hw_out) in cases.iter().zip(&outs) {
        let want = m.run(args).expect("interpreter accepts the same inputs");
        assert_eq!(hw_out, &want, "{label}: inputs {args:?}");
    }
}

/// Deterministic input vectors wrapped to each input port's type.
fn input_cases(hw: &Compiled, rng: &mut XorShift64, n: usize) -> Vec<Vec<i64>> {
    (0..n)
        .map(|_| {
            hw.ir
                .inputs
                .iter()
                .map(|(_, t)| t.wrap(rng.gen_range(-(1 << 20), (1 << 20) - 1)))
                .collect()
        })
        .collect()
}

/// Every Table 1 kernel, compiled with range narrowing on, is bit-exact
/// against the IR interpreter — and its data path never grows.
#[test]
fn table1_kernels_match_interpreter_with_range_narrow() {
    for (i, b) in benchmarks().into_iter().enumerate() {
        let plain = compile(&b.source, b.func, &b.opts).expect("baseline compiles");
        let hw = compile(&b.source, b.func, &ranged(&b.opts)).expect("range-narrow compiles");
        let mut rng = XorShift64::new(0xD1F0 + i as u64);
        let cases = input_cases(&hw, &mut rng, 64);
        assert_matches_interpreter(&hw, &cases, b.name);
        let bits = |c: &Compiled| c.datapath.ops.iter().map(|o| o.hw_bits as u64).sum::<u64>();
        assert!(
            bits(&hw) <= bits(&plain),
            "{}: range narrowing may never widen the data path",
            b.name
        );
    }
}

/// The shift-subtract kernels are where ranges pay: relational facts
/// through the `if (rem >= d) rem = rem - d` guards bound the remainders.
#[test]
fn range_narrow_shrinks_the_divider() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "udiv")
        .expect("udiv row");
    let plain = compile(&b.source, b.func, &b.opts).unwrap();
    let hw = compile(&b.source, b.func, &ranged(&b.opts)).unwrap();
    let bits = |c: &Compiled| c.datapath.ops.iter().map(|o| o.hw_bits as u64).sum::<u64>();
    assert!(
        bits(&hw) < bits(&plain) / 2,
        "expected >2x total-bit reduction on udiv, got {} -> {}",
        bits(&plain),
        bits(&hw)
    );
    // The exhaustive 8-bit divider input space stays bit-exact.
    let cases: Vec<Vec<i64>> = (0..=255i64)
        .flat_map(|n| (0..=255i64).map(move |d| vec![n, d]))
        .collect();
    assert_matches_interpreter(&hw, &cases, "udiv exhaustive");
}

const EXPRGEN_CASES: u64 = 520;

/// Hundreds of generated expression kernels: the range-narrowed netlist
/// matches both the golden C interpreter and the demand-only netlist.
#[test]
fn exprgen_range_narrow_is_equivalent() {
    for case in 0..EXPRGEN_CASES {
        let mut rng = XorShift64::new(0xA11CE + case);
        let src = gen_kernel_source(&mut rng, 3);
        let opts = CompileOptions {
            target_period_ns: [1000.0f64, 6.0][rng.gen_index(2)],
            ..CompileOptions::default()
        };
        let plain = compile(&src, "k", &opts).expect("generated source compiles");
        let narrow = compile(&src, "k", &ranged(&opts)).expect("range-narrow compiles");

        let prog = frontend(&src).expect("generated source is valid");
        let args_list: Vec<Vec<i64>> = (0..3)
            .map(|_| (0..3).map(|_| rng.gen_range(-5000, 4999)).collect())
            .collect();

        let run = |hw: &Compiled| {
            let plan = SimPlan::compile(&hw.netlist).expect("sim plan");
            let mut sim = CompiledSim::new(&plan);
            sim.run_stream(&args_list).expect("simulates")
        };
        let plain_outs = run(&plain);
        let narrow_outs = run(&narrow);
        assert_eq!(
            plain_outs, narrow_outs,
            "case {case} (src {src}): narrowed hardware diverged"
        );
        for (args, out) in args_list.iter().zip(&narrow_outs) {
            let mut interp = Interpreter::new(&prog);
            let golden = interp.call("k", args, &mut HashMap::new()).unwrap();
            assert_eq!(
                out[0], golden.outputs["o"],
                "case {case} (src {src}) inputs {args:?}"
            );
        }
    }
}
