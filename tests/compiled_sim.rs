//! Differential tests between the two simulation engines: the readable
//! per-cycle reference interpreter (`NetlistSim`) and the levelized
//! zero-allocation compiled engine (`CompiledSim`) must agree bit for bit
//! — same outputs, same `out_valid` timing, same feedback-register state,
//! same fault behaviour — on every paper kernel and on randomly generated
//! expression kernels, across valid/bubble mixes where bubbles carry
//! garbage arguments.

use roccc_suite::ipcores::{benchmarks, table::compile_benchmark};
use roccc_suite::netlist::{CompiledSim, Netlist, NetlistSim, SimPlan};
use roccc_suite::roccc::{compile, CompileOptions};
use roccc_suite::testrand::exprgen::gen_kernel_source;
use roccc_suite::testrand::XorShift64;

/// Drives both engines in lock-step through `cycles` cycles of the same
/// stream and asserts cycle-by-cycle equivalence. Bubble cycles carry
/// raw 64-bit garbage in the argument slots (the hardware must ignore
/// them); valid cycles carry in-range values.
fn drive_differential(nl: &Netlist, name: &str, cycles: usize, seed: u64) {
    let plan = SimPlan::compile(nl).expect("plan compiles");
    let mut reference = NetlistSim::new(nl);
    let mut compiled = CompiledSim::new(&plan);
    let mut rng = XorShift64::new(seed);
    let mut out_buf = vec![0i64; nl.outputs.len()];

    for t in 0..cycles {
        let valid = rng.gen_ratio(3, 4);
        let args: Vec<i64> = nl
            .inputs
            .iter()
            .map(|(_, ty)| {
                if valid {
                    rng.sample_int(*ty)
                } else {
                    // Garbage, possibly far out of range and zero-prone.
                    rng.next_u64() as i64
                }
            })
            .collect();

        match (reference.step(&args, valid), compiled.step(&args, valid)) {
            (Ok(r), Ok(out_valid)) => {
                assert_eq!(
                    r.out_valid, out_valid,
                    "{name} cycle {t}: out_valid timing diverged"
                );
                assert_eq!(out_valid, compiled.out_valid(), "{name} cycle {t}");
                compiled.read_outputs(&mut out_buf);
                assert_eq!(r.outputs, out_buf, "{name} cycle {t}: outputs diverged");
                for (k, v) in out_buf.iter().enumerate() {
                    assert_eq!(*v, compiled.output(k), "{name} cycle {t}: output({k})");
                }
            }
            (Err(e_ref), Err(e_comp)) => {
                // Both engines fault on the same cycle with the same error
                // (e.g. a valid iteration dividing by zero).
                assert_eq!(
                    format!("{e_ref:?}"),
                    format!("{e_comp:?}"),
                    "{name} cycle {t}: different faults"
                );
                return;
            }
            (r, c) => panic!("{name} cycle {t}: one engine faulted, the other not: {r:?} / {c:?}"),
        }
    }

    assert_eq!(reference.cycles(), compiled.cycles(), "{name}: cycle count");
    for (fname, _) in &nl.feedback_regs {
        assert_eq!(
            reference.feedback_value(fname),
            compiled.feedback_value(fname),
            "{name}: feedback register {fname} diverged after {cycles} cycles"
        );
    }
}

/// Every Table 1 paper kernel, several hundred cycles, mixed bubbles.
#[test]
fn paper_kernels_differential() {
    for (k, b) in benchmarks().iter().enumerate() {
        let hw = compile_benchmark(b).expect("benchmark compiles");
        drive_differential(&hw.netlist, b.name, 300, 0x7000 + k as u64);
    }
}

/// Randomly generated straight-line expression kernels at several clock
/// targets (deeper pipelines stress the occupancy/retire paths).
#[test]
fn generated_expression_kernels_differential() {
    for case in 0..16u64 {
        let mut rng = XorShift64::new(0x8000 + case);
        let src = gen_kernel_source(&mut rng, 3);
        let period = [1000.0f64, 6.0, 3.0][rng.gen_index(3)];
        let hw = compile(
            &src,
            "k",
            &CompileOptions {
                target_period_ns: period,
                ..CompileOptions::default()
            },
        )
        .expect("generated kernel compiles");
        drive_differential(&hw.netlist, &format!("expr_{case}"), 200, 0x9000 + case);
    }
}

/// The batch API and the high-level stream API agree with the reference
/// engine on full valid streams for every paper kernel.
#[test]
fn run_stream_and_run_batch_agree_on_paper_kernels() {
    for (k, b) in benchmarks().iter().enumerate() {
        let hw = compile_benchmark(b).expect("benchmark compiles");
        let nl = &hw.netlist;
        let plan = SimPlan::compile(nl).expect("plan compiles");
        let mut rng = XorShift64::new(0xa000 + k as u64);
        let iters: Vec<Vec<i64>> = (0..64)
            .map(|_| nl.inputs.iter().map(|(_, t)| rng.sample_int(*t)).collect())
            .collect();

        let reference = NetlistSim::new(nl).run_stream(&iters);
        let streamed = CompiledSim::new(&plan).run_stream(&iters);
        match (&reference, &streamed) {
            (Ok(a), Ok(c)) => assert_eq!(a, c, "{}: run_stream diverged", b.name),
            (Err(a), Err(c)) => {
                assert_eq!(format!("{a:?}"), format!("{c:?}"), "{}", b.name);
                continue;
            }
            _ => panic!("{}: stream fault mismatch", b.name),
        }

        let flat: Vec<i64> = iters.iter().flatten().copied().collect();
        let mut out_flat = Vec::new();
        let retired = CompiledSim::new(&plan)
            .run_batch(&flat, iters.len(), &mut out_flat)
            .expect("batch runs");
        let expect = reference.unwrap();
        assert_eq!(retired, expect.len(), "{}: batch retire count", b.name);
        let flat_expect: Vec<i64> = expect.iter().flatten().copied().collect();
        assert_eq!(out_flat, flat_expect, "{}: batch outputs", b.name);
    }
}
