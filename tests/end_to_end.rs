//! End-to-end differential tests: for every Table 1 kernel, the generated
//! hardware (cycle-accurate netlist / full-system simulation) must match
//! the golden-model C interpreter bit for bit.

use roccc_suite::cparse::{frontend, Interpreter};
use roccc_suite::ipcores::{benchmarks, table::compile_benchmark};
use roccc_suite::netlist::NetlistSim;
use roccc_suite::roccc::Compiled;
use roccc_suite::testrand::XorShift64;
use std::collections::HashMap;

/// Random value in a type's range.
fn sample(rng: &mut XorShift64, ty: roccc_suite::cparse::IntType) -> i64 {
    rng.sample_int(ty)
}

/// Differential test of a scalar (non-streaming) kernel.
fn check_scalar_kernel(hw: &Compiled, source: &str, func: &str, iters: usize, seed: u64) {
    let prog = frontend(source).expect("kernel parses");
    let mut rng = XorShift64::new(seed);
    let args_list: Vec<Vec<i64>> = (0..iters)
        .map(|_| {
            hw.netlist
                .inputs
                .iter()
                .map(|(_, t)| sample(&mut rng, *t))
                .collect()
        })
        .collect();

    let mut sim = NetlistSim::new(&hw.netlist);
    let outs = sim.run_stream(&args_list).expect("simulation runs");
    assert_eq!(outs.len(), args_list.len());

    for (args, hw_out) in args_list.iter().zip(&outs) {
        let mut interp = Interpreter::new(&prog);
        let golden = interp
            .call(func, args, &mut HashMap::new())
            .expect("golden model runs");
        for ((name, _, _), v) in hw.netlist.outputs.iter().zip(hw_out) {
            assert_eq!(
                *v,
                golden.outputs[name.as_str()],
                "{func}: output {name} for args {args:?}"
            );
        }
    }
}

/// Differential test of a streaming kernel over random arrays.
fn check_streaming_kernel(hw: &Compiled, source: &str, func: &str, seed: u64) {
    let prog = frontend(source).expect("kernel parses");
    let f = prog.function(func).expect("function exists");
    let mut rng = XorShift64::new(seed);

    let mut inputs: HashMap<String, Vec<i64>> = HashMap::new();
    let mut golden_arrays: HashMap<String, Vec<i64>> = HashMap::new();
    for p in &f.params {
        if let roccc_suite::cparse::CType::Array(t, dims) = &p.ty {
            let n: usize = dims.iter().product();
            let is_input = hw.kernel.windows.iter().any(|w| w.array == p.name);
            let data: Vec<i64> = if is_input {
                (0..n).map(|_| sample(&mut rng, *t)).collect()
            } else {
                vec![0; n]
            };
            if is_input {
                inputs.insert(p.name.clone(), data.clone());
            }
            golden_arrays.insert(p.name.clone(), data);
        }
    }

    let run = hw.run(&inputs, &HashMap::new()).expect("system runs");
    Interpreter::new(&prog)
        .call(func, &[], &mut golden_arrays)
        .expect("golden model runs");

    for o in &hw.kernel.outputs {
        assert_eq!(
            run.arrays[&o.array], golden_arrays[&o.array],
            "{func}: output array {}",
            o.array
        );
    }
    for name in &hw.kernel.live_out {
        // The golden model exports live-outs through the out-pointer; rerun
        // to fetch them.
        let mut ga = golden_arrays.clone();
        let out = Interpreter::new(&prog).call(func, &[], &mut ga).unwrap();
        let expect = out
            .outputs
            .values()
            .next()
            .copied()
            .expect("live-out present");
        assert_eq!(run.scalars[name], expect, "{func}: live-out {name}");
    }
}

#[test]
fn bit_correlator_matches_golden() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "bit_correlator")
        .unwrap();
    let hw = compile_benchmark(&b).unwrap();
    check_scalar_kernel(&hw, &b.source, b.func, 64, 101);
}

#[test]
fn udiv_matches_golden() {
    let b = benchmarks().into_iter().find(|b| b.name == "udiv").unwrap();
    let hw = compile_benchmark(&b).unwrap();
    // Avoid the divide-free path: udiv kernel handles d = 0 gracefully
    // (quotient of all-ones), matching the golden model exactly anyway.
    check_scalar_kernel(&hw, &b.source, b.func, 128, 102);
}

#[test]
fn square_root_matches_golden() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "square_root")
        .unwrap();
    let hw = compile_benchmark(&b).unwrap();
    check_scalar_kernel(&hw, &b.source, b.func, 128, 103);
}

#[test]
fn udiv_bit_macro_variant_matches_golden_in_hardware() {
    // The paper's future-work "bit manipulation macros", implemented here:
    // the ROCCC_bits/ROCCC_cat form must be bit-exact too.
    let src = roccc_suite::ipcores::kernels::udiv_bits_source();
    let hw = roccc_suite::roccc::compile(
        &src,
        "udiv",
        &roccc_suite::roccc::CompileOptions {
            target_period_ns: 3.7,
            ..Default::default()
        },
    )
    .unwrap();
    check_scalar_kernel(&hw, &src, "udiv", 128, 110);
}

#[test]
fn bit_intrinsics_compile_and_match() {
    let src = "void pack(uint8 a, uint8 b, uint16* o) {
       uint4 hi = ROCCC_bits(a, 7, 4);
       uint4 lo = ROCCC_bits(b, 3, 0);
       *o = ROCCC_cat(hi, lo, 4); }";
    let hw = roccc_suite::roccc::compile(src, "pack", &Default::default()).unwrap();
    check_scalar_kernel(&hw, src, "pack", 64, 111);
}

#[test]
fn cos_lut_matches_golden() {
    let b = benchmarks().into_iter().find(|b| b.name == "cos").unwrap();
    let hw = compile_benchmark(&b).unwrap();
    check_scalar_kernel(&hw, &b.source, b.func, 64, 104);
}

#[test]
fn arbitrary_lut_matches_golden() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "arbitrary_lut")
        .unwrap();
    let hw = compile_benchmark(&b).unwrap();
    check_scalar_kernel(&hw, &b.source, b.func, 64, 105);
}

#[test]
fn fir_matches_golden() {
    let b = benchmarks().into_iter().find(|b| b.name == "fir").unwrap();
    let hw = compile_benchmark(&b).unwrap();
    check_streaming_kernel(&hw, &b.source, b.func, 106);
}

#[test]
fn dct_matches_golden() {
    let b = benchmarks().into_iter().find(|b| b.name == "dct").unwrap();
    let hw = compile_benchmark(&b).unwrap();
    check_streaming_kernel(&hw, &b.source, b.func, 107);
}

#[test]
fn mul_acc_matches_golden() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "mul_acc")
        .unwrap();
    let hw = compile_benchmark(&b).unwrap();
    check_streaming_kernel(&hw, &b.source, b.func, 108);
}

#[test]
fn combined_stream_and_reduction_matches_golden() {
    // Array outputs and a feedback live-out in the same kernel.
    let src = "void running(int16 A[16], int16 B[16], int* total) {
      int sum = 0; int i;
      for (i = 0; i < 16; i++) {
        B[i] = A[i] * 2 + 1;
        sum = sum + A[i];
      }
      *total = sum; }";
    let hw = roccc_suite::roccc::compile(src, "running", &Default::default()).unwrap();
    assert_eq!(hw.kernel.outputs.len(), 1);
    assert_eq!(hw.kernel.live_out, vec!["sum"]);

    let a: Vec<i64> = (0..16).map(|x| x * 5 - 30).collect();
    let mut arrays = HashMap::new();
    arrays.insert("A".to_string(), a.clone());
    let run = hw.run(&arrays, &HashMap::new()).unwrap();
    let expect_b: Vec<i64> = a.iter().map(|x| x * 2 + 1).collect();
    assert_eq!(run.arrays["B"], expect_b);
    assert_eq!(run.scalars["sum"], a.iter().sum::<i64>());
}

#[test]
fn mul_acc_multiply_variant_matches_branchy_in_hardware() {
    // §5's algorithm-level rewrite produces identical results in hardware.
    let src = roccc_suite::ipcores::kernels::mul_acc_multiply_source();
    let hw = roccc_suite::roccc::compile(src.as_str(), "mul_acc", &Default::default()).unwrap();
    let mut rng = XorShift64::new(42);
    let mut arrays = HashMap::new();
    arrays.insert(
        "a".to_string(),
        (0..256).map(|_| rng.gen_range(-2048, 2047)).collect(),
    );
    arrays.insert(
        "b".to_string(),
        (0..256).map(|_| rng.gen_range(-2048, 2047)).collect(),
    );
    arrays.insert(
        "nd".to_string(),
        (0..256).map(|_| rng.gen_range(0, 1)).collect(),
    );
    let run = hw.run(&arrays, &HashMap::new()).unwrap();
    let expect: i64 = (0..256)
        .map(|i| arrays["a"][i] * arrays["b"][i] * arrays["nd"][i])
        .sum();
    assert_eq!(run.scalars["acc"], expect);
}

#[test]
fn wavelet_matches_golden() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "wavelet")
        .unwrap();
    let hw = compile_benchmark(&b).unwrap();
    check_streaming_kernel(&hw, &b.source, b.func, 109);
}
