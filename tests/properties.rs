//! Property-style tests: randomly generated kernels must compile and the
//! generated hardware must match the golden-model interpreter bit for
//! bit, regardless of expression shape, widths, or pipelining depth.
//!
//! Randomness comes from the in-tree deterministic PRNG
//! (`roccc_suite::testrand`) — every case is replayable from the seed
//! printed in a failure message, and the suite runs fully offline.

use roccc_suite::cparse::{frontend, IntType, Interpreter};
use roccc_suite::netlist::NetlistSim;
use roccc_suite::roccc::{compile, CompileOptions};
use roccc_suite::testrand::exprgen::gen_expr;
use roccc_suite::testrand::XorShift64;
use std::collections::HashMap;

const CASES: u64 = 48;

/// Random straight-line kernels: hardware == software for random inputs.
#[test]
fn random_expression_kernels_match_golden() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x1000 + case);
        let e = gen_expr(&mut rng, 3);
        let period = [1000.0f64, 6.0, 3.0][rng.gen_index(3)];
        let src = format!(
            "void k(int a, int b, int c, int* o) {{ *o = {}; }}",
            e.to_c()
        );
        let prog = frontend(&src).expect("generated source is valid");
        let opts = CompileOptions {
            target_period_ns: period,
            ..CompileOptions::default()
        };
        let hw = compile(&src, "k", &opts).expect("generated source compiles");
        let mut sim = NetlistSim::new(&hw.netlist);
        let args_list: Vec<Vec<i64>> = (0..4)
            .map(|_| (0..3).map(|_| rng.gen_range(-5000, 4999)).collect())
            .collect();
        let outs = sim.run_stream(&args_list).expect("simulates");
        for (args, hw_out) in args_list.iter().zip(&outs) {
            let mut interp = Interpreter::new(&prog);
            let golden = interp.call("k", args, &mut HashMap::new()).unwrap();
            assert_eq!(
                hw_out[0], golden.outputs["o"],
                "case {case} (src {src}) inputs {args:?}"
            );
        }
    }
}

/// Branchy kernels (if/else writing a scalar) match on both paths.
#[test]
fn random_branchy_kernels_match_golden() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2000 + case);
        let c = gen_expr(&mut rng, 2);
        let t = gen_expr(&mut rng, 2);
        let f = gen_expr(&mut rng, 2);
        let src = format!(
            "void k(int a, int b, int c, int* o) {{
               int x;
               if ({}) {{ x = {}; }} else {{ x = {}; }}
               *o = x; }}",
            c.to_c(),
            t.to_c(),
            f.to_c()
        );
        let prog = frontend(&src).expect("valid");
        let hw = compile(&src, "k", &CompileOptions::default()).expect("compiles");
        let mut sim = NetlistSim::new(&hw.netlist);
        let args_list: Vec<Vec<i64>> = (0..3)
            .map(|_| (0..3).map(|_| rng.gen_range(-999, 998)).collect())
            .collect();
        let outs = sim.run_stream(&args_list).expect("simulates");
        for (args, hw_out) in args_list.iter().zip(&outs) {
            let mut interp = Interpreter::new(&prog);
            let golden = interp.call("k", args, &mut HashMap::new()).unwrap();
            assert_eq!(hw_out[0], golden.outputs["o"], "case {case} args {args:?}");
        }
    }
}

/// Narrow output ports wrap exactly like C stores.
#[test]
fn narrow_ports_wrap_like_c() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x3000 + case);
        let e = gen_expr(&mut rng, 2);
        let ty = IntType {
            signed: rng.gen_bool(),
            bits: rng.gen_range(1, 16) as u8,
        };
        let a = rng.gen_range(-100_000, 100_000);
        let b = rng.gen_range(-100_000, 100_000);
        let src = format!(
            "void k(int a, int b, int c, {ty}* o) {{ *o = {}; }}",
            e.to_c()
        );
        let prog = frontend(&src).expect("valid");
        let hw = compile(&src, "k", &CompileOptions::default()).expect("compiles");
        let mut sim = NetlistSim::new(&hw.netlist);
        let outs = sim.run_stream(&[vec![a, b, 7]]).expect("simulates");
        let mut interp = Interpreter::new(&prog);
        let golden = interp.call("k", &[a, b, 7], &mut HashMap::new()).unwrap();
        assert_eq!(outs[0][0], golden.outputs["o"], "case {case} src {src}");
        // And the value is in the port's range.
        assert!(
            outs[0][0] >= ty.min_value() && outs[0][0] <= ty.max_value(),
            "case {case}: {} out of {ty} range",
            outs[0][0]
        );
    }
}

/// Deeply nested branch pyramids still match the golden model.
#[test]
fn nested_branch_pyramids_match_golden() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x4000 + case);
        let depth = rng.gen_range(1, 4) as usize;
        let a = rng.gen_range(-50, 49);
        let b = rng.gen_range(-50, 49);
        // Build a nest: if (a > k) { ... } else { x -= k; } at each level.
        let mut body = String::from("x = x + a * b;");
        for k in 0..depth {
            body = format!("if (a > {k}) {{ {body} }} else {{ x = x - {k}; }}");
        }
        let src = format!("void k(int a, int b, int* o) {{ int x = 1; {body} *o = x; }}");
        let prog = frontend(&src).expect("valid");
        let hw = compile(&src, "k", &CompileOptions::default()).expect("compiles");
        let mut sim = NetlistSim::new(&hw.netlist);
        let outs = sim.run_stream(&[vec![a, b]]).expect("simulates");
        let mut interp = Interpreter::new(&prog);
        let golden = interp.call("k", &[a, b], &mut HashMap::new()).unwrap();
        assert_eq!(outs[0][0], golden.outputs["o"], "case {case} a={a} b={b}");
    }
}

/// IntType::wrap is idempotent and stays in range.
#[test]
fn wrap_is_idempotent() {
    let mut rng = XorShift64::new(0x5000);
    for case in 0..2000 {
        let v = rng.next_u64() as i64;
        let t = IntType {
            signed: rng.gen_bool(),
            bits: rng.gen_range(1, 63) as u8,
        };
        let w = t.wrap(v);
        assert_eq!(t.wrap(w), w, "case {case} {t} {v}");
        assert!(w >= t.min_value() && w <= t.max_value(), "case {case}");
        // Congruence modulo 2^bits.
        let m = 1i128 << t.bits;
        assert_eq!(
            ((v as i128) - (w as i128)).rem_euclid(m),
            0,
            "case {case} {t} {v}"
        );
    }
}

/// The smart buffer delivers every window of the scan, in order, with
/// each element fetched exactly once.
#[test]
fn smart_buffer_reuse_property() {
    use roccc_suite::buffers::{AddressGen1d, DimScan, SmartBuffer1d};
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x6000 + case);
        let len = rng.gen_range(8, 63) as usize;
        let window = rng.gen_range(1, 5) as usize;
        let stride = rng.gen_range(1, 3) as usize;
        if len <= window {
            continue;
        }
        let positions = (len - window) / stride + 1;
        let scan = DimScan {
            start: 0,
            bound: (positions as i64 - 1) * stride as i64 + 1,
            step: stride as i64,
            extent: window,
        };
        let data: Vec<i64> = (0..len as i64).map(|x| x * 7 - 3).collect();
        let mut sb = SmartBuffer1d::new(window, stride, 0);
        let mut got = Vec::new();
        for addr in AddressGen1d::new(scan) {
            sb.push(addr, data[addr as usize]);
            while let Some(w) = sb.pop_window() {
                got.push(w);
            }
        }
        assert_eq!(got.len(), positions, "case {case}");
        for (k, w) in got.iter().enumerate() {
            let base = k * stride;
            let expect: Vec<i64> = (base..base + window).map(|i| data[i]).collect();
            assert_eq!(w, &expect, "case {case} window {k}");
        }
        // Exactly-once fetching.
        let touched = (positions - 1) * stride + window;
        assert!(sb.stats().fetched <= touched as u64, "case {case}");
    }
}
