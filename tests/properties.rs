//! Property-based tests: randomly generated kernels must compile and the
//! generated hardware must match the golden-model interpreter bit for
//! bit, regardless of expression shape, widths, or pipelining depth.

use proptest::prelude::*;
use roccc_suite::cparse::{frontend, IntType, Interpreter};
use roccc_suite::netlist::NetlistSim;
use roccc_suite::roccc::{compile, CompileOptions};
use std::collections::HashMap;

/// A randomly generated integer expression over inputs `a`, `b`, `c`.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Lit(i32),
    Un(&'static str, Box<Expr>),
    Bin(&'static str, Box<Expr>, Box<Expr>),
    ShiftK(&'static str, Box<Expr>, u8),
    Tern(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn to_c(&self) -> String {
        match self {
            Expr::Var(i) => ["a", "b", "c"][*i].to_string(),
            Expr::Lit(v) => format!("({v})"),
            Expr::Un(op, e) => format!("({op}({}))", e.to_c()),
            Expr::Bin(op, l, r) => format!("({} {op} {})", l.to_c(), r.to_c()),
            Expr::ShiftK(op, e, k) => format!("({} {op} {k})", e.to_c(), k = k),
            Expr::Tern(c, a, b) => format!("({} ? {} : {})", c.to_c(), a.to_c(), b.to_c()),
        }
    }
}

fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(Expr::Var),
        (-100i32..100).prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (prop_oneof![Just("-"), Just("~")], inner.clone())
                .prop_map(|(op, e)| Expr::Un(op, Box::new(e))),
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<"),
                    Just("<="),
                    Just("=="),
                    Just("!=")
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
            (prop_oneof![Just("<<"), Just(">>")], inner.clone(), 0u8..8)
                .prop_map(|(op, e, k)| Expr::ShiftK(op, Box::new(e), k)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::Tern(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random straight-line kernels: hardware == software for random inputs.
    #[test]
    fn random_expression_kernels_match_golden(
        e in arb_expr(3),
        inputs in proptest::collection::vec((-5000i64..5000, -5000i64..5000, -5000i64..5000), 4),
        period in prop_oneof![Just(1000.0f64), Just(6.0), Just(3.0)],
    ) {
        let src = format!(
            "void k(int a, int b, int c, int* o) {{ *o = {}; }}",
            e.to_c()
        );
        let prog = frontend(&src).expect("generated source is valid");
        let opts = CompileOptions { target_period_ns: period, ..CompileOptions::default() };
        let hw = compile(&src, "k", &opts).expect("generated source compiles");
        let mut sim = NetlistSim::new(&hw.netlist);
        let args_list: Vec<Vec<i64>> = inputs.iter().map(|(a, b, c)| vec![*a, *b, *c]).collect();
        let outs = sim.run_stream(&args_list).expect("simulates");
        for ((a, b, c), hw_out) in inputs.iter().zip(&outs) {
            let mut interp = Interpreter::new(&prog);
            let golden = interp.call("k", &[*a, *b, *c], &mut HashMap::new()).unwrap();
            prop_assert_eq!(hw_out[0], golden.outputs["o"], "inputs ({}, {}, {})", a, b, c);
        }
    }

    /// Branchy kernels (if/else writing a scalar) match on both paths.
    #[test]
    fn random_branchy_kernels_match_golden(
        t in arb_expr(2),
        f in arb_expr(2),
        c in arb_expr(2),
        inputs in proptest::collection::vec((-999i64..999, -999i64..999, -999i64..999), 3),
    ) {
        let src = format!(
            "void k(int a, int b, int c, int* o) {{
               int x;
               if ({}) {{ x = {}; }} else {{ x = {}; }}
               *o = x; }}",
            c.to_c(), t.to_c(), f.to_c()
        );
        let prog = frontend(&src).expect("valid");
        let hw = compile(&src, "k", &CompileOptions::default()).expect("compiles");
        let mut sim = NetlistSim::new(&hw.netlist);
        let args_list: Vec<Vec<i64>> = inputs.iter().map(|(a, b, c)| vec![*a, *b, *c]).collect();
        let outs = sim.run_stream(&args_list).expect("simulates");
        for ((a, b, cc), hw_out) in inputs.iter().zip(&outs) {
            let mut interp = Interpreter::new(&prog);
            let golden = interp.call("k", &[*a, *b, *cc], &mut HashMap::new()).unwrap();
            prop_assert_eq!(hw_out[0], golden.outputs["o"]);
        }
    }

    /// Narrow output ports wrap exactly like C stores.
    #[test]
    fn narrow_ports_wrap_like_c(
        e in arb_expr(2),
        bits in 1u8..=16,
        signed in any::<bool>(),
        a in -100000i64..100000,
        b in -100000i64..100000,
    ) {
        let ty = IntType { signed, bits };
        let src = format!(
            "void k(int a, int b, int c, {ty}* o) {{ *o = {}; }}",
            e.to_c()
        );
        let prog = frontend(&src).expect("valid");
        let hw = compile(&src, "k", &CompileOptions::default()).expect("compiles");
        let mut sim = NetlistSim::new(&hw.netlist);
        let outs = sim.run_stream(&[vec![a, b, 7]]).expect("simulates");
        let mut interp = Interpreter::new(&prog);
        let golden = interp.call("k", &[a, b, 7], &mut HashMap::new()).unwrap();
        prop_assert_eq!(outs[0][0], golden.outputs["o"]);
        // And the value is in the port's range.
        prop_assert!(outs[0][0] >= ty.min_value() && outs[0][0] <= ty.max_value());
    }

    /// Deeply nested branch pyramids still match the golden model.
    #[test]
    fn nested_branch_pyramids_match_golden(
        depth in 1usize..5,
        a in -50i64..50,
        b in -50i64..50,
    ) {
        // Build a nest: if (a > k) { ... } else { x += k; } at each level.
        let mut body = String::from("x = x + a * b;");
        for k in 0..depth {
            body = format!(
                "if (a > {k}) {{ {body} }} else {{ x = x - {k}; }}"
            );
        }
        let src = format!("void k(int a, int b, int* o) {{ int x = 1; {body} *o = x; }}");
        let prog = frontend(&src).expect("valid");
        let hw = compile(&src, "k", &CompileOptions::default()).expect("compiles");
        let mut sim = NetlistSim::new(&hw.netlist);
        let outs = sim.run_stream(&[vec![a, b]]).expect("simulates");
        let mut interp = Interpreter::new(&prog);
        let golden = interp.call("k", &[a, b], &mut HashMap::new()).unwrap();
        prop_assert_eq!(outs[0][0], golden.outputs["o"]);
    }

    /// IntType::wrap is idempotent and stays in range.
    #[test]
    fn wrap_is_idempotent(v in any::<i64>(), bits in 1u8..=63, signed in any::<bool>()) {
        let t = IntType { signed, bits };
        let w = t.wrap(v);
        prop_assert_eq!(t.wrap(w), w);
        prop_assert!(w >= t.min_value() && w <= t.max_value());
        // Congruence modulo 2^bits.
        let m = 1i128 << bits;
        prop_assert_eq!(((v as i128) - (w as i128)).rem_euclid(m), 0);
    }

    /// The smart buffer delivers every window of the scan, in order, with
    /// each element fetched exactly once.
    #[test]
    fn smart_buffer_reuse_property(
        len in 8usize..64,
        window in 1usize..6,
        stride in 1usize..4,
    ) {
        use roccc_suite::buffers::{AddressGen1d, DimScan, SmartBuffer1d};
        prop_assume!(len > window);
        let positions = (len - window) / stride + 1;
        let scan = DimScan {
            start: 0,
            bound: (positions as i64 - 1) * stride as i64 + 1,
            step: stride as i64,
            extent: window,
        };
        let data: Vec<i64> = (0..len as i64).map(|x| x * 7 - 3).collect();
        let mut sb = SmartBuffer1d::new(window, stride, 0);
        let mut got = Vec::new();
        for addr in AddressGen1d::new(scan) {
            sb.push(addr, data[addr as usize]);
            while let Some(w) = sb.pop_window() {
                got.push(w);
            }
        }
        prop_assert_eq!(got.len(), positions);
        for (k, w) in got.iter().enumerate() {
            let base = k * stride;
            let expect: Vec<i64> = (base..base + window).map(|i| data[i]).collect();
            prop_assert_eq!(w, &expect);
        }
        // Exactly-once fetching.
        let touched = (positions - 1) * stride + window;
        prop_assert!(sb.stats().fetched <= touched as u64);
    }
}
