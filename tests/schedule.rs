//! Integration tests for the modulo-scheduling subsystem: the paper's
//! streaming kernels must achieve II == MinII == 1 with the M-family
//! verifier deriving legality from the artifacts alone, a constrained
//! multiplier budget must force a genuine II-2 schedule that stays
//! bit-exact against the per-cycle reference interpreter across all
//! engines and lane counts (bubbles and misaligned launches included),
//! and exprgen-seeded recurrence loops at planted feedback distances
//! 1–4 must run bit-exact scheduled vs unscheduled.

use roccc_suite::datapath::{DelayModel, ResourceBudget};
use roccc_suite::ipcores::table::{benchmarks, compile_benchmark};
use roccc_suite::netlist::{CompiledSim, Netlist, NetlistSim, SimPlan};
use roccc_suite::roccc::{
    compile, compile_with_model, verify_compiled, CompileOptions, VerifyLevel,
};
use roccc_suite::suifvm::ir::Opcode;
use roccc_suite::testrand::exprgen::gen_recurrence_kernel;
use roccc_suite::testrand::XorShift64;

/// The default delay model with a hard multiplier-block budget, to force
/// a resource-constrained II on kernels with several variable multiplies.
struct Budgeted(u64);

impl DelayModel for Budgeted {
    fn delay_ns(&self, op: Opcode, width: u8, const_shift: bool) -> f64 {
        roccc_suite::datapath::DefaultDelayModel.delay_ns(op, width, const_shift)
    }
    fn resource_budget(&self) -> ResourceBudget {
        ResourceBudget {
            mult_blocks: Some(self.0),
        }
    }
}

/// In-range input iterations for a netlist, seeded.
fn gen_iters(nl: &Netlist, n: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|_| nl.inputs.iter().map(|(_, t)| rng.sample_int(*t)).collect())
        .collect()
}

/// Runs `iters` through the reference interpreter, the compiled engine,
/// and the batched engine at lanes {1, 8, 64}, asserting every engine
/// retires the same rows.
fn assert_engines_agree(nl: &Netlist, iters: &[Vec<i64>], name: &str) -> Vec<Vec<i64>> {
    let reference = NetlistSim::new(nl)
        .run_stream(iters)
        .expect("reference stream");
    let plan = SimPlan::compile(nl).expect("plan compiles");
    let compiled = CompiledSim::new(&plan)
        .run_stream(iters)
        .expect("compiled stream");
    assert_eq!(reference, compiled, "{name}: compiled engine diverged");
    let flat: Vec<i64> = iters.iter().flatten().copied().collect();
    let expect: Vec<i64> = reference.iter().flatten().copied().collect();
    for lanes in [1usize, 8, 64] {
        let mut out = Vec::new();
        let rows = plan
            .run_batch_lanes(&flat, iters.len(), lanes, &mut out)
            .expect("batched run");
        assert_eq!(rows, iters.len(), "{name}: lanes={lanes} retire count");
        assert_eq!(out, expect, "{name}: lanes={lanes} outputs diverged");
    }
    reference
}

/// fir, dct, and wavelet — the kernels PR 8 proved have MinII 1 below
/// their body latency — must schedule at II == MinII == 1 with no
/// fallback, pass the M-family verifier from the artifacts alone, and
/// produce netlists bit-exact against the unscheduled goldens in every
/// engine.
#[test]
fn paper_streaming_kernels_achieve_min_ii() {
    let mut seen = 0;
    for b in benchmarks() {
        if !matches!(b.name, "fir" | "dct" | "wavelet") {
            continue;
        }
        seen += 1;
        let golden = compile_benchmark(&b).expect("unscheduled golden compiles");
        let opts = CompileOptions {
            pipeline_ii: Some(0),
            verify: VerifyLevel::Deny,
            ..b.opts.clone()
        };
        let hw = compile(&b.source, b.func, &opts).expect("scheduled compile");
        let s = hw.schedule.as_ref().expect("schedule artifact present");
        assert_eq!(s.fallback, None, "{}: fell back: {:?}", b.name, s.fallback);
        assert_eq!(s.min_ii, 1, "{}", b.name);
        assert_eq!(s.ii, 1, "{}: achieved II == MinII == 1", b.name);
        assert!(
            u64::from(s.body_latency) > s.ii,
            "{}: premise — MinII strictly below body latency",
            b.name
        );
        assert_eq!(s.throughput_windows_per_cycle(), 1.0, "{}", b.name);

        // The M-family re-derives legality from the artifacts alone.
        let findings = verify_compiled(&hw);
        assert!(
            findings.is_empty(),
            "{}: verifier findings: {findings:?}",
            b.name
        );

        // Scheduled output is bit-exact against the unscheduled golden
        // in all three engines.
        let iters = gen_iters(&hw.netlist, 97, 0x5c0 + seen);
        let scheduled = assert_engines_agree(&hw.netlist, &iters, b.name);
        let unscheduled = assert_engines_agree(&golden.netlist, &iters, b.name);
        assert_eq!(
            scheduled, unscheduled,
            "{}: scheduled vs unscheduled goldens diverged",
            b.name
        );
    }
    assert_eq!(seen, 3, "all three streaming kernels exercised");
}

/// Two independent 16-bit variable multiplies under a one-block budget:
/// ResMII is 2, so the scheduler must emit a genuine II-2 schedule
/// (II < body latency), the sims must reject misaligned launches, and
/// the II-spaced stream must retire the same rows as the unscheduled
/// golden in every engine.
#[test]
fn forced_ii_two_is_bit_exact_across_engines() {
    let src = "void k2(int16 A[24], int16 B[16]) {
      int i;
      for (i = 0; i < 16; i = i + 1) {
        B[i] = A[i] * A[i + 1] + A[i + 2] * A[i + 3] + A[i];
      }
    }";
    let model = Budgeted(1);
    // A tight period keeps the body latency well above II 2.
    let base = CompileOptions {
        target_period_ns: 3.0,
        verify: VerifyLevel::Deny,
        ..CompileOptions::default()
    };
    let golden = compile_with_model(src, "k2", &base, &model).expect("golden compiles");
    let opts = CompileOptions {
        pipeline_ii: Some(0),
        ..base
    };
    let hw = compile_with_model(src, "k2", &opts, &model).expect("scheduled compile");
    let s = hw.schedule.as_ref().expect("schedule artifact present");
    assert_eq!(s.fallback, None, "fell back: {:?}", s.fallback);
    assert_eq!(s.res_mii, 2, "two tiles over a one-block budget");
    assert_eq!(s.ii, 2, "achieved II == MinII");
    assert!(
        u64::from(s.body_latency) > s.ii,
        "premise: overlap benefit (body latency {} vs II {})",
        s.body_latency,
        s.ii
    );
    assert!(s.mrt_peak <= 1, "MRT respects the budget: {s:?}");
    assert!(verify_compiled(&hw).is_empty());

    // The netlist and both engines enforce launch alignment: a valid
    // iteration off the II grid is a fault, in the reference and the
    // compiled engine alike.
    let args: Vec<i64> = hw.netlist.inputs.iter().map(|_| 1).collect();
    let plan = SimPlan::compile(&hw.netlist).expect("plan compiles");
    let mut reference = NetlistSim::new(&hw.netlist);
    let mut compiled = CompiledSim::new(&plan);
    assert!(reference.step(&args, true).is_ok(), "cycle 0 is aligned");
    assert!(compiled.step(&args, true).is_ok(), "cycle 0 is aligned");
    let e_ref = reference.step(&args, true).expect_err("cycle 1 misaligned");
    let e_comp = compiled.step(&args, true).expect_err("cycle 1 misaligned");
    assert_eq!(format!("{e_ref:?}"), format!("{e_comp:?}"));

    // Bubble cycles (garbage arguments, valid low) are free to land
    // anywhere, including through the prologue and epilogue; the engines
    // must stay in lock-step through the mix.
    let mut reference = NetlistSim::new(&hw.netlist);
    let mut compiled = CompiledSim::new(&plan);
    let mut rng = XorShift64::new(0x1122);
    let mut out_buf = vec![0i64; hw.netlist.outputs.len()];
    for t in 0..200usize {
        let valid = t % 2 == 0 && rng.gen_ratio(3, 4);
        let args: Vec<i64> = hw
            .netlist
            .inputs
            .iter()
            .map(|(_, ty)| {
                if valid {
                    rng.sample_int(*ty)
                } else {
                    rng.next_u64() as i64
                }
            })
            .collect();
        let r = reference.step(&args, valid).expect("reference step");
        let out_valid = compiled.step(&args, valid).expect("compiled step");
        assert_eq!(r.out_valid, out_valid, "cycle {t}: out_valid diverged");
        compiled.read_outputs(&mut out_buf);
        assert_eq!(r.outputs, out_buf, "cycle {t}: outputs diverged");
    }

    // Full II-spaced streams retire the same rows as the unscheduled
    // golden at every lane count.
    let iters = gen_iters(&hw.netlist, 97, 0x5c9);
    let scheduled = assert_engines_agree(&hw.netlist, &iters, "k2-ii2");
    let unscheduled = assert_engines_agree(&golden.netlist, &iters, "k2-golden");
    assert_eq!(scheduled, unscheduled, "II-2 schedule changed the math");
}

/// Exprgen-seeded loops with planted LPR→SNX recurrence chains at
/// distances 1 through 4: scheduled compiles must stay bit-exact against
/// the reference interpreter, the batched engine at lanes {1, 8, 64},
/// and the unscheduled golden.
#[test]
fn recurrence_kernels_scheduled_differential() {
    for distance in 1..=4u64 {
        for case in 0..3u64 {
            let mut rng = XorShift64::new(0xd15 + distance * 16 + case);
            let k = gen_recurrence_kernel(&mut rng, 2, distance);
            let name = format!("rec_d{distance}_{case}");
            let base = CompileOptions::default();
            let golden = match compile(&k.source, "k", &base) {
                Ok(c) => c,
                // A generated body can exceed the supported subset (e.g.
                // a dynamic shift amount wider than the target); skip —
                // the seeds below still cover every distance.
                Err(_) => continue,
            };
            let opts = CompileOptions {
                pipeline_ii: Some(0),
                verify: VerifyLevel::Deny,
                ..base
            };
            let hw = compile(&k.source, "k", &opts).expect("scheduled compile");
            let s = hw.schedule.as_ref().expect("schedule artifact present");
            assert!(
                s.ii >= 1 && s.ii <= u64::from(s.body_latency).max(1),
                "{name}: {s:?}"
            );
            assert!(verify_compiled(&hw).is_empty(), "{name}");

            let iters = gen_iters(&hw.netlist, 61, 0xa17 + distance + case);
            let scheduled = assert_engines_agree(&hw.netlist, &iters, &name);
            let unscheduled = assert_engines_agree(&golden.netlist, &iters, &name);
            assert_eq!(scheduled, unscheduled, "{name}: schedule changed the math");
        }
    }
}
