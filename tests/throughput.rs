//! Throughput and latency invariants of the generated pipelines.

use roccc_suite::netlist::NetlistSim;
use roccc_suite::roccc::{compile, CompileOptions};
use std::collections::HashMap;

/// §5: "ROCCC's throughput is eight output data per clock cycle" for the
/// unrolled DCT data path.
#[test]
fn dct_datapath_produces_eight_outputs_per_cycle() {
    let src = roccc_suite::ipcores::kernels::dct_source();
    let hw = compile(&src, "dct", &CompileOptions::default()).unwrap();
    assert_eq!(hw.datapath.throughput_per_cycle(), 8);
    // Feed two consecutive windows back to back: outputs emerge on two
    // consecutive cycles (initiation interval 1).
    let mut sim = NetlistSim::new(&hw.netlist);
    let w1: Vec<i64> = (0..8).collect();
    let w2: Vec<i64> = (8..16).collect();
    let outs = sim.run_stream(&[w1, w2]).unwrap();
    assert_eq!(outs.len(), 2);
    assert_eq!(outs[0].len(), 8);
}

/// With a window-wide bus, the DCT sustains its 8-outputs-per-cycle
/// through the whole system, not just the data path: the §5 throughput
/// claim holds end to end.
#[test]
fn dct_system_hits_high_throughput_with_wide_bus() {
    let src = roccc_suite::ipcores::kernels::dct_source();
    let hw = compile(&src, "dct", &CompileOptions::default()).unwrap();
    let x: Vec<i64> = (0..64).map(|i| (i * 29 % 255) - 128).collect();
    let mut arrays = HashMap::new();
    arrays.insert("X".to_string(), x.clone());

    let narrow = hw.run(&arrays, &HashMap::new()).unwrap();
    let wide = hw.run_with_bus(&arrays, &HashMap::new(), 8).unwrap();
    assert_eq!(
        narrow.arrays["Y"], wide.arrays["Y"],
        "bus width is transparent"
    );
    assert!(
        wide.cycles < narrow.cycles / 2,
        "wide bus should cut cycles: {} vs {}",
        wide.cycles,
        narrow.cycles
    );
    assert!(
        wide.throughput() > 2.0,
        "throughput with window-wide bus: {:.2}/cycle",
        wide.throughput()
    );
}

/// The FIR pipeline reaches initiation interval 1: N outputs take ~N
/// cycles once flowing, not N × latency.
#[test]
fn fir_system_reaches_initiation_interval_one() {
    let src = "void fir(int16 A[128], int16 Y[124]) { int i;
      for (i = 0; i < 124; i = i + 1) {
        Y[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4]; } }";
    let hw = compile(src, "fir", &CompileOptions::default()).unwrap();
    let mut arrays = HashMap::new();
    arrays.insert("A".to_string(), (0..128).collect::<Vec<i64>>());
    let run = hw.run(&arrays, &HashMap::new()).unwrap();
    assert_eq!(run.mem_writes, 124);
    // Fill + 124 iterations + drain: well under 2× the iteration count.
    assert!(
        run.cycles < 124 * 2,
        "II > 1? {} cycles for 124 outputs",
        run.cycles
    );
}

/// Deeper pipelining never reduces Fmax under the model, and a pipelined
/// kernel keeps producing one result per cycle.
#[test]
fn pipelining_monotonic_fmax() {
    let src = "void f(int16 a, int16 b, int16* o) { *o = (a * b) * 3 + (a - b) * (a + b); }";
    let mut last_fmax = 0.0;
    for period in [100.0, 10.0, 6.0, 4.0] {
        let hw = compile(
            src,
            "f",
            &CompileOptions {
                target_period_ns: period,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let fmax = hw.datapath.fmax_mhz();
        assert!(
            fmax + 1e-9 >= last_fmax,
            "fmax regressed at target {period}: {fmax} < {last_fmax}"
        );
        last_fmax = fmax;
        // Still functionally correct while pipelined.
        let mut sim = NetlistSim::new(&hw.netlist);
        let outs = sim.run_stream(&[vec![3, 4], vec![-5, 6]]).unwrap();
        assert_eq!(outs[0][0], (3 * 4) * 3 + (3 - 4) * (3 + 4));
        assert_eq!(outs[1][0], (-5 * 6) * 3 + (-5 - 6));
    }
}

/// Latency equals the declared pipeline depth.
#[test]
fn latency_matches_stage_count() {
    let src = "void f(int a, int b, int* o) { *o = (a * b) * (a + b) + a * 3; }";
    let hw = compile(
        src,
        "f",
        &CompileOptions {
            target_period_ns: 4.0,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert!(hw.netlist.latency >= 2);
    let mut sim = NetlistSim::new(&hw.netlist);
    let mut first_valid_at = None;
    for t in 0..30 {
        let (args, v) = if t == 0 {
            (vec![2, 3], true)
        } else {
            (vec![0, 0], false)
        };
        let r = sim.step(&args, v).unwrap();
        if r.out_valid && first_valid_at.is_none() {
            first_valid_at = Some(t + 1);
            assert_eq!(r.outputs[0], (2 * 3) * (2 + 3) + 2 * 3);
        }
    }
    assert_eq!(first_valid_at, Some(hw.netlist.latency));
}

/// Bubbles in the input stream do not corrupt results or feedback.
#[test]
fn bubbles_are_harmless() {
    let src = "void acc(int A[8], int* out) { int s = 0; int i;
      for (i = 0; i < 8; i++) { s = s + A[i]; } *out = s; }";
    let hw = compile(src, "acc", &CompileOptions::default()).unwrap();
    let mut sim = NetlistSim::new(&hw.netlist);
    let mut total = 0;
    for (x, valid) in [(5, true), (99, false), (7, true), (123, false), (-2, true)] {
        if valid {
            total += x;
        }
        sim.step(&[x], valid).unwrap();
    }
    for _ in 0..6 {
        sim.step(&[0], false).unwrap();
    }
    assert_eq!(sim.feedback_value("s"), Some(total));
}
