//! Integration tests for the `roccc-verify` static verifier.
//!
//! Two directions, per the verifier's contract:
//!
//! * **positive sweep** — every paper kernel and a battery of generated
//!   kernels must compile *clean* under `VerifyLevel::Deny` (the level is
//!   set explicitly because the default is profile-dependent);
//! * **negative fixtures** — corrupting a compiled artifact must fire the
//!   specific check that guards the broken invariant, for each check
//!   family across all three phases (IR, data path, netlist).
//!
//! Plus the feedback-staging regression: every `LPR → … → SNX` path of an
//! accumulator kernel lands in a single pipeline stage, and breaking that
//! fires `D005-feedback-stage-split`.

use roccc_suite::datapath::{DpMachine, OpId, Value};
use roccc_suite::hlir::deps::{DepKind, DimDist};
use roccc_suite::ipcores::table::benchmarks;
use roccc_suite::netlist::cells::{Cell, CellKind};
use roccc_suite::roccc::{compile, compile_with_model, CompileOptions, VerifyLevel};
use roccc_suite::suifvm::deps::DepEdge;
use roccc_suite::suifvm::ir::{BlockId, Opcode, Terminator, VReg};
use roccc_suite::synth::VirtexII;
use roccc_suite::testrand::exprgen::gen_kernel_source;
use roccc_suite::testrand::XorShift64;
use roccc_suite::verify::{
    verify_datapath, verify_deps, verify_ir, verify_netlist, Diagnostic, Severity,
};

fn deny(period_ns: f64) -> CompileOptions {
    CompileOptions {
        target_period_ns: period_ns,
        verify: VerifyLevel::Deny,
        ..CompileOptions::default()
    }
}

fn has(diags: &[Diagnostic], code: &str) -> bool {
    diags.iter().any(|d| d.code == code)
}

const SCALAR: &str = "void k(int a, int b, int c, int* o) { *o = (a * b) * (a + b) * c + a; }";

const BRANCHY: &str = "void k(int a, int b, int* o) {
  int x;
  if (a < b) { x = a * 3; } else { x = b - a; }
  *o = x + 1;
}";

// ---------------------------------------------------------------------
// Positive sweep
// ---------------------------------------------------------------------

/// All nine Table 1 kernels compile clean under `--deny-warnings`.
#[test]
fn paper_kernels_verify_clean_under_deny() {
    for b in benchmarks() {
        let opts = CompileOptions {
            verify: VerifyLevel::Deny,
            ..b.opts.clone()
        };
        let model = VirtexII::with_mult_style(b.mult_style);
        let hw = compile_with_model(&b.source, b.func, &opts, &model)
            .unwrap_or_else(|e| panic!("{}: verification failed: {e}", b.name));
        assert!(
            hw.diagnostics.is_empty(),
            "{}: {:?}",
            b.name,
            hw.diagnostics
        );
        // Re-running the verifier standalone agrees.
        assert!(verify_ir(&hw.ir).is_empty(), "{}", b.name);
        assert!(verify_datapath(&hw.datapath).is_empty(), "{}", b.name);
        assert!(verify_netlist(&hw.netlist).is_empty(), "{}", b.name);
    }
}

/// Randomly generated kernels compile clean under deny, at several
/// pipeline depths.
#[test]
fn generated_kernels_verify_clean_under_deny() {
    for case in 0..32u64 {
        let mut rng = XorShift64::new(0x7e51 + case);
        let src = gen_kernel_source(&mut rng, 3);
        let period = [1000.0f64, 6.0, 3.0][rng.gen_index(3)];
        let hw = compile(&src, "k", &deny(period))
            .unwrap_or_else(|e| panic!("case {case} (src {src}): {e}"));
        assert!(
            hw.diagnostics.is_empty(),
            "case {case}: {:?}",
            hw.diagnostics
        );
    }
}

/// Bit-width soundness, dynamically: the narrowed data path computes the
/// same outputs as the un-narrowed one under `datapath::eval` — the
/// runtime counterpart of the static `D006`/`D007` width checks.
#[test]
fn narrowed_widths_preserve_eval_semantics() {
    for case in 0..24u64 {
        let mut rng = XorShift64::new(0xa11 + case);
        let src = gen_kernel_source(&mut rng, 3);
        let narrowed = compile(&src, "k", &deny(6.0)).expect("compiles narrowed");
        let wide = compile(
            &src,
            "k",
            &CompileOptions {
                narrow: false,
                ..deny(6.0)
            },
        )
        .expect("compiles wide");
        let mut m_n = DpMachine::new(&narrowed.datapath);
        let mut m_w = DpMachine::new(&wide.datapath);
        for _ in 0..8 {
            let args: Vec<i64> = (0..3).map(|_| rng.gen_range(-5000, 4999)).collect();
            assert_eq!(
                m_n.step(&args),
                m_w.step(&args),
                "case {case} (src {src}) args {args:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Negative fixtures: SuifVM IR
// ---------------------------------------------------------------------

#[test]
fn corrupt_ir_bad_edge_fires_s001() {
    let mut ir = compile(SCALAR, "k", &deny(1000.0)).unwrap().ir;
    let last = ir.blocks.len() - 1;
    ir.blocks[last].term = Terminator::Jump(BlockId(99));
    assert!(has(&verify_ir(&ir), "S001-bad-edge"));
}

#[test]
fn corrupt_ir_out_of_range_vreg_fires_s003() {
    let mut ir = compile(SCALAR, "k", &deny(1000.0)).unwrap().ir;
    let instr = ir
        .blocks
        .iter_mut()
        .flat_map(|b| b.instrs.iter_mut())
        .find(|i| !i.srcs.is_empty())
        .expect("an instruction with sources");
    instr.srcs[0] = VReg(u32::MAX);
    assert!(has(&verify_ir(&ir), "S003-invalid-vreg"));
}

#[test]
fn corrupt_ir_duplicate_def_fires_s004() {
    let mut ir = compile(SCALAR, "k", &deny(1000.0)).unwrap().ir;
    assert!(ir.is_ssa, "pipeline output is SSA");
    let victim = *ir.blocks[0]
        .instrs
        .iter()
        .find(|i| i.dst.is_some())
        .expect("a defining instruction");
    ir.blocks[0].instrs.push(victim);
    assert!(has(&verify_ir(&ir), "S004-multiple-def"));
}

#[test]
fn corrupt_ir_undefined_vreg_fires_s005() {
    let mut ir = compile(SCALAR, "k", &deny(1000.0)).unwrap().ir;
    // A fresh register that exists in the type table but is never defined.
    let ghost = VReg(ir.vreg_types.len() as u32);
    ir.vreg_types.push(roccc_suite::cparse::IntType::int());
    let last = ir.blocks.len() - 1;
    let instr = ir.blocks[last]
        .instrs
        .iter_mut()
        .find(|i| !i.srcs.is_empty())
        .expect("an instruction with sources");
    instr.srcs[0] = ghost;
    assert!(has(&verify_ir(&ir), "S005-undefined-vreg"));
}

#[test]
fn corrupt_ir_phi_arity_fires_s007() {
    let mut ir = compile(BRANCHY, "k", &deny(1000.0)).unwrap().ir;
    let phi = ir
        .blocks
        .iter_mut()
        .flat_map(|b| b.phis.iter_mut())
        .next()
        .expect("branchy kernel keeps a phi at the join");
    let arg = phi.args[0];
    phi.args.push(arg);
    assert!(has(&verify_ir(&ir), "S007-phi-arity"));
}

// ---------------------------------------------------------------------
// Negative fixtures: data path
// ---------------------------------------------------------------------

#[test]
fn corrupt_datapath_self_loop_fires_d001() {
    let mut dp = compile(SCALAR, "k", &deny(1000.0)).unwrap().datapath;
    let i = dp
        .ops
        .iter()
        .position(|o| !o.srcs.is_empty())
        .expect("an op with sources");
    dp.ops[i].srcs[0] = Value::Op(OpId(i as u32));
    assert!(has(&verify_datapath(&dp), "D001-comb-cycle"));
}

#[test]
fn corrupt_datapath_stage_inversion_fires_d003() {
    // A tight period forces multiple stages, so an inversion is expressible
    // without going out of stage range.
    let mut dp = compile(SCALAR, "k", &deny(4.0)).unwrap().datapath;
    assert!(dp.num_stages > 1, "deep pipeline expected");
    let (consumer, producer) = dp
        .ops
        .iter()
        .enumerate()
        .find_map(|(i, o)| {
            o.srcs.iter().find_map(|s| match s {
                Value::Op(p) if dp.ops[p.0 as usize].stage + 1 < dp.num_stages => {
                    Some((i, p.0 as usize))
                }
                _ => None,
            })
        })
        .expect("an op consuming another op's result");
    dp.ops[producer].stage = dp.ops[consumer].stage + 1;
    assert!(has(&verify_datapath(&dp), "D003-stage-inversion"));
}

#[test]
fn corrupt_datapath_zero_width_fires_d006() {
    let mut dp = compile(SCALAR, "k", &deny(1000.0)).unwrap().datapath;
    dp.ops[0].hw_bits = 0;
    assert!(has(&verify_datapath(&dp), "D006-width-bounds"));
}

#[test]
fn corrupt_datapath_starved_width_fires_d007() {
    let mut dp = compile(SCALAR, "k", &deny(1000.0)).unwrap().datapath;
    // Starve the op driving the 32-bit output down to one bit: the
    // backward-demand check must notice the producer is too narrow.
    let out = dp.outputs[0].value;
    let Value::Op(id) = out else {
        panic!("output driven by an op");
    };
    dp.ops[id.0 as usize].hw_bits = 1;
    assert!(has(&verify_datapath(&dp), "D007-width-demand"));
}

// ---------------------------------------------------------------------
// Negative fixtures: netlist
// ---------------------------------------------------------------------

#[test]
fn corrupt_netlist_undriven_reg_fires_n001() {
    let mut nl = compile(SCALAR, "k", &deny(4.0)).unwrap().netlist;
    let i = nl
        .cells
        .iter()
        .position(|c| matches!(c.kind, CellKind::Reg { d: Some(_), .. }))
        .expect("a driven register");
    if let CellKind::Reg { d, .. } = &mut nl.cells[i].kind {
        *d = None;
    }
    assert!(has(&verify_netlist(&nl), "N001-undriven-reg"));
}

#[test]
fn corrupt_netlist_self_loop_fires_n003() {
    let mut nl = compile(SCALAR, "k", &deny(1000.0)).unwrap().netlist;
    let i = nl
        .cells
        .iter()
        .position(|c| matches!(&c.kind, CellKind::Op { srcs, .. } if !srcs.is_empty()))
        .expect("an op cell with sources");
    if let CellKind::Op { srcs, .. } = &mut nl.cells[i].kind {
        srcs[0] = roccc_suite::netlist::cells::CellId(i as u32);
    }
    assert!(has(&verify_netlist(&nl), "N003-comb-loop"));
}

#[test]
fn corrupt_netlist_zero_width_fires_n006() {
    let mut nl = compile(SCALAR, "k", &deny(1000.0)).unwrap().netlist;
    nl.cells[0].width = 0;
    assert!(has(&verify_netlist(&nl), "N006-width-bounds"));
}

#[test]
fn dead_netlist_cell_is_a_warning_not_an_error() {
    let mut nl = compile(SCALAR, "k", &deny(1000.0)).unwrap().netlist;
    nl.add(Cell {
        kind: CellKind::Const(5),
        width: 4,
        signed: false,
    });
    let findings = verify_netlist(&nl);
    let dead: Vec<_> = findings
        .iter()
        .filter(|d| d.code == "N007-dead-cell")
        .collect();
    assert!(!dead.is_empty(), "{findings:?}");
    assert!(dead.iter().all(|d| d.severity == Severity::Warning));
    assert!(
        findings.iter().all(|d| d.severity == Severity::Warning),
        "only warnings expected: {findings:?}"
    );
}

// ---------------------------------------------------------------------
// Feedback staging regression (satellite: LPR → … → SNX in one stage)
// ---------------------------------------------------------------------

/// Every `LPR → … → SNX` feedback path of the accumulator kernel lands in
/// a single pipeline stage (the latch and the read agree), and breaking
/// that staging fires `D005-feedback-stage-split`.
#[test]
fn feedback_paths_land_in_single_stage() {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "mul_acc")
        .expect("accumulator benchmark exists");
    let opts = CompileOptions {
        verify: VerifyLevel::Deny,
        ..b.opts.clone()
    };
    let hw = compile(&b.source, b.func, &opts).expect("accumulator compiles under deny");
    let dp = &hw.datapath;
    assert!(!dp.feedback.is_empty(), "accumulator has a feedback latch");
    for (slot_idx, (_, snx_src)) in dp.feedback.iter().enumerate() {
        let latch_stage = dp.stage_of(*snx_src);
        for op in dp.ops.iter().filter(|o| o.op == Opcode::Lpr) {
            if op.imm as usize == slot_idx {
                assert_eq!(
                    op.stage, latch_stage,
                    "slot {slot_idx}: LPR read and SNX latch must share a stage"
                );
            }
        }
    }

    // Break the invariant: move one LPR read off its latch stage.
    let mut dp = hw.datapath.clone();
    let lpr = dp
        .ops
        .iter()
        .position(|o| o.op == Opcode::Lpr)
        .expect("an LPR op");
    dp.ops[lpr].stage = (dp.ops[lpr].stage + 1) % dp.num_stages;
    assert!(has(&verify_datapath(&dp), "D005-feedback-stage-split"));
}

// ---------------------------------------------------------------------
// Negative fixtures: dependence graph / MinII (L0xx)
// ---------------------------------------------------------------------

/// A compiled kernel whose graph has memory edges (fir reads a window
/// and writes two output arrays).
fn fir_compiled() -> roccc_suite::roccc::Compiled {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "fir")
        .expect("fir benchmark exists");
    compile(&b.source, b.func, &b.opts).expect("fir compiles")
}

/// A compiled kernel whose graph has a recurrence (the accumulator).
fn acc_compiled() -> roccc_suite::roccc::Compiled {
    let b = benchmarks()
        .into_iter()
        .find(|b| b.name == "mul_acc")
        .expect("accumulator benchmark exists");
    compile(&b.source, b.func, &b.opts).expect("accumulator compiles")
}

/// Every paper kernel's dependence graph re-verifies clean.
#[test]
fn paper_kernel_dep_graphs_verify_clean() {
    for b in benchmarks() {
        let hw = compile(&b.source, b.func, &b.opts).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let findings = verify_deps(&hw.deps, &hw.kernel, &hw.ir);
        assert!(findings.is_empty(), "{}: {findings:?}", b.name);
    }
}

#[test]
fn corrupt_deps_bad_edge_endpoint_fires_l001() {
    let mut hw = fir_compiled();
    hw.deps.edges.push(DepEdge {
        src: 999,
        dst: 0,
        kind: DepKind::Flow,
        dist: vec![DimDist::Eq(0); hw.deps.dims.len()],
        carried: false,
    });
    assert!(has(
        &verify_deps(&hw.deps, &hw.kernel, &hw.ir),
        "L001-malformed-graph"
    ));
}

#[test]
fn corrupt_deps_wrong_dist_rank_fires_l001() {
    let mut hw = fir_compiled();
    assert!(hw.deps.accesses.len() >= 2, "fir has several accesses");
    // Valid endpoints, but one distance entry too many for the dims.
    hw.deps.edges.push(DepEdge {
        src: 0,
        dst: 1,
        kind: DepKind::Flow,
        dist: vec![DimDist::Eq(0); hw.deps.dims.len() + 1],
        carried: false,
    });
    assert!(has(
        &verify_deps(&hw.deps, &hw.kernel, &hw.ir),
        "L001-malformed-graph"
    ));
}

#[test]
fn corrupt_deps_zero_distance_recurrence_fires_l001() {
    let mut hw = acc_compiled();
    assert!(
        !hw.deps.recurrences.is_empty(),
        "accumulator has a recurrence"
    );
    hw.deps.recurrences[0].distance = 0;
    assert!(has(
        &verify_deps(&hw.deps, &hw.kernel, &hw.ir),
        "L001-malformed-graph"
    ));
}

#[test]
fn corrupt_deps_phantom_edge_fires_l002() {
    // A compiled kernel's surviving edge list is empty (every pair the
    // extractor accepts is proven independent) — a structurally
    // well-formed phantom edge must still fail the recomputation.
    let mut hw = fir_compiled();
    assert!(hw.deps.accesses.len() >= 2, "fir has several accesses");
    hw.deps.edges.push(DepEdge {
        src: 0,
        dst: 1,
        kind: DepKind::Flow,
        dist: vec![DimDist::Eq(0); hw.deps.dims.len()],
        carried: false,
    });
    let findings = verify_deps(&hw.deps, &hw.kernel, &hw.ir);
    assert!(has(&findings, "L002-edge-mismatch"), "{findings:?}");
    assert!(!has(&findings, "L001-malformed-graph"), "{findings:?}");
}

#[test]
fn corrupt_deps_flipped_access_fires_l002() {
    let mut hw = fir_compiled();
    assert!(!hw.deps.accesses.is_empty(), "fir has accesses");
    hw.deps.accesses[0].write = !hw.deps.accesses[0].write;
    assert!(has(
        &verify_deps(&hw.deps, &hw.kernel, &hw.ir),
        "L002-edge-mismatch"
    ));
}

#[test]
fn corrupt_deps_dropped_recurrence_fires_l003() {
    let mut hw = acc_compiled();
    assert!(
        !hw.deps.recurrences.is_empty(),
        "accumulator has a recurrence"
    );
    hw.deps.recurrences.clear();
    let findings = verify_deps(&hw.deps, &hw.kernel, &hw.ir);
    assert!(has(&findings, "L003-missing-recurrence"), "{findings:?}");
}

#[test]
fn corrupt_deps_phantom_recurrence_fires_l003() {
    // fir has feedback-free hardware: any listed recurrence is phantom.
    let mut hw = fir_compiled();
    let mut acc = acc_compiled();
    assert!(!acc.deps.recurrences.is_empty());
    hw.deps.recurrences.push(acc.deps.recurrences.remove(0));
    let findings = verify_deps(&hw.deps, &hw.kernel, &hw.ir);
    assert!(has(&findings, "L003-missing-recurrence"), "{findings:?}");
}

#[test]
fn corrupt_deps_wrong_min_ii_fires_l004() {
    let mut hw = fir_compiled();
    hw.deps.min_ii += 3;
    assert!(has(
        &verify_deps(&hw.deps, &hw.kernel, &hw.ir),
        "L004-mii-inconsistent"
    ));
}

#[test]
fn corrupt_deps_wrong_recurrence_mii_fires_l004() {
    let mut hw = acc_compiled();
    assert!(!hw.deps.recurrences.is_empty());
    hw.deps.recurrences[0].mii += 1;
    let findings = verify_deps(&hw.deps, &hw.kernel, &hw.ir);
    assert!(has(&findings, "L004-mii-inconsistent"), "{findings:?}");
}

#[test]
fn corrupt_kernel_duplicate_write_fires_l005() {
    let mut hw = fir_compiled();
    let dup = hw.kernel.outputs[0].writes[0].clone();
    hw.kernel.outputs[0].writes.push(dup);
    // Two writes with identical subscripts collide at distance 0.
    assert!(has(
        &verify_deps(&hw.deps, &hw.kernel, &hw.ir),
        "L005-overlapping-writes"
    ));
}
