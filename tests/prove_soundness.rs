//! Soundness suite for `roccc-prove`, the per-compile translation
//! validator.
//!
//! Two directions, both required:
//!
//! * **Completeness on real kernels** — every Table 1 benchmark must
//!   certify `EQUAL` with no residual `Unknown` obligation, under the
//!   default options and again under `--range-narrow --pipeline-ii auto`,
//!   and the certificate must re-check from the artifact alone.
//! * **Soundness under mutation** — planted netlist mutations (swapped
//!   non-commutative operands, off-by-one constants, dropped balancing
//!   registers) that are observable under differential simulation must be
//!   refuted, never certified `EQUAL`, and refutations must carry a
//!   counterexample that replays through both machines.

use roccc_suite::ipcores::benchmarks;
use roccc_suite::netlist::cells::{CellKind, Netlist};
use roccc_suite::prove::{
    differential_replay, prove, verify_certificate_diags, Certificate, ObStatus, ProveOptions,
    Verdict,
};
use roccc_suite::roccc::{check_certificate, compile, CompileOptions};
use roccc_suite::suifvm::ir::Opcode;
use roccc_suite::suifvm::FunctionIr;
use roccc_suite::testrand::exprgen::gen_kernel_source;
use roccc_suite::testrand::XorShift64;

/// Proves one benchmark under `opts` and asserts a clean EQUAL verdict.
fn assert_proves_equal(name: &str, source: &str, func: &str, opts: &CompileOptions) {
    let mut opts = opts.clone();
    opts.prove = true;
    let hw = compile(source, func, &opts)
        .unwrap_or_else(|e| panic!("{name}: compile with prove failed: {e}"));
    let cert = hw
        .certificate
        .as_ref()
        .unwrap_or_else(|| panic!("{name}: no certificate"));
    assert_eq!(
        cert.verdict,
        Verdict::Equal,
        "{name}: expected EQUAL, got {:?}; obligations: {:#?}",
        cert.verdict,
        cert.obligations
    );
    for o in &cert.obligations {
        assert_ne!(
            o.status,
            ObStatus::Unknown,
            "{name}: residual unknown obligation `{}`: {}",
            o.name,
            o.detail
        );
    }
    // Re-check the certificate from the artifact alone.
    let problems = check_certificate(cert, &hw.ir, &hw.netlist);
    assert!(problems.is_empty(), "{name}: re-check failed: {problems:?}");
    let diags = verify_certificate_diags(cert, &hw.ir, &hw.netlist);
    assert!(diags.is_empty(), "{name}: E-family findings: {diags:?}");
    // The JSON artifact carries the stable schema tag.
    let json = hw.prove_json().expect("certificate renders");
    assert!(json.contains("\"schema\": \"roccc-prove-v1\""));
}

/// All nine Table 1 kernels certify EQUAL under their paper options.
#[test]
fn table1_kernels_prove_equal_default() {
    let rows = benchmarks();
    assert_eq!(rows.len(), 9, "Table 1 has nine kernels");
    for b in &rows {
        assert_proves_equal(b.name, &b.source, b.func, &b.opts);
    }
}

/// The same nine kernels certify EQUAL with range-driven narrowing and
/// an auto modulo schedule — the prover must track both transforms.
#[test]
fn table1_kernels_prove_equal_range_narrow_pipelined() {
    for b in &benchmarks() {
        let mut opts = b.opts.clone();
        opts.range_narrow = true;
        opts.pipeline_ii = Some(0); // auto: search up from MinII
        assert_proves_equal(b.name, &b.source, b.func, &opts);
    }
}

// ---------------------------------------------------------------------------
// Mutation harness
// ---------------------------------------------------------------------------

/// A planted netlist mutation.
enum Mutation {
    /// Swap the operands of a non-commutative two-input op.
    SwapOperands,
    /// Bump a referenced constant by one.
    OffByOneConst,
    /// Bypass an ungated (pipeline-balancing) register.
    DropBalancingReg,
}

impl Mutation {
    fn label(&self) -> &'static str {
        match self {
            Mutation::SwapOperands => "swap-operands",
            Mutation::OffByOneConst => "off-by-one-const",
            Mutation::DropBalancingReg => "drop-balancing-reg",
        }
    }
}

/// Applies `m` to a clone of `nl`. Returns `None` when the netlist has
/// no site for this mutation class.
fn mutate(nl: &Netlist, m: &Mutation) -> Option<Netlist> {
    let mut out = nl.clone();
    match m {
        Mutation::SwapOperands => {
            let idx = out.cells.iter().position(|c| {
                matches!(
                    c.kind,
                    CellKind::Op { op, ref srcs, .. }
                    if matches!(
                        op,
                        Opcode::Sub | Opcode::Div | Opcode::Rem | Opcode::Shl
                            | Opcode::Shr | Opcode::Slt | Opcode::Sle
                    ) && srcs.len() == 2 && srcs[0] != srcs[1]
                )
            })?;
            if let CellKind::Op { ref mut srcs, .. } = out.cells[idx].kind {
                let (a, b) = (srcs[0], srcs[1]);
                srcs[0] = b;
                srcs[1] = a;
            }
            // The stamped range fact described the unmutated computation.
            out.ranges[idx] = None;
        }
        Mutation::OffByOneConst => {
            // Only a *referenced* constant can be observable.
            let referenced: Vec<usize> = out
                .cells
                .iter()
                .enumerate()
                .filter(|(_, c)| matches!(c.kind, CellKind::Const(_)))
                .filter(|(i, _)| {
                    out.cells.iter().any(|c| match &c.kind {
                        CellKind::Op { srcs, .. } => srcs.iter().any(|s| s.0 as usize == *i),
                        CellKind::Reg { d: Some(d), .. } => d.0 as usize == *i,
                        _ => false,
                    })
                })
                .map(|(i, _)| i)
                .collect();
            let idx = *referenced.first()?;
            let ty = out.cells[idx].ty();
            if let CellKind::Const(ref mut v) = out.cells[idx].kind {
                *v = ty.wrap(v.wrapping_add(1));
            }
            out.ranges[idx] = None;
        }
        Mutation::DropBalancingReg => {
            let idx = out.cells.iter().position(|c| {
                matches!(
                    c.kind,
                    CellKind::Reg {
                        d: Some(_),
                        stage_gate: None,
                        ..
                    }
                )
            })?;
            let CellKind::Reg { d: Some(d), .. } = out.cells[idx].kind else {
                unreachable!("position matched an ungated reg");
            };
            let victim = roccc_suite::netlist::cells::CellId(idx as u32);
            for c in &mut out.cells {
                match &mut c.kind {
                    CellKind::Op { srcs, .. } => {
                        for s in srcs.iter_mut() {
                            if *s == victim {
                                *s = d;
                            }
                        }
                    }
                    CellKind::Reg { d: Some(rd), .. } if *rd == victim => *rd = d,
                    _ => {}
                }
            }
            for (_, _, net) in &mut out.outputs {
                if *net == victim {
                    *net = d;
                }
            }
        }
    }
    Some(out)
}

/// Differential observability screen: random per-window inputs, many
/// windows, so both value and timing mutations can surface.
fn observable(f: &FunctionIr, nl: &Netlist, rng: &mut XorShift64) -> bool {
    let windows: Vec<Vec<i64>> = (0..32)
        .map(|_| f.inputs.iter().map(|&(_, ty)| rng.sample_int(ty)).collect())
        .collect();
    differential_replay(f, nl, &windows).is_some()
}

/// The counterexample in `cert` must replay: feeding its windows through
/// both machines must reproduce a divergence.
fn assert_cex_replays(label: &str, cert: &Certificate, f: &FunctionIr, nl: &Netlist) {
    let cex = cert
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: refuted without a counterexample"));
    assert!(
        differential_replay(f, nl, &cex.windows).is_some(),
        "{label}: counterexample does not replay: {cex:?}"
    );
}

/// Planted mutations on generated kernels: every observable mutant is
/// refuted with a replaying counterexample; none certifies EQUAL.
#[test]
fn planted_mutations_are_refuted_with_replaying_counterexamples() {
    let mutations = [
        Mutation::SwapOperands,
        Mutation::OffByOneConst,
        Mutation::DropBalancingReg,
    ];
    let mut refuted_by_class = [0usize; 3];
    let mut screened = 0usize;
    for case in 0..24u64 {
        let mut rng = XorShift64::new(0x7000 + case);
        let src = gen_kernel_source(&mut rng, 3);
        // A tight period forces deep pipelines (more balancing regs).
        let opts = CompileOptions {
            target_period_ns: [1000.0f64, 6.0, 3.0][rng.gen_index(3)],
            ..CompileOptions::default()
        };
        let Ok(hw) = compile(&src, "k", &opts) else {
            continue;
        };
        for (mi, m) in mutations.iter().enumerate() {
            let Some(mutant) = mutate(&hw.netlist, m) else {
                continue;
            };
            if !observable(&hw.ir, &mutant, &mut rng) {
                screened += 1;
                continue;
            }
            let cert = prove(&hw.ir, &mutant, "mutant", &ProveOptions::default());
            assert_ne!(
                cert.verdict,
                Verdict::Equal,
                "case {case} {}: observable mutant certified EQUAL (src {src})",
                m.label()
            );
            if cert.verdict == Verdict::Refuted {
                refuted_by_class[mi] += 1;
                let label = format!("case {case} {}", m.label());
                assert_cex_replays(&label, &cert, &hw.ir, &mutant);
                // The E-family checker must class this as a refutation
                // finding (E001/E002), not a malformed certificate.
                let diags = verify_certificate_diags(&cert, &hw.ir, &mutant);
                assert!(
                    diags
                        .iter()
                        .any(|d| d.code.starts_with("E001") || d.code.starts_with("E002")),
                    "{label}: no E001/E002 finding: {diags:?}"
                );
                assert!(
                    !diags.iter().any(|d| d.code.starts_with("E004")),
                    "{label}: refutation flagged malformed: {diags:?}"
                );
            }
        }
    }
    // The sweep must exercise every class, not vacuously skip.
    for (mi, m) in mutations.iter().enumerate() {
        assert!(
            refuted_by_class[mi] > 0,
            "no observable {} mutant was refuted (screened {screened})",
            m.label()
        );
    }
}
