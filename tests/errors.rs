//! Diagnostics battery: every unsupported construct must fail with a
//! clear, stage-appropriate error — never a panic or silent miscompile.

use roccc_suite::roccc::{compile, CompileError, CompileOptions};

fn err_of(src: &str, func: &str) -> String {
    match compile(src, func, &CompileOptions::default()) {
        Err(CompileError::Front(e)) => e.message,
        Err(CompileError::Backend(m)) => m,
        Err(CompileError::Verify(ds)) => panic!("expected front/backend error, got {ds:?}"),
        Ok(_) => panic!("expected `{func}` to be rejected"),
    }
}

#[test]
fn lexical_and_syntactic_errors() {
    assert!(err_of("int f( {", "f").contains("expected"));
    assert!(err_of("void f() { $ }", "f").contains("$"));
    assert!(err_of("void f() { return 1 }", "f").contains("expected"));
}

#[test]
fn semantic_errors() {
    assert!(err_of("void f() { x = 1; }", "f").contains("undeclared"));
    assert!(err_of("int f(int x) { return f(x); }", "f").contains("recursion"));
    assert!(
        err_of("void f(int* p, int* q) { *q = 1; int a = 2; }", "g").contains("unknown function")
    );
    assert!(err_of("const int t[2] = {1,2}; void f(int i) { t[i] = 0; }", "f").contains("const"));
}

#[test]
fn kernel_shape_errors() {
    // Non-affine index.
    assert!(err_of(
        "void f(int A[8], int B[8]) { int i; for (i=0;i<4;i++) { B[i] = A[i*2]; } }",
        "f"
    )
    .contains("non-affine"));
    // Conditional array store.
    assert!(err_of(
        "void f(int A[8], int B[8]) { int i;
           for (i=0;i<8;i++) { if (A[i] > 0) { B[i] = 1; } } }",
        "f"
    )
    .contains("branches"));
    // Read+write of the same array.
    assert!(err_of(
        "void f(int A[8]) { int i; for (i=0;i<7;i++) { A[i] = A[i+1]; } }",
        "f"
    )
    .contains("both read and written"));
    // Triple-nested loops.
    assert!(err_of(
        "void f(int A[2][2], int B[2][2]) { int i; int j; int k; int s;
           for (i=0;i<2;i++) { for (j=0;j<2;j++) { s = 0;
             for (k=0;k<2;k++) { s = s + 1; } B[i][j] = s; } } }",
        "f"
    )
    .contains("deeper than two"));
    // Unknown trip count.
    assert!(err_of(
        "void f(int n, int A[8], int B[8]) { int i;
           for (i = 0; i < n; i++) { B[i] = A[i]; } }",
        "f"
    )
    .contains("canonical"));
    // While loops are not counted loops.
    assert!(!err_of(
        "void f(int A[8], int B[8]) { int i = 0;
           while (i < 8) { B[i] = A[i]; i = i + 1; } }",
        "f"
    )
    .is_empty());
}

#[test]
fn intrinsic_misuse_errors() {
    assert!(err_of(
        "void f(int a, int* o) { int s; ROCCC_store2next(s); *o = a; }",
        "f"
    )
    .contains("two arguments"));
    assert!(
        err_of("void f(int a, int* o) { *o = ROCCC_bits(a, 2, 5); }", "f").contains("lo <= hi")
    );
    assert!(err_of(
        "void f(int a, int b, int* o) { *o = ROCCC_bits(a, b, 0); }",
        "f"
    )
    .contains("constant"));
    assert!(
        err_of("void f(int a, int* o) { *o = ROCCC_lut(missing, a); }", "f")
            .contains("unknown lookup table")
    );
}

#[test]
fn errors_carry_source_locations() {
    let src = "void f() {\n  int x;\n  y = 1;\n}";
    match compile(src, "f", &CompileOptions::default()) {
        Err(CompileError::Front(e)) => {
            let rendered = e.render(src);
            assert!(rendered.starts_with("3:"), "line number in `{rendered}`");
        }
        other => panic!("expected front-end error, got {other:?}"),
    }
}
