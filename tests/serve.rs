//! Integration tests for the `roccc-serve` compile daemon: concurrent
//! clients must observe byte-identical artifacts to a direct in-process
//! `compile()`, the content-addressed cache must hit/miss exactly as the
//! request mix dictates (single-flight makes the counters deterministic),
//! and the robustness paths — wall-clock timeout, admission-control
//! backpressure, compiler panics — must all answer with clean protocol
//! replies instead of taking the server down.

use roccc_suite::ipcores::benchmarks;
use roccc_suite::roccc::proto::{roundtrip, Request, Response};
use roccc_suite::roccc::CompileOptions;
use roccc_suite::serve::{start, CompileFn, ServerConfig};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

const IO_TIMEOUT: Option<Duration> = Some(Duration::from_secs(120));

fn compile_req(source: &str, function: &str, opts: &CompileOptions, emit: &str) -> Request {
    Request::Compile {
        source: source.to_string(),
        function: function.to_string(),
        opts: opts.clone(),
        emit: emit.to_string(),
    }
}

fn expect_ok(resp: Response) -> (Vec<u8>, bool) {
    match resp {
        Response::Ok { payload, cached } => (payload, cached),
        other => panic!("expected ok, got {other:?}"),
    }
}

/// ≥8 concurrent clients over a shared kernel mix: every reply must be
/// byte-identical to a direct `roccc::compile(...)` + `to_vhdl()`, no
/// request may be dropped or rejected, and the hit/miss counters must
/// come out exact (misses == distinct cache keys, because the winner of
/// a single-flight race publishes to the cache before waiters re-check).
#[test]
fn concurrent_clients_get_byte_identical_artifacts() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 2;

    let kernels: Vec<_> = benchmarks().into_iter().take(4).collect();
    let expected: Vec<Vec<u8>> = kernels
        .iter()
        .map(|b| {
            roccc::compile(&b.source, b.func, &b.opts)
                .expect("table kernel compiles directly")
                .to_vhdl()
                .into_bytes()
        })
        .collect();

    let handle = start(ServerConfig {
        workers: THREADS,
        queue_cap: 64,
        timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let kernels = &kernels;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (k, b) in kernels.iter().enumerate() {
                        let req = compile_req(&b.source, b.func, &b.opts, "vhdl");
                        let resp = roundtrip(addr, &req, IO_TIMEOUT)
                            .unwrap_or_else(|e| panic!("client {t} round {round}: {e}"));
                        let (payload, _cached) = expect_ok(resp);
                        assert_eq!(
                            payload, expected[k],
                            "client {t} round {round}: artifact for `{}` differs from a \
                             direct compile",
                            b.name
                        );
                    }
                }
            });
        }
    });

    let m = handle.metrics();
    let total = (THREADS * ROUNDS * kernels.len()) as u64;
    assert_eq!(m.requests.get(), total, "one request per roundtrip");
    assert_eq!(
        m.cache_misses.get(),
        kernels.len() as u64,
        "single flight: exactly one compile per distinct key"
    );
    assert_eq!(
        m.cache_hits.get() + m.cache_misses.get(),
        total,
        "every compile request either hit or missed"
    );
    assert_eq!(m.busy_rejections.get(), 0, "no client saw backpressure");
    assert_eq!(m.errors.get(), 0);
    assert_eq!(m.timeouts.get(), 0);
    handle.shutdown();
}

/// Different artifact kinds from the same cached entry must also match
/// their direct-compile renderings byte for byte.
#[test]
fn cached_artifacts_match_direct_renderings() {
    let b = &benchmarks()[0];
    let direct = roccc::compile(&b.source, b.func, &b.opts).expect("compiles");

    let handle = start(ServerConfig::default()).expect("server starts");
    let addr = handle.local_addr();

    let (vhdl, cached) = expect_ok(
        roundtrip(
            addr,
            &compile_req(&b.source, b.func, &b.opts, "vhdl"),
            IO_TIMEOUT,
        )
        .unwrap(),
    );
    assert!(!cached, "first request is a cold compile");
    assert_eq!(vhdl, direct.to_vhdl().into_bytes());

    let (dot, cached) = expect_ok(
        roundtrip(
            addr,
            &compile_req(&b.source, b.func, &b.opts, "dot"),
            IO_TIMEOUT,
        )
        .unwrap(),
    );
    assert!(cached, "second request for the same key is served cached");
    assert_eq!(dot, direct.to_dot().into_bytes());

    let (ir, _) = expect_ok(
        roundtrip(
            addr,
            &compile_req(&b.source, b.func, &b.opts, "ir"),
            IO_TIMEOUT,
        )
        .unwrap(),
    );
    assert_eq!(ir, direct.ir.dump().into_bytes());

    let (deps, _) = expect_ok(
        roundtrip(
            addr,
            &compile_req(&b.source, b.func, &b.opts, "deps"),
            IO_TIMEOUT,
        )
        .unwrap(),
    );
    assert_eq!(deps, direct.deps_report().into_bytes());

    let (deps_json, _) = expect_ok(
        roundtrip(
            addr,
            &compile_req(&b.source, b.func, &b.opts, "deps-json"),
            IO_TIMEOUT,
        )
        .unwrap(),
    );
    assert_eq!(deps_json, direct.deps_json().into_bytes());
    handle.shutdown();
}

/// A synthetic "huge" kernel: `n` chained straight-line statements. At
/// a few thousand statements the real compiler takes well over 40 ms in
/// both debug and release builds, which makes a 40 ms server budget a
/// deterministic timeout.
fn huge_kernel(n: usize) -> String {
    let mut s = String::with_capacity(n * 40);
    s.push_str("void huge(int a, int* out) {\n  int x0 = a * 3 + 1;\n");
    for i in 1..n {
        s.push_str(&format!(
            "  int x{i} = x{} * 3 + x{} + {};\n",
            i - 1,
            i.saturating_sub(2),
            i % 97
        ));
    }
    s.push_str(&format!("  *out = x{};\n}}\n", n - 1));
    s
}

/// A compile that blows the wall-clock budget gets a clean `timeout`
/// reply (not a hang, not a dead worker) and the server keeps serving.
#[test]
fn huge_kernel_times_out_cleanly() {
    let handle = start(ServerConfig {
        timeout: Duration::from_millis(40),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr();

    let source = huge_kernel(4000);
    let resp = roundtrip(
        addr,
        &compile_req(&source, "huge", &CompileOptions::default(), "vhdl"),
        IO_TIMEOUT,
    )
    .expect("roundtrip succeeds at the protocol level");
    match resp {
        Response::Timeout(msg) => {
            assert!(msg.contains("wall-clock"), "explains the budget: {msg}")
        }
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(handle.metrics().timeouts.get() >= 1);

    // The worker survived the abandoned compile.
    let (pong, _) = expect_ok(roundtrip(addr, &Request::Ping, IO_TIMEOUT).unwrap());
    assert_eq!(pong, b"pong\n");
    handle.shutdown();
}

/// A gate the injected compiler blocks on until the test opens it.
#[derive(Default)]
struct Gate {
    state: Mutex<(usize, bool)>, // (compiles entered, open?)
    cv: Condvar,
}

impl Gate {
    fn enter_and_wait(&self) {
        let mut st = self.state.lock().unwrap();
        st.0 += 1;
        self.cv.notify_all();
        while !st.1 {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn wait_for_entries(&self, n: usize) {
        let mut st = self.state.lock().unwrap();
        while st.0 < n {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn open(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// With one worker and a one-slot queue, a third concurrent request is
/// answered `busy` by admission control instead of queueing unboundedly;
/// the admitted request still completes once the compiler unblocks.
#[test]
fn full_admission_queue_answers_busy() {
    let gate = Arc::new(Gate::default());
    let compiler: CompileFn = {
        let gate = Arc::clone(&gate);
        Arc::new(move |source, function, opts| {
            gate.enter_and_wait();
            roccc::compile_timed(source, function, opts)
        })
    };

    let handle = start(ServerConfig {
        workers: 1,
        queue_cap: 1,
        timeout: Duration::from_secs(120),
        compiler: Some(compiler),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr();

    // Admitted request: the single worker picks it up and its compile
    // blocks on the gate.
    let b = &benchmarks()[0];
    let admitted = {
        let req = compile_req(&b.source, b.func, &b.opts, "vhdl");
        std::thread::spawn(move || roundtrip(addr, &req, IO_TIMEOUT))
    };
    gate.wait_for_entries(1);

    // With the worker pinned, probes either fill the one queue slot (the
    // read then times out client-side and we drop the connection, which
    // keeps occupying the slot) or bounce off admission control with
    // `busy`. Within two probes the second outcome is guaranteed.
    let probe_timeout = Some(Duration::from_millis(300));
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let rejected = loop {
        match roundtrip(addr, &Request::Ping, probe_timeout) {
            Ok(Response::Busy) => break true,
            Ok(other) => panic!("worker is pinned, yet a probe got {other:?}"),
            Err(_) if std::time::Instant::now() > deadline => break false,
            Err(_queued_probe_timed_out) => {}
        }
    };
    assert!(rejected, "no probe ever saw `busy` with a full queue");
    assert!(handle.metrics().busy_rejections.get() >= 1);

    gate.open();
    let resp = admitted
        .join()
        .expect("client thread")
        .expect("admitted roundtrip");
    let (payload, _) = expect_ok(resp);
    assert!(
        !payload.is_empty(),
        "admitted request completed after the gate opened"
    );
    handle.shutdown();
}

/// A panicking compile is isolated by `catch_unwind`: the client gets an
/// error reply naming the panic, the panic counter increments, and the
/// server goes on serving other requests from the same worker pool.
#[test]
fn compiler_panic_is_isolated() {
    let compiler: CompileFn = Arc::new(|source, function, opts| {
        if function == "boom" {
            panic!("injected test panic");
        }
        roccc::compile_timed(source, function, opts)
    });

    let handle = start(ServerConfig {
        workers: 2,
        compiler: Some(compiler),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr();

    let resp = roundtrip(
        addr,
        &compile_req("void boom() {}", "boom", &CompileOptions::default(), "vhdl"),
        IO_TIMEOUT,
    )
    .expect("protocol roundtrip");
    match resp {
        Response::Err(msg) => {
            assert!(msg.contains("panicked"), "reply names the panic: {msg}");
            assert!(
                msg.contains("injected test panic"),
                "payload forwarded: {msg}"
            );
        }
        other => panic!("expected err, got {other:?}"),
    }
    assert_eq!(handle.metrics().panics.get(), 1);

    // The pool survived; a real kernel still compiles.
    let b = &benchmarks()[0];
    let (payload, _) = expect_ok(
        roundtrip(
            addr,
            &compile_req(&b.source, b.func, &b.opts, "vhdl"),
            IO_TIMEOUT,
        )
        .unwrap(),
    );
    assert!(!payload.is_empty());
    handle.shutdown();
}

/// The `pipeline` protocol verb: artifacts match a direct in-process
/// `compile_pipeline` rendering byte for byte, a repeated request hits
/// the dedicated pipeline cache, and bad emits / bad specs are rejected
/// without compiling.
#[test]
fn pipeline_verb_compiles_and_caches() {
    let source = "void scale(int A[16], int B[16]) {\n\
                  \x20 for (int i = 0; i < 16; i = i + 1) { B[i] = A[i] * 3; }\n\
                  }\n\
                  void offset(int B[16], int C[16]) {\n\
                  \x20 for (int i = 0; i < 16; i = i + 1) { C[i] = B[i] + 7; }\n\
                  }\n";
    let spec_text = "name duo\npipeline scale | offset\n";
    let opts = CompileOptions::default();

    let spec = roccc_suite::stream::parse_spec(spec_text).expect("spec parses");
    let direct = roccc_suite::stream::compile_pipeline(source, &spec, &opts)
        .expect("pipeline compiles directly");
    let direct_stats = roccc_suite::stream::stats_report(&direct);
    let direct_vhdl = roccc_suite::stream::generate_pipeline_vhdl(&direct);

    let handle = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr();

    let req = |emit: &str| Request::Pipeline {
        source: source.to_string(),
        pipeline: spec_text.to_string(),
        opts: opts.clone(),
        emit: emit.to_string(),
    };

    let (stats, cached) = expect_ok(roundtrip(addr, &req("stats"), IO_TIMEOUT).unwrap());
    assert!(!cached, "first pipeline request is a cold compile");
    assert_eq!(stats, direct_stats.clone().into_bytes());

    // A different emit of the same topology is served from the pipeline
    // cache: both artifacts were rendered when the compile landed.
    let (vhdl, cached) = expect_ok(roundtrip(addr, &req("vhdl"), IO_TIMEOUT).unwrap());
    assert!(cached, "same topology, different emit: cache hit");
    assert_eq!(vhdl, direct_vhdl.into_bytes());

    let m = handle.metrics();
    assert_eq!(m.pipeline_requests.get(), 2);
    assert_eq!(m.pipeline_cache_hits.get(), 1);

    // A FIFO override changes the topology hash, so it must recompile
    // rather than alias the cached entry.
    let resp = roundtrip(
        addr,
        &Request::Pipeline {
            source: source.to_string(),
            pipeline: format!("{spec_text}fifo offset.B depth=64\n"),
            opts: opts.clone(),
            emit: "stats".to_string(),
        },
        IO_TIMEOUT,
    )
    .unwrap();
    let (overridden, cached) = expect_ok(resp);
    assert!(!cached, "a FIFO override is a distinct cache key");
    assert!(
        String::from_utf8(overridden).unwrap().contains("depth 64"),
        "override visible in the stats artifact"
    );

    // Bad emit and unparseable spec are rejected without compiling.
    match roundtrip(addr, &req("dot"), IO_TIMEOUT).unwrap() {
        Response::Err(msg) => assert!(msg.contains("stats|vhdl"), "{msg}"),
        other => panic!("expected err, got {other:?}"),
    }
    let bad_spec = Request::Pipeline {
        source: source.to_string(),
        pipeline: "stage ghost unroll=2\n".to_string(),
        opts: opts.clone(),
        emit: "stats".to_string(),
    };
    match roundtrip(addr, &bad_spec, IO_TIMEOUT).unwrap() {
        Response::Err(msg) => assert!(msg.contains("pipeline spec"), "{msg}"),
        other => panic!("expected err, got {other:?}"),
    }
    handle.shutdown();
}

/// The `explore` protocol verb: a sweep returns the stable JSON artifact
/// with a non-empty frontier, the explore counters account every
/// candidate, and a repeat of the same sweep is served from the daemon's
/// process-wide DSE memo (zero new compiles).
#[test]
fn explore_verb_sweeps_and_memoizes() {
    let handle = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr();

    let fir = roccc_suite::ipcores::kernels::fir_source();
    let req = Request::Explore {
        source: fir.clone(),
        function: "fir".to_string(),
        opts: CompileOptions::default(),
        unroll_factors: vec![1, 2],
        strip_widths: vec![0, 2],
        scalar_opt_both: false,
        budget_slices: None,
        beam: None,
        emit: "json".to_string(),
    };

    let (payload, cached) = expect_ok(roundtrip(addr, &req, IO_TIMEOUT).expect("roundtrip"));
    assert!(!cached);
    let text = String::from_utf8(payload).expect("json artifact is utf-8");
    assert!(text.contains("\"schema\": \"roccc-explore-v1\""));
    assert!(
        !text.contains("\"frontier\": [\n  ]"),
        "frontier is non-empty:\n{text}"
    );

    let m = handle.metrics();
    assert_eq!(m.explore_requests.get(), 1);
    assert_eq!(m.explore_candidates.get(), 4, "1,2 x 0,2 = 4 candidates");
    assert_eq!(m.explore_memo_hits.get(), 0, "cold memo on the first sweep");

    // The same sweep again: statuses flip to `memo-hit` but the frontier
    // (and every metric) is unchanged, and nothing recompiles.
    let (payload2, _) = expect_ok(roundtrip(addr, &req, IO_TIMEOUT).expect("roundtrip"));
    let text2 = String::from_utf8(payload2).unwrap();
    let frontier_of = |t: &str| {
        t[t.find("\"frontier\"")
            .expect("artifact has a frontier section")..]
            .to_string()
    };
    assert_eq!(
        frontier_of(&text),
        frontier_of(&text2),
        "memo hits change no metrics"
    );
    assert!(text2.contains("\"status\":\"memo-hit\""), "{text2}");
    assert!(
        !text2.contains("\"status\":\"scored\""),
        "nothing recompiled:\n{text2}"
    );
    assert_eq!(m.explore_candidates.get(), 8);
    assert_eq!(
        m.explore_memo_hits.get() + m.explore_skipped.get() / 2 + m.explore_pruned.get() / 2,
        4,
        "the repeat sweep was served entirely from the memo"
    );

    // A bogus emit is rejected without running the sweep.
    let bad = Request::Explore {
        emit: "vhdl".to_string(),
        source: fir,
        function: "fir".to_string(),
        opts: CompileOptions::default(),
        unroll_factors: vec![1],
        strip_widths: vec![0],
        scalar_opt_both: false,
        budget_slices: None,
        beam: None,
    };
    match roundtrip(addr, &bad, IO_TIMEOUT).expect("roundtrip") {
        Response::Err(msg) => assert!(msg.contains("json|table"), "{msg}"),
        other => panic!("expected err, got {other:?}"),
    }
    assert_eq!(
        m.explore_requests.get(),
        3,
        "rejected requests still counted"
    );
    handle.shutdown();
}
