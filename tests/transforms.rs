//! Semantic-preservation battery for the loop-level transformations, run
//! through the *hardware*: every transform option must produce circuits
//! that still match the untransformed golden model.

use roccc_suite::cparse::{frontend, Interpreter};
use roccc_suite::roccc::{compile, CompileOptions, UnrollStrategy};
use std::collections::HashMap;

const MAP_KERNEL: &str = "void scale(int16 A[32], int16 B[32]) { int i;
  for (i = 0; i < 32; i++) { B[i] = A[i] * 5 - 7; } }";

fn golden_map(src: &str, func: &str, a: &[i64], out: &str, out_len: usize) -> Vec<i64> {
    let prog = frontend(src).unwrap();
    let mut arrays = HashMap::new();
    arrays.insert("A".to_string(), a.to_vec());
    arrays.insert(out.to_string(), vec![0; out_len]);
    Interpreter::new(&prog)
        .call(func, &[], &mut arrays)
        .unwrap();
    arrays[out].clone()
}

#[test]
fn partial_unroll_factors_preserve_hardware_semantics() {
    let a: Vec<i64> = (0..32).map(|x| x * 3 - 40).collect();
    let expect = golden_map(MAP_KERNEL, "scale", &a, "B", 32);
    for factor in [2, 4, 8] {
        let hw = compile(
            MAP_KERNEL,
            "scale",
            &CompileOptions {
                unroll: UnrollStrategy::Partial(factor),
                ..CompileOptions::default()
            },
        )
        .unwrap();
        // Unrolling widens the window: `factor` outputs per iteration.
        assert_eq!(
            hw.datapath.throughput_per_cycle(),
            factor as usize,
            "factor {factor}"
        );
        let mut arrays = HashMap::new();
        arrays.insert("A".to_string(), a.clone());
        let run = hw.run(&arrays, &HashMap::new()).unwrap();
        assert_eq!(run.arrays["B"], expect, "factor {factor}");
    }
}

#[test]
fn unroll_reduces_iteration_count() {
    let hw1 = compile(MAP_KERNEL, "scale", &CompileOptions::default()).unwrap();
    let hw4 = compile(
        MAP_KERNEL,
        "scale",
        &CompileOptions {
            unroll: UnrollStrategy::Partial(4),
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert_eq!(hw1.kernel.total_iterations(), 32);
    assert_eq!(hw4.kernel.total_iterations(), 8);
}

#[test]
fn fusion_merges_compatible_loops_end_to_end() {
    let src = "void two(int16 A[16], int16 B[16], int16 C[16], int16 D[16]) {
      int i; int j;
      for (i = 0; i < 16; i++) { B[i] = A[i] + 1; }
      for (j = 0; j < 16; j++) { D[j] = C[j] * 2; } }";
    let hw = compile(
        src,
        "two",
        &CompileOptions {
            fuse: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    // One fused loop: both outputs per iteration.
    assert_eq!(hw.kernel.outputs.len(), 2);
    assert_eq!(hw.kernel.dims.len(), 1);

    let a: Vec<i64> = (0..16).collect();
    let c: Vec<i64> = (0..16).map(|x| 50 - x).collect();
    let mut arrays = HashMap::new();
    arrays.insert("A".to_string(), a.clone());
    arrays.insert("C".to_string(), c.clone());
    let run = hw.run(&arrays, &HashMap::new()).unwrap();
    let expect_b: Vec<i64> = a.iter().map(|x| x + 1).collect();
    let expect_d: Vec<i64> = c.iter().map(|x| x * 2).collect();
    assert_eq!(run.arrays["B"], expect_b);
    assert_eq!(run.arrays["D"], expect_d);
}

#[test]
fn optimization_levels_agree() {
    // With and without the SSA-level optimizer, hardware results match.
    let src = "void k(int a, int b, int* o) {
      int t = a * 8 + b * 8;
      int u = (a + b) * 8;
      *o = t - u + (a & 0) + (b | 0); }";
    let prog = frontend(src).unwrap();
    for optimize in [true, false] {
        let hw = compile(
            src,
            "k",
            &CompileOptions {
                optimize,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let mut sim = roccc_suite::netlist::NetlistSim::new(&hw.netlist);
        let outs = sim.run_stream(&[vec![13, -7]]).unwrap();
        let mut interp = Interpreter::new(&prog);
        let golden = interp.call("k", &[13, -7], &mut HashMap::new()).unwrap();
        assert_eq!(outs[0][0], golden.outputs["o"], "optimize={optimize}");
    }
}

#[test]
fn optimizer_shrinks_the_datapath() {
    let src = "void k(int a, int b, int* o) { *o = (a + b) * (a + b) + (a + b); }";
    let on = compile(src, "k", &CompileOptions::default()).unwrap();
    let off = compile(
        src,
        "k",
        &CompileOptions {
            optimize: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert!(
        on.datapath.ops.len() <= off.datapath.ops.len(),
        "optimized {} vs unoptimized {}",
        on.datapath.ops.len(),
        off.datapath.ops.len()
    );
}

#[test]
fn compound_assignment_accumulator_runs() {
    let src = "void acc2(int A[8], int* out) { int s = 0; int i;
      for (i = 0; i < 8; i++) { s += A[i] * 3; } *out = s; }";
    let hw = compile(src, "acc2", &CompileOptions::default()).unwrap();
    assert_eq!(hw.kernel.feedback[0].name, "s");
    let a: Vec<i64> = (0..8).map(|x| 10 - x).collect();
    let mut arrays = HashMap::new();
    arrays.insert("A".to_string(), a.clone());
    let run = hw.run(&arrays, &HashMap::new()).unwrap();
    assert_eq!(run.scalars["s"], a.iter().map(|x| x * 3).sum::<i64>());
}

#[test]
fn one_bit_feedback_toggle_runs() {
    // A 1-bit loop-carried toggle: the narrowest possible feedback latch.
    let src = "void toggle(uint1 X[8], uint1 Y[8]) {
      uint1 t = 0; int i;
      for (i = 0; i < 8; i++) { Y[i] = t ^ X[i]; t = t ^ 1; } }";
    let hw = compile(src, "toggle", &CompileOptions::default()).unwrap();
    assert_eq!(hw.kernel.feedback[0].ty.bits, 1);
    let x: Vec<i64> = vec![1, 0, 1, 1, 0, 0, 1, 0];
    let mut arrays = HashMap::new();
    arrays.insert("X".to_string(), x.clone());
    let run = hw.run(&arrays, &HashMap::new()).unwrap();
    let expect: Vec<i64> = x
        .iter()
        .enumerate()
        .map(|(i, v)| (i as i64 % 2) ^ v)
        .collect();
    assert_eq!(run.arrays["Y"], expect);
}

#[test]
fn strided_scan_kernel_runs() {
    // Decimating filter: window 3, stride 2 (smart buffer cleans dead data).
    let src = "void dec(int16 A[33], int16 B[16]) { int i;
      for (i = 0; i < 16; i = i + 1) {
        B[i] = A[i+i] ; } }";
    // `A[i+i]` is non-affine; the supported strided form keeps the loop
    // stride in the header instead.
    assert!(compile(src, "dec", &CompileOptions::default()).is_err());

    let src2 = "void dec(int16 A[33], int16 B[32]) { int i;
      for (i = 0; i < 31; i = i + 2) {
        B[i] = A[i] + A[i+1] + A[i+2]; } }";
    let hw = compile(src2, "dec", &CompileOptions::default()).unwrap();
    let a: Vec<i64> = (0..33).collect();
    let mut arrays = HashMap::new();
    arrays.insert("A".to_string(), a.clone());
    let run = hw.run(&arrays, &HashMap::new()).unwrap();
    let prog = frontend(src2).unwrap();
    let mut golden = HashMap::new();
    golden.insert("A".to_string(), a);
    golden.insert("B".to_string(), vec![0; 32]);
    Interpreter::new(&prog)
        .call("dec", &[], &mut golden)
        .unwrap();
    assert_eq!(run.arrays["B"], golden["B"]);
}
