//! Differential tests for the lane-batched SoA simulation engine: for
//! every Table 1 paper kernel and a population of randomly generated
//! expression kernels, `SimPlan::run_batch_lanes` at several lane counts
//! (including counts that do not divide the iteration total, so the
//! padded edge tile is exercised) must retire exactly the rows a
//! single-lane [`CompiledSim`] and the per-cycle reference interpreter
//! produce, bit for bit and in the original iteration order.

use roccc_suite::ipcores::{benchmarks, table::compile_benchmark};
use roccc_suite::netlist::{BatchedSim, CompiledSim, Netlist, NetlistSim, SimPlan};
use roccc_suite::roccc::{compile, CompileOptions};
use roccc_suite::testrand::exprgen::gen_kernel_source;
use roccc_suite::testrand::XorShift64;

/// Lane counts under test: a divisor-friendly power of two, the bench
/// default, and deliberately awkward counts (prime, larger than the
/// iteration total) that force partial edge tiles.
const LANE_COUNTS: [usize; 5] = [1, 7, 8, 64, 200];

/// Iterations per kernel — odd on purpose so no lane count above divides
/// it evenly.
const ITERS: usize = 123;

/// Runs `ITERS` in-range iterations through the reference interpreter,
/// the single-lane compiled engine, and the batched engine at every lane
/// count in [`LANE_COUNTS`], asserting all agree row for row.
fn drive_batched_differential(nl: &Netlist, name: &str, seed: u64) {
    let plan = SimPlan::compile(nl).expect("plan compiles");
    let mut rng = XorShift64::new(seed);
    let iters: Vec<Vec<i64>> = (0..ITERS)
        .map(|_| nl.inputs.iter().map(|(_, t)| rng.sample_int(*t)).collect())
        .collect();
    let flat: Vec<i64> = iters.iter().flatten().copied().collect();

    let reference = match NetlistSim::new(nl).run_stream(&iters) {
        Ok(rows) => rows,
        Err(e_ref) => {
            // A faulting stream (e.g. a generated kernel dividing by
            // zero) must fault in every engine; row-level agreement is
            // then moot.
            let e_comp = CompiledSim::new(&plan)
                .run_stream(&iters)
                .expect_err("reference faulted but compiled engine did not");
            assert_eq!(format!("{e_ref:?}"), format!("{e_comp:?}"), "{name}");
            for lanes in LANE_COUNTS {
                let mut out = Vec::new();
                plan.run_batch_lanes(&flat, ITERS, lanes, &mut out)
                    .expect_err("reference faulted but batched engine did not");
            }
            return;
        }
    };
    let expect: Vec<i64> = reference.iter().flatten().copied().collect();

    let compiled = CompiledSim::new(&plan)
        .run_stream(&iters)
        .expect("compiled stream");
    assert_eq!(reference, compiled, "{name}: compiled engine diverged");

    for lanes in LANE_COUNTS {
        let mut out = Vec::new();
        let rows = plan
            .run_batch_lanes(&flat, ITERS, lanes, &mut out)
            .expect("batched run");
        assert_eq!(rows, ITERS, "{name}: lanes={lanes} retire count");
        assert_eq!(out, expect, "{name}: lanes={lanes} outputs diverged");
    }
}

/// Every Table 1 paper kernel, all lane counts.
#[test]
fn paper_kernels_batched_differential() {
    for (k, b) in benchmarks().iter().enumerate() {
        let hw = compile_benchmark(b).expect("benchmark compiles");
        drive_batched_differential(&hw.netlist, b.name, 0xb000 + k as u64);
    }
}

/// Randomly generated straight-line expression kernels at several clock
/// targets (deeper pipelines mean more passes of pure pipeline drain,
/// where every lane is a bubble).
#[test]
fn generated_expression_kernels_batched_differential() {
    for case in 0..12u64 {
        let mut rng = XorShift64::new(0xc000 + case);
        let src = gen_kernel_source(&mut rng, 3);
        let period = [1000.0f64, 6.0, 3.0][rng.gen_index(3)];
        let hw = compile(
            &src,
            "k",
            &CompileOptions {
                target_period_ns: period,
                ..CompileOptions::default()
            },
        )
        .expect("generated kernel compiles");
        drive_batched_differential(&hw.netlist, &format!("expr_{case}"), 0xd000 + case);
    }
}

/// Stepping a `BatchedSim` by hand with a lane count wider than the
/// remaining work: invalid lanes may carry garbage arguments and must
/// never contaminate valid lanes' outputs.
#[test]
fn bubble_lanes_carry_garbage_without_contamination() {
    let src = "void fir_dp(int16 A0, int16 A1, int16 A2, int16 A3, int16 A4, int16* T) {
       *T = 3*A0 + 5*A1 + 7*A2 + 9*A3 - A4; }";
    let hw = compile(src, "fir_dp", &CompileOptions::default()).expect("compiles");
    let plan = SimPlan::compile(&hw.netlist).expect("plan");
    let n_in = plan.num_inputs();
    let lanes = 8usize;

    let mut rng = XorShift64::new(0xe000);
    let valid_args: Vec<i64> = hw
        .netlist
        .inputs
        .iter()
        .map(|(_, t)| rng.sample_int(*t))
        .collect();
    let mut expect_sim = CompiledSim::new(&plan);
    let mut expect_out = vec![0i64; plan.num_outputs()];
    for _ in 0..plan.latency() {
        expect_sim.step(&valid_args, true).expect("step");
    }
    assert!(expect_sim.out_valid());
    expect_sim.read_outputs(&mut expect_out);

    // Lane 3 is the only valid lane; every other lane gets raw 64-bit
    // garbage (zero-prone, far out of range).
    let mut sim = BatchedSim::new(&plan, lanes);
    let mut valid = vec![false; lanes];
    valid[3] = true;
    let mut rows = vec![0i64; lanes * n_in];
    for _ in 0..plan.latency() {
        for (l, row) in rows.chunks_mut(n_in).enumerate() {
            for v in row.iter_mut() {
                *v = rng.next_u64() as i64;
            }
            if l == 3 {
                row.copy_from_slice(&valid_args);
            }
        }
        sim.step_lanes(&rows, &valid).expect("lane step");
    }
    assert!(sim.lane_out_valid(3), "valid lane must retire");
    for l in 0..lanes {
        if l != 3 {
            assert!(!sim.lane_out_valid(l), "bubble lane {l} must not retire");
        }
    }
    for (k, &e) in expect_out.iter().enumerate() {
        assert_eq!(sim.output_lane(k, 3), e, "output {k} contaminated");
    }
}
