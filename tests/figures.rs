//! Regression tests pinning the paper's worked figures: the artifacts our
//! pipeline produces for the Figure 3/4/5/6/7 examples must keep their
//! published structure.

use roccc_suite::cparse::parse;
use roccc_suite::datapath::NodeKind;
use roccc_suite::hlir::extract_kernel;
use roccc_suite::roccc::{compile, CompileOptions};
use roccc_suite::vhdl::lint::lint;

const FIG3A: &str = "void fir(int A[21], int C[17]) { int i;
  for (i = 0; i < 17; i = i + 1) {
    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4]; } }";

const FIG4A: &str = "void acc(int A[32], int* out) {
  int sum = 0; int i;
  for (i = 0; i < 32; i++) { sum = sum + A[i]; }
  *out = sum; }";

const FIG5: &str = "void if_else(int x1, int x2, int* x3, int* x4) {
  int a; int c;
  c = x1 - x2;
  if (c < x2) { a = x1 * x1; } else { a = x1 * x2 + 3; }
  c = c - a;
  *x3 = c; *x4 = a;
  return; }";

#[test]
fn figure3_scalar_replacement_shape() {
    // (a) → (b): loads isolated at the top of the loop, compute in the
    // middle, the store at the bottom; (c): the exported function takes
    // the five window scalars and one out-pointer.
    let prog = parse(FIG3A).unwrap();
    let k = extract_kernel(&prog, "fir").unwrap();
    let rewritten = k.rewritten.to_c();
    assert!(rewritten.contains("A0 = A[i]"), "{rewritten}");
    assert!(rewritten.contains("A4 = A[(i + 4)]"), "{rewritten}");
    assert!(rewritten.contains("C[i] = Tmp0"), "{rewritten}");

    let dp = k.dp_func.to_c();
    assert!(
        dp.starts_with(
            "void fir_dp(int32 A0, int32 A1, int32 A2, int32 A3, int32 A4, int32* Tmp0)"
        ),
        "{dp}"
    );
    assert!(dp.contains("*Tmp0 ="), "{dp}");
}

#[test]
fn figure4_feedback_macros() {
    let prog = parse(FIG4A).unwrap();
    let k = extract_kernel(&prog, "acc").unwrap();
    let dp = k.dp_func.to_c();
    assert!(dp.contains("ROCCC_load_prev(sum)"), "{dp}");
    assert!(dp.contains("ROCCC_store2next(sum, sum_cur)"), "{dp}");
    assert_eq!(k.feedback.len(), 1);
    assert_eq!(k.feedback[0].init, 0);
}

#[test]
fn figure6_node_structure() {
    let hw = compile(FIG5, "if_else", &CompileOptions::default()).unwrap();
    let kinds: Vec<NodeKind> = hw.datapath.nodes.iter().map(|n| n.kind).collect();
    // Soft nodes 1–4 plus the pipe (node 6) and mux (node 7) hard nodes.
    assert_eq!(kinds.iter().filter(|k| **k == NodeKind::Soft).count(), 4);
    assert_eq!(kinds.iter().filter(|k| **k == NodeKind::Mux).count(), 1);
    assert_eq!(kinds.iter().filter(|k| **k == NodeKind::Pipe).count(), 1);

    // The DOT rendering groups by node for the figure.
    let dot = hw.to_dot();
    assert!(dot.contains("cluster_"));
    assert!(dot.contains("mux"));
    assert!(dot.contains("pipe"));
}

#[test]
fn figure7_accumulator_feedback_latch() {
    let hw = compile(FIG4A, "acc", &CompileOptions::default()).unwrap();
    // One feedback latch, gated by the valid bit at the LPR stage.
    assert_eq!(hw.netlist.feedback_regs.len(), 1);
    // The LPR and the SNX source share a stage (verified structurally).
    hw.datapath.verify().unwrap();
}

#[test]
fn generated_vhdl_is_lint_clean_for_all_kernels() {
    for b in roccc_suite::ipcores::benchmarks() {
        let hw = roccc_suite::ipcores::table::compile_benchmark(&b).unwrap();
        let vhdl = hw.to_vhdl();
        let errors = lint(&vhdl);
        assert!(
            errors.is_empty(),
            "{}: {:?}\n(first 40 lines)\n{}",
            b.name,
            errors,
            vhdl.lines().take(40).collect::<Vec<_>>().join("\n")
        );
        // One component per node, plus top/buffers/controller/ROMs.
        let entity_count = vhdl.matches("\nentity ").count() + 1;
        assert!(
            entity_count > hw.datapath.nodes.len(),
            "{}: only {entity_count} entities for {} nodes",
            b.name,
            hw.datapath.nodes.len()
        );
    }
}

#[test]
fn figure2_execution_model_counts_memory_traffic() {
    // BRAM in → smart buffer → data path → BRAM out, with each input word
    // fetched once.
    let hw = compile(FIG3A, "fir", &CompileOptions::default()).unwrap();
    let mut arrays = std::collections::HashMap::new();
    arrays.insert("A".to_string(), (0..21).collect::<Vec<i64>>());
    let run = hw.run(&arrays, &Default::default()).unwrap();
    assert_eq!(run.mem_reads, 21, "each input element fetched exactly once");
    assert_eq!(run.mem_writes, 17);
    assert_eq!(run.fired, 17);
}
