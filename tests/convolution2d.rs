//! 2-D image convolution end-to-end: exercises the stride-1 2-D smart
//! buffer (line buffer), the two-dimensional address generators and the
//! row-major output path — the image-processing workload class the
//! paper's introduction motivates ("image and signal processing").

use roccc_suite::cparse::{frontend, Interpreter};
use roccc_suite::roccc::{compile, CompileOptions};
use std::collections::HashMap;

const SOBEL_ISH: &str = "void edge(int16 X[12][12], int16 Y[12][12]) {
  int i; int j;
  for (i = 0; i < 10; i++) {
    for (j = 0; j < 10; j++) {
      Y[i][j] = X[i][j] + 2*X[i][j+1] + X[i][j+2]
              - X[i+2][j] - 2*X[i+2][j+1] - X[i+2][j+2];
    }
  }
}";

const BOX3: &str = "void blur(int16 X[10][10], int16 Y[10][10]) {
  int i; int j;
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      Y[i][j] = (X[i][j] + X[i][j+1] + X[i][j+2]
               + X[i+1][j] + X[i+1][j+1] + X[i+1][j+2]
               + X[i+2][j] + X[i+2][j+1] + X[i+2][j+2]) >> 3;
    }
  }
}";

fn check(src: &str, func: &str, width: usize, seed: i64) {
    let hw = compile(src, func, &CompileOptions::default()).unwrap();
    assert_eq!(hw.kernel.dims.len(), 2, "two loop dimensions");
    assert_eq!(hw.kernel.windows[0].extent(), vec![3, 3]);

    let img: Vec<i64> = (0..(width * width) as i64)
        .map(|x| (x * seed) % 97 - 31)
        .collect();
    let mut arrays = HashMap::new();
    arrays.insert("X".to_string(), img.clone());
    let run = hw.run(&arrays, &HashMap::new()).unwrap();

    let prog = frontend(src).unwrap();
    let mut golden = HashMap::new();
    golden.insert("X".to_string(), img);
    golden.insert("Y".to_string(), vec![0i64; width * width]);
    Interpreter::new(&prog)
        .call(func, &[], &mut golden)
        .unwrap();
    assert_eq!(run.arrays["Y"], golden["Y"]);

    // Each touched input element is fetched exactly once (line buffer).
    assert!(run.mem_reads <= (width * width) as u64);
}

#[test]
fn vertical_edge_filter_matches_golden() {
    check(SOBEL_ISH, "edge", 12, 13);
}

#[test]
fn box_blur_matches_golden() {
    check(BOX3, "blur", 10, 7);
}

#[test]
fn sparse_window_only_fetches_needed_rows() {
    // A window that skips the middle row: the extent is still 3 rows but
    // only 6 of the 9 positions are read — the data path gets 6 ports.
    let src = "void vgrad(int16 X[9][9], int16 Y[9][9]) {
      int i; int j;
      for (i = 0; i < 7; i++) {
        for (j = 0; j < 7; j++) {
          Y[i][j] = X[i][j] + X[i][j+2] - X[i+2][j] - X[i+2][j+2];
        }
      }
    }";
    let hw = compile(src, "vgrad", &CompileOptions::default()).unwrap();
    assert_eq!(hw.kernel.windows[0].reads.len(), 4, "sparse window ports");
    assert_eq!(hw.kernel.windows[0].extent(), vec![3, 3]);
    check(src, "vgrad", 9, 5);
}
