//! Differential tests for the `roccc-stream` process-network layer:
//! whole-pipeline co-simulation must be bit-exact against manually
//! chained single-kernel system simulations, across lane counts, under
//! backpressure, and through fault propagation — plus negative fixtures
//! for every `P0xx` composition diagnostic.

use roccc_suite::ipcores::kernels;
use roccc_suite::roccc::{CompileOptions, VerifyLevel};
use roccc_suite::stream::{
    chain_golden, compile_pipeline, parse_spec, pipeline_cache_key, run_cosim, StreamError,
};
use roccc_suite::testrand::XorShift64;
use std::collections::HashMap;

const TWO_STAGE: &str = "void scale(int16 A[32], int16 B[32]) { int i;
    for (i = 0; i < 32; i = i + 1) { B[i] = A[i] * 3; } }
  void offset(int16 B[32], int16 C[32]) { int i;
    for (i = 0; i < 32; i = i + 1) { C[i] = B[i] + 100; } }";

/// Builds `n` pseudo-random input lanes for a single external array.
fn lanes_for(array: &str, len: usize, n: usize, seed: u64) -> Vec<HashMap<String, Vec<i64>>> {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|_| {
            let data: Vec<i64> = (0..len).map(|_| rng.gen_range(-100, 100)).collect();
            HashMap::from([(array.to_string(), data)])
        })
        .collect()
}

/// Runs cosim and golden over the same lanes and compares every external
/// output array of the last stage, for every lane.
fn assert_bit_exact(
    source: &str,
    spec_text: &str,
    lane_inputs: &[HashMap<String, Vec<i64>>],
    check_key: &str,
) {
    let spec = parse_spec(spec_text).unwrap();
    let cp = compile_pipeline(source, &spec, &CompileOptions::default()).unwrap();
    let scalars = HashMap::new();
    let run = run_cosim(&cp, lane_inputs, &scalars).unwrap();
    let golden = chain_golden(&cp, lane_inputs, &scalars).unwrap();
    assert_eq!(run.lane_arrays.len(), lane_inputs.len());
    for (l, (got, want)) in run.lane_arrays.iter().zip(&golden).enumerate() {
        assert_eq!(
            got.get(check_key),
            want.get(check_key),
            "lane {l} diverges on `{check_key}`"
        );
    }
    // Every stage actually fired all its iterations.
    for (st, cs) in run.stages.iter().zip(&cp.stages) {
        assert_eq!(
            st.fired,
            cs.compiled.kernel.total_iterations() * lane_inputs.len() as u64,
            "stage `{}` fired the wrong number of times",
            st.name
        );
    }
}

#[test]
fn two_stage_cosim_is_bit_exact() {
    for lanes in [1usize, 8, 64] {
        let inputs = lanes_for("A", 32, lanes, 7 + lanes as u64);
        assert_bit_exact(TWO_STAGE, "pipeline scale | offset", &inputs, "offset.C");
    }
}

#[test]
fn three_stage_pipeline_is_bit_exact() {
    let src = "void scale(int16 A[32], int16 B[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { B[i] = A[i] * 3; } }
      void offset(int16 B[32], int16 C[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { C[i] = B[i] + 100; } }
      void half(int16 C[32], int16 D[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { D[i] = C[i] >> 1; } }";
    for lanes in [1usize, 8] {
        let inputs = lanes_for("A", 32, lanes, 11 + lanes as u64);
        assert_bit_exact(src, "pipeline scale | offset | half", &inputs, "half.D");
    }
}

#[test]
fn wavelet_threshold_encode_pipeline_is_bit_exact() {
    // The image pipeline from the paper's wavelet engine: out-of-order
    // interleaved row writes, stride-2 2-D windows, unwritten borders
    // committing as zeros — all three must survive the FIFO crossing.
    let src = kernels::wavelet_pipeline_source();
    let spec_text = kernels::wavelet_pipeline_spec();
    let inputs = lanes_for("X", 64 * 64, 1, 23);
    assert_bit_exact(&src, &spec_text, &inputs, "encode.E");
}

#[test]
fn min_depth_fifo_stalls_but_stays_bit_exact() {
    // Clamp the wavelet channel to its deadlock-free minimum: the
    // 4-element bursts against a one-word-per-cycle drain must
    // backpressure the producer, yet the output stays bit-exact.
    let src = kernels::wavelet_pipeline_source();
    let spec = parse_spec(&kernels::wavelet_pipeline_spec()).unwrap();
    let cp = compile_pipeline(&src, &spec, &CompileOptions::default()).unwrap();
    let min_depth = cp.channels[0].min_depth;
    assert!(min_depth > 4, "reorder span exceeds one burst");
    let clamped = parse_spec(&format!(
        "{}fifo threshold.Y depth={min_depth}\n",
        kernels::wavelet_pipeline_spec()
    ))
    .unwrap();
    let cp = compile_pipeline(&src, &clamped, &CompileOptions::default()).unwrap();
    let inputs = lanes_for("X", 64 * 64, 1, 31);
    let scalars = HashMap::new();
    let run = run_cosim(&cp, &inputs, &scalars).unwrap();
    let golden = chain_golden(&cp, &inputs, &scalars).unwrap();
    for (got, want) in run.lane_arrays.iter().zip(&golden) {
        assert_eq!(got.get("encode.E"), want.get("encode.E"));
    }
    let wavelet = &run.stages[0];
    assert!(
        wavelet.stall_cycles > 0,
        "a minimum-depth FIFO must backpressure the producer: {wavelet:?}"
    );
    // Consumers see bubbles while the producer refills.
    assert!(run.stages[1].starve_cycles > 0, "{:?}", run.stages[1]);
    assert!(run.fifo_peaks[0] <= min_depth, "{:?}", run.fifo_peaks);
}

#[test]
fn undersized_fifo_deadlocks_dynamically_under_verify_off() {
    // Statically this is P003 (fatal under the default level); with the
    // verifier off, the co-simulation must catch it dynamically instead
    // of spinning forever.
    let src = kernels::wavelet_pipeline_source();
    let spec =
        parse_spec("pipeline wavelet | threshold | encode\nfifo threshold.Y depth=1\n").unwrap();
    let base = CompileOptions {
        verify: VerifyLevel::Off,
        ..CompileOptions::default()
    };
    let cp = compile_pipeline(&src, &spec, &base).unwrap();
    assert!(cp.channels[0].min_depth > 1, "wavelet needs reorder room");
    let inputs = lanes_for("X", 64 * 64, 1, 5);
    let err = run_cosim(&cp, &inputs, &HashMap::new()).unwrap_err();
    match err {
        StreamError::Sim(msg) => {
            assert!(msg.contains("deadlock"), "{msg}");
            assert!(msg.contains("wavelet.Y"), "names the stuck channel: {msg}");
        }
        other => panic!("expected Sim(deadlock), got {other}"),
    }
}

#[test]
fn faults_propagate_out_of_the_whole_pipeline() {
    let src = "void scale(int16 A[8], int16 B[8]) { int i;
        for (i = 0; i < 8; i = i + 1) { B[i] = A[i] - A[i]; } }
      void divide(int16 B[8], int16 C[8]) { int i;
        for (i = 0; i < 8; i = i + 1) { C[i] = 100 / B[i]; } }";
    let spec = parse_spec("pipeline scale | divide").unwrap();
    let cp = compile_pipeline(src, &spec, &CompileOptions::default()).unwrap();
    // scale zeroes its stream, so divide faults on its first firing.
    let inputs = lanes_for("A", 8, 2, 3);
    let err = run_cosim(&cp, &inputs, &HashMap::new()).unwrap_err();
    match err {
        StreamError::Sim(msg) => assert!(msg.contains("divide"), "{msg}"),
        other => panic!("expected Sim fault, got {other}"),
    }
}

// ---- negative fixtures: one per P-code ---------------------------------

fn expect_pcode(source: &str, spec_text: &str, code: &str) {
    let spec = parse_spec(spec_text).unwrap();
    let base = CompileOptions {
        verify: VerifyLevel::Deny,
        ..CompileOptions::default()
    };
    match compile_pipeline(source, &spec, &base) {
        Err(StreamError::Verify(diags)) => {
            assert!(
                diags.iter().any(|d| d.code == code),
                "expected {code}, got {diags:?}"
            );
        }
        Err(other) => panic!("expected Verify({code}), got {other}"),
        Ok(_) => panic!("expected Verify({code}), pipeline compiled clean"),
    }
}

#[test]
fn p001_dangling_port_fixture() {
    expect_pcode(
        TWO_STAGE,
        "pipeline scale | offset\nbind scale.B -> offset.Nope",
        "P001-dangling-port",
    );
}

#[test]
fn p002_rate_mismatch_fixture() {
    let src = "void scale(int16 A[32], int16 B[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { B[i] = A[i] * 3; } }
      void shrink(int16 B[16], int16 C[16]) { int i;
        for (i = 0; i < 16; i = i + 1) { C[i] = B[i] + 1; } }";
    expect_pcode(src, "pipeline scale | shrink", "P002-rate-mismatch");
}

#[test]
fn p003_undersized_fifo_fixture() {
    expect_pcode(
        TWO_STAGE,
        "pipeline scale | offset\nfifo offset.B depth=0",
        "P003-undersized-fifo",
    );
}

#[test]
fn p004_duplicate_driver_fixture() {
    let src = "void a1(int16 A[32], int16 B[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { B[i] = A[i] * 3; } }
      void a2(int16 A[32], int16 Q[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { Q[i] = A[i] * 5; } }
      void sink(int16 B[32], int16 C[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { C[i] = B[i] + 1; } }";
    expect_pcode(
        src,
        "pipeline a1 | a2 | sink\nbind a1.B -> sink.B\nbind a2.Q -> sink.B",
        "P004-duplicate-driver",
    );
}

#[test]
fn p006_pipeline_cycle_fixture() {
    // Feed the tail's output back into the head: scale -> offset is
    // auto-derived, the explicit bind closes the loop. A Kahn network
    // with finite FIFOs and no initial tokens cannot fire a cycle.
    expect_pcode(
        TWO_STAGE,
        "pipeline scale | offset\nbind offset.C -> scale.A",
        "P006-pipeline-cycle",
    );
}

#[test]
fn p007_width_truncation_fixture() {
    // int16 producer into an int8 consumer window: a lossy crossing.
    let src = "void wide(int16 A[32], int16 B[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { B[i] = A[i] * 3; } }
      void narrow(int8 B[32], int8 C[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { C[i] = B[i] + 1; } }";
    expect_pcode(src, "pipeline wide | narrow", "P007-width-truncation");
}

#[test]
fn p005_nonstatic_rate_is_a_warning_not_fatal_under_warn() {
    // Data-dependent store index: rates cannot be derived statically, so
    // the channel takes the whole-array fallback and P005 is collected
    // as a warning under the default `Warn` level.
    let src = "void gather(int16 A[32], int16 B[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { B[A[i] & 31] = A[i]; } }
      void sink(int16 B[32], int16 C[32]) { int i;
        for (i = 0; i < 32; i = i + 1) { C[i] = B[i] + 1; } }";
    let spec = parse_spec("pipeline gather | sink").unwrap();
    match compile_pipeline(src, &spec, &CompileOptions::default()) {
        Ok(cp) => {
            assert!(
                cp.diagnostics
                    .iter()
                    .any(|d| d.code == "P005-nonstatic-rate"),
                "{:?}",
                cp.diagnostics
            );
            let c = &cp.channels[0];
            assert!(!c.static_rates);
            assert_eq!(c.min_depth, c.len, "conservative whole-array fallback");
        }
        // Data-dependent stores may be rejected earlier by kernel
        // extraction; the fixture then degrades to a spec error, which
        // still must not panic.
        Err(StreamError::Stage { .. }) => {}
        Err(other) => panic!("unexpected error {other}"),
    }
}

#[test]
fn pipeline_cache_key_never_aliases_kernel_keys() {
    let base = CompileOptions::default();
    let spec = parse_spec("pipeline scale | offset").unwrap();
    let pk = pipeline_cache_key(TWO_STAGE, &spec, &base).unwrap();
    for func in ["scale", "offset"] {
        assert_ne!(
            pk,
            roccc_suite::roccc::hash::cache_key(TWO_STAGE, func, &base),
            "pipeline key aliases the `{func}` kernel key"
        );
    }
}
