//! Quickstart: compile a C kernel to a pipelined FPGA data path and VHDL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use roccc_suite::roccc::{compile, CompileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 3 (a): a 5-tap FIR over a sliding window.
    let source = "
void fir(int A[21], int C[17]) {
  int i;
  for (i = 0; i < 17; i = i + 1) {
    C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4];
  }
}";

    let hw = compile(source, "fir", &CompileOptions::default())?;

    println!("kernel `{}`:", hw.kernel.name);
    println!(
        "  window: {:?} elements of array `{}` (smart buffer reuses {} of every {})",
        hw.kernel.windows[0].extent(),
        hw.kernel.windows[0].array,
        hw.kernel.windows[0].reads.len() - 1,
        hw.kernel.windows[0].reads.len(),
    );
    println!(
        "  data path: {} ops in {} pipeline stages, Fmax ≈ {:.0} MHz",
        hw.datapath.ops.len(),
        hw.datapath.num_stages,
        hw.datapath.fmax_mhz()
    );
    println!(
        "  netlist: {} cells, {} register bits",
        hw.netlist.cells.len(),
        hw.netlist.register_bits()
    );

    // Run the generated hardware cycle-accurately on real data.
    let mut arrays = std::collections::HashMap::new();
    arrays.insert(
        "A".to_string(),
        (0..21).map(|x| x * x).collect::<Vec<i64>>(),
    );
    let run = hw.run(&arrays, &Default::default())?;
    println!(
        "  simulated: {} outputs in {} cycles ({} memory reads)",
        run.mem_writes, run.cycles, run.mem_reads
    );
    println!("  C[0..4] = {:?}", &run.arrays["C"][..4]);

    // And emit the VHDL.
    let vhdl = hw.to_vhdl();
    let entities = vhdl.matches("entity ").count();
    println!("\ngenerated {entities} VHDL entities; the data-path component:\n");
    for line in vhdl
        .lines()
        .skip_while(|l| !l.starts_with("entity fir_dp"))
        .take(14)
    {
        println!("  {line}");
    }
    Ok(())
}
