//! Verify smoke: compiles every Table 1 kernel and a battery of generated
//! kernels with the static verifier at its strictest level
//! (`VerifyLevel::Deny` — any finding, even a warning, fails the
//! compile), then exits nonzero if anything fired. `scripts/ci.sh` runs
//! this as the verifier gate.
//!
//! ```sh
//! cargo run --example verify_sweep
//! ```

use roccc_suite::roccc::{compile, compile_with_model, CompileOptions, VerifyLevel};
use roccc_suite::synth::VirtexII;
use roccc_suite::testrand::exprgen::gen_kernel_source;
use roccc_suite::testrand::XorShift64;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut compiled = 0usize;
    let mut failed = 0usize;

    // Every Table 1 row, both with demand-only narrowing and with the
    // range analysis on (which arms the W0xx checks end to end).
    for b in roccc_suite::ipcores::table::benchmarks() {
        for range_narrow in [false, true] {
            let opts = CompileOptions {
                verify: VerifyLevel::Deny,
                range_narrow,
                ..b.opts.clone()
            };
            let model = VirtexII::with_mult_style(b.mult_style);
            match compile_with_model(&b.source, b.func, &opts, &model) {
                Ok(_) => compiled += 1,
                Err(e) => {
                    eprintln!(
                        "verify sweep: {} (range_narrow {range_narrow}): {e}",
                        b.name
                    );
                    failed += 1;
                }
            }
        }
    }

    for case in 0..32u64 {
        let mut rng = XorShift64::new(0x5eed + case);
        let src = gen_kernel_source(&mut rng, 3);
        let period = [1000.0f64, 6.0, 3.0][rng.gen_index(3)];
        for range_narrow in [false, true] {
            let opts = CompileOptions {
                target_period_ns: period,
                verify: VerifyLevel::Deny,
                range_narrow,
                ..CompileOptions::default()
            };
            match compile(&src, "k", &opts) {
                Ok(_) => compiled += 1,
                Err(e) => {
                    eprintln!(
                        "verify sweep: generated case {case} \
                         (range_narrow {range_narrow}, {src}): {e}"
                    );
                    failed += 1;
                }
            }
        }
    }

    println!("verify sweep: {compiled} kernel(s) clean under deny, {failed} failed");
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
