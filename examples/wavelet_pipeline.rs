//! The image-processing demo pipeline: wavelet | threshold | encode as a
//! streaming process network. The wavelet engine's interleaved subband
//! output streams through a dead-zone threshold into a zig-zag encoder,
//! with FIFO depths derived from the per-stage produce/consume rates.
//!
//! ```sh
//! cargo run --release --example wavelet_pipeline
//! ```
//!
//! The run must be deny-clean (every composition check passes), the
//! co-simulation must match chained single-kernel runs bit for bit, and
//! the final section searches each channel for its empirical minimum
//! working FIFO depth — the numbers quoted in EXPERIMENTS.md.

use roccc_suite::roccc::{CompileOptions, VerifyLevel};
use roccc_suite::stream::{chain_golden, compile_pipeline, parse_spec, run_cosim, stats_report};
use std::collections::HashMap;

/// Does the pipeline still drain with `depth` forced on one channel?
/// Verification is off so the undersized-FIFO check cannot pre-empt the
/// dynamic experiment — deadlock detection in the co-simulator is the
/// ground truth here.
fn drains_at_depth(
    source: &str,
    base_spec: &str,
    stage: &str,
    array: &str,
    depth: usize,
    lanes: &[HashMap<String, Vec<i64>>],
) -> bool {
    let spec_text = format!("{base_spec}fifo {stage}.{array} depth={depth}\n");
    let spec = parse_spec(&spec_text).expect("override spec parses");
    let opts = CompileOptions {
        verify: VerifyLevel::Off,
        ..CompileOptions::default()
    };
    let Ok(cp) = compile_pipeline(source, &spec, &opts) else {
        return false;
    };
    run_cosim(&cp, lanes, &HashMap::new()).is_ok()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = roccc_suite::ipcores::kernels::wavelet_pipeline_source();
    let spec_text = roccc_suite::ipcores::kernels::wavelet_pipeline_spec();
    let w = roccc_suite::ipcores::baselines::WAVELET_ROW_WIDTH;

    // Deny-level compile: any P0xx composition finding fails the run.
    let spec = parse_spec(&spec_text)?;
    let opts = CompileOptions {
        verify: VerifyLevel::Deny,
        ..CompileOptions::default()
    };
    let cp = compile_pipeline(&source, &spec, &opts)?;
    println!("deny-clean compile ✓");
    print!("{}", stats_report(&cp));

    // Synthetic image: smooth gradient + a sharp vertical edge, the same
    // scene the single-kernel wavelet demo transforms.
    let img: Vec<i64> = (0..w * w)
        .map(|i| {
            let (r, c) = (i / w, i % w);
            (r as i64 * 2) + if c >= w / 2 { 400 } else { 0 }
        })
        .collect();
    let mut inputs = HashMap::new();
    inputs.insert("wavelet.X".to_string(), img);
    let lanes = vec![inputs];

    let run = run_cosim(&cp, &lanes, &HashMap::new())?;
    let golden = chain_golden(&cp, &lanes, &HashMap::new())?;
    for (key, data) in &run.lane_arrays[0] {
        assert_eq!(
            golden[0].get(key),
            Some(data),
            "cosim output `{key}` diverged from the chained golden"
        );
    }
    println!(
        "co-simulation bit-exact vs chained single-kernel runs ✓  \
         ({} cycles, {:.3} outputs/cycle)",
        run.cycles,
        run.throughput()
    );
    for (st, ss) in cp.stages.iter().zip(&run.stages) {
        println!(
            "  {:<10} fired {:>5}  stalls {:>4}  starves {:>4}",
            st.name, ss.fired, ss.stall_cycles, ss.starve_cycles
        );
    }

    // Empirical minimum working depth per channel: binary search the
    // smallest forced depth that still drains (drainage is monotone in
    // depth). The derived depth must never be below the empirical
    // minimum — that is the conservatism claim EXPERIMENTS.md tabulates.
    println!("channel depth audit (derived vs empirical minimum):");
    for c in &cp.channels {
        let stage = cp.stages[c.to_stage].name.clone();
        let peak = run.fifo_peaks[cp
            .channels
            .iter()
            .position(|x| x.to_stage == c.to_stage && x.to_array == c.to_array)
            .expect("channel indexes itself")];
        let (mut lo, mut hi) = (1usize, c.depth);
        assert!(
            drains_at_depth(&source, &spec_text, &stage, &c.to_array, hi, &lanes),
            "pipeline must drain at the derived depth"
        );
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if drains_at_depth(&source, &spec_text, &stage, &c.to_array, mid, &lanes) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        println!(
            "  {}.{} -> {}.{}: derived {} (min_depth {} + burst/bus), \
             empirical minimum {}, peak occupancy {}",
            cp.stages[c.from_stage].name,
            c.from_array,
            stage,
            c.to_array,
            c.depth,
            c.min_depth,
            lo,
            peak
        );
        assert!(
            lo <= c.depth,
            "derived depth must be a working depth (channel {}.{})",
            stage,
            c.to_array
        );
    }
    println!("derived depths are conservative and sufficient ✓");
    Ok(())
}
