//! Design-space exploration over the Table 1 kernels: sweeps unroll
//! factor × strip-mine width per kernel and prints each kernel's Pareto
//! frontier plus the configuration a latency-first and an area-first
//! selection rule would choose. Regenerates the DSE table in
//! EXPERIMENTS.md:
//!
//! ```sh
//! cargo run --release --example explore_table1
//! ```

use roccc_suite::explore::{explore, ExploreConfig, Memo, Space, Status};
use roccc_suite::ipcores::benchmarks;

fn main() {
    let space = Space::new(&[1, 2, 4], &[0, 2, 4], false);
    println!(
        "{:<16} {:>5} {:>7} {:>8} | {:<22} {:<22}",
        "kernel", "cands", "scored", "frontier", "min-cycles config", "min-area config"
    );
    for b in benchmarks() {
        let result = explore(
            &b.source,
            b.func,
            &b.opts,
            &space,
            &ExploreConfig::default(),
            &Memo::new(),
        );
        let pick = |key: fn(&roccc_suite::explore::Metrics) -> (u64, u64)| {
            result
                .frontier
                .iter()
                .min_by_key(|&&i| key(result.reports[i].metrics.as_ref().unwrap()))
                .map(|&i| {
                    let r = &result.reports[i];
                    let m = r.metrics.unwrap();
                    format!(
                        "{} ({} sl, {} cyc)",
                        r.candidate.label(),
                        m.slices,
                        m.cycles
                    )
                })
                .unwrap_or_else(|| "-".to_string())
        };
        let scored = result
            .reports
            .iter()
            .filter(|r| matches!(r.status, Status::Scored | Status::MemoHit))
            .count();
        println!(
            "{:<16} {:>5} {:>7} {:>8} | {:<22} {:<22}",
            b.name,
            result.stats.candidates,
            scored,
            result.frontier.len(),
            pick(|m| (m.cycles, m.slices)),
            pick(|m| (m.slices, m.cycles)),
        );
    }
}
