//! Prove smoke: compiles dct with translation validation requested and
//! checks the prover certifies EQUAL under `deny` with no residual
//! Unknown, then (in `corrupt` mode) tampers with the certificate and
//! exits nonzero only if the `E0xx` verifier family catches the
//! corruption. `scripts/ci.sh` runs both modes as the equivalence gate.
//!
//! ```sh
//! cargo run --example prove_smoke            # positive gate, exit 0
//! cargo run --example prove_smoke corrupt    # negative gate, exit 1
//! ```

use roccc_suite::ipcores::kernels;
use roccc_suite::prove::{verify_certificate_diags, ObStatus, Verdict};
use roccc_suite::roccc::{compile, CompileOptions, VerifyLevel};
use std::process::ExitCode;

fn main() -> ExitCode {
    let corrupt = std::env::args().nth(1).as_deref() == Some("corrupt");

    let opts = CompileOptions {
        prove: true,
        verify: VerifyLevel::Deny,
        ..CompileOptions::default()
    };
    let hw = match compile(&kernels::dct_source(), "dct", &opts) {
        Ok(hw) => hw,
        Err(e) => {
            eprintln!("prove smoke: dct failed to compile under deny: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cert = hw.certificate.clone().expect("prove requested");

    if !corrupt {
        if cert.verdict != Verdict::Equal {
            eprintln!("prove smoke: dct did not certify EQUAL: {:?}", cert.verdict);
            return ExitCode::FAILURE;
        }
        if cert
            .obligations
            .iter()
            .any(|o| o.status == ObStatus::Unknown)
        {
            eprintln!("prove smoke: dct certificate carries Unknown obligations");
            return ExitCode::FAILURE;
        }
        let json = hw.prove_json().expect("certificate renders");
        if !json.contains("\"schema\": \"roccc-prove-v1\"") {
            eprintln!("prove smoke: certificate JSON lacks the schema tag");
            return ExitCode::FAILURE;
        }
        println!(
            "prove smoke: dct certified EQUAL ({} obligations, {} rewrite steps), clean under deny",
            cert.obligations.len(),
            cert.rewrite_steps
        );
        return ExitCode::SUCCESS;
    }

    // Corrupt-fixture negative: claim EQUAL while an obligation admits it
    // was never discharged. The E-family must catch the inconsistency from
    // the artifact alone; exit nonzero (with the code on stderr) only when
    // it does.
    let mut bad = cert;
    bad.obligations[0].status = ObStatus::Unknown;
    bad.obligations[0].detail = "tampered by prove_smoke".into();
    let findings = verify_certificate_diags(&bad, &hw.ir, &hw.netlist);
    if !findings.iter().any(|d| d.code.starts_with("E004")) {
        eprintln!("prove smoke: corrupted certificate passed the verifier: {findings:?}");
        return ExitCode::SUCCESS;
    }
    for d in &findings {
        eprintln!("prove smoke: {d}");
    }
    ExitCode::FAILURE
}
