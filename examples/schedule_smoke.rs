//! Schedule smoke: compiles fir with modulo scheduling requested and
//! checks the scheduler commits II == MinII == 1 under `deny`, then (in
//! `corrupt` mode) tampers with the schedule artifact and exits nonzero
//! only if the `M0xx` verifier family catches the corruption.
//! `scripts/ci.sh` runs both modes as the scheduling gate.
//!
//! ```sh
//! cargo run --example schedule_smoke            # positive gate, exit 0
//! cargo run --example schedule_smoke corrupt    # negative gate, exit 1
//! ```

use roccc_suite::ipcores::kernels;
use roccc_suite::roccc::{compile, CompileOptions, VerifyLevel};
use roccc_suite::verify::verify_schedule;
use std::process::ExitCode;

fn main() -> ExitCode {
    let corrupt = std::env::args().nth(1).as_deref() == Some("corrupt");

    let opts = CompileOptions {
        pipeline_ii: Some(0),
        verify: VerifyLevel::Deny,
        ..CompileOptions::default()
    };
    let hw = match compile(&kernels::fir_source(), "fir", &opts) {
        Ok(hw) => hw,
        Err(e) => {
            eprintln!("schedule smoke: fir failed to compile under deny: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sched = hw.schedule.clone().expect("pipeline_ii requested");

    if !corrupt {
        if sched.ii != 1 || sched.min_ii != 1 || sched.fallback.is_some() {
            eprintln!("schedule smoke: fir did not achieve II == MinII == 1: {sched:?}");
            return ExitCode::FAILURE;
        }
        println!(
            "schedule smoke: fir achieved II {} (MinII {}), {} slot(s), clean under deny",
            sched.ii,
            sched.min_ii,
            sched.slots.len()
        );
        return ExitCode::SUCCESS;
    }

    // Corrupt-fixture negative: desynchronize one slot from the staged
    // data path. The M-family must catch it from the artifacts alone;
    // exit nonzero (with the code on stderr) only when it does.
    let mut bad = sched;
    bad.slots[0] += 1;
    let findings = verify_schedule(&bad, &hw.datapath, &hw.deps);
    if findings.is_empty() {
        eprintln!("schedule smoke: corrupted schedule passed the verifier");
        return ExitCode::SUCCESS;
    }
    for d in &findings {
        eprintln!("schedule smoke: {d}");
    }
    ExitCode::FAILURE
}
