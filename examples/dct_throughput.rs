//! The paper's §5 DCT observation: "The throughput of Xilinx DCT IP is one
//! output data per clock cycle, while ROCCC's throughput is eight output
//! data per clock cycle. Therefore, though ROCCC-generated DCT runs at a
//! lower speed, the overall throughput of ROCCC-generated circuit is
//! higher."
//!
//! ```sh
//! cargo run --example dct_throughput
//! ```

use roccc_suite::roccc::CompileOptions;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = roccc_suite::ipcores::kernels::dct_source();
    let hw = roccc_suite::roccc::compile(
        &src,
        "dct",
        &CompileOptions {
            target_period_ns: 7.5,
            ..CompileOptions::default()
        },
    )?;

    println!(
        "compiled DCT: {} output ports per iteration, {} pipeline stages, Fmax {:.0} MHz",
        hw.datapath.throughput_per_cycle(),
        hw.datapath.num_stages,
        hw.datapath.fmax_mhz()
    );

    // Run 8 blocks (64 samples) through the system, with a word-wide bus
    // and with a window-wide bus (8 samples per beat).
    let x: Vec<i64> = (0..64).map(|i| (i * 37 % 255) - 128).collect();
    let mut arrays = HashMap::new();
    arrays.insert("X".to_string(), x.clone());
    let run = hw.run(&arrays, &HashMap::new())?;
    let wide = hw.run_with_bus(&arrays, &HashMap::new(), 8)?;

    println!(
        "word-wide bus  : {} outputs in {} cycles = {:.2} outputs/cycle (memory-bound)",
        run.mem_writes,
        run.cycles,
        run.throughput()
    );
    println!(
        "window-wide bus: {} outputs in {} cycles = {:.2} outputs/cycle",
        wide.mem_writes,
        wide.cycles,
        wide.throughput()
    );

    // Verify against the golden model.
    let prog = roccc_suite::cparse::frontend(&src)?;
    let mut golden = HashMap::new();
    golden.insert("X".to_string(), x);
    golden.insert("Y".to_string(), vec![0i64; 64]);
    roccc_suite::cparse::Interpreter::new(&prog).call("dct", &[], &mut golden)?;
    assert_eq!(run.arrays["Y"], golden["Y"], "hardware matches software");
    println!("bit-exact against the golden-model interpreter ✓");
    Ok(())
}
