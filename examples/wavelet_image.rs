//! The Table 1 wavelet engine on a synthetic image: a 2-D (5,3) lifting
//! transform with a two-line smart buffer, the standard lossless JPEG2000
//! transform the paper evaluates against handwritten VHDL.
//!
//! ```sh
//! cargo run --example wavelet_image
//! ```

use roccc_suite::roccc::CompileOptions;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = roccc_suite::ipcores::kernels::wavelet_source();
    let w = roccc_suite::ipcores::baselines::WAVELET_ROW_WIDTH;
    let hw = roccc_suite::roccc::compile(
        &src,
        "wavelet",
        &CompileOptions {
            target_period_ns: 9.9,
            ..CompileOptions::default()
        },
    )?;

    println!(
        "wavelet engine: {}x{} input window, {} outputs/iteration, {} stages",
        hw.kernel.windows[0].extent()[0],
        hw.kernel.windows[0].extent()[1],
        hw.datapath.throughput_per_cycle(),
        hw.datapath.num_stages,
    );

    // Synthetic image: smooth gradient + a sharp vertical edge.
    let img: Vec<i64> = (0..w * w)
        .map(|i| {
            let (r, c) = (i / w, i % w);
            (r as i64 * 2) + if c >= w / 2 { 400 } else { 0 }
        })
        .collect();
    let mut arrays = HashMap::new();
    arrays.insert("X".to_string(), img.clone());
    let run = hw.run(&arrays, &HashMap::new())?;

    // Golden model comparison.
    let prog = roccc_suite::cparse::frontend(&src)?;
    let mut golden = HashMap::new();
    golden.insert("X".to_string(), img);
    golden.insert("Y".to_string(), vec![0i64; w * w]);
    roccc_suite::cparse::Interpreter::new(&prog).call("wavelet", &[], &mut golden)?;
    assert_eq!(run.arrays["Y"], golden["Y"]);
    println!(
        "bit-exact against the golden model ✓  ({} cycles)",
        run.cycles
    );

    // Subband energy: the LL band carries the image, HH only the edges.
    let y = &run.arrays["Y"];
    let mut ll_energy = 0f64;
    let mut hh_energy = 0f64;
    for r in (0..w - 8).step_by(2) {
        for c in (0..w - 8).step_by(2) {
            ll_energy += (y[r * w + c] as f64).powi(2);
            hh_energy += (y[(r + 1) * w + c + 1] as f64).powi(2);
        }
    }
    println!(
        "LL subband energy {:.2e} vs HH {:.2e} (smooth image → energy compacts into LL)",
        ll_energy, hh_energy
    );
    assert!(ll_energy > hh_energy * 10.0);
    Ok(())
}
