//! Reproduces the paper's Figures 5 and 6: the if-else kernel becomes a
//! data path with soft nodes for the CFG blocks plus the *mux* and *pipe*
//! hard nodes that parallelize the alternative branches.
//!
//! ```sh
//! cargo run --example ifelse_datapath > ifelse.dot
//! dot -Tpng ifelse.dot -o ifelse.png   # if graphviz is available
//! ```

use roccc_suite::datapath::NodeKind;
use roccc_suite::roccc::{compile, CompileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 5 of the paper, verbatim (pointers only indicate the two
    // return values).
    let source = "
void if_else(int x1, int x2, int* x3, int* x4) {
  int a;
  int c;
  c = x1 - x2;
  if (c < x2)
    a = x1 * x1;
  else
    a = x1 * x2 + 3;
  c = c - a;
  *x3 = c;
  *x4 = a;
  return;
}";
    let hw = compile(source, "if_else", &CompileOptions::default())?;

    eprintln!("nodes of the data path (compare with the paper's Figure 6):");
    for node in &hw.datapath.nodes {
        let kind = match node.kind {
            NodeKind::Soft => "soft (has a software equivalent)",
            NodeKind::Mux => "HARD mux (selects between branch results)",
            NodeKind::Pipe => "HARD pipe (copies live values past the branches)",
        };
        eprintln!("  {:<8} — {kind}", node.label);
    }
    let (soft, hard) = hw.datapath.node_census();
    eprintln!("  {soft} soft + {hard} hard nodes");

    // Check both arms against the software semantics.
    let mut sim = roccc_suite::netlist::NetlistSim::new(&hw.netlist);
    let outs = sim.run_stream(&[vec![5, 3], vec![9, 2]])?;
    eprintln!(
        "\nif_else(5, 3) -> x3 = {}, x4 = {}",
        outs[0][0], outs[0][1]
    );
    eprintln!("if_else(9, 2) -> x3 = {}, x4 = {}", outs[1][0], outs[1][1]);

    // The DOT rendering goes to stdout for piping into graphviz.
    println!("{}", hw.to_dot());
    Ok(())
}
