//! Reproduces the paper's Figures 4 and 7: feedback-variable detection.
//!
//! The accumulator's `sum` is loop-carried; the front end rewrites it with
//! the `ROCCC_load_prev` / `ROCCC_store2next` macros, and the data path
//! gets the SNX feedback latch feeding the LPR of the next iteration.
//!
//! ```sh
//! cargo run --example accumulator
//! ```

use roccc_suite::roccc::{compile, CompileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 4 (a): the original C.
    let source = "
void acc(int A[32], int* out) {
  int sum = 0;
  int i;
  for (i = 0; i < 32; i++) {
    sum = sum + A[i];
  }
  *out = sum;
}";
    let hw = compile(source, "acc", &CompileOptions::default())?;

    println!("feedback variables detected:");
    for fb in &hw.kernel.feedback {
        println!("  `{}` : {} (initial value {})", fb.name, fb.ty, fb.init);
    }

    println!("\nthe exported data-path function (compare Figure 4 (c)):");
    for line in hw.kernel.dp_func.to_c().lines() {
        println!("  {line}");
    }

    // Stream data through the generated hardware; the feedback latch
    // accumulates across iterations exactly like the software loop.
    let data: Vec<i64> = (1..=32).collect();
    let expect: i64 = data.iter().sum();
    let mut arrays = std::collections::HashMap::new();
    arrays.insert("A".to_string(), data);
    let run = hw.run(&arrays, &Default::default())?;
    println!(
        "\nhardware sum = {} (software: {expect}), {} cycles",
        run.scalars["sum"], run.cycles
    );
    assert_eq!(run.scalars["sum"], expect);
    Ok(())
}
