//! Regenerates the paper's Table 1 (also available as
//! `cargo run -p roccc-bench --bin table1`, which adds the
//! fast-estimator ablation).
//!
//! ```sh
//! cargo run --release --example table1
//! ```

fn main() {
    let rows = roccc_suite::ipcores::run_table1();
    println!("{}", roccc_suite::ipcores::render_table(&rows));
    println!("(LUT rows are identical by construction: ROCCC instantiates the same ROM IP.)");
}
