//! # roccc-testutil — deterministic randomness for offline tests
//!
//! The build environment has no network access, so the workspace carries
//! its own tiny PRNG instead of depending on `rand`/`proptest`. Everything
//! here is seeded and fully deterministic: a failing test prints its seed
//! and replays exactly.
//!
//! * [`XorShift64`] — xorshift64\* generator (Vigna, *An experimental
//!   exploration of Marsaglia's xorshift generators*), 2^64−1 period,
//!   plenty for differential and property-style tests;
//! * [`exprgen`] — random C expression/kernel source generation used by
//!   the property tests and the simulator differential tests.

#![warn(missing_docs)]

use roccc_cparse::types::IntType;

pub mod exprgen;

/// A seeded xorshift64\* pseudo-random generator.
///
/// ```
/// use roccc_testutil::XorShift64;
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed` (any value; zero is remapped).
    pub fn new(seed: u64) -> Self {
        // xorshift state must be non-zero; splash the seed through a
        // splitmix-style finalizer so small seeds diverge immediately.
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        s = (s ^ (s >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        s ^= s >> 31;
        XorShift64 {
            state: if s == 0 { 0x9e37_79b9_7f4a_7c15 } else { s },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi]` (inclusive on both ends).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_range: {lo} > {hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let v = ((self.next_u64() as u128) % span) as i128;
        (lo as i128 + v) as i64
    }

    /// Uniform value in `[0, n)`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % den as u64) < num as u64
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Random value representable by `ty` (the full two's-complement
    /// range, matching what a hardware port of that width can carry).
    pub fn sample_int(&mut self, ty: IntType) -> i64 {
        self.gen_range(ty.min_value(), ty.max_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = XorShift64::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = XorShift64::new(99);
        for _ in 0..10_000 {
            let v = r.gen_range(-37, 41);
            assert!((-37..=41).contains(&v));
        }
        // Degenerate single-value range.
        assert_eq!(r.gen_range(5, 5), 5);
        // Full i64 range must not overflow.
        let _ = r.gen_range(i64::MIN, i64::MAX);
    }

    #[test]
    fn sample_int_respects_type_range() {
        let mut r = XorShift64::new(3);
        for (signed, bits) in [(true, 8), (false, 8), (true, 1), (false, 1), (true, 63)] {
            let ty = IntType { signed, bits };
            for _ in 0..1000 {
                let v = r.sample_int(ty);
                assert!(v >= ty.min_value() && v <= ty.max_value(), "{ty:?}: {v}");
            }
        }
    }

    #[test]
    fn gen_range_covers_the_span() {
        // Sanity: over a small range every value appears.
        let mut r = XorShift64::new(12);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
