//! Random C expression and kernel-source generation.
//!
//! Generates expressions over the inputs `a`, `b`, `c` from the compiler's
//! supported operator subset (no division — divide-by-zero handling is
//! covered by dedicated tests). Used by the workspace property tests and
//! the reference-vs-compiled simulator differential tests.

use crate::XorShift64;

/// A randomly generated integer expression over inputs `a`, `b`, `c`.
#[derive(Debug, Clone)]
pub enum Expr {
    /// One of the three kernel inputs.
    Var(usize),
    /// An integer literal.
    Lit(i32),
    /// Unary operator applied to a subexpression.
    Un(&'static str, Box<Expr>),
    /// Binary operator.
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// Shift by a constant amount (dynamic shifts are sampled separately).
    ShiftK(&'static str, Box<Expr>, u8),
    /// Ternary conditional.
    Tern(Box<Expr>, Box<Expr>, Box<Expr>),
}

const BIN_OPS: &[&str] = &["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="];
const UN_OPS: &[&str] = &["-", "~"];

impl Expr {
    /// Renders the expression as C source.
    pub fn to_c(&self) -> String {
        match self {
            Expr::Var(i) => ["a", "b", "c"][*i].to_string(),
            Expr::Lit(v) => format!("({v})"),
            Expr::Un(op, e) => format!("({op}({}))", e.to_c()),
            Expr::Bin(op, l, r) => format!("({} {op} {})", l.to_c(), r.to_c()),
            Expr::ShiftK(op, e, k) => format!("({} {op} {k})", e.to_c()),
            Expr::Tern(c, a, b) => format!("({} ? {} : {})", c.to_c(), a.to_c(), b.to_c()),
        }
    }
}

/// Samples a random expression of at most `depth` operator levels.
pub fn gen_expr(rng: &mut XorShift64, depth: u32) -> Expr {
    if depth == 0 || rng.gen_ratio(1, 4) {
        return if rng.gen_bool() {
            Expr::Var(rng.gen_index(3))
        } else {
            Expr::Lit(rng.gen_range(-100, 100) as i32)
        };
    }
    match rng.gen_index(8) {
        0 => Expr::Un(
            UN_OPS[rng.gen_index(UN_OPS.len())],
            Box::new(gen_expr(rng, depth - 1)),
        ),
        1 => Expr::ShiftK(
            if rng.gen_bool() { "<<" } else { ">>" },
            Box::new(gen_expr(rng, depth - 1)),
            rng.gen_range(0, 7) as u8,
        ),
        2 => Expr::Tern(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => Expr::Bin(
            BIN_OPS[rng.gen_index(BIN_OPS.len())],
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

/// A straight-line kernel `void k(int a, int b, int c, int* o)` computing
/// one random expression.
pub fn gen_kernel_source(rng: &mut XorShift64, depth: u32) -> String {
    format!(
        "void k(int a, int b, int c, int* o) {{ *o = {}; }}",
        gen_expr(rng, depth).to_c()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_source_is_parseable_c() {
        let mut rng = XorShift64::new(2024);
        for _ in 0..64 {
            let src = gen_kernel_source(&mut rng, 3);
            roccc_cparse::frontend(&src)
                .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{src}"));
        }
    }

    #[test]
    fn depth_zero_is_a_leaf() {
        let mut rng = XorShift64::new(5);
        for _ in 0..32 {
            match gen_expr(&mut rng, 0) {
                Expr::Var(_) | Expr::Lit(_) => {}
                other => panic!("depth 0 produced {other:?}"),
            }
        }
    }
}
