//! Random C expression and kernel-source generation.
//!
//! Generates expressions over the inputs `a`, `b`, `c` from the compiler's
//! supported operator subset (no division — divide-by-zero handling is
//! covered by dedicated tests). Used by the workspace property tests and
//! the reference-vs-compiled simulator differential tests.

use crate::XorShift64;

/// A randomly generated integer expression over inputs `a`, `b`, `c`.
#[derive(Debug, Clone)]
pub enum Expr {
    /// One of the three kernel inputs.
    Var(usize),
    /// An integer literal.
    Lit(i32),
    /// Unary operator applied to a subexpression.
    Un(&'static str, Box<Expr>),
    /// Binary operator.
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// Shift by a constant amount (dynamic shifts are sampled separately).
    ShiftK(&'static str, Box<Expr>, u8),
    /// Ternary conditional.
    Tern(Box<Expr>, Box<Expr>, Box<Expr>),
}

const BIN_OPS: &[&str] = &["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="];
const UN_OPS: &[&str] = &["-", "~"];

impl Expr {
    /// Renders the expression as C source.
    pub fn to_c(&self) -> String {
        self.to_c_with(&["a", "b", "c"])
    }

    /// Renders the expression with custom source text for the three
    /// input slots — the loop generator substitutes window reads like
    /// `A[i + 1]` for the scalar names.
    pub fn to_c_with(&self, vars: &[&str; 3]) -> String {
        match self {
            Expr::Var(i) => vars[*i].to_string(),
            Expr::Lit(v) => format!("({v})"),
            Expr::Un(op, e) => format!("({op}({}))", e.to_c_with(vars)),
            Expr::Bin(op, l, r) => {
                format!("({} {op} {})", l.to_c_with(vars), r.to_c_with(vars))
            }
            Expr::ShiftK(op, e, k) => format!("({} {op} {k})", e.to_c_with(vars)),
            Expr::Tern(c, a, b) => format!(
                "({} ? {} : {})",
                c.to_c_with(vars),
                a.to_c_with(vars),
                b.to_c_with(vars)
            ),
        }
    }
}

/// Samples a random expression of at most `depth` operator levels.
pub fn gen_expr(rng: &mut XorShift64, depth: u32) -> Expr {
    if depth == 0 || rng.gen_ratio(1, 4) {
        return if rng.gen_bool() {
            Expr::Var(rng.gen_index(3))
        } else {
            Expr::Lit(rng.gen_range(-100, 100) as i32)
        };
    }
    match rng.gen_index(8) {
        0 => Expr::Un(
            UN_OPS[rng.gen_index(UN_OPS.len())],
            Box::new(gen_expr(rng, depth - 1)),
        ),
        1 => Expr::ShiftK(
            if rng.gen_bool() { "<<" } else { ">>" },
            Box::new(gen_expr(rng, depth - 1)),
            rng.gen_range(0, 7) as u8,
        ),
        2 => Expr::Tern(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => Expr::Bin(
            BIN_OPS[rng.gen_index(BIN_OPS.len())],
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

/// A straight-line kernel `void k(int a, int b, int c, int* o)` computing
/// one random expression.
pub fn gen_kernel_source(rng: &mut XorShift64, depth: u32) -> String {
    format!(
        "void k(int a, int b, int c, int* o) {{ *o = {}; }}",
        gen_expr(rng, depth).to_c()
    )
}

fn has_var(e: &Expr) -> bool {
    match e {
        Expr::Var(_) => true,
        Expr::Lit(_) => false,
        Expr::Un(_, e) | Expr::ShiftK(_, e, _) => has_var(e),
        Expr::Bin(_, l, r) => has_var(l) || has_var(r),
        Expr::Tern(c, a, b) => has_var(c) || has_var(a) || has_var(b),
    }
}

/// A generated single-loop stencil kernel `void k(int A[..], int B[..])`
/// with a seeded write-lane layout, for the dependence-gate differential
/// suite.
#[derive(Debug, Clone)]
pub struct LoopKernel {
    /// Full C source.
    pub source: String,
    /// Loop step (equals the number of legal write lanes).
    pub step: u64,
    /// Trip count (number of loop iterations).
    pub trip: u64,
    /// Offsets written into `B` each iteration, relative to `i`.
    pub write_offsets: Vec<u64>,
    /// Planted carried output-dependence distance in iterations.
    /// `None` means the lanes write disjoint residues (legal to extract,
    /// like the paper's dct lanes); `Some(d)` means the last write lane
    /// collides with lane 0 exactly `d` iterations later — the compiler
    /// must refuse the loop.
    pub planted_distance: Option<u64>,
    /// Length of the input array `A`.
    pub a_len: usize,
    /// Length of the output array `B`.
    pub b_len: usize,
}

/// Samples a stencil loop with `lanes` writes per iteration over the
/// window `A[i] .. A[i + 2]`. With `planted = None` the writes land on
/// distinct residues modulo the step (one lane per residue — legal).
/// With `planted = Some(d)` an extra write at offset `d * step` is
/// appended: it collides with lane 0 of the iteration `d` steps later,
/// a carried output dependence at distance `d` that extraction must
/// refuse (the parallel write lanes cannot preserve program order).
pub fn gen_loop_kernel(
    rng: &mut XorShift64,
    depth: u32,
    lanes: u64,
    planted: Option<u64>,
) -> LoopKernel {
    let step = lanes.max(1);
    let trip = 16u64;
    let bound = trip * step;

    let mut write_offsets: Vec<u64> = (0..step).collect();
    if let Some(d) = planted {
        write_offsets.push(d.max(1) * step);
    }
    let max_off = *write_offsets.iter().max().unwrap();
    let a_len = (bound + 4) as usize;
    // Size the output to the written footprint exactly, like the paper
    // kernels (the last iteration starts at `bound - step`).
    let b_len = (bound - step + max_off + 1) as usize;

    let mut body = String::new();
    for off in &write_offsets {
        let vars_ref = ["A[i]", "A[i + 1]", "A[i + 2]"];
        let idx = if *off == 0 {
            "i".to_string()
        } else {
            format!("i + {off}")
        };
        // Every lane must read the window at least once: a constant-only
        // lane gives the loop nothing to stream, so the system simulation
        // would never fire an iteration.
        let mut e = gen_expr(rng, depth);
        if !has_var(&e) {
            e = Expr::Bin("+", Box::new(Expr::Var(rng.gen_index(3))), Box::new(e));
        }
        body.push_str(&format!("    B[{idx}] = {};\n", e.to_c_with(&vars_ref)));
    }
    let source = format!(
        "void k(int A[{a_len}], int B[{b_len}]) {{ int i;\n  \
         for (i = 0; i < {bound}; i = i + {step}) {{\n{body}  }}\n}}"
    );
    LoopKernel {
        source,
        step,
        trip,
        write_offsets,
        planted_distance: planted,
        a_len,
        b_len,
    }
}

/// A generated streaming loop kernel whose output depends on a value
/// carried `distance` iterations back, for the modulo-scheduling
/// differential suite.
#[derive(Debug, Clone)]
pub struct RecurrenceKernel {
    /// Full C source.
    pub source: String,
    /// Iterations the carried value crosses before it is consumed.
    pub distance: u64,
    /// Trip count.
    pub trip: u64,
    /// Length of the input array `A`.
    pub a_len: usize,
    /// Length of the output array `B`.
    pub b_len: usize,
}

/// Samples a loop kernel with a planted LPR→SNX recurrence of the given
/// iteration distance: `distance` rotating feedback scalars compose a
/// chain of distance-1 feedback pairs, so the value folded into the
/// accumulator this iteration re-enters the data path exactly
/// `distance` iterations later. The per-iteration update mixes a random
/// expression over the window `A[i] .. A[i + 2]` into the oldest state.
pub fn gen_recurrence_kernel(rng: &mut XorShift64, depth: u32, distance: u64) -> RecurrenceKernel {
    let d = distance.max(1);
    let trip = 16u64;
    let a_len = (trip + 4) as usize;
    let b_len = trip as usize;

    let mut e = gen_expr(rng, depth);
    if !has_var(&e) {
        e = Expr::Bin("+", Box::new(Expr::Var(rng.gen_index(3))), Box::new(e));
    }
    let window = ["A[i]", "A[i + 1]", "A[i + 2]"];

    let mut decls = String::new();
    for j in 0..d {
        decls.push_str(&format!("  int s{j} = 0;\n"));
    }
    let mut body = String::new();
    body.push_str(&format!(
        "    t = (s{} + {});\n",
        d - 1,
        e.to_c_with(&window)
    ));
    for j in (1..d).rev() {
        body.push_str(&format!("    s{j} = s{};\n", j - 1));
    }
    body.push_str("    s0 = t;\n    B[i] = t;\n");
    let source = format!(
        "void k(int A[{a_len}], int B[{b_len}]) {{\n{decls}  int i;\n  \
         for (i = 0; i < {trip}; i = i + 1) {{\n    int t;\n{body}  }}\n}}\n"
    );
    RecurrenceKernel {
        source,
        distance: d,
        trip,
        a_len,
        b_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_kernels_parse_at_every_distance() {
        let mut rng = XorShift64::new(909);
        for d in 1..=4 {
            let k = gen_recurrence_kernel(&mut rng, 2, d);
            assert_eq!(k.distance, d);
            roccc_cparse::frontend(&k.source)
                .unwrap_or_else(|e| panic!("distance-{d} kernel must parse: {e}\n{}", k.source));
        }
    }

    #[test]
    fn generated_source_is_parseable_c() {
        let mut rng = XorShift64::new(2024);
        for _ in 0..64 {
            let src = gen_kernel_source(&mut rng, 3);
            roccc_cparse::frontend(&src)
                .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{src}"));
        }
    }

    #[test]
    fn depth_zero_is_a_leaf() {
        let mut rng = XorShift64::new(5);
        for _ in 0..32 {
            match gen_expr(&mut rng, 0) {
                Expr::Var(_) | Expr::Lit(_) => {}
                other => panic!("depth 0 produced {other:?}"),
            }
        }
    }
}
