//! Symbolic execution of one II-period of the compiled netlist.
//!
//! Cells are evaluated in index order (with bounded re-passes, since only
//! registers may be forward-referenced), mirroring `netlist::plan` wrap
//! semantics exactly: every cell result wraps to the cell type, ROM data is
//! element-wrapped before the cell wrap, shifts clamp dynamic amounts to
//! `0..=63`, and register commits wrap to the register type.
//!
//! Timing is tracked through leaf *lags*: crossing a gateless pipeline
//! register adds one lag to every leaf of the fan-in cone; a gated feedback
//! register reads as [`crate::term::Term::FbVar`] at its gate stage. An
//! output port is correctly timed exactly when its cone is lag-uniform at
//! the plan latency, and a feedback next-state cone when it is uniform at
//! the register's gate stage — these become the valid-grid obligations.
//!
//! Width-change absorption uses two tiers: the store's own interval
//! analysis (always sound, trusts nothing), and the compiler's `nl.ranges`
//! facts (`suifvm::range` known-bits results stamped onto cells). Terms
//! whose wrap was elided only thanks to a compiler fact are recorded in
//! [`NlSymbols::fact_elided`] so obligations closed through them can be
//! reported as range-assisted rather than purely rewritten.

use std::collections::{HashMap, HashSet};

use roccc_netlist::cells::{CellKind, Netlist};
use roccc_suifvm::ir::{FunctionIr, Opcode};

use crate::term::{TOp, TermId, TermStore};

/// Result of symbolically executing one netlist period.
pub struct NlSymbols {
    /// Per-output-port terms (port wrap applied), with lags intact.
    pub outputs: Vec<TermId>,
    /// Per-feedback-slot next-state terms (register wrap applied), indexed
    /// like `f.feedback`, with lags intact.
    pub next_state: Vec<TermId>,
    /// Gate stage of each feedback register, indexed like `f.feedback`.
    pub gate_stages: Vec<u32>,
    /// `(netlist init, IR init)` per feedback slot, both wrapped.
    pub init_vals: Vec<(i64, i64)>,
    /// Terms standing unwrapped only because a compiler range fact proved
    /// the value fits the cell type.
    pub fact_elided: HashSet<TermId>,
}

/// Symbolically evaluates `nl` over the same leaves `eval_ir` uses.
pub fn eval_nl(store: &mut TermStore, nl: &Netlist, f: &FunctionIr) -> Result<NlSymbols, String> {
    // Map feedback-register cells to IR slot indices by name.
    let mut fb_slot: HashMap<u32, usize> = HashMap::new();
    for &(name, cid) in &nl.feedback_regs {
        let slot = f
            .feedback
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| format!("netlist feedback reg '{name}' has no IR slot"))?;
        let cell = &nl.cells[cid.0 as usize];
        if cell.ty() != f.feedback[slot].ty {
            return Err(format!(
                "feedback reg '{name}' type {} != IR slot type {}",
                cell.ty(),
                f.feedback[slot].ty
            ));
        }
        fb_slot.insert(cid.0, slot);
    }
    if fb_slot.len() != f.feedback.len() {
        return Err(format!(
            "netlist exposes {} feedback regs, IR has {} slots",
            fb_slot.len(),
            f.feedback.len()
        ));
    }

    let mut terms: Vec<Option<TermId>> = vec![None; nl.cells.len()];
    let mut fact_elided: HashSet<TermId> = HashSet::new();
    let mut lag_cache: HashMap<TermId, TermId> = HashMap::new();

    // Only registers may be forward-referenced, so each pass resolves at
    // least the next unresolved non-register cell; bound passes anyway.
    let max_passes = nl.cells.len() + 2;
    for _ in 0..max_passes {
        let mut progress = false;
        let mut done = true;
        for (ci, cell) in nl.cells.iter().enumerate() {
            if terms[ci].is_some() {
                continue;
            }
            let t = match &cell.kind {
                CellKind::Const(v) => Some(store.cst(cell.ty().wrap(*v))),
                CellKind::Input(k) => {
                    let raw = store.var(*k as u32, 0);
                    Some(store.wrap(cell.ty(), raw))
                }
                CellKind::Reg {
                    d,
                    init,
                    stage_gate,
                } => match (stage_gate, fb_slot.get(&(ci as u32))) {
                    (Some(g), Some(&slot)) => Some(store.fb(slot as u32, *g)),
                    (Some(_), None) => {
                        return Err(format!("gated reg c{ci} is not a feedback register"))
                    }
                    (None, _) => match d {
                        Some(dc) => terms[dc.0 as usize].map(|dt| {
                            let shifted = store.shift_lags(dt, 1, &mut lag_cache);
                            cell_wrap(store, nl, ci, shifted, &mut fact_elided)
                        }),
                        // A dangling register holds its init forever.
                        None => Some(store.cst(cell.ty().wrap(*init))),
                    },
                },
                CellKind::Op { op, srcs, imm } => {
                    let mut args = Vec::with_capacity(srcs.len());
                    let mut ready = true;
                    for s in srcs.iter() {
                        match terms[s.0 as usize] {
                            Some(t) => args.push(t),
                            None => {
                                ready = false;
                                break;
                            }
                        }
                    }
                    if ready {
                        let raw = op_term(store, nl, *op, &args, *imm)?;
                        Some(cell_wrap(store, nl, ci, raw, &mut fact_elided))
                    } else {
                        None
                    }
                }
            };
            match t {
                Some(t) => {
                    terms[ci] = Some(t);
                    progress = true;
                }
                None => done = false,
            }
        }
        if done {
            break;
        }
        if !progress {
            return Err("unresolvable combinational cycle in netlist".into());
        }
    }
    if terms.iter().any(|t| t.is_none()) {
        return Err("netlist cells left unresolved".into());
    }

    let mut outputs = Vec::with_capacity(nl.outputs.len());
    for &(_, ty, cid) in &nl.outputs {
        let t = terms[cid.0 as usize].unwrap();
        outputs.push(store.wrap(ty, t));
    }

    let mut next_state = vec![store.cst(0); f.feedback.len()];
    let mut gate_stages = vec![0u32; f.feedback.len()];
    let mut init_vals = vec![(0i64, 0i64); f.feedback.len()];
    for &(_, cid) in &nl.feedback_regs {
        let slot = fb_slot[&cid.0];
        let cell = &nl.cells[cid.0 as usize];
        let CellKind::Reg {
            d,
            init,
            stage_gate,
        } = &cell.kind
        else {
            return Err(format!("feedback cell c{} is not a register", cid.0));
        };
        gate_stages[slot] = (*stage_gate).unwrap_or(0);
        let ir_slot = &f.feedback[slot];
        init_vals[slot] = (cell.ty().wrap(*init), ir_slot.ty.wrap(ir_slot.init));
        let d = (*d).ok_or_else(|| format!("feedback reg c{} has no driver", cid.0))?;
        // Commit wraps to the register type; no lag shift — the commit
        // reads its driver in the gate cycle itself.
        let dt = terms[d.0 as usize].unwrap();
        next_state[slot] = store.wrap(cell.ty(), dt);
    }

    Ok(NlSymbols {
        outputs,
        next_state,
        gate_stages,
        init_vals,
        fact_elided,
    })
}

/// Applies the cell wrap to `t`, eliding it when either the term's own
/// interval or a compiler range fact proves the value already fits.
fn cell_wrap(
    store: &mut TermStore,
    nl: &Netlist,
    ci: usize,
    t: TermId,
    fact_elided: &mut HashSet<TermId>,
) -> TermId {
    let ty = nl.cells[ci].ty();
    let wrapped = store.wrap(ty, t);
    if wrapped == t {
        return t; // identity or interval-proved
    }
    if let Some(r) = nl.range_of(roccc_netlist::cells::CellId(ci as u32)) {
        if r.lo >= ty.min_value() && r.hi <= ty.max_value() {
            fact_elided.insert(t);
            return t;
        }
    }
    wrapped
}

/// Builds the raw (pre-cell-wrap) term of an `Op` cell.
fn op_term(
    store: &mut TermStore,
    nl: &Netlist,
    op: Opcode,
    args: &[TermId],
    imm: i64,
) -> Result<TermId, String> {
    Ok(match op {
        Opcode::Mov | Opcode::Cvt => args[0],
        Opcode::Add => store.add(vec![args[0], args[1]]),
        Opcode::Sub => store.sub(args[0], args[1]),
        Opcode::Mul => store.mul(vec![args[0], args[1]]),
        Opcode::Div => store.op2(TOp::Div, args[0], args[1]),
        Opcode::Rem => store.op2(TOp::Rem, args[0], args[1]),
        Opcode::Neg => store.neg(args[0]),
        Opcode::Not => store.not(args[0]),
        Opcode::Shl => store.shl(args[0], args[1]),
        Opcode::Shr => store.shr(args[0], args[1]),
        Opcode::And => store.bitwise(TOp::And, vec![args[0], args[1]]),
        Opcode::Or => store.bitwise(TOp::Or, vec![args[0], args[1]]),
        Opcode::Xor => store.bitwise(TOp::Xor, vec![args[0], args[1]]),
        Opcode::Slt => store.op2(TOp::Slt, args[0], args[1]),
        Opcode::Sle => store.op2(TOp::Sle, args[0], args[1]),
        Opcode::Seq => store.op2(TOp::Seq, args[0], args[1]),
        Opcode::Sne => store.op2(TOp::Sne, args[0], args[1]),
        Opcode::Bool => store.boolify(args[0]),
        Opcode::Mux => store.mux(args[0], args[1], args[2]),
        Opcode::Lut => {
            let rom = nl
                .roms
                .get(imm as usize)
                .ok_or_else(|| format!("LUT cell references missing rom {imm}"))?;
            let tid = store.intern_lut(&rom.data);
            let raw = store.lut(tid, args[0]);
            // The plan element-wraps ROM data before the cell wrap.
            store.wrap(rom.elem, raw)
        }
        other => return Err(format!("unexpected opcode {other} in netlist cell")),
    })
}
