//! # roccc-prove — per-compile translation validation
//!
//! The compile pipeline is verified *structurally* after every phase
//! (`roccc-verify`), but structural invariants cannot say whether the
//! netlist still *computes the same function* as the IR it was lowered
//! from. This crate closes that gap with a word-level symbolic
//! equivalence check run per compile:
//!
//! 1. [`eval_ir`](eval_ir::eval_ir) executes one steady-state window of
//!    the SSA IR symbolically, producing a bit-vector term per output
//!    port and per feedback next-state;
//! 2. [`eval_nl`](eval_nl::eval_nl) executes one II-period of the
//!    netlist over the *same* symbolic leaves, tracking pipeline timing
//!    through leaf lags;
//! 3. each *obligation* (output value, next-state value, reset value,
//!    valid-grid timing) is discharged by the normalizing rewriter
//!    ([`rewrite::equal_mod`]) — constant folding, AC canonicalization,
//!    shift/mask algebra, width-change absorption via interval analysis
//!    and the compiler's `suifvm::range` facts — and residual obligations
//!    fall back to an in-tree CDCL SAT core ([`blast::sat_equal`]) under
//!    a conflict budget, with an honest `Unknown` when it runs out.
//!
//! A refutation is only ever reported after its counterexample has been
//! **replayed** concretely: the candidate input window is run from reset
//! through both `IrMachine` and `CompiledSim`, and the divergence must
//! reproduce. The result is a [`Certificate`] with a per-obligation audit
//! trail, rendered as stable JSON (`roccc-prove-v1`) and re-checkable
//! from the artifact alone by `roccc_verify::verify_certificate` (the
//! `E0xx` diagnostic family).

#![warn(missing_docs)]

pub mod blast;
pub mod eval_ir;
pub mod eval_nl;
pub mod rewrite;
pub mod sat;
pub mod term;

use std::collections::HashMap;
use std::fmt;

use roccc_cparse::types::IntType;
use roccc_netlist::cells::Netlist;
use roccc_netlist::plan::{CompiledSim, SimPlan};
use roccc_suifvm::interp::IrMachine;
use roccc_suifvm::ir::FunctionIr;
use roccc_verify::{CertificateView, CounterexampleView, Diagnostic, ObligationView};

use blast::SatOutcome;
use rewrite::{equal_mod, NormCache};
use term::{LagSet, TermId, TermStore};

/// Schema tag stamped on every certificate (kept in lockstep with
/// [`roccc_verify::PROVE_SCHEMA`]).
pub const PROVE_SCHEMA: &str = roccc_verify::PROVE_SCHEMA;

// ---------------------------------------------------------------------------
// Certificate model
// ---------------------------------------------------------------------------

/// Overall equivalence verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every obligation proved: the netlist computes the IR function.
    Equal,
    /// At least one obligation refuted (with a replayed counterexample
    /// for value obligations).
    Refuted,
    /// No refutation, but at least one obligation exhausted its budget.
    Unknown,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equal => write!(f, "equal"),
            Verdict::Refuted => write!(f, "refuted"),
            Verdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// What a proof obligation is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObKind {
    /// An output port computes the IR output (mod its width).
    Output,
    /// A feedback register's next state matches the IR `SNX` value.
    NextState,
    /// A feedback register resets to the IR slot's initial value.
    Init,
    /// An output/next-state cone is timed as one steady-state window
    /// (uniform leaf lags at the expected depth).
    ValidGrid,
}

impl fmt::Display for ObKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObKind::Output => write!(f, "output"),
            ObKind::NextState => write!(f, "next-state"),
            ObKind::Init => write!(f, "init"),
            ObKind::ValidGrid => write!(f, "valid-grid"),
        }
    }
}

/// How an obligation was discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObStatus {
    /// Closed by the normalizing rewriter alone.
    ProvedRewrite,
    /// Closed by the rewriter, relying on a compiler range fact to elide
    /// a width change (trusts `suifvm::range`, re-checked by `W005`).
    ProvedRange,
    /// Closed by the CDCL SAT fallback (UNSAT of the difference).
    ProvedSat,
    /// Concretely refuted; the counterexample replays under `CompiledSim`.
    Refuted,
    /// Not decided within budget.
    Unknown,
}

impl fmt::Display for ObStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObStatus::ProvedRewrite => write!(f, "proved-rewrite"),
            ObStatus::ProvedRange => write!(f, "proved-range"),
            ObStatus::ProvedSat => write!(f, "proved-sat"),
            ObStatus::Refuted => write!(f, "refuted"),
            ObStatus::Unknown => write!(f, "unknown"),
        }
    }
}

/// SAT-solver effort spent on one obligation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatSummary {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Branching decisions.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learned.
    pub learned: u64,
    /// CNF variables.
    pub vars: usize,
    /// CNF clauses.
    pub clauses: usize,
}

/// One discharged (or not) proof obligation.
#[derive(Debug, Clone)]
pub struct Obligation {
    /// Obligation name, e.g. `output C` or `next sum`.
    pub name: String,
    /// What the obligation is about.
    pub kind: ObKind,
    /// How it was discharged.
    pub status: ObStatus,
    /// Observed uniform cone lag (grid obligations) or the expected
    /// pipeline depth (value obligations).
    pub lag: Option<u32>,
    /// Term-store rewrite steps consumed while discharging.
    pub rewrite_steps: u64,
    /// SAT effort, when the fallback ran.
    pub sat: Option<SatSummary>,
    /// Human-readable detail.
    pub detail: String,
}

/// A concrete, replayable witness of inequivalence.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Input windows fed from reset (parallel to `f.inputs` each).
    pub windows: Vec<Vec<i64>>,
    /// Output port that diverges.
    pub port: String,
    /// Index of the diverging output window.
    pub window: usize,
    /// Value the IR produces there.
    pub ir_value: i64,
    /// Value the netlist produces there.
    pub nl_value: i64,
}

/// The full translation-validation certificate for one compile.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Schema tag ([`PROVE_SCHEMA`]).
    pub schema: String,
    /// Kernel name.
    pub kernel: String,
    /// Overall verdict.
    pub verdict: Verdict,
    /// Netlist pipeline depth the grid obligations were checked against.
    pub latency: u32,
    /// Netlist initiation interval.
    pub ii: u32,
    /// Hash-consed term count — the certificate's symbolic footprint.
    pub terms: usize,
    /// Total rewrite steps across all obligations.
    pub rewrite_steps: u64,
    /// Every obligation, in a stable order (grids, inits, outputs, next
    /// states).
    pub obligations: Vec<Obligation>,
    /// Witness backing a `Refuted` verdict.
    pub counterexample: Option<Counterexample>,
}

impl Certificate {
    /// `(rewrite, range, sat, refuted, unknown)` obligation counts.
    pub fn status_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for o in &self.obligations {
            match o.status {
                ObStatus::ProvedRewrite => c.0 += 1,
                ObStatus::ProvedRange => c.1 += 1,
                ObStatus::ProvedSat => c.2 += 1,
                ObStatus::Refuted => c.3 += 1,
                ObStatus::Unknown => c.4 += 1,
            }
        }
        c
    }

    /// True when every obligation closed without the SAT fallback.
    pub fn rewrite_only(&self) -> bool {
        self.obligations
            .iter()
            .all(|o| matches!(o.status, ObStatus::ProvedRewrite | ObStatus::ProvedRange))
    }
}

/// Knobs for the prover.
#[derive(Debug, Clone)]
pub struct ProveOptions {
    /// CDCL conflict budget per obligation before `Unknown`.
    pub sat_conflict_budget: u64,
    /// Random input windows for the differential pre-pass and replay.
    pub replay_windows: usize,
    /// PRNG seed for sampling (deterministic certificates).
    pub seed: u64,
}

impl Default for ProveOptions {
    fn default() -> Self {
        ProveOptions {
            sat_conflict_budget: 50_000,
            replay_windows: 24,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

/// Minimal xorshift64* PRNG (the prover must stay dependency-free).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Samples a raw 64-bit argument word: mostly values inside the
    /// port's range (edges included), occasionally a full-width word to
    /// stress the wrap semantics on both sides.
    fn sample(&mut self, ty: IntType) -> i64 {
        match self.next() % 8 {
            0 => 0,
            1 => 1,
            2 => ty.max_value(),
            3 => ty.min_value(),
            4 => self.next() as i64, // raw full-width word
            _ => {
                let lo = ty.min_value() as i128;
                let span = ty.max_value() as i128 - lo + 1;
                (lo + (self.next() as i128).rem_euclid(span)) as i64
            }
        }
    }

    fn window(&mut self, f: &FunctionIr) -> Vec<i64> {
        f.inputs.iter().map(|&(_, ty)| self.sample(ty)).collect()
    }
}

// ---------------------------------------------------------------------------
// Replay oracle
// ---------------------------------------------------------------------------

/// Runs `windows` from reset through both machines. Returns the first
/// divergence as `(port, window, ir, nl)`; `None` when none reproduced
/// (including when either side faults — a faulting window constrains
/// nothing, and state is no longer comparable past it).
fn replay(f: &FunctionIr, nl: &Netlist, windows: &[Vec<i64>]) -> Option<(usize, usize, i64, i64)> {
    let plan = SimPlan::compile(nl).ok()?;
    let mut sim = CompiledSim::new(&plan);
    let nl_out = sim.run_stream(windows).ok()?;
    let mut m = IrMachine::new(f);
    for (w, win) in windows.iter().enumerate() {
        let ir_out = match m.run(win) {
            Ok(v) => v,
            Err(_) => return None,
        };
        for (p, (&iv, nv)) in ir_out.iter().zip(nl_out.get(w)?.iter()).enumerate() {
            if iv != *nv {
                return Some((p, w, iv, *nv));
            }
        }
    }
    None
}

/// Public differential oracle for soundness harnesses: replays `windows`
/// from reset through both the IR interpreter and the compiled netlist
/// simulator, returning the first divergence as
/// `(port, window, ir_value, nl_value)`. `None` means no divergence
/// reproduced (including when either side faults — a faulting window
/// constrains nothing).
pub fn differential_replay(
    f: &FunctionIr,
    nl: &Netlist,
    windows: &[Vec<i64>],
) -> Option<(usize, usize, i64, i64)> {
    replay(f, nl, windows)
}

// ---------------------------------------------------------------------------
// The prover
// ---------------------------------------------------------------------------

/// Per-obligation discharge machinery shared across obligations.
struct Prover<'a> {
    f: &'a FunctionIr,
    nl: &'a Netlist,
    store: TermStore,
    norm: NormCache,
    opts: &'a ProveOptions,
    rng: Rng,
    fb_init: Vec<i64>,
}

impl<'a> Prover<'a> {
    /// Attempts the cheap concrete path on a candidate leaf assignment:
    /// replays the window (plus noise windows) from reset and keeps the
    /// divergence only when it reproduces.
    fn confirm(&mut self, vars: Vec<i64>) -> Option<Counterexample> {
        let mut windows = vec![vars];
        for _ in 0..3 {
            windows.push(self.rng.window(self.f));
        }
        let (p, w, iv, nv) = replay(self.f, self.nl, &windows)?;
        windows.truncate(w + 1);
        Some(Counterexample {
            windows,
            port: self.f.outputs[p].0.as_str().to_string(),
            window: w,
            ir_value: iv,
            nl_value: nv,
        })
    }

    /// Discharges one value obligation `l ≡ r (mod 2^bits)`.
    #[allow(clippy::too_many_arguments)]
    fn discharge(
        &mut self,
        name: String,
        kind: ObKind,
        l: TermId,
        r: TermId,
        bits: u8,
        range_assisted: bool,
        lag: Option<u32>,
    ) -> (Obligation, Option<Counterexample>) {
        let steps0 = self.store.steps;

        // Tier 1 — normalizing rewriter.
        if equal_mod(&mut self.store, l, r, bits, &mut self.norm) {
            let status = if range_assisted {
                ObStatus::ProvedRange
            } else {
                ObStatus::ProvedRewrite
            };
            return (
                Obligation {
                    name,
                    kind,
                    status,
                    lag,
                    rewrite_steps: self.store.steps - steps0,
                    sat: None,
                    detail: if range_assisted {
                        "normal forms coincide (range-fact assisted)".into()
                    } else {
                        "normal forms coincide".into()
                    },
                },
                None,
            );
        }

        // Tier 2 — concrete probes over random leaf assignments; any
        // divergence is only a candidate until it replays from reset.
        let cmp_ty = IntType::signed(bits.max(1));
        for _ in 0..64 {
            let vars = self.rng.window(self.f);
            let mut cache = HashMap::new();
            let lv = self.store.eval(l, &vars, &self.fb_init, &mut cache);
            let rv = self.store.eval(r, &vars, &self.fb_init, &mut cache);
            if cmp_ty.wrap(lv) != cmp_ty.wrap(rv) {
                if let Some(cex) = self.confirm(vars) {
                    return (
                        Obligation {
                            name,
                            kind,
                            status: ObStatus::Refuted,
                            lag,
                            rewrite_steps: self.store.steps - steps0,
                            sat: None,
                            detail: format!(
                                "concrete probe diverges and replays ({} != {})",
                                cex.ir_value, cex.nl_value
                            ),
                        },
                        Some(cex),
                    );
                }
            }
        }

        // Tier 3 — CDCL SAT fallback on the bit-blasted difference.
        let (outcome, stats, vars_n, clauses) =
            blast::sat_equal(&self.store, l, r, bits, self.opts.sat_conflict_budget);
        let sat = Some(SatSummary {
            conflicts: stats.conflicts,
            decisions: stats.decisions,
            propagations: stats.propagations,
            learned: stats.learned,
            vars: vars_n,
            clauses,
        });
        let steps = self.store.steps - steps0;
        match outcome {
            SatOutcome::Equal => (
                Obligation {
                    name,
                    kind,
                    status: ObStatus::ProvedSat,
                    lag,
                    rewrite_steps: steps,
                    sat,
                    detail: "difference UNSAT".into(),
                },
                None,
            ),
            SatOutcome::Candidate(var_model, _fb_model) => {
                let mut vars = vec![0i64; self.f.inputs.len()];
                for (&(p, _), &v) in &var_model {
                    if let Some(slot) = vars.get_mut(p as usize) {
                        *slot = v;
                    }
                }
                match self.confirm(vars) {
                    Some(cex) => (
                        Obligation {
                            name,
                            kind,
                            status: ObStatus::Refuted,
                            lag,
                            rewrite_steps: steps,
                            sat,
                            detail: format!(
                                "SAT model replays ({} != {})",
                                cex.ir_value, cex.nl_value
                            ),
                        },
                        Some(cex),
                    ),
                    None => (
                        Obligation {
                            name,
                            kind,
                            status: ObStatus::Unknown,
                            lag,
                            rewrite_steps: steps,
                            sat,
                            detail: "SAT model did not replay from reset \
                                     (abstraction or unreachable state)"
                                .into(),
                        },
                        None,
                    ),
                }
            }
            SatOutcome::Unknown => (
                Obligation {
                    name,
                    kind,
                    status: ObStatus::Unknown,
                    lag,
                    rewrite_steps: steps,
                    sat,
                    detail: format!("SAT budget exhausted ({} conflicts)", stats.conflicts),
                },
                None,
            ),
        }
    }
}

/// A grid (timing) obligation from an observed lag set.
fn grid_obligation(name: String, observed: LagSet, expected: u32) -> Obligation {
    let (status, lag, detail) = match observed {
        LagSet::Empty => (
            ObStatus::ProvedRewrite,
            None,
            "constant cone (timing-neutral)".to_string(),
        ),
        LagSet::Uniform(l) if l == expected => (
            ObStatus::ProvedRewrite,
            Some(l),
            format!("cone uniform at lag {l}"),
        ),
        LagSet::Uniform(l) => (
            ObStatus::Refuted,
            Some(l),
            format!("cone uniform at lag {l}, expected {expected}"),
        ),
        LagSet::Mixed => (
            ObStatus::Refuted,
            None,
            format!("mixed leaf lags in a cone expected uniform at {expected}"),
        ),
    };
    Obligation {
        name,
        kind: ObKind::ValidGrid,
        status,
        lag,
        rewrite_steps: 0,
        sat: None,
        detail,
    }
}

/// Proves (or refutes) that `nl` implements `f`, producing a
/// [`Certificate`]. Never panics on malformed inputs — modeling failures
/// surface as `Unknown` obligations, and the differential pre-pass can
/// still refute what the symbolic engine cannot model.
pub fn prove(f: &FunctionIr, nl: &Netlist, kernel: &str, opts: &ProveOptions) -> Certificate {
    let var_tys: Vec<IntType> = f.inputs.iter().map(|&(_, ty)| ty).collect();
    let fb_tys: Vec<IntType> = f.feedback.iter().map(|s| s.ty).collect();
    let mut store = TermStore::new(var_tys, fb_tys);
    let fb_init: Vec<i64> = f.feedback.iter().map(|s| s.ty.wrap(s.init)).collect();

    let mut obligations: Vec<Obligation> = Vec::new();
    let mut counterexample: Option<Counterexample> = None;

    // Differential pre-pass: random windows from reset through both
    // machines. A divergence here is already a replayed counterexample.
    let mut rng = Rng::new(opts.seed);
    let pre_windows: Vec<Vec<i64>> = (0..opts.replay_windows.max(1))
        .map(|_| rng.window(f))
        .collect();
    let pre_diverged = replay(f, nl, &pre_windows).map(|(p, w, iv, nv)| {
        let mut windows = pre_windows.clone();
        windows.truncate(w + 1);
        counterexample = Some(Counterexample {
            windows,
            port: f.outputs[p].0.as_str().to_string(),
            window: w,
            ir_value: iv,
            nl_value: nv,
        });
        (p, iv, nv)
    });

    // Symbolic window of both sides.
    let symbols = eval_ir::eval_ir(&mut store, f)
        .and_then(|ir| eval_nl::eval_nl(&mut store, nl, f).map(|nls| (ir, nls)));

    match symbols {
        Err(e) => {
            obligations.push(Obligation {
                name: "symbolic-model".into(),
                kind: ObKind::ValidGrid,
                status: ObStatus::Unknown,
                lag: None,
                rewrite_steps: 0,
                sat: None,
                detail: format!("symbolic evaluation failed: {e}"),
            });
            // The differential witness still refutes concretely.
            if let Some((p, iv, nv)) = pre_diverged {
                obligations.push(Obligation {
                    name: format!("output {}", f.outputs[p].0),
                    kind: ObKind::Output,
                    status: ObStatus::Refuted,
                    lag: None,
                    rewrite_steps: 0,
                    sat: None,
                    detail: format!("differential replay diverges ({iv} != {nv})"),
                });
            }
        }
        Ok((ir, nls)) => {
            let mut lag_cache = HashMap::new();
            let mut strip_cache = HashMap::new();

            // Valid-grid obligations: every output cone must be uniform
            // at the plan latency, every next-state cone at its gate.
            for (k, &t) in nls.outputs.iter().enumerate() {
                let name = format!("grid {}", f.outputs[k].0);
                obligations.push(grid_obligation(
                    name,
                    store.lags(t, &mut lag_cache),
                    nl.latency,
                ));
            }
            for (s, &t) in nls.next_state.iter().enumerate() {
                let name = format!("grid next {}", f.feedback[s].name);
                obligations.push(grid_obligation(
                    name,
                    store.lags(t, &mut lag_cache),
                    nls.gate_stages[s],
                ));
            }

            // Reset-state obligations: both machines must start equal.
            for (s, &(ni, ii_)) in nls.init_vals.iter().enumerate() {
                let ok = ni == ii_;
                obligations.push(Obligation {
                    name: format!("init {}", f.feedback[s].name),
                    kind: ObKind::Init,
                    status: if ok {
                        ObStatus::ProvedRewrite
                    } else {
                        ObStatus::Refuted
                    },
                    lag: None,
                    rewrite_steps: 0,
                    sat: None,
                    detail: if ok {
                        format!("both reset to {ni}")
                    } else {
                        format!("netlist resets to {ni}, IR slot to {ii_}")
                    },
                });
            }

            let mut prover = Prover {
                f,
                nl,
                store,
                norm: NormCache::new(),
                opts,
                rng,
                fb_init,
            };

            // Value obligations, lag-stripped into window-relative form.
            if ir.outputs.len() != nls.outputs.len() {
                obligations.push(Obligation {
                    name: "outputs".into(),
                    kind: ObKind::ValidGrid,
                    status: ObStatus::Refuted,
                    lag: None,
                    rewrite_steps: 0,
                    sat: None,
                    detail: format!(
                        "IR has {} output ports, netlist {}",
                        ir.outputs.len(),
                        nls.outputs.len()
                    ),
                });
            }
            for (k, (&it, &nt)) in ir.outputs.iter().zip(nls.outputs.iter()).enumerate() {
                let range_assisted = prover.store.cone_intersects(nt, &nls.fact_elided);
                let stripped = prover.store.strip_lags(nt, &mut strip_cache);
                let bits = f.outputs[k].1.bits;
                let (ob, cex) = prover.discharge(
                    format!("output {}", f.outputs[k].0),
                    ObKind::Output,
                    it,
                    stripped,
                    bits,
                    range_assisted,
                    Some(nl.latency),
                );
                obligations.push(ob);
                if counterexample.is_none() {
                    counterexample = cex;
                }
            }
            for (s, (&it, &nt)) in ir.next_state.iter().zip(nls.next_state.iter()).enumerate() {
                let range_assisted = prover.store.cone_intersects(nt, &nls.fact_elided);
                let stripped = prover.store.strip_lags(nt, &mut strip_cache);
                let bits = f.feedback[s].ty.bits;
                let (ob, cex) = prover.discharge(
                    format!("next {}", f.feedback[s].name),
                    ObKind::NextState,
                    it,
                    stripped,
                    bits,
                    range_assisted,
                    Some(nls.gate_stages[s]),
                );
                obligations.push(ob);
                if counterexample.is_none() {
                    counterexample = cex;
                }
            }

            // Overlay the differential witness: concrete evidence beats a
            // symbolic "proof" (which would indicate a prover bug).
            if let Some((p, iv, nv)) = pre_diverged {
                let name = format!("output {}", f.outputs[p].0);
                match obligations.iter_mut().find(|o| o.name == name) {
                    Some(o) if o.status != ObStatus::Refuted => {
                        o.status = ObStatus::Refuted;
                        o.detail = format!("differential replay diverges ({iv} != {nv})");
                    }
                    _ => {}
                }
            }

            store = prover.store;
        }
    }

    let terms = store.len();
    let rewrite_steps = store.steps;

    let any_refuted = obligations.iter().any(|o| o.status == ObStatus::Refuted);
    let any_unknown = obligations.iter().any(|o| o.status == ObStatus::Unknown);
    let verdict = if any_refuted {
        Verdict::Refuted
    } else if any_unknown {
        Verdict::Unknown
    } else {
        Verdict::Equal
    };
    if verdict != Verdict::Refuted {
        counterexample = None;
    }

    Certificate {
        schema: PROVE_SCHEMA.to_string(),
        kernel: kernel.to_string(),
        verdict,
        latency: nl.latency,
        ii: nl.ii.max(1),
        terms,
        rewrite_steps,
        obligations,
        counterexample,
    }
}

// ---------------------------------------------------------------------------
// Re-checking
// ---------------------------------------------------------------------------

/// Re-checks `cert` against the artifacts it talks about. Returns
/// human-readable problems (empty = certificate is credible). The heavy
/// part is re-replaying the counterexample; structural consistency is
/// `roccc_verify::verify_certificate`'s job.
pub fn check_certificate(cert: &Certificate, f: &FunctionIr, nl: &Netlist) -> Vec<String> {
    let mut problems = Vec::new();
    if cert.schema != PROVE_SCHEMA {
        problems.push(format!("schema '{}' is not {PROVE_SCHEMA}", cert.schema));
    }
    if cert.latency != nl.latency {
        problems.push(format!(
            "certificate latency {} != netlist latency {}",
            cert.latency, nl.latency
        ));
    }
    if cert.ii != nl.ii.max(1) {
        problems.push(format!(
            "certificate II {} != netlist II {}",
            cert.ii,
            nl.ii.max(1)
        ));
    }
    if let Some(cex) = &cert.counterexample {
        match replay(f, nl, &cex.windows) {
            Some(_) => {}
            None => problems.push(format!(
                "counterexample for '{}' does not diverge under replay",
                cex.port
            )),
        }
    }
    problems
}

/// True when the certificate's counterexample (if any) reproduces.
pub fn replay_counterexample(cert: &Certificate, f: &FunctionIr, nl: &Netlist) -> Option<bool> {
    cert.counterexample
        .as_ref()
        .map(|cex| replay(f, nl, &cex.windows).is_some())
}

/// Maps a certificate into the plain-data view `roccc-verify` checks.
/// `replay_diverged` carries the replay result when one was run.
pub fn certificate_view(cert: &Certificate, replay_diverged: Option<bool>) -> CertificateView {
    CertificateView {
        schema: cert.schema.clone(),
        kernel: cert.kernel.clone(),
        verdict: cert.verdict.to_string(),
        obligations: cert
            .obligations
            .iter()
            .map(|o| ObligationView {
                name: o.name.clone(),
                kind: o.kind.to_string(),
                status: o.status.to_string(),
                detail: o.detail.clone(),
            })
            .collect(),
        counterexample: cert.counterexample.as_ref().map(|c| CounterexampleView {
            windows: c.windows.len(),
            port: c.port.clone(),
            window: c.window,
            ir_value: c.ir_value,
            nl_value: c.nl_value,
            replay_diverged,
        }),
    }
}

/// One-call path from certificate to `E0xx` diagnostics: replays the
/// counterexample against the artifacts, then runs the structural checks.
pub fn verify_certificate_diags(
    cert: &Certificate,
    f: &FunctionIr,
    nl: &Netlist,
) -> Vec<Diagnostic> {
    let replayed = replay_counterexample(cert, f, nl);
    roccc_verify::verify_certificate(&certificate_view(cert, replayed))
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the stable `roccc-prove-v1` JSON document.
pub fn certificate_json(cert: &Certificate) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        json_escape(&cert.schema)
    ));
    s.push_str(&format!(
        "  \"kernel\": \"{}\",\n",
        json_escape(&cert.kernel)
    ));
    s.push_str(&format!("  \"verdict\": \"{}\",\n", cert.verdict));
    s.push_str(&format!("  \"latency\": {},\n", cert.latency));
    s.push_str(&format!("  \"ii\": {},\n", cert.ii));
    s.push_str(&format!("  \"terms\": {},\n", cert.terms));
    s.push_str(&format!("  \"rewrite_steps\": {},\n", cert.rewrite_steps));
    s.push_str("  \"obligations\": [\n");
    for (i, o) in cert.obligations.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"name\": \"{}\", ", json_escape(&o.name)));
        s.push_str(&format!("\"kind\": \"{}\", ", o.kind));
        s.push_str(&format!("\"status\": \"{}\", ", o.status));
        match o.lag {
            Some(l) => s.push_str(&format!("\"lag\": {l}, ")),
            None => s.push_str("\"lag\": null, "),
        }
        s.push_str(&format!("\"rewrite_steps\": {}, ", o.rewrite_steps));
        match &o.sat {
            Some(ss) => s.push_str(&format!(
                "\"sat\": {{\"conflicts\": {}, \"decisions\": {}, \"propagations\": {}, \
                 \"learned\": {}, \"vars\": {}, \"clauses\": {}}}, ",
                ss.conflicts, ss.decisions, ss.propagations, ss.learned, ss.vars, ss.clauses
            )),
            None => s.push_str("\"sat\": null, "),
        }
        s.push_str(&format!("\"detail\": \"{}\"}}", json_escape(&o.detail)));
        s.push_str(if i + 1 == cert.obligations.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    s.push_str("  ],\n");
    match &cert.counterexample {
        Some(c) => {
            s.push_str("  \"counterexample\": {\n");
            s.push_str(&format!("    \"port\": \"{}\",\n", json_escape(&c.port)));
            s.push_str(&format!("    \"window\": {},\n", c.window));
            s.push_str(&format!("    \"ir_value\": {},\n", c.ir_value));
            s.push_str(&format!("    \"nl_value\": {},\n", c.nl_value));
            s.push_str("    \"windows\": [");
            for (i, w) in c.windows.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push('[');
                for (j, v) in w.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&v.to_string());
                }
                s.push(']');
            }
            s.push_str("]\n  }\n");
        }
        None => s.push_str("  \"counterexample\": null\n"),
    }
    s.push_str("}\n");
    s
}

/// Human-readable certificate summary.
pub fn certificate_report(cert: &Certificate) -> String {
    let (rw, rg, sat, refuted, unknown) = cert.status_counts();
    let mut s = String::new();
    s.push_str(&format!(
        "prove: {} — {} (latency {}, II {})\n",
        cert.kernel,
        cert.verdict.to_string().to_uppercase(),
        cert.latency,
        cert.ii
    ));
    s.push_str(&format!(
        "  {} obligations: {rw} rewrite, {rg} range, {sat} sat, {refuted} refuted, \
         {unknown} unknown; {} terms, {} rewrite steps\n",
        cert.obligations.len(),
        cert.terms,
        cert.rewrite_steps
    ));
    for o in &cert.obligations {
        let lag = match o.lag {
            Some(l) => format!(" @{l}"),
            None => String::new(),
        };
        s.push_str(&format!(
            "  {} [{}]{}: {} — {}\n",
            o.name, o.kind, lag, o.status, o.detail
        ));
    }
    if let Some(c) = &cert.counterexample {
        s.push_str(&format!(
            "  counterexample: port {} window {}: ir={} nl={} ({} input window{})\n",
            c.port,
            c.window,
            c.ir_value,
            c.nl_value,
            c.windows.len(),
            if c.windows.len() == 1 { "" } else { "s" }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cert_with(statuses: &[ObStatus]) -> Certificate {
        Certificate {
            schema: PROVE_SCHEMA.into(),
            kernel: "k".into(),
            verdict: Verdict::Equal,
            latency: 3,
            ii: 1,
            terms: 10,
            rewrite_steps: 5,
            obligations: statuses
                .iter()
                .map(|&st| Obligation {
                    name: "output o".into(),
                    kind: ObKind::Output,
                    status: st,
                    lag: Some(3),
                    rewrite_steps: 1,
                    sat: None,
                    detail: "d".into(),
                })
                .collect(),
            counterexample: None,
        }
    }

    #[test]
    fn status_counts_and_rewrite_only() {
        let c = cert_with(&[ObStatus::ProvedRewrite, ObStatus::ProvedRange]);
        assert_eq!(c.status_counts(), (1, 1, 0, 0, 0));
        assert!(c.rewrite_only());
        let c = cert_with(&[ObStatus::ProvedRewrite, ObStatus::ProvedSat]);
        assert!(!c.rewrite_only());
    }

    #[test]
    fn json_is_schema_stable() {
        let mut c = cert_with(&[ObStatus::ProvedRewrite]);
        c.counterexample = Some(Counterexample {
            windows: vec![vec![1, 2]],
            port: "o".into(),
            window: 0,
            ir_value: 7,
            nl_value: 8,
        });
        let j = certificate_json(&c);
        assert!(j.contains("\"schema\": \"roccc-prove-v1\""));
        assert!(j.contains("\"verdict\": \"equal\""));
        assert!(j.contains("\"status\": \"proved-rewrite\""));
        assert!(j.contains("\"windows\": [[1, 2]]"));
    }

    #[test]
    fn view_round_trips_vocabulary() {
        let c = cert_with(&[ObStatus::ProvedSat, ObStatus::Unknown]);
        let v = certificate_view(&c, None);
        assert_eq!(v.obligations[0].status, "proved-sat");
        assert_eq!(v.obligations[1].status, "unknown");
        assert_eq!(v.obligations[0].kind, "output");
        assert_eq!(v.verdict, "equal");
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next(), b.next());
        }
    }
}
