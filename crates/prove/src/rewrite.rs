//! Care-bits normalization.
//!
//! `normalize(store, t, care)` rebuilds `t` through the store's smart
//! constructors while tracking how many low bits of each subterm can
//! influence the observed result (`care`, 1..=64). Two guarantees:
//!
//! - **Soundness**: the normal form agrees with `t` modulo 2^care, so
//!   `normalize(l, b) == normalize(r, b)` implies `l ≡ r (mod 2^b)` and
//!   hence `Wrap_b(l) == Wrap_b(r)`.
//! - **Width-change absorption**: a `Wrap` to `b` bits disappears whenever
//!   only `care <= b` low bits are observed downstream — this is what closes
//!   the narrowing obligations introduced by `--range-narrow`, without
//!   needing the compiler's own range facts to be trusted.
//!
//! Care propagation: `Add`/`Mul`/bitwise/`Neg`/`Not` pass `care` through
//! (mod-2^care arithmetic is closed under them); `Shl` passes `care` to the
//! shifted value; `Shr` by a constant `k` widens the operand's context to
//! `care + k` (bits k..k+care are what's observed); an `And` with a constant
//! mask narrows the other operands to the mask's top set bit; comparisons,
//! divisions, dynamic shifts, mux conditions, shift amounts and LUT indices
//! are exact contexts (`care = 64`).
//! Constants are canonicalized to their sign-extended `care`-bit image, so
//! coefficients that vanish mod 2^care drop out of sums and products.

use std::collections::HashMap;

use roccc_cparse::types::IntType;

use crate::term::{TOp, Term, TermId, TermStore};

/// Memo table for [`normalize`] — keyed by `(term, care)`.
pub type NormCache = HashMap<(TermId, u8), TermId>;

/// Normalizes `t` under `care` observed low bits (see module docs).
pub fn normalize(store: &mut TermStore, t: TermId, care: u8, cache: &mut NormCache) -> TermId {
    let care = care.min(64);
    if let Some(&r) = cache.get(&(t, care)) {
        return r;
    }
    let r = match store.term(t).clone() {
        Term::Var { .. } | Term::FbVar { .. } => t,
        Term::Const(v) => {
            if care < 64 {
                store.cst(IntType::signed(care.max(1)).wrap(v))
            } else {
                t
            }
        }
        Term::Wrap { bits, signed, arg } => {
            if bits >= care {
                // Only `care <= bits` low bits are observed, and the wrap
                // leaves them untouched: absorb it.
                store.steps += 1;
                normalize(store, arg, care, cache)
            } else {
                let inner = normalize(store, arg, bits, cache);
                let ty = if signed {
                    IntType::signed(bits)
                } else {
                    IntType::unsigned(bits)
                };
                store.wrap(ty, inner)
            }
        }
        Term::Op { op, args } => {
            let n = |s: &mut TermStore, c: &mut NormCache, a: TermId, k: u8| normalize(s, a, k, c);
            match op {
                TOp::Add => {
                    let na: Vec<TermId> = args.iter().map(|&a| n(store, cache, a, care)).collect();
                    store.add(na)
                }
                TOp::Mul => {
                    let na: Vec<TermId> = args.iter().map(|&a| n(store, cache, a, care)).collect();
                    store.mul(na)
                }
                TOp::And => {
                    // A constant mask zeroes every result bit above its top
                    // set bit, so the other operands only need that many low
                    // bits. The mask itself must stay exact — its zeros are
                    // load-bearing.
                    let window = if care < 64 { (1u64 << care) - 1 } else { !0 };
                    let mask = args
                        .iter()
                        .filter_map(|&a| match *store.term(a) {
                            Term::Const(v) => Some(v as u64),
                            _ => None,
                        })
                        .fold(!0u64, |m, v| m & v);
                    let need = (64 - (mask & window).leading_zeros()) as u8;
                    let care_x = care.min(need.max(1));
                    let na: Vec<TermId> = args
                        .iter()
                        .map(|&a| {
                            let k = if matches!(store.term(a), Term::Const(_)) {
                                care
                            } else {
                                care_x
                            };
                            n(store, cache, a, k)
                        })
                        .collect();
                    store.bitwise(op, na)
                }
                TOp::Or | TOp::Xor => {
                    let na: Vec<TermId> = args.iter().map(|&a| n(store, cache, a, care)).collect();
                    store.bitwise(op, na)
                }
                TOp::Neg => {
                    let a = n(store, cache, args[0], care);
                    store.neg(a)
                }
                TOp::Not => {
                    let a = n(store, cache, args[0], care);
                    store.not(a)
                }
                TOp::Bool => {
                    let a = n(store, cache, args[0], 64);
                    store.boolify(a)
                }
                TOp::ShAmt => {
                    let a = n(store, cache, args[0], 64);
                    store.sh_amt(a)
                }
                TOp::Shl => {
                    // Low `care` bits of `x << amt` depend only on the low
                    // `care` bits of `x` (left shifts move bits upward).
                    let x = n(store, cache, args[0], care);
                    let a = n(store, cache, args[1], 64);
                    store.shl(x, a)
                }
                TOp::Shr => {
                    // Low `care` bits of `x >> k` are bits k..k+care of
                    // `x`, so a constant amount narrows the operand's
                    // context to `care + k`; dynamic amounts stay exact.
                    let a = n(store, cache, args[1], 64);
                    let care_x = match *store.term(a) {
                        Term::Const(k) if (0..=63).contains(&k) => {
                            care.saturating_add(k as u8).min(64)
                        }
                        _ => 64,
                    };
                    let x = n(store, cache, args[0], care_x);
                    store.shr(x, a)
                }
                TOp::Div | TOp::Rem | TOp::Slt | TOp::Sle | TOp::Seq | TOp::Sne => {
                    let a = n(store, cache, args[0], 64);
                    let b = n(store, cache, args[1], 64);
                    store.op2(op, a, b)
                }
                TOp::Mux => {
                    let c = n(store, cache, args[0], 64);
                    let x = n(store, cache, args[1], care);
                    let y = n(store, cache, args[2], care);
                    store.mux(c, x, y)
                }
                TOp::Lut(tb) => {
                    let i = n(store, cache, args[0], 64);
                    store.lut(tb, i)
                }
            }
        }
    };
    cache.insert((t, care), r);
    r
}

/// Proves `l ≡ r (mod 2^bits)` by normalization alone.
pub fn equal_mod(
    store: &mut TermStore,
    l: TermId,
    r: TermId,
    bits: u8,
    cache: &mut NormCache,
) -> bool {
    normalize(store, l, bits, cache) == normalize(store, r, bits, cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TermStore {
        TermStore::new(vec![IntType::int(), IntType::int()], vec![])
    }

    #[test]
    fn wrap_absorbed_under_narrow_care() {
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 0);
        let sum = s.add(vec![a, b]);
        // i32 wrap of (a + b), observed at 16 bits ≡ a + b at 16 bits.
        let wrapped = s.mk(Term::Wrap {
            bits: 32,
            signed: true,
            arg: sum,
        });
        let mut c = NormCache::new();
        assert!(equal_mod(&mut s, wrapped, sum, 16, &mut c));
        // ... but not at 64 bits (the wrap matters there).
        assert!(!equal_mod(&mut s, wrapped, sum, 64, &mut c));
    }

    #[test]
    fn coefficient_vanishes_mod_care() {
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 0);
        let c256 = s.cst(256);
        let m = s.mul(vec![c256, b]);
        let l = s.add(vec![a, m]);
        let mut c = NormCache::new();
        // At 8 observed bits the 256*b term contributes nothing.
        assert!(equal_mod(&mut s, l, a, 8, &mut c));
        assert!(!equal_mod(&mut s, l, a, 16, &mut c));
    }

    #[test]
    fn masked_constant_sign_extends() {
        let mut s = store();
        let a = s.var(0, 0);
        let mask = s.cst(0xFF);
        let masked = s.bitwise(TOp::And, vec![a, mask]);
        let mut c = NormCache::new();
        // At care 8, the 0xFF mask becomes -1 and drops.
        assert!(equal_mod(&mut s, masked, a, 8, &mut c));
    }

    #[test]
    fn shr_constant_widens_operand_context() {
        let mut s = store();
        let x = s.var(0, 0);
        let w = s.mk(Term::Wrap {
            bits: 24,
            signed: false,
            arg: x,
        });
        let k = s.cst(22);
        let l = s.shr(w, k);
        let r = s.shr(x, k);
        let mut c = NormCache::new();
        // Observed at 1 bit, only bits 22..23 of x matter — inside the 24.
        assert!(equal_mod(&mut s, l, r, 1, &mut c));
        assert!(!equal_mod(&mut s, l, r, 64, &mut c));
    }

    #[test]
    fn and_mask_narrows_other_operands() {
        let mut s = store();
        let x = s.var(0, 0);
        let w = s.mk(Term::Wrap {
            bits: 8,
            signed: false,
            arg: x,
        });
        let one = s.cst(1);
        let l = s.bitwise(TOp::And, vec![one, w]);
        let r = s.bitwise(TOp::And, vec![one, x]);
        let mut c = NormCache::new();
        // The mask keeps only bit 0, which the 8-bit wrap never touches.
        assert!(equal_mod(&mut s, l, r, 64, &mut c));
    }

    #[test]
    fn nested_wraps_collapse() {
        let mut s = store();
        let a = s.var(0, 0);
        let big = s.cst(1i64 << 40);
        let sum = s.add(vec![a, big]);
        let w32 = s.mk(Term::Wrap {
            bits: 32,
            signed: true,
            arg: sum,
        });
        let w16 = s.mk(Term::Wrap {
            bits: 16,
            signed: true,
            arg: w32,
        });
        let direct = s.mk(Term::Wrap {
            bits: 16,
            signed: true,
            arg: sum,
        });
        let mut c = NormCache::new();
        assert!(equal_mod(&mut s, w16, direct, 64, &mut c));
    }
}
