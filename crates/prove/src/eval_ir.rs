//! Symbolic execution of one steady-state window of the suifvm SSA IR.
//!
//! Mirrors `suifvm::interp::IrMachine` exactly: values wrap only at `ARG`,
//! `CVT`, phis, `SNX`, `LUT` (element type) and the output ports; every
//! other opcode is raw wrapping `i64` arithmetic. Control flow is resolved
//! statically: the CFG must be acyclic (loops reach the prover only after
//! being rewritten into feedback windows), and phi nodes are folded into
//! `Mux` terms using per-block *guard lists* — the branch conditions taken
//! from the entry to each block. The resulting mux nesting matches the
//! shape the datapath if-conversion produces, so the netlist side
//! normalizes to the same terms.
//!
//! Faulting IR behaviour (division by zero, negative shift amounts,
//! negative LUT indices) has no netlist counterpart; equivalence is
//! certified *conditioned on fault-free IR runs*, which is also what the
//! replay oracle enforces.

use std::collections::HashMap;

use roccc_suifvm::ir::{FunctionIr, Opcode, Terminator};

use crate::term::{TOp, TermId, TermStore};

/// Result of symbolically executing one IR window.
pub struct IrSymbols {
    /// Per-output-port terms, wrapped to the port type.
    pub outputs: Vec<TermId>,
    /// Per-feedback-slot next-state terms, wrapped to the slot type.
    pub next_state: Vec<TermId>,
}

/// One `(condition, polarity)` literal on the path guard of a block.
type Guard = Vec<(TermId, bool)>;

/// Symbolically evaluates `f` over fresh lag-0 leaves in `store`.
pub fn eval_ir(store: &mut TermStore, f: &FunctionIr) -> Result<IrSymbols, String> {
    let order = f.reverse_postorder();
    let pos: HashMap<u32, usize> = order.iter().enumerate().map(|(i, b)| (b.0, i)).collect();
    // The window body must be acyclic: every edge goes forward in RPO.
    for &bid in &order {
        for succ in f.block(bid).term.successors() {
            let (Some(&from), Some(&to)) = (pos.get(&bid.0), pos.get(&succ.0)) else {
                continue;
            };
            if to <= from {
                return Err(format!("cyclic control flow at {bid}->{succ}"));
            }
        }
    }

    let preds = f.predecessors();
    let mut regs: HashMap<u32, TermId> = HashMap::new();
    let mut guards: HashMap<u32, Guard> = HashMap::new();
    let mut next_state: Vec<TermId> = (0..f.feedback.len())
        .map(|s| store.fb(s as u32, 0))
        .collect();

    for (idx, &bid) in order.iter().enumerate() {
        // Path guard: longest common prefix of the incoming edge guards.
        let guard: Guard = if idx == 0 {
            Vec::new()
        } else {
            let mut incoming: Vec<Guard> = Vec::new();
            for &p in &preds[bid.0 as usize] {
                incoming.push(edge_guard(f, &guards, &regs, p, bid)?);
            }
            if incoming.is_empty() {
                // Unreachable block: skip entirely.
                guards.insert(bid.0, Vec::new());
                continue;
            }
            common_prefix(&incoming)
        };

        let block = f.block(bid).clone();
        // Phis read predecessor-end values; in SSA those are just the
        // (unique) defining terms, so evaluation order inside the block
        // does not matter.
        for phi in &block.phis {
            let mut arms: Vec<(Guard, TermId)> = Vec::new();
            for &(pred, src) in &phi.args {
                let eg = edge_guard(f, &guards, &regs, pred, bid)?;
                let suffix = eg[guard.len().min(eg.len())..].to_vec();
                let v = *regs
                    .get(&src.0)
                    .ok_or_else(|| format!("phi reads undefined {src}"))?;
                arms.push((suffix, v));
            }
            let v = select(store, arms)?;
            let v = store.wrap(phi.ty, v);
            regs.insert(phi.dst.0, v);
        }

        for i in &block.instrs {
            let src = |k: usize, regs: &HashMap<u32, TermId>| -> Result<TermId, String> {
                regs.get(&i.srcs[k].0)
                    .copied()
                    .ok_or_else(|| format!("use of undefined {}", i.srcs[k]))
            };
            let v = match i.op {
                Opcode::Arg => {
                    let raw = store.var(i.imm as u32, 0);
                    store.wrap(f.inputs[i.imm as usize].1, raw)
                }
                Opcode::Ldc => store.cst(i.imm),
                Opcode::Mov => src(0, &regs)?,
                Opcode::Cvt => {
                    let a = src(0, &regs)?;
                    store.wrap(i.ty, a)
                }
                Opcode::Add => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.add(vec![a, b])
                }
                Opcode::Sub => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.sub(a, b)
                }
                Opcode::Mul => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.mul(vec![a, b])
                }
                Opcode::Div => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.op2(TOp::Div, a, b)
                }
                Opcode::Rem => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.op2(TOp::Rem, a, b)
                }
                Opcode::Neg => {
                    let a = src(0, &regs)?;
                    store.neg(a)
                }
                Opcode::Not => {
                    let a = src(0, &regs)?;
                    store.not(a)
                }
                Opcode::Shl => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.shl(a, b)
                }
                Opcode::Shr => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.shr(a, b)
                }
                Opcode::And => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.bitwise(TOp::And, vec![a, b])
                }
                Opcode::Or => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.bitwise(TOp::Or, vec![a, b])
                }
                Opcode::Xor => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    store.bitwise(TOp::Xor, vec![a, b])
                }
                Opcode::Slt | Opcode::Sle | Opcode::Seq | Opcode::Sne => {
                    let (a, b) = (src(0, &regs)?, src(1, &regs)?);
                    let op = match i.op {
                        Opcode::Slt => TOp::Slt,
                        Opcode::Sle => TOp::Sle,
                        Opcode::Seq => TOp::Seq,
                        _ => TOp::Sne,
                    };
                    store.op2(op, a, b)
                }
                Opcode::Bool => {
                    let a = src(0, &regs)?;
                    store.boolify(a)
                }
                Opcode::Mux => {
                    let (c, t, e) = (src(0, &regs)?, src(1, &regs)?, src(2, &regs)?);
                    store.mux(c, t, e)
                }
                Opcode::Lpr => store.fb(i.imm as u32, 0),
                Opcode::Snx => {
                    let slot = i.imm as usize;
                    let ty = f.feedback[slot].ty;
                    let a = src(0, &regs)?;
                    let wrapped = store.wrap(ty, a);
                    next_state[slot] = if guard.is_empty() {
                        wrapped
                    } else {
                        let g = guard_term(store, &guard);
                        store.mux(g, wrapped, next_state[slot])
                    };
                    continue;
                }
                Opcode::Lut => {
                    let table = &f.luts[i.imm as usize];
                    let tid = store.intern_lut(&table.data);
                    let idx = src(0, &regs)?;
                    let raw = store.lut(tid, idx);
                    store.wrap(table.elem, raw)
                }
            };
            if let Some(dst) = i.dst {
                regs.insert(dst.0, v);
            }
        }
        guards.insert(bid.0, guard);
    }

    let mut outputs = Vec::with_capacity(f.outputs.len());
    for (k, &(_, ty)) in f.outputs.iter().enumerate() {
        let src = f.output_srcs[k];
        let v = *regs
            .get(&src.0)
            .ok_or_else(|| format!("output {k} reads undefined {src}"))?;
        outputs.push(store.wrap(ty, v));
    }
    Ok(IrSymbols {
        outputs,
        next_state,
    })
}

/// Guard of the edge `pred -> succ`: the predecessor's guard extended by
/// its branch literal when the terminator is conditional.
fn edge_guard(
    f: &FunctionIr,
    guards: &HashMap<u32, Guard>,
    regs: &HashMap<u32, TermId>,
    pred: roccc_suifvm::ir::BlockId,
    succ: roccc_suifvm::ir::BlockId,
) -> Result<Guard, String> {
    let mut g = guards
        .get(&pred.0)
        .cloned()
        .ok_or_else(|| format!("predecessor {pred} not yet evaluated"))?;
    if let Terminator::Branch {
        cond,
        then_b,
        else_b,
    } = f.block(pred).term
    {
        let c = *regs
            .get(&cond.0)
            .ok_or_else(|| format!("branch on undefined {cond}"))?;
        if succ == then_b {
            g.push((c, true));
        } else if succ == else_b {
            g.push((c, false));
        }
    }
    Ok(g)
}

/// Longest common prefix of the incoming edge guards.
fn common_prefix(gs: &[Guard]) -> Guard {
    let mut n = gs.iter().map(|g| g.len()).min().unwrap_or(0);
    for g in gs {
        let mut k = 0;
        while k < n && g[k] == gs[0][k] {
            k += 1;
        }
        n = k;
    }
    gs[0][..n].to_vec()
}

/// Conjunction of guard literals as a 0/1 term (product of 0/1 factors).
fn guard_term(store: &mut TermStore, guard: &Guard) -> TermId {
    let mut factors = Vec::with_capacity(guard.len());
    for &(c, pol) in guard {
        let lit = if pol {
            store.boolify(c)
        } else {
            let z = store.cst(0);
            store.op2(TOp::Seq, c, z)
        };
        factors.push(lit);
    }
    store.mul(factors)
}

/// Folds phi arms (edge-guard suffix, value) into nested `Mux` terms by
/// splitting on the first guard literal. Handles arbitrarily nested
/// structured diamonds; anything unstructured is reported as unsupported.
fn select(store: &mut TermStore, arms: Vec<(Guard, TermId)>) -> Result<TermId, String> {
    if arms.is_empty() {
        return Err("phi with no incoming arms".into());
    }
    if arms.len() == 1 {
        return Ok(arms[0].1);
    }
    if arms.iter().all(|(g, _)| g.is_empty()) {
        let v0 = arms[0].1;
        if arms.iter().all(|&(_, v)| v == v0) {
            return Ok(v0);
        }
        return Err("phi arms converge without a distinguishing branch".into());
    }
    let cond = arms
        .iter()
        .find_map(|(g, _)| g.first().map(|&(c, _)| c))
        .unwrap();
    let mut t_arms = Vec::new();
    let mut e_arms = Vec::new();
    for (g, v) in arms {
        match g.split_first() {
            Some((&(c, pol), rest)) if c == cond => {
                if pol {
                    t_arms.push((rest.to_vec(), v));
                } else {
                    e_arms.push((rest.to_vec(), v));
                }
            }
            _ => return Err("unstructured phi guard shape".into()),
        }
    }
    if t_arms.is_empty() || e_arms.is_empty() {
        return Err("phi guard covers only one branch polarity".into());
    }
    let t = select(store, t_arms)?;
    let e = select(store, e_arms)?;
    Ok(store.mux(cond, t, e))
}
