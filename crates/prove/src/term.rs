//! Hash-consed word-level term DAG shared by the symbolic IR and netlist
//! evaluators.
//!
//! All terms denote 64-bit two's-complement words (`i64`); arithmetic is
//! wrapping, exactly matching both `suifvm::interp::IrMachine` and the
//! `netlist::plan` simulators. The two leaf kinds are *already-wrapped*
//! values:
//!
//! - [`Term::Var`] — input port `port` as wrapped to the port type, carried
//!   by the window launched `lag` register stages before the observer;
//! - [`Term::FbVar`] — feedback slot state wrapped to the slot type, with
//!   the same lag convention.
//!
//! Smart constructors canonicalize on the way in: associative/commutative
//! operators are flattened and sorted, sums are kept as linear combinations
//! (constant coefficients folded wrapping), constants fold through every
//! operator, and width changes ([`Term::Wrap`]) are absorbed whenever an
//! interval analysis over the term itself proves the value already fits.
//!
//! [`Term::Var`] denotes the *raw* 64-bit argument word — each side wraps
//! it explicitly (the IR to the port type at `ARG`, the netlist to the
//! input-cell type), so differing widths are visible to the prover.
//! [`Term::FbVar`] denotes the (slot-type-wrapped) feedback state, which
//! both sides share by the usual inductive argument: the init obligation
//! makes the states equal at reset and the next-state obligations keep
//! them equal.

use std::collections::HashMap;

use roccc_cparse::types::IntType;

/// Index of a term in its [`TermStore`].
pub type TermId = u32;

/// Operator tag for [`Term::Op`] nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TOp {
    /// n-ary wrapping sum (linear-combination canonical form).
    Add,
    /// n-ary wrapping product (sign pulled out, constants folded front).
    Mul,
    /// n-ary bitwise AND.
    And,
    /// n-ary bitwise OR.
    Or,
    /// n-ary bitwise XOR.
    Xor,
    /// Wrapping negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// `!= 0` coercion to 0/1.
    Bool,
    /// Shift-amount clamp to `0..=63` (both machines clamp; the IR faults
    /// on negative amounts, so equivalence is conditioned on no-fault runs).
    ShAmt,
    /// Left shift by a clamped dynamic amount (constant shifts become `Mul`).
    Shl,
    /// Arithmetic right shift by a clamped amount.
    Shr,
    /// Signed quotient (conditioned on a non-zero divisor).
    Div,
    /// Signed remainder (conditioned on a non-zero divisor).
    Rem,
    /// Signed less-than, 0/1 result.
    Slt,
    /// Signed less-or-equal, 0/1 result.
    Sle,
    /// Equality, 0/1 result.
    Seq,
    /// Inequality, 0/1 result.
    Sne,
    /// `args[0] != 0 ? args[1] : args[2]`.
    Mux,
    /// ROM lookup in the interned table; negative or out-of-range indices
    /// read 0 (the netlist semantics; the IR faults on negative indices).
    Lut(u32),
}

/// A node of the term DAG. Interned: equal nodes share one [`TermId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Raw 64-bit input-port word (see module docs for the lag convention).
    Var {
        /// Input port index into `FunctionIr::inputs`.
        port: u32,
        /// Windows back from the current one this leaf is read at.
        lag: u32,
    },
    /// Slot-type-wrapped feedback state (justified inductively).
    FbVar {
        /// Feedback slot index into `FunctionIr::feedback`.
        slot: u32,
        /// Windows back from the current one this leaf is read at.
        lag: u32,
    },
    /// Constant word.
    Const(i64),
    /// Truncate to `bits` then sign- or zero-extend — `IntType::wrap`.
    Wrap {
        /// Target width.
        bits: u8,
        /// Sign- (`true`) or zero-extend after truncation.
        signed: bool,
        /// Wrapped operand.
        arg: TermId,
    },
    /// Operator application.
    Op {
        /// The operator.
        op: TOp,
        /// Operands, in operator order.
        args: Vec<TermId>,
    },
}

/// Leaf lags observed in a term cone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LagSet {
    /// No `Var`/`FbVar` leaves (constant cone) — timing-neutral.
    Empty,
    /// Every leaf sits at the same lag.
    Uniform(u32),
    /// Leaves at differing lags — a valid-grid divergence.
    Mixed,
}

/// Hash-consing store plus the leaf-type context needed by the interval
/// analysis, the concrete evaluator, and the bit-blaster.
pub struct TermStore {
    terms: Vec<Term>,
    intern: HashMap<Term, TermId>,
    /// Input-port types, indexed by `Var::port` (sampling hints only — a
    /// `Var` itself is the raw, unwrapped argument word).
    pub var_tys: Vec<IntType>,
    /// Feedback-slot types, indexed by `FbVar::slot`.
    pub fb_tys: Vec<IntType>,
    /// Interned ROM tables (raw, unwrapped data; wraps are explicit nodes).
    pub luts: Vec<Vec<i64>>,
    /// Count of simplification-rule firings (reported as `rewrite_steps`).
    pub steps: u64,
    intervals: HashMap<TermId, Option<(i128, i128)>>,
}

fn ty_bounds(ty: IntType) -> (i128, i128) {
    (ty.min_value() as i128, ty.max_value() as i128)
}

impl TermStore {
    /// Creates an empty store with the given leaf-type context.
    pub fn new(var_tys: Vec<IntType>, fb_tys: Vec<IntType>) -> Self {
        TermStore {
            terms: Vec::new(),
            intern: HashMap::new(),
            var_tys,
            fb_tys,
            luts: Vec::new(),
            steps: 0,
            intervals: HashMap::new(),
        }
    }

    /// Interns `t`, returning its id.
    pub fn mk(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.intern.get(&t) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(t.clone());
        self.intern.insert(t, id);
        id
    }

    /// The node behind `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id as usize]
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no nodes have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a ROM table (by raw contents), returning its table id.
    pub fn intern_lut(&mut self, data: &[i64]) -> u32 {
        for (i, t) in self.luts.iter().enumerate() {
            if t.as_slice() == data {
                return i as u32;
            }
        }
        self.luts.push(data.to_vec());
        (self.luts.len() - 1) as u32
    }

    // ---- leaf and constant constructors -------------------------------

    /// Input-port leaf.
    pub fn var(&mut self, port: u32, lag: u32) -> TermId {
        self.mk(Term::Var { port, lag })
    }

    /// Feedback-slot leaf.
    pub fn fb(&mut self, slot: u32, lag: u32) -> TermId {
        self.mk(Term::FbVar { slot, lag })
    }

    /// Constant word.
    pub fn cst(&mut self, v: i64) -> TermId {
        self.mk(Term::Const(v))
    }

    fn as_const(&self, id: TermId) -> Option<i64> {
        match self.term(id) {
            Term::Const(v) => Some(*v),
            _ => None,
        }
    }

    // ---- smart constructors -------------------------------------------

    /// Wrapping n-ary sum in linear-combination canonical form: collects
    /// `coeff * base` contributions (folding `Neg` and constant factors),
    /// sums coefficients wrapping, and drops zero terms.
    pub fn add(&mut self, args: Vec<TermId>) -> TermId {
        let mut coeffs: HashMap<TermId, i64> = HashMap::new();
        let mut konst: i64 = 0;
        let mut stack = args;
        while let Some(a) = stack.pop() {
            match self.term(a).clone() {
                Term::Const(v) => konst = konst.wrapping_add(v),
                Term::Op { op: TOp::Add, args } => stack.extend(args),
                Term::Op { op: TOp::Neg, args } => {
                    self.steps += 1;
                    let (c, base) = self.coeff_of(args[0]);
                    let e = coeffs.entry(base).or_insert(0);
                    *e = e.wrapping_sub(c);
                }
                _ => {
                    let (c, base) = self.coeff_of(a);
                    let e = coeffs.entry(base).or_insert(0);
                    *e = e.wrapping_add(c);
                }
            }
        }
        let mut parts: Vec<(TermId, i64)> = coeffs.into_iter().filter(|&(_, c)| c != 0).collect();
        parts.sort_unstable_by_key(|&(b, _)| b);
        let mut out: Vec<TermId> = Vec::with_capacity(parts.len() + 1);
        if konst != 0 {
            out.push(self.cst(konst));
        }
        for (base, c) in parts {
            let t = match c {
                1 => base,
                -1 => self.mk_neg_raw(base),
                _ => {
                    let k = self.cst(c);
                    self.mul(vec![k, base])
                }
            };
            out.push(t);
        }
        match out.len() {
            0 => self.cst(0),
            1 => out[0],
            _ => self.mk(Term::Op {
                op: TOp::Add,
                args: out,
            }),
        }
    }

    /// Splits `t` into `(coefficient, base)` for sum collection.
    fn coeff_of(&mut self, t: TermId) -> (i64, TermId) {
        if let Term::Op { op: TOp::Mul, args } = self.term(t).clone() {
            if let Some(c) = self.as_const(args[0]) {
                let rest = args[1..].to_vec();
                let base = if rest.len() == 1 {
                    rest[0]
                } else {
                    self.mk(Term::Op {
                        op: TOp::Mul,
                        args: rest,
                    })
                };
                return (c, base);
            }
        }
        (1, t)
    }

    fn mk_neg_raw(&mut self, t: TermId) -> TermId {
        self.mk(Term::Op {
            op: TOp::Neg,
            args: vec![t],
        })
    }

    /// Wrapping negation (distributes over sums, folds into products).
    pub fn neg(&mut self, a: TermId) -> TermId {
        match self.term(a).clone() {
            Term::Const(v) => {
                self.steps += 1;
                self.cst(v.wrapping_neg())
            }
            Term::Op { op: TOp::Neg, args } => {
                self.steps += 1;
                args[0]
            }
            Term::Op { op: TOp::Add, args } => {
                self.steps += 1;
                let negd: Vec<TermId> = args.iter().map(|&x| self.mk_neg_raw(x)).collect();
                self.add(negd)
            }
            Term::Op { op: TOp::Mul, args } if self.as_const(args[0]).is_some() => {
                self.steps += 1;
                let c = self.as_const(args[0]).unwrap().wrapping_neg();
                let mut v = vec![self.cst(c)];
                v.extend_from_slice(&args[1..]);
                self.mul(v)
            }
            _ => self.mk_neg_raw(a),
        }
    }

    /// Wrapping subtraction, canonicalized as `a + (-b)`.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let nb = self.neg(b);
        self.add(vec![a, nb])
    }

    /// Wrapping n-ary product: constants fold to a leading coefficient,
    /// signs are pulled out of `Neg` factors, factors sort by id.
    pub fn mul(&mut self, args: Vec<TermId>) -> TermId {
        let mut konst: i64 = 1;
        let mut factors: Vec<TermId> = Vec::new();
        let mut stack = args;
        while let Some(a) = stack.pop() {
            match self.term(a).clone() {
                Term::Const(v) => konst = konst.wrapping_mul(v),
                Term::Op { op: TOp::Mul, args } => stack.extend(args),
                Term::Op { op: TOp::Neg, args } => {
                    self.steps += 1;
                    konst = konst.wrapping_neg();
                    stack.push(args[0]);
                }
                _ => factors.push(a),
            }
        }
        if konst == 0 {
            self.steps += 1;
            return self.cst(0);
        }
        factors.sort_unstable();
        if factors.is_empty() {
            return self.cst(konst);
        }
        let core = if factors.len() == 1 {
            factors[0]
        } else {
            self.mk(Term::Op {
                op: TOp::Mul,
                args: factors.clone(),
            })
        };
        match konst {
            1 => core,
            -1 => self.mk_neg_raw(core),
            _ => {
                let mut v = vec![self.cst(konst)];
                v.extend(factors);
                self.mk(Term::Op {
                    op: TOp::Mul,
                    args: v,
                })
            }
        }
    }

    /// n-ary bitwise operator with constant folding, idempotence /
    /// cancellation, and identity/absorbing-element elimination.
    pub fn bitwise(&mut self, op: TOp, args: Vec<TermId>) -> TermId {
        debug_assert!(matches!(op, TOp::And | TOp::Or | TOp::Xor));
        let (identity, absorber) = match op {
            TOp::And => (-1i64, Some(0i64)),
            TOp::Or => (0, Some(-1)),
            _ => (0, None),
        };
        let mut konst = identity;
        let mut rest: Vec<TermId> = Vec::new();
        let mut stack = args;
        while let Some(a) = stack.pop() {
            match self.term(a).clone() {
                Term::Const(v) => {
                    konst = match op {
                        TOp::And => konst & v,
                        TOp::Or => konst | v,
                        _ => konst ^ v,
                    }
                }
                Term::Op { op: o2, args } if o2 == op => stack.extend(args),
                _ => rest.push(a),
            }
        }
        if absorber == Some(konst) {
            self.steps += 1;
            return self.cst(konst);
        }
        rest.sort_unstable();
        if op == TOp::Xor {
            // pairs cancel
            let mut kept: Vec<TermId> = Vec::new();
            for a in rest {
                if kept.last() == Some(&a) {
                    self.steps += 1;
                    kept.pop();
                } else {
                    kept.push(a);
                }
            }
            rest = kept;
        } else {
            let before = rest.len();
            rest.dedup();
            if rest.len() != before {
                self.steps += 1;
            }
        }
        let mut out = Vec::with_capacity(rest.len() + 1);
        if konst != identity {
            out.push(self.cst(konst));
        }
        out.extend(rest);
        match out.len() {
            0 => self.cst(identity),
            1 => out[0],
            _ => self.mk(Term::Op { op, args: out }),
        }
    }

    /// Bitwise complement.
    pub fn not(&mut self, a: TermId) -> TermId {
        match self.term(a).clone() {
            Term::Const(v) => {
                self.steps += 1;
                self.cst(!v)
            }
            Term::Op { op: TOp::Not, args } => {
                self.steps += 1;
                args[0]
            }
            _ => self.mk(Term::Op {
                op: TOp::Not,
                args: vec![a],
            }),
        }
    }

    /// `!= 0` coercion; absorbed when the argument is already 0/1-valued.
    pub fn boolify(&mut self, a: TermId) -> TermId {
        if let Some(v) = self.as_const(a) {
            self.steps += 1;
            return self.cst((v != 0) as i64);
        }
        if let Some((lo, hi)) = self.interval(a) {
            if lo >= 0 && hi <= 1 {
                self.steps += 1;
                return a;
            }
        }
        self.mk(Term::Op {
            op: TOp::Bool,
            args: vec![a],
        })
    }

    /// Clamp a dynamic shift amount to `0..=63`.
    pub fn sh_amt(&mut self, a: TermId) -> TermId {
        if let Some(v) = self.as_const(a) {
            self.steps += 1;
            return self.cst(v.clamp(0, 63));
        }
        if matches!(self.term(a), Term::Op { op: TOp::ShAmt, .. }) {
            self.steps += 1;
            return a;
        }
        if let Some((lo, hi)) = self.interval(a) {
            if lo >= 0 && hi <= 63 {
                self.steps += 1;
                return a;
            }
        }
        self.mk(Term::Op {
            op: TOp::ShAmt,
            args: vec![a],
        })
    }

    /// Left shift; constant amounts strength-reduce to a multiplication
    /// (`x << k` ≡ `x * 2^k` mod 2^64), unifying either spelling.
    pub fn shl(&mut self, x: TermId, amt: TermId) -> TermId {
        if let Some(k) = self.as_const(amt) {
            self.steps += 1;
            let k = k.clamp(0, 63) as u32;
            let f = self.cst(1i64.wrapping_shl(k));
            return self.mul(vec![f, x]);
        }
        let amt = self.sh_amt(amt);
        if self.as_const(x) == Some(0) {
            self.steps += 1;
            return x;
        }
        self.mk(Term::Op {
            op: TOp::Shl,
            args: vec![x, amt],
        })
    }

    /// Arithmetic right shift by a clamped amount.
    pub fn shr(&mut self, x: TermId, amt: TermId) -> TermId {
        let amt = self.sh_amt(amt);
        if let (Some(v), Some(k)) = (self.as_const(x), self.as_const(amt)) {
            self.steps += 1;
            return self.cst(v >> (k.clamp(0, 63) as u32));
        }
        if self.as_const(x) == Some(0) || self.as_const(x) == Some(-1) {
            self.steps += 1;
            return x;
        }
        self.mk(Term::Op {
            op: TOp::Shr,
            args: vec![x, amt],
        })
    }

    /// Binary operator dispatch for the non-AC arithmetic/compare ops.
    pub fn op2(&mut self, op: TOp, a: TermId, b: TermId) -> TermId {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            if let Some(v) = fold2(op, x, y) {
                self.steps += 1;
                return self.cst(v);
            }
        }
        match op {
            TOp::Div if self.as_const(b) == Some(1) => {
                self.steps += 1;
                return a;
            }
            TOp::Rem if matches!(self.as_const(b), Some(1) | Some(-1)) => {
                self.steps += 1;
                return self.cst(0);
            }
            TOp::Slt | TOp::Sne if a == b => {
                self.steps += 1;
                return self.cst(0);
            }
            TOp::Sle | TOp::Seq if a == b => {
                self.steps += 1;
                return self.cst(1);
            }
            _ => {}
        }
        let (a, b) = if matches!(op, TOp::Seq | TOp::Sne) && a > b {
            (b, a)
        } else {
            (a, b)
        };
        self.mk(Term::Op {
            op,
            args: vec![a, b],
        })
    }

    /// `c != 0 ? t : e` with constant-condition and equal-branch folding.
    pub fn mux(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        if let Some(v) = self.as_const(c) {
            self.steps += 1;
            return if v != 0 { t } else { e };
        }
        if t == e {
            self.steps += 1;
            return t;
        }
        // Bool(c) != 0  ⟺  c != 0: drop the coercion inside a mux guard.
        let c = match self.term(c).clone() {
            Term::Op {
                op: TOp::Bool,
                args,
            } => {
                self.steps += 1;
                args[0]
            }
            _ => c,
        };
        if let (Some(1), Some(0)) = (self.as_const(t), self.as_const(e)) {
            if let Some((lo, hi)) = self.interval(c) {
                if lo >= 0 && hi <= 1 {
                    self.steps += 1;
                    return c;
                }
            }
        }
        self.mk(Term::Op {
            op: TOp::Mux,
            args: vec![c, t, e],
        })
    }

    /// ROM lookup.
    pub fn lut(&mut self, table: u32, idx: TermId) -> TermId {
        if let Some(i) = self.as_const(idx) {
            self.steps += 1;
            let data = &self.luts[table as usize];
            let v = if i < 0 {
                0
            } else {
                data.get(i as usize).copied().unwrap_or(0)
            };
            return self.cst(v);
        }
        self.mk(Term::Op {
            op: TOp::Lut(table),
            args: vec![idx],
        })
    }

    /// `IntType::wrap` as a term: dropped when the interval analysis proves
    /// the argument already fits, and collapsed through wider inner wraps.
    pub fn wrap(&mut self, ty: IntType, a: TermId) -> TermId {
        if ty.bits >= 64 {
            self.steps += 1;
            return a;
        }
        if let Some(v) = self.as_const(a) {
            self.steps += 1;
            return self.cst(ty.wrap(v));
        }
        if let Some((lo, hi)) = self.interval(a) {
            let (tmin, tmax) = ty_bounds(ty);
            if lo >= tmin && hi <= tmax {
                self.steps += 1;
                return a;
            }
        }
        // Wrap_b(Wrap_b2(x)) = Wrap_b(x) when b <= b2: truncation keeps the
        // low b bits, which the wider inner wrap left untouched.
        if let Term::Wrap { bits: b2, arg, .. } = *self.term(a) {
            if ty.bits <= b2 {
                self.steps += 1;
                return self.wrap(ty, arg);
            }
        }
        self.mk(Term::Wrap {
            bits: ty.bits,
            signed: ty.signed,
            arg: a,
        })
    }

    // ---- interval analysis --------------------------------------------

    /// Conservative value interval of `t` (treating leaves as ranging over
    /// their full port/slot types), or `None` when unbounded/unknown.
    pub fn interval(&mut self, t: TermId) -> Option<(i128, i128)> {
        if let Some(v) = self.intervals.get(&t) {
            return *v;
        }
        let r = self.interval_inner(t);
        // Every term denotes wrap64(mathematical value), while Add/Mul
        // intervals bound the *mathematical* value. Only an interval that
        // fits i64 certifies no 64-bit wrap occurred — anything wider must
        // be discarded, or downstream rules (Shr-by-constant, And/Or
        // non-negativity, the guarded-mux clamp, wrap elision) would apply
        // math-value bounds to a possibly-wrapped word.
        let r = r.filter(|&(lo, hi)| lo >= i64::MIN as i128 && hi <= i64::MAX as i128 && lo <= hi);
        self.intervals.insert(t, r);
        r
    }

    fn interval_inner(&mut self, t: TermId) -> Option<(i128, i128)> {
        match self.term(t).clone() {
            Term::Const(v) => Some((v as i128, v as i128)),
            // A `Var` is the raw argument word: unbounded.
            Term::Var { .. } => None,
            Term::FbVar { slot, .. } => {
                let ty = *self.fb_tys.get(slot as usize)?;
                Some(ty_bounds(ty))
            }
            Term::Wrap { bits, signed, arg } => {
                let ty = if signed {
                    IntType::signed(bits)
                } else {
                    IntType::unsigned(bits)
                };
                let (tmin, tmax) = ty_bounds(ty);
                match self.interval(arg) {
                    Some((lo, hi)) if lo >= tmin && hi <= tmax => Some((lo, hi)),
                    _ => Some((tmin, tmax)),
                }
            }
            Term::Op { op, args } => self.interval_op(op, &args),
        }
    }

    fn interval_op(&mut self, op: TOp, args: &[TermId]) -> Option<(i128, i128)> {
        match op {
            TOp::Add => {
                let mut lo = 0i128;
                let mut hi = 0i128;
                for &a in args {
                    let (l, h) = self.interval(a)?;
                    lo = lo.checked_add(l)?;
                    hi = hi.checked_add(h)?;
                }
                Some((lo, hi))
            }
            TOp::Mul => {
                let (mut lo, mut hi) = (1i128, 1i128);
                for &a in args {
                    let (l, h) = self.interval(a)?;
                    let cands = [
                        lo.checked_mul(l)?,
                        lo.checked_mul(h)?,
                        hi.checked_mul(l)?,
                        hi.checked_mul(h)?,
                    ];
                    lo = *cands.iter().min().unwrap();
                    hi = *cands.iter().max().unwrap();
                }
                Some((lo, hi))
            }
            TOp::Neg => {
                let (l, h) = self.interval(args[0])?;
                Some((h.checked_neg()?, l.checked_neg()?))
            }
            TOp::And => {
                // The result's set bits are a subset of every operand's, so
                // any operand known non-negative bounds it to [0, operand].
                let mut hi: Option<i128> = None;
                for &a in args {
                    if let Some((l, h)) = self.interval(a) {
                        if l >= 0 {
                            hi = Some(hi.map_or(h, |m: i128| m.min(h)));
                        }
                    }
                }
                hi.map(|h| (0, h))
            }
            TOp::Or | TOp::Xor => {
                // Or/xor of non-negative values stays below the smallest
                // power of two clearing every operand; or is also >= each.
                let mut lo = 0i128;
                let mut hi = 0i128;
                for &a in args {
                    let (l, h) = self.interval(a)?;
                    if l < 0 {
                        return None;
                    }
                    if op == TOp::Or {
                        lo = lo.max(l);
                    }
                    hi = hi.max(h);
                }
                let m = 128 - (hi as u128).leading_zeros();
                Some((lo, (1i128 << m) - 1))
            }
            TOp::Slt | TOp::Sle | TOp::Seq | TOp::Sne | TOp::Bool => Some((0, 1)),
            TOp::ShAmt => Some((0, 63)),
            TOp::Mux => {
                let (mut tl, th) = self.interval(args[1])?;
                let (el, eh) = self.interval(args[2])?;
                // Guard-aware clamp: a condition `a <= b` (or `a < b`) whose
                // then-arm is canonically `b - a` proves that arm >= 0 (>= 1)
                // — the pattern restoring dividers/square roots build.
                if let Term::Op {
                    op: c_op,
                    args: c_args,
                } = self.term(args[0]).clone()
                {
                    if matches!(c_op, TOp::Sle | TOp::Slt) {
                        let diff = self.sub(c_args[1], c_args[0]);
                        if diff == args[1] {
                            tl = tl.max(if c_op == TOp::Slt { 1 } else { 0 });
                        }
                    }
                }
                Some((tl.min(el), th.max(eh)))
            }
            TOp::Shr => {
                let (l, h) = self.interval(args[0])?;
                // An arithmetic shift by a fixed amount is monotone (floor
                // division by 2^k), so the bounds shift with the operand
                // regardless of sign.
                if let Term::Const(k) = *self.term(args[1]) {
                    let k = k.clamp(0, 63) as u32;
                    return Some((l >> k, h >> k));
                }
                if l >= 0 {
                    // Unknown non-negative shift of a non-negative value.
                    return Some((0, h));
                }
                None
            }
            TOp::Lut(tb) => {
                let data = &self.luts[tb as usize];
                let lo = data.iter().copied().min().unwrap_or(0).min(0);
                let hi = data.iter().copied().max().unwrap_or(0).max(0);
                Some((lo as i128, hi as i128))
            }
            _ => None,
        }
    }

    // ---- lag transforms -----------------------------------------------

    /// Returns `t` with every leaf lag increased by `delta` (crossing a
    /// gateless pipeline register).
    pub fn shift_lags(
        &mut self,
        t: TermId,
        delta: u32,
        cache: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if delta == 0 {
            return t;
        }
        if let Some(&r) = cache.get(&t) {
            return r;
        }
        let r = match self.term(t).clone() {
            Term::Var { port, lag } => self.var(port, lag + delta),
            Term::FbVar { slot, lag } => self.fb(slot, lag + delta),
            Term::Const(_) => t,
            Term::Wrap { bits, signed, arg } => {
                let a = self.shift_lags(arg, delta, cache);
                self.mk(Term::Wrap {
                    bits,
                    signed,
                    arg: a,
                })
            }
            Term::Op { op, args } => {
                let na: Vec<TermId> = args
                    .iter()
                    .map(|&a| self.shift_lags(a, delta, cache))
                    .collect();
                self.mk(Term::Op { op, args: na })
            }
        };
        cache.insert(t, r);
        r
    }

    /// Collects the set of leaf lags in `t`'s cone.
    pub fn lags(&self, t: TermId, cache: &mut HashMap<TermId, LagSet>) -> LagSet {
        if let Some(&r) = cache.get(&t) {
            return r;
        }
        let r = match self.term(t) {
            Term::Var { lag, .. } | Term::FbVar { lag, .. } => LagSet::Uniform(*lag),
            Term::Const(_) => LagSet::Empty,
            Term::Wrap { arg, .. } => self.lags(*arg, cache),
            Term::Op { args, .. } => {
                let mut acc = LagSet::Empty;
                for &a in args.clone().iter() {
                    let la = self.lags(a, cache);
                    acc = match (acc, la) {
                        (LagSet::Empty, x) | (x, LagSet::Empty) => x,
                        (LagSet::Uniform(a), LagSet::Uniform(b)) if a == b => LagSet::Uniform(a),
                        _ => LagSet::Mixed,
                    };
                    if acc == LagSet::Mixed {
                        break;
                    }
                }
                acc
            }
        };
        cache.insert(t, r);
        r
    }

    /// Returns `t` with every leaf lag reset to 0 (window-relative form).
    pub fn strip_lags(&mut self, t: TermId, cache: &mut HashMap<TermId, TermId>) -> TermId {
        if let Some(&r) = cache.get(&t) {
            return r;
        }
        let r = match self.term(t).clone() {
            Term::Var { port, .. } => self.var(port, 0),
            Term::FbVar { slot, .. } => self.fb(slot, 0),
            Term::Const(_) => t,
            Term::Wrap { bits, signed, arg } => {
                let a = self.strip_lags(arg, cache);
                self.mk(Term::Wrap {
                    bits,
                    signed,
                    arg: a,
                })
            }
            Term::Op { op, args } => {
                let na: Vec<TermId> = args.iter().map(|&a| self.strip_lags(a, cache)).collect();
                self.mk(Term::Op { op, args: na })
            }
        };
        cache.insert(t, r);
        r
    }

    /// True when any node of `t`'s cone is in `set`.
    pub fn cone_intersects(&self, t: TermId, set: &std::collections::HashSet<TermId>) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            if set.contains(&x) {
                return true;
            }
            match self.term(x) {
                Term::Wrap { arg, .. } => stack.push(*arg),
                Term::Op { args, .. } => stack.extend(args.iter().copied()),
                _ => {}
            }
        }
        false
    }

    // ---- concrete evaluation ------------------------------------------

    /// Evaluates `t` over one window: `vars[p]` is the (wrapped) value of
    /// input port `p`, `fbs[s]` the (wrapped) state of slot `s`. Lags are
    /// ignored — all leaves read the same window. Division by zero and
    /// out-of-range lookups follow the benign netlist semantics (0), which
    /// is safe here because candidates are always confirmed by replay.
    pub fn eval(
        &self,
        t: TermId,
        vars: &[i64],
        fbs: &[i64],
        cache: &mut HashMap<TermId, i64>,
    ) -> i64 {
        if let Some(&v) = cache.get(&t) {
            return v;
        }
        let v = match self.term(t).clone() {
            Term::Const(v) => v,
            Term::Var { port, .. } => vars.get(port as usize).copied().unwrap_or(0),
            Term::FbVar { slot, .. } => fbs.get(slot as usize).copied().unwrap_or(0),
            Term::Wrap { bits, signed, arg } => {
                let ty = if signed {
                    IntType::signed(bits)
                } else {
                    IntType::unsigned(bits)
                };
                ty.wrap(self.eval(arg, vars, fbs, cache))
            }
            Term::Op { op, args } => {
                let xs: Vec<i64> = args
                    .iter()
                    .map(|&a| self.eval(a, vars, fbs, cache))
                    .collect();
                eval_op(op, &xs, &self.luts)
            }
        };
        cache.insert(t, v);
        v
    }
}

/// Constant folding for binary non-AC ops; `None` when undefined (faulting).
fn fold2(op: TOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        TOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        TOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        TOp::Slt => (a < b) as i64,
        TOp::Sle => (a <= b) as i64,
        TOp::Seq => (a == b) as i64,
        TOp::Sne => (a != b) as i64,
        TOp::Shl => a.wrapping_shl(b.clamp(0, 63) as u32),
        TOp::Shr => a >> (b.clamp(0, 63) as u32),
        _ => return None,
    })
}

/// Operator semantics for the concrete evaluator.
fn eval_op(op: TOp, xs: &[i64], luts: &[Vec<i64>]) -> i64 {
    match op {
        TOp::Add => xs.iter().fold(0i64, |a, &b| a.wrapping_add(b)),
        TOp::Mul => xs.iter().fold(1i64, |a, &b| a.wrapping_mul(b)),
        TOp::And => xs.iter().fold(-1i64, |a, &b| a & b),
        TOp::Or => xs.iter().fold(0i64, |a, &b| a | b),
        TOp::Xor => xs.iter().fold(0i64, |a, &b| a ^ b),
        TOp::Neg => xs[0].wrapping_neg(),
        TOp::Not => !xs[0],
        TOp::Bool => (xs[0] != 0) as i64,
        TOp::ShAmt => xs[0].clamp(0, 63),
        TOp::Shl => xs[0].wrapping_shl(xs[1].clamp(0, 63) as u32),
        TOp::Shr => xs[0] >> (xs[1].clamp(0, 63) as u32),
        TOp::Div => {
            if xs[1] == 0 {
                0
            } else {
                xs[0].wrapping_div(xs[1])
            }
        }
        TOp::Rem => {
            if xs[1] == 0 {
                0
            } else {
                xs[0].wrapping_rem(xs[1])
            }
        }
        TOp::Slt => (xs[0] < xs[1]) as i64,
        TOp::Sle => (xs[0] <= xs[1]) as i64,
        TOp::Seq => (xs[0] == xs[1]) as i64,
        TOp::Sne => (xs[0] != xs[1]) as i64,
        TOp::Mux => {
            if xs[0] != 0 {
                xs[1]
            } else {
                xs[2]
            }
        }
        TOp::Lut(t) => {
            let i = xs[0];
            if i < 0 {
                0
            } else {
                luts[t as usize].get(i as usize).copied().unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TermStore {
        TermStore::new(vec![IntType::int(), IntType::int(), IntType::int()], vec![])
    }

    #[test]
    fn add_is_commutative_and_folds() {
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 0);
        let c2 = s.cst(2);
        let c3 = s.cst(3);
        let l = s.add(vec![a, c2, b, c3]);
        let r = s.add(vec![c3, b, c2, a]);
        assert_eq!(l, r);
    }

    #[test]
    fn sub_cancels_and_coefficients_merge() {
        let mut s = store();
        let a = s.var(0, 0);
        let z = s.sub(a, a);
        assert_eq!(s.term(z), &Term::Const(0));
        // a + a + a == 3*a
        let t = s.add(vec![a, a, a]);
        let c3 = s.cst(3);
        let m = s.mul(vec![c3, a]);
        assert_eq!(t, m);
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        let mut s = store();
        let a = s.var(0, 0);
        let k = s.cst(3);
        let sh = s.shl(a, k);
        let c8 = s.cst(8);
        let m = s.mul(vec![c8, a]);
        assert_eq!(sh, m);
    }

    #[test]
    fn wrap_drops_when_interval_fits() {
        let mut s = store();
        let a = s.var(0, 0);
        let w32 = s.wrap(IntType::signed(32), a);
        assert_ne!(w32, a); // raw word: the first wrap matters
        let w40 = s.wrap(IntType::signed(40), w32);
        assert_eq!(w40, w32); // an i32 value always fits 40 bits
        let w16 = s.wrap(IntType::signed(16), w32);
        assert_ne!(w16, w32);
    }

    #[test]
    fn mulhi_wrap_is_not_elided() {
        // Regression: interval(u32*u32) bounds the *mathematical* product
        // [0, (2^32-1)^2], which exceeds i64 — the term's actual word is
        // the wrapped product and may be negative. The interval must be
        // discarded, so the 33-bit wrap after `>> 32` (the mulhi idiom's
        // width change) survives in the symbolic model.
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 0);
        let x = s.wrap(IntType::unsigned(32), a);
        let y = s.wrap(IntType::unsigned(32), b);
        let m = s.mul(vec![x, y]);
        assert_eq!(s.interval(m), None);
        let k = s.cst(32);
        let sh = s.shr(m, k);
        assert_eq!(s.interval(sh), None);
        let w = s.wrap(IntType::unsigned(33), sh);
        assert_ne!(w, sh);
        // At a = b = 2^32 - 1 the wrapped product is negative: the shift
        // yields -2 and the retained u33 wrap restores 8589934590.
        let v = u32::MAX as i64;
        let mut cache = HashMap::new();
        assert_eq!(s.eval(sh, &[v, v], &[], &mut cache), -2);
        assert_eq!(s.eval(w, &[v, v], &[], &mut cache), 8589934590);
    }

    #[test]
    fn xor_pairs_cancel() {
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 0);
        let x = s.bitwise(TOp::Xor, vec![a, b, a]);
        assert_eq!(x, b);
    }

    #[test]
    fn eval_matches_wrapping_semantics() {
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 0);
        let m = s.mul(vec![a, b]);
        let t = s.add(vec![m, a]);
        let mut cache = HashMap::new();
        let v = s.eval(t, &[7, -3], &[], &mut cache);
        assert_eq!(v, 7i64.wrapping_mul(-3) + 7);
    }

    #[test]
    fn or_interval_bounds_nonnegative_operands() {
        let mut s = store();
        let a = s.var(0, 0);
        let x = s.wrap(IntType::unsigned(8), a); // [0, 255]
        let b = s.var(1, 0);
        let y = s.wrap(IntType::unsigned(4), b); // [0, 15]
        let o = s.bitwise(TOp::Or, vec![x, y]);
        assert_eq!(s.interval(o), Some((0, 255)));
        // A 9-bit wrap of the or therefore drops.
        let w = s.wrap(IntType::unsigned(9), o);
        assert_eq!(w, o);
    }

    #[test]
    fn guarded_subtract_mux_is_nonnegative() {
        let mut s = store();
        let a = s.var(0, 0);
        let x = s.wrap(IntType::unsigned(8), a); // [0, 255]
        let b = s.var(1, 0);
        let y = s.wrap(IntType::unsigned(8), b); // [0, 255]
        let c = s.op2(TOp::Sle, y, x); // y <= x
        let d = s.sub(x, y); // unguarded: [-255, 255]
        assert_eq!(s.interval(d), Some((-255, 255)));
        // ... but the restoring-step mux proves the subtract arm >= 0.
        let m = s.mux(c, d, x);
        assert_eq!(s.interval(m), Some((0, 255)));
    }

    #[test]
    fn lag_shift_and_strip() {
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 2);
        let t = s.add(vec![a, b]);
        let mut c1 = HashMap::new();
        let sh = s.shift_lags(t, 3, &mut c1);
        let mut lc = HashMap::new();
        assert_eq!(s.lags(sh, &mut lc), LagSet::Mixed);
        let mut c2 = HashMap::new();
        let st = s.strip_lags(sh, &mut c2);
        let a0 = s.var(0, 0);
        let b0 = s.var(1, 0);
        let expect = s.add(vec![a0, b0]);
        assert_eq!(st, expect);
    }
}
