//! Tseitin bit-blasting of terms into the CDCL core.
//!
//! Terms blast to 64-literal vectors. Structural sharing comes for free:
//! both sides of an obligation live in one hash-consed store, so equal
//! subterms share one blasted image. Leaves get fresh variables (`FbVar`
//! images are sign-extension patterns over their slot width, costing no
//! clauses); adders are ripple-carry; constant multiplications decompose
//! into shift-adds; non-linear operators (variable products, divisions,
//! dynamic shifts, ROM lookups) become fresh uninterpreted vectors — sound
//! for UNSAT verdicts, while SAT models are only ever *candidates* that
//! must survive concrete replay before a refutation is reported.

use std::collections::HashMap;

use crate::sat::{SatStats, SolveResult, Solver};
use crate::term::{TOp, Term, TermId, TermStore};

const W: usize = 64;
type Bits = [i32; W];

/// Outcome of a SAT equality check.
pub enum SatOutcome {
    /// `l ≡ r (mod 2^bits)` holds for all leaf values.
    Equal,
    /// Candidate leaf assignment under which the sides may differ
    /// (must be confirmed by replay): `(var leaves, fb leaves)` keyed by
    /// `(index, lag)`.
    Candidate(HashMap<(u32, u32), i64>, HashMap<(u32, u32), i64>),
    /// Budget exhausted.
    Unknown,
}

struct Blaster<'a> {
    store: &'a TermStore,
    sat: Solver,
    tlit: i32,
    memo: HashMap<TermId, Bits>,
    gate_memo: HashMap<(u8, i32, i32), i32>,
}

impl<'a> Blaster<'a> {
    fn new(store: &'a TermStore) -> Self {
        let mut sat = Solver::new();
        let tlit = sat.new_var();
        sat.add_clause(&[tlit]);
        Blaster {
            store,
            sat,
            tlit,
            memo: HashMap::new(),
            gate_memo: HashMap::new(),
        }
    }

    fn tru(&self) -> i32 {
        self.tlit
    }
    fn fls(&self) -> i32 {
        -self.tlit
    }

    fn const_bits(&self, v: i64) -> Bits {
        let mut out = [self.fls(); W];
        for (i, o) in out.iter_mut().enumerate() {
            if (v >> i) & 1 != 0 {
                *o = self.tru();
            }
        }
        out
    }

    fn is_t(&self, l: i32) -> bool {
        l == self.tlit
    }
    fn is_f(&self, l: i32) -> bool {
        l == -self.tlit
    }

    fn and2(&mut self, a: i32, b: i32) -> i32 {
        if self.is_f(a) || self.is_f(b) {
            return self.fls();
        }
        if self.is_t(a) {
            return b;
        }
        if self.is_t(b) || a == b {
            return a;
        }
        if a == -b {
            return self.fls();
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        if let Some(&o) = self.gate_memo.get(&(0, a, b)) {
            return o;
        }
        let o = self.sat.new_var();
        self.sat.add_clause(&[-o, a]);
        self.sat.add_clause(&[-o, b]);
        self.sat.add_clause(&[o, -a, -b]);
        self.gate_memo.insert((0, a, b), o);
        o
    }

    fn or2(&mut self, a: i32, b: i32) -> i32 {
        let na = -a;
        let nb = -b;
        let n = self.and2(na, nb);
        -n
    }

    fn xor2(&mut self, a: i32, b: i32) -> i32 {
        if self.is_f(a) {
            return b;
        }
        if self.is_f(b) {
            return a;
        }
        if self.is_t(a) {
            return -b;
        }
        if self.is_t(b) {
            return -a;
        }
        if a == b {
            return self.fls();
        }
        if a == -b {
            return self.tru();
        }
        // Canonicalize on variable order and positive polarity of `a`.
        let (mut a, mut b) = if a.abs() < b.abs() { (a, b) } else { (b, a) };
        let mut flip = false;
        if a < 0 {
            a = -a;
            flip = !flip;
        }
        if b < 0 {
            b = -b;
            flip = !flip;
        }
        let o = if let Some(&o) = self.gate_memo.get(&(1, a, b)) {
            o
        } else {
            let o = self.sat.new_var();
            self.sat.add_clause(&[-o, a, b]);
            self.sat.add_clause(&[-o, -a, -b]);
            self.sat.add_clause(&[o, -a, b]);
            self.sat.add_clause(&[o, a, -b]);
            self.gate_memo.insert((1, a, b), o);
            o
        };
        if flip {
            -o
        } else {
            o
        }
    }

    fn mux1(&mut self, c: i32, t: i32, e: i32) -> i32 {
        if self.is_t(c) {
            return t;
        }
        if self.is_f(c) {
            return e;
        }
        if t == e {
            return t;
        }
        let a = self.and2(c, t);
        let nc = -c;
        let b = self.and2(nc, e);
        self.or2(a, b)
    }

    fn maj3(&mut self, a: i32, b: i32, c: i32) -> i32 {
        let ab = self.and2(a, b);
        let ac = self.and2(a, c);
        let bc = self.and2(b, c);
        let t = self.or2(ab, ac);
        self.or2(t, bc)
    }

    fn add_bits(&mut self, a: Bits, b: Bits, carry_in: i32) -> Bits {
        let mut out = [self.fls(); W];
        let mut c = carry_in;
        for i in 0..W {
            let axb = self.xor2(a[i], b[i]);
            out[i] = self.xor2(axb, c);
            if i + 1 < W {
                c = self.maj3(a[i], b[i], c);
            }
        }
        out
    }

    fn neg_bits(&mut self, a: Bits) -> Bits {
        let mut na = a;
        for l in na.iter_mut() {
            *l = -*l;
        }
        let one = self.const_bits(1);
        let f = self.fls();
        self.add_bits(na, one, f)
    }

    fn shl_const(&self, a: Bits, k: u32) -> Bits {
        let mut out = [self.fls(); W];
        for i in (k as usize).min(W)..W {
            out[i] = a[i - k as usize];
        }
        out
    }

    fn mul_const(&mut self, a: Bits, c: i64) -> Bits {
        let mut acc = self.const_bits(0);
        let uc = c as u64;
        for k in 0..W {
            if (uc >> k) & 1 != 0 {
                let sh = self.shl_const(a, k as u32);
                let f = self.fls();
                acc = self.add_bits(acc, sh, f);
            }
        }
        acc
    }

    fn or_reduce(&mut self, a: &[i32]) -> i32 {
        let mut acc = self.fls();
        for &l in a {
            acc = self.or2(acc, l);
        }
        acc
    }

    /// Unsigned less-than over full vectors (LSB-to-MSB chain).
    fn ult(&mut self, a: Bits, b: Bits) -> i32 {
        let mut lt = self.fls();
        for i in 0..W {
            let na = -a[i];
            let bit_lt = self.and2(na, b[i]);
            let eq = self.xor2(a[i], b[i]);
            let neq = eq;
            let keep = self.and2(-neq, lt);
            lt = self.or2(bit_lt, keep);
        }
        lt
    }

    /// Signed less-than: flip the sign bits, compare unsigned.
    fn slt(&mut self, a: Bits, b: Bits) -> i32 {
        let mut fa = a;
        let mut fb = b;
        fa[W - 1] = -fa[W - 1];
        fb[W - 1] = -fb[W - 1];
        self.ult(fa, fb)
    }

    fn eq_bits(&mut self, a: Bits, b: Bits) -> i32 {
        let mut acc = self.tru();
        for i in 0..W {
            let x = self.xor2(a[i], b[i]);
            acc = self.and2(acc, -x);
        }
        acc
    }

    fn bit0(&self, l: i32) -> Bits {
        let mut out = [self.fls(); W];
        out[0] = l;
        out
    }

    fn fresh_vec(&mut self, bits: u8, signed: bool) -> Bits {
        let b = (bits.max(1) as usize).min(W);
        let mut out = [self.fls(); W];
        for o in out.iter_mut().take(b) {
            *o = self.sat.new_var();
        }
        let ext = if signed { out[b - 1] } else { self.fls() };
        for o in out.iter_mut().skip(b) {
            *o = ext;
        }
        out
    }

    fn wrap_bits(&self, a: Bits, bits: u8, signed: bool) -> Bits {
        let b = (bits.max(1) as usize).min(W);
        if b == W {
            return a;
        }
        let mut out = a;
        let ext = if signed { a[b - 1] } else { self.fls() };
        for o in out.iter_mut().skip(b) {
            *o = ext;
        }
        out
    }

    fn blast(&mut self, t: TermId) -> Bits {
        if let Some(&b) = self.memo.get(&t) {
            return b;
        }
        let out = match self.store.term(t).clone() {
            Term::Const(v) => self.const_bits(v),
            // Raw argument word: 64 free bits.
            Term::Var { .. } => self.fresh_vec(64, false),
            Term::FbVar { slot, .. } => {
                let ty = self
                    .store
                    .fb_tys
                    .get(slot as usize)
                    .copied()
                    .unwrap_or(roccc_cparse::types::IntType::signed(64));
                self.fresh_vec(ty.bits, ty.signed)
            }
            Term::Wrap { bits, signed, arg } => {
                let a = self.blast(arg);
                self.wrap_bits(a, bits, signed)
            }
            Term::Op { op, args } => self.blast_op(op, &args),
        };
        self.memo.insert(t, out);
        out
    }

    fn blast_op(&mut self, op: TOp, args: &[TermId]) -> Bits {
        match op {
            TOp::Add => {
                let mut acc = self.blast(args[0]);
                for &a in &args[1..] {
                    let b = self.blast(a);
                    let f = self.fls();
                    acc = self.add_bits(acc, b, f);
                }
                acc
            }
            TOp::Mul => {
                // Constant coefficient (canonically first) → shift-adds;
                // a residual variable product is uninterpreted.
                let consts: Vec<i64> = args
                    .iter()
                    .filter_map(|&a| match self.store.term(a) {
                        Term::Const(v) => Some(*v),
                        _ => None,
                    })
                    .collect();
                let vars: Vec<TermId> = args
                    .iter()
                    .filter(|&&a| !matches!(self.store.term(a), Term::Const(_)))
                    .copied()
                    .collect();
                let core = match vars.len() {
                    0 => {
                        let p = consts.iter().fold(1i64, |a, &b| a.wrapping_mul(b));
                        self.const_bits(p)
                    }
                    1 => self.blast(vars[0]),
                    _ => self.fresh_vec(64, false), // uninterpreted product
                };
                let k: i64 = consts.iter().fold(1i64, |a, &b| a.wrapping_mul(b));
                if k == 1 {
                    core
                } else {
                    self.mul_const(core, k)
                }
            }
            TOp::And | TOp::Or | TOp::Xor => {
                let mut acc = self.blast(args[0]);
                for &a in &args[1..] {
                    let b = self.blast(a);
                    for i in 0..W {
                        acc[i] = match op {
                            TOp::And => self.and2(acc[i], b[i]),
                            TOp::Or => self.or2(acc[i], b[i]),
                            _ => self.xor2(acc[i], b[i]),
                        };
                    }
                }
                acc
            }
            TOp::Neg => {
                let a = self.blast(args[0]);
                self.neg_bits(a)
            }
            TOp::Not => {
                let mut a = self.blast(args[0]);
                for l in a.iter_mut() {
                    *l = -*l;
                }
                a
            }
            TOp::Bool => {
                let a = self.blast(args[0]);
                let nz = self.or_reduce(&a);
                self.bit0(nz)
            }
            TOp::ShAmt => {
                let a = self.blast(args[0]);
                let neg = a[W - 1];
                let big = self.or_reduce(&a[6..W - 1]);
                let mut out = [self.fls(); W];
                for i in 0..6 {
                    let t = self.tru();
                    let in_range = self.mux1(big, t, a[i]);
                    let f = self.fls();
                    out[i] = self.mux1(neg, f, in_range);
                }
                out
            }
            TOp::Shr => {
                if let Term::Const(k) = *self.store.term(args[1]) {
                    let a = self.blast(args[0]);
                    let k = k.clamp(0, 63) as usize;
                    let mut out = [self.fls(); W];
                    for i in 0..W {
                        out[i] = a[(i + k).min(W - 1)];
                    }
                    out
                } else {
                    self.fresh_vec(64, false) // uninterpreted dynamic shift
                }
            }
            TOp::Shl | TOp::Div | TOp::Rem | TOp::Lut(_) => {
                // Uninterpreted; hash-consing already shares equal terms.
                self.fresh_vec(64, false)
            }
            TOp::Slt => {
                let a = self.blast(args[0]);
                let b = self.blast(args[1]);
                let l = self.slt(a, b);
                self.bit0(l)
            }
            TOp::Sle => {
                let a = self.blast(args[0]);
                let b = self.blast(args[1]);
                let gt = self.slt(b, a);
                self.bit0(-gt)
            }
            TOp::Seq => {
                let a = self.blast(args[0]);
                let b = self.blast(args[1]);
                let e = self.eq_bits(a, b);
                self.bit0(e)
            }
            TOp::Sne => {
                let a = self.blast(args[0]);
                let b = self.blast(args[1]);
                let e = self.eq_bits(a, b);
                self.bit0(-e)
            }
            TOp::Mux => {
                let c = self.blast(args[0]);
                let t = self.blast(args[1]);
                let e = self.blast(args[2]);
                let nz = self.or_reduce(&c);
                let mut out = [self.fls(); W];
                for i in 0..W {
                    out[i] = self.mux1(nz, t[i], e[i]);
                }
                out
            }
        }
    }

    fn leaf_value(&self, bits: Bits) -> i64 {
        let mut v: u64 = 0;
        for (i, &l) in bits.iter().enumerate() {
            if self.sat.value(l) {
                v |= 1 << i;
            }
        }
        v as i64
    }
}

/// Checks `l ≡ r (mod 2^bits)` with the SAT fallback. Returns the outcome
/// and `(stats, vars, clauses)`.
pub fn sat_equal(
    store: &TermStore,
    l: TermId,
    r: TermId,
    bits: u8,
    conflict_budget: u64,
) -> (SatOutcome, SatStats, usize, usize) {
    let mut bl = Blaster::new(store);
    let lb = bl.blast(l);
    let rb = bl.blast(r);
    let n = (bits.max(1) as usize).min(W);
    let mut diff = Vec::with_capacity(n);
    for i in 0..n {
        diff.push(bl.xor2(lb[i], rb[i]));
    }
    bl.sat.add_clause(&diff);
    let res = bl.sat.solve(conflict_budget);
    let vars = bl.sat.num_vars();
    let clauses = bl.sat.num_clauses();
    let stats = bl.sat.stats;
    let outcome = match res {
        SolveResult::Unsat => SatOutcome::Equal,
        SolveResult::Unknown => SatOutcome::Unknown,
        SolveResult::Sat => {
            let mut vars_out = HashMap::new();
            let mut fbs_out = HashMap::new();
            for (&t, &b) in &bl.memo {
                match store.term(t) {
                    Term::Var { port, lag } => {
                        vars_out.insert((*port, *lag), bl.leaf_value(b));
                    }
                    Term::FbVar { slot, lag } => {
                        fbs_out.insert((*slot, *lag), bl.leaf_value(b));
                    }
                    _ => {}
                }
            }
            SatOutcome::Candidate(vars_out, fbs_out)
        }
    };
    (outcome, stats, vars, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::types::IntType;

    fn store() -> TermStore {
        TermStore::new(vec![IntType::int(), IntType::int()], vec![])
    }

    #[test]
    fn masked_add_equivalence_proved() {
        // (a + b) & 0xFF  ≡  (b + a) mod 2^8 — different term shapes on
        // purpose: build one side without the smart constructors.
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 0);
        let raw_sum = s.mk(Term::Op {
            op: TOp::Add,
            args: vec![a, b],
        });
        let mask = s.cst(0xFF);
        let l = s.mk(Term::Op {
            op: TOp::And,
            args: vec![raw_sum, mask],
        });
        let r = s.mk(Term::Op {
            op: TOp::Add,
            args: vec![b, a],
        });
        let (out, ..) = sat_equal(&s, l, r, 8, 100_000);
        assert!(matches!(out, SatOutcome::Equal));
    }

    #[test]
    fn off_by_one_refuted_with_model() {
        let mut s = store();
        let a = s.var(0, 0);
        let one = s.cst(1);
        let l = s.add(vec![a, one]);
        let (out, ..) = sat_equal(&s, l, a, 16, 100_000);
        let SatOutcome::Candidate(vars, _) = out else {
            panic!("expected a counterexample candidate");
        };
        let av = vars.get(&(0, 0)).copied().unwrap_or(0);
        // The model must actually distinguish the sides at 16 bits.
        let w = IntType::signed(16);
        assert_ne!(w.wrap(av.wrapping_add(1)), w.wrap(av));
    }

    #[test]
    fn negation_identity_proved() {
        // -(-a) ≡ a at full width, via raw nodes.
        let mut s = store();
        let a = s.var(0, 0);
        let n1 = s.mk(Term::Op {
            op: TOp::Neg,
            args: vec![a],
        });
        let n2 = s.mk(Term::Op {
            op: TOp::Neg,
            args: vec![n1],
        });
        let (out, ..) = sat_equal(&s, n2, a, 64, 200_000);
        assert!(matches!(out, SatOutcome::Equal));
    }

    #[test]
    fn signed_compare_blasts_correctly() {
        // (a < b) is refutable and the model satisfies the claimed order.
        let mut s = store();
        let a = s.var(0, 0);
        let b = s.var(1, 0);
        let l = s.mk(Term::Op {
            op: TOp::Slt,
            args: vec![a, b],
        });
        let one = s.cst(1);
        let (out, ..) = sat_equal(&s, l, one, 1, 100_000);
        let SatOutcome::Candidate(vars, _) = out else {
            panic!("expected candidate: a<b is not always true");
        };
        let av = vars.get(&(0, 0)).copied().unwrap_or(0);
        let bv = vars.get(&(1, 0)).copied().unwrap_or(0);
        assert!(av >= bv, "model must violate a<b, got {av} < {bv}");
    }
}
