//! In-tree CDCL SAT solver (std-only).
//!
//! Classic architecture: two-watched-literal propagation, first-UIP
//! conflict analysis with clause learning, activity-driven branching
//! (lazy-heap VSIDS), phase saving, geometric restarts, and a hard
//! conflict budget that yields an honest [`SolveResult::Unknown`].
//!
//! Literals use DIMACS convention: variable `v >= 1`, literal `v` or `-v`.
//! Clauses are only added before `solve` is called.

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (read it via [`Solver::value`]).
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// The conflict budget ran out before a verdict.
    Unknown,
}

/// Search statistics, reported in certificates.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Branching decisions.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Clauses learned.
    pub learned: u64,
}

const NO_REASON: u32 = u32::MAX;

/// A CDCL solver instance.
pub struct Solver {
    nvars: usize,
    clauses: Vec<Vec<i32>>,
    /// Watch lists indexed by literal code (`2v` for `v`, `2v+1` for `-v`).
    watches: Vec<Vec<u32>>,
    /// Per-variable assignment: 0 unset, 1 true, -1 false.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<i32>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: std::collections::BinaryHeap<(u64, u32)>,
    phase: Vec<bool>,
    ok: bool,
    /// Search statistics for the last `solve`.
    pub stats: SatStats,
}

fn lidx(l: i32) -> usize {
    debug_assert!(l != 0);
    (l.unsigned_abs() as usize) * 2 + (l < 0) as usize
}

fn var(l: i32) -> usize {
    l.unsigned_abs() as usize
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            nvars: 0,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2],
            assign: vec![0],
            level: vec![0],
            reason: vec![NO_REASON],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0],
            var_inc: 1.0,
            heap: std::collections::BinaryHeap::new(),
            phase: vec![false],
            ok: true,
            stats: SatStats::default(),
        }
    }

    /// Allocates a fresh variable, returning its (positive) literal.
    pub fn new_var(&mut self) -> i32 {
        self.nvars += 1;
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push((0, self.nvars as u32));
        self.nvars as i32
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    fn lit_value(&self, l: i32) -> i8 {
        let a = self.assign[var(l)];
        if l < 0 {
            -a
        } else {
            a
        }
    }

    /// Adds a clause; call only before `solve`. Tautologies are dropped,
    /// level-0-false literals removed, duplicates deduped.
    pub fn add_clause(&mut self, lits: &[i32]) {
        if !self.ok {
            return;
        }
        let mut c: Vec<i32> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(var(l) <= self.nvars, "clause uses unallocated var");
            if self.lit_value(l) == 1 {
                return; // satisfied at level 0
            }
            if self.lit_value(l) == -1 {
                continue; // false at level 0
            }
            if c.contains(&-l) {
                return; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let cr = self.clauses.len() as u32;
                self.watches[lidx(c[0])].push(cr);
                self.watches[lidx(c[1])].push(cr);
                self.clauses.push(c);
            }
        }
    }

    fn enqueue(&mut self, l: i32, from: u32) {
        debug_assert_eq!(self.lit_value(l), 0);
        let v = var(l);
        self.assign[v] = if l > 0 { 1 } else { -1 };
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let fl = -p; // literal now false
            let mut ws = std::mem::take(&mut self.watches[lidx(fl)]);
            let mut i = 0;
            while i < ws.len() {
                let cr = ws[i];
                let w0 = {
                    let c = &mut self.clauses[cr as usize];
                    if c[0] == fl {
                        c.swap(0, 1);
                    }
                    debug_assert_eq!(c[1], fl);
                    c[0]
                };
                if self.lit_value(w0) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut moved = false;
                {
                    let c = &mut self.clauses[cr as usize];
                    for k in 2..c.len() {
                        if self.assign[var(c[k])] == 0
                            || (c[k] > 0) == (self.assign[var(c[k])] == 1)
                        {
                            c.swap(1, k);
                            moved = true;
                            break;
                        }
                    }
                }
                if moved {
                    let nw = self.clauses[cr as usize][1];
                    self.watches[lidx(nw)].push(cr);
                    ws.swap_remove(i);
                    continue;
                }
                if self.lit_value(w0) == -1 {
                    // Conflict: restore the remaining watches and bail.
                    self.watches[lidx(fl)] = ws;
                    self.qhead = self.trail.len();
                    return Some(cr);
                }
                self.enqueue(w0, cr);
                i += 1;
            }
            self.watches[lidx(fl)] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            let snapshot: Vec<(u64, u32)> = (1..=self.nvars)
                .map(|u| (self.activity[u].to_bits(), u as u32))
                .collect();
            self.heap = snapshot.into_iter().collect();
        } else {
            self.heap.push((self.activity[v].to_bits(), v as u32));
        }
    }

    /// First-UIP conflict analysis: returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<i32>, u32) {
        let cur = self.trail_lim.len() as u32;
        let mut seen = vec![false; self.nvars + 1];
        let mut learnt: Vec<i32> = vec![0];
        let mut counter = 0usize;
        let mut idx = self.trail.len();
        let mut p: i32 = 0;
        loop {
            let start = if p == 0 { 0 } else { 1 };
            let lits = self.clauses[confl as usize].clone();
            for &q in &lits[start..] {
                let v = var(q);
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] == cur {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                idx -= 1;
                p = self.trail[idx];
                if seen[var(p)] {
                    break;
                }
            }
            seen[var(p)] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[var(p)];
            debug_assert_ne!(confl, NO_REASON);
        }
        learnt[0] = -p;
        let bj = learnt[1..]
            .iter()
            .map(|&q| self.level[var(q)])
            .max()
            .unwrap_or(0);
        // Put a max-level literal in the second watch slot.
        if learnt.len() > 1 {
            let k = learnt[1..]
                .iter()
                .position(|&q| self.level[var(q)] == bj)
                .unwrap()
                + 1;
            learnt.swap(1, k);
        }
        (learnt, bj)
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.trail_lim.len() as u32 > lvl {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = var(l);
                self.phase[v] = l > 0;
                self.assign[v] = 0;
                self.reason[v] = NO_REASON;
                self.heap.push((self.activity[v].to_bits(), v as u32));
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        while let Some((_, v)) = self.heap.pop() {
            let v = v as usize;
            if self.assign[v] == 0 {
                self.trail_lim.push(self.trail.len());
                let l = if self.phase[v] { v as i32 } else { -(v as i32) };
                self.enqueue(l, NO_REASON);
                self.stats.decisions += 1;
                return true;
            }
        }
        // Lazy heap may miss vars never bumped: linear fallback.
        for v in 1..=self.nvars {
            if self.assign[v] == 0 {
                self.trail_lim.push(self.trail.len());
                let l = if self.phase[v] { v as i32 } else { -(v as i32) };
                self.enqueue(l, NO_REASON);
                self.stats.decisions += 1;
                return true;
            }
        }
        false
    }

    /// Runs the search with a conflict budget.
    pub fn solve(&mut self, conflict_budget: u64) -> SolveResult {
        self.stats = SatStats::default();
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut restart_at: u64 = 128;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                if self.stats.conflicts >= conflict_budget {
                    self.cancel_until(0);
                    return SolveResult::Unknown;
                }
                let (learnt, bj) = self.analyze(confl);
                self.cancel_until(bj);
                self.stats.learned += 1;
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let cr = self.clauses.len() as u32;
                    self.watches[lidx(learnt[0])].push(cr);
                    self.watches[lidx(learnt[1])].push(cr);
                    let l0 = learnt[0];
                    self.clauses.push(learnt);
                    self.enqueue(l0, cr);
                }
                self.var_inc *= 1.0 / 0.95;
            } else if self.stats.conflicts >= restart_at {
                restart_at = restart_at * 3 / 2 + 64;
                self.cancel_until(0);
            } else if !self.decide() {
                return SolveResult::Sat;
            }
        }
    }

    /// Model value of `lit` after a `Sat` result (unassigned → false).
    pub fn value(&self, l: i32) -> bool {
        self.lit_value(l) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a, b]);
        s.add_clause(&[-a, b]);
        assert_eq!(s.solve(1000), SolveResult::Sat);
        assert!(s.value(b));

        let mut u = Solver::new();
        let x = u.new_var();
        u.add_clause(&[x]);
        u.add_clause(&[-x]);
        assert_eq!(u.solve(1000), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i sits in hole j.
        let mut s = Solver::new();
        let mut p = [[0i32; 2]; 3];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        for i in 0..3 {
            for k in (i + 1)..3 {
                for (a, b) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[-a, -b]);
                }
            }
        }
        assert_eq!(s.solve(100_000), SolveResult::Unsat);
    }

    #[test]
    fn chain_implication_propagates() {
        let mut s = Solver::new();
        let vars: Vec<i32> = (0..32).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[-w[0], w[1]]);
        }
        s.add_clause(&[vars[0]]);
        assert_eq!(s.solve(1000), SolveResult::Sat);
        assert!(s.value(vars[31]));
    }

    #[test]
    fn budget_yields_unknown_on_hard_instance() {
        // Pigeonhole 7 into 6 with a 10-conflict budget must time out.
        let n = 7;
        let m = 6;
        let mut s = Solver::new();
        let mut p = vec![vec![0i32; m]; n];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&row.clone());
        }
        for i in 0..n {
            for k in (i + 1)..n {
                for (a, b) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[-a, -b]);
                }
            }
        }
        assert_eq!(s.solve(10), SolveResult::Unknown);
    }
}
