//! The Table 1 harness: compiles every kernel, scores both sides with the
//! shared Virtex-II model, and renders the paper-style comparison table.

use crate::baselines;
use crate::kernels;
use crate::paper::{paper_row, PaperRow};
use roccc::{compile_with_model, CompileOptions, Compiled, UnrollStrategy};
use roccc_hlir::kernel::Kernel;
use roccc_netlist::cells::Netlist;
use roccc_synth::{fast_estimate, map_netlist, MultiplierStyle, ResourceReport, VirtexII};

/// One benchmark definition.
pub struct Benchmark {
    /// Row name (matches [`crate::paper::TABLE1`]).
    pub name: &'static str,
    /// C source of the ROCCC-side kernel.
    pub source: String,
    /// Kernel function name.
    pub func: &'static str,
    /// Compile options (target period per the paper's reported clocks).
    pub opts: CompileOptions,
    /// Multiplier mapping style for this row.
    pub mult_style: MultiplierStyle,
    /// Builds the baseline IP-style netlist.
    pub baseline: fn() -> Netlist,
    /// ROCCC instantiates the same lookup-table IP, so both sides are
    /// identical by construction (§5: "they have exactly the same
    /// performance").
    pub lut_row: bool,
    /// Whether the comparison includes the smart buffer / controller
    /// (streaming kernels: FIR, DCT, wavelet).
    pub streaming: bool,
}

fn opts(period_ns: f64) -> CompileOptions {
    CompileOptions {
        target_period_ns: period_ns,
        unroll: UnrollStrategy::Keep,
        ..CompileOptions::default()
    }
}

/// All nine Table 1 benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "bit_correlator",
            source: kernels::bit_correlator_source(),
            func: "bit_correlator",
            opts: opts(6.9),
            mult_style: MultiplierStyle::Lut,
            baseline: baselines::bit_correlator,
            lut_row: false,
            streaming: false,
        },
        Benchmark {
            name: "mul_acc",
            source: kernels::mul_acc_source(),
            func: "mul_acc",
            opts: opts(4.2),
            mult_style: MultiplierStyle::Block,
            baseline: baselines::mul_acc,
            lut_row: false,
            streaming: false,
        },
        Benchmark {
            name: "udiv",
            source: kernels::udiv_source(),
            func: "udiv",
            opts: opts(3.7),
            mult_style: MultiplierStyle::Lut,
            baseline: baselines::udiv,
            lut_row: false,
            streaming: false,
        },
        Benchmark {
            name: "square_root",
            source: kernels::square_root_source(),
            func: "square_root",
            opts: opts(4.5),
            mult_style: MultiplierStyle::Lut,
            baseline: baselines::square_root,
            lut_row: false,
            streaming: false,
        },
        Benchmark {
            name: "cos",
            source: kernels::cos_source(),
            func: "cos_lut",
            opts: opts(5.9),
            mult_style: MultiplierStyle::Lut,
            baseline: baselines::cos_lut,
            lut_row: true,
            streaming: false,
        },
        Benchmark {
            name: "arbitrary_lut",
            source: kernels::rom_lut_source(),
            func: "rom_lut",
            opts: opts(5.9),
            mult_style: MultiplierStyle::Lut,
            baseline: baselines::rom_lut,
            lut_row: true,
            streaming: false,
        },
        Benchmark {
            name: "fir",
            source: kernels::fir_source(),
            func: "fir",
            opts: opts(5.2),
            mult_style: MultiplierStyle::Lut,
            baseline: baselines::fir,
            lut_row: false,
            streaming: true,
        },
        Benchmark {
            name: "dct",
            source: kernels::dct_source(),
            func: "dct",
            opts: opts(7.5),
            mult_style: MultiplierStyle::Lut,
            baseline: baselines::dct,
            lut_row: false,
            streaming: true,
        },
        Benchmark {
            name: "wavelet",
            source: kernels::wavelet_source(),
            func: "wavelet",
            opts: opts(9.9),
            mult_style: MultiplierStyle::Lut,
            baseline: baselines::wavelet,
            lut_row: false,
            streaming: true,
        },
    ]
}

/// Estimated smart-buffer + address-generator + controller resources for a
/// streaming kernel (the wavelet row "includes the address generator,
/// smart buffer and data path").
pub fn buffer_overhead(kernel: &Kernel, model: &VirtexII) -> ResourceReport {
    let mut ffs = 0u64;
    let mut luts = 0u64;
    for w in &kernel.windows {
        let extent = w.extent();
        let bits = w.elem.bits as u64;
        match extent.len() {
            1 => {
                // Window registers plus staging.
                ffs += (extent[0] as u64 + 1) * bits;
                luts += 8; // shift-enable decode
            }
            2 => {
                // Line buffers: (rows−1) lines of the array width plus the
                // register window.
                let row_width = if w.dims.len() == 2 { w.dims[1] } else { 1 } as u64;
                ffs += (extent[0] as u64 - 1) * row_width * bits
                    + (extent[0] * extent[1]) as u64 * bits;
                luts += 24;
            }
            _ => {}
        }
    }
    // Address generators: one counter + comparator per dimension per port.
    let ports = (kernel.windows.len() + kernel.outputs.len()).max(1) as u64;
    let dims = kernel.dims.len().max(1) as u64;
    luts += ports * dims * 48; // 24-bit counter + bound compare
    ffs += ports * dims * 24;
    // Higher-level controller FSM.
    luts += 40;
    ffs += 16;
    ResourceReport {
        luts,
        ffs,
        slices: model.slices(luts, ffs),
        mult_blocks: 0,
        critical_path_ns: 0.0,
        fmax_mhz: f64::INFINITY,
        power_mw: 0.0,
    }
}

/// One measured Table 1 row.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Row name.
    pub name: &'static str,
    /// Baseline (IP-style) resources under the shared model.
    pub ip: ResourceReport,
    /// Compiler-output resources under the shared model.
    pub roccc: ResourceReport,
    /// Fast-estimator result for the compiler side (ablation data).
    pub roccc_fast: ResourceReport,
    /// Paper's published numbers.
    pub paper: PaperRow,
    /// Outputs per cycle of the compiled data path (DCT: 8 vs the IP's 1).
    pub outputs_per_cycle: usize,
}

impl MeasuredRow {
    /// Measured clock ratio (ROCCC ÷ IP).
    pub fn clock_ratio(&self) -> f64 {
        self.roccc.fmax_mhz / self.ip.fmax_mhz
    }

    /// Measured area ratio (ROCCC ÷ IP).
    pub fn area_ratio(&self) -> f64 {
        self.roccc.slices as f64 / self.ip.slices.max(1) as f64
    }
}

/// Compiles one benchmark and returns the compiled kernel.
///
/// # Errors
///
/// Propagates compiler errors (should not happen for the built-in rows).
pub fn compile_benchmark(b: &Benchmark) -> Result<Compiled, roccc::CompileError> {
    let model = VirtexII::with_mult_style(b.mult_style);
    compile_with_model(&b.source, b.func, &b.opts, &model)
}

/// Compiles, maps, and scores one Table 1 row.
pub fn measure_row(b: &Benchmark) -> MeasuredRow {
    let model = VirtexII::with_mult_style(b.mult_style);
    let ip = map_netlist(&(b.baseline)(), &model);
    let hw = compile_benchmark(b).expect("built-in benchmark compiles");
    let mut roccc_rep = if b.lut_row {
        // ROCCC instantiates the same LUT IP core: identical.
        ip.clone()
    } else {
        map_netlist(&hw.netlist, &model)
    };
    let mut fast = if b.lut_row {
        // The compiler instantiates the IP: the estimator reports
        // the IP's numbers, like the full flow does.
        ip.clone()
    } else {
        fast_estimate(&hw.datapath, &model)
    };
    if b.streaming {
        let buf = buffer_overhead(&hw.kernel, &model);
        roccc_rep = roccc_rep.merge(&buf);
        fast = fast.merge(&buf);
    }
    let outputs_per_cycle = hw.datapath.throughput_per_cycle();
    MeasuredRow {
        name: b.name,
        ip,
        roccc: roccc_rep,
        roccc_fast: fast,
        paper: *paper_row(b.name).expect("paper row exists"),
        outputs_per_cycle,
    }
}

/// Runs the full Table 1 comparison, compiling and scoring every kernel
/// concurrently (one scoped thread per row; rows are independent). Row
/// order matches [`benchmarks`].
pub fn run_table1() -> Vec<MeasuredRow> {
    let benches = benchmarks();
    std::thread::scope(|s| {
        let handles: Vec<_> = benches
            .iter()
            .map(|b| s.spawn(move || measure_row(b)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("table1 row thread panicked"))
            .collect()
    })
}

/// Renders the measured rows in the paper's Table 1 layout, with the
/// paper's own numbers alongside.
pub fn render_table(rows: &[MeasuredRow]) -> String {
    let mut s = String::new();
    s.push_str(
        "benchmark        |  IP clk  IP slc | ROCCC clk ROCCC slc | %Clock %Area | paper %Clock %Area\n",
    );
    s.push_str(
        "-----------------+-----------------+---------------------+--------------+-------------------\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<16} | {:>7.0} {:>7} | {:>9.0} {:>9} | {:>6.3} {:>5.2} | {:>12.3} {:>5.2}\n",
            r.name,
            r.ip.fmax_mhz,
            r.ip.slices,
            r.roccc.fmax_mhz,
            r.roccc.slices,
            r.clock_ratio(),
            r.area_ratio(),
            r.paper.clock_ratio(),
            r.paper.area_ratio(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_compiles() {
        for b in benchmarks() {
            let hw = compile_benchmark(&b).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!hw.netlist.cells.is_empty(), "{}", b.name);
        }
    }

    #[test]
    fn lut_rows_have_unit_ratios() {
        let rows = run_table1();
        for r in rows
            .iter()
            .filter(|r| matches!(r.name, "cos" | "arbitrary_lut"))
        {
            assert!((r.clock_ratio() - 1.0).abs() < 1e-9, "{}", r.name);
            assert!((r.area_ratio() - 1.0).abs() < 1e-9, "{}", r.name);
        }
    }

    #[test]
    fn compute_rows_show_compiler_overhead() {
        let rows = run_table1();
        // Headline: ROCCC takes more area than hand IP on the bit-twiddling
        // kernels, comparable clock overall.
        // The bit-twiddling kernels pay for 32-bit C temporaries and
        // generic mux/compare structures the hand design avoids.
        let udiv = rows.iter().find(|r| r.name == "udiv").unwrap();
        assert!(udiv.area_ratio() > 1.5, "{:?}", udiv);
        let sqrt = rows.iter().find(|r| r.name == "square_root").unwrap();
        assert!(sqrt.area_ratio() > 1.5, "{:?}", sqrt);
        // The tiny correlator is near parity in our model (the paper's IP
        // exploits sub-slice packing our cost model does not resolve).
        let bc = rows.iter().find(|r| r.name == "bit_correlator").unwrap();
        assert!(bc.area_ratio() > 0.7, "{:?}", bc);
    }

    #[test]
    fn dct_throughput_is_eight_per_cycle() {
        let rows = run_table1();
        let dct = rows.iter().find(|r| r.name == "dct").unwrap();
        assert_eq!(dct.outputs_per_cycle, 8);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = run_table1();
        let text = render_table(&rows);
        for b in benchmarks() {
            assert!(text.contains(b.name), "missing {}", b.name);
        }
    }
}
