//! Hand-structured baseline cores for every Table 1 row.
//!
//! Each builder produces the netlist a hardware engineer (or the Xilinx IP
//! generator) would produce: digit-recurrence dividers and square roots,
//! distributed-arithmetic FIR, half-wave cosine ROMs, block multipliers for
//! the MAC. The scalar cores are functionally verified against software
//! models; the streaming engines (DCT, wavelet) are structural
//! area/timing models whose representative slice is verified.

use crate::builder::NetBuilder;
use roccc_cparse::types::IntType;
use roccc_netlist::cells::Netlist;
use roccc_suifvm::ir::Opcode;

/// The constant mask the bit correlator compares against (arbitrary but
/// fixed; the paper does not publish theirs).
pub const CORRELATOR_MASK: u8 = 0xA5;

/// 8-bit bit correlator: counts bits of the input equal to the mask.
pub fn bit_correlator() -> Netlist {
    let mut b = NetBuilder::new();
    let x = b.input("x", IntType::unsigned(8));
    let mut ones = Vec::new();
    for k in 0..8u8 {
        let xb = b.bit(x, k);
        let mb = b.constant(((CORRELATOR_MASK >> k) & 1) as i64);
        let eq = b.op(Opcode::Seq, vec![xb, mb], false, 1);
        // Pipeline register after the match level (the IP is pipelined).
        ones.push(b.reg(eq));
    }
    let count = b.adder_tree(&ones, false, 4);
    b.output("count", IntType::unsigned(4), count);
    b.finish(2)
}

/// 12×12 multiplier-accumulator with a new-data qualifier, as the Xilinx
/// MAC IP: embedded multiplier + accumulate register (the `nd` input
/// gates the accumulate).
pub fn mul_acc() -> Netlist {
    let mut b = NetBuilder::new();
    let a = b.input("a", IntType::signed(12));
    let x = b.input("b", IntType::signed(12));
    let nd = b.input("nd", IntType::unsigned(1));
    // Classic MAC pipelining: the product is registered before the
    // accumulate stage, so the critical path is max(mult, add), not both.
    let p = b.op(Opcode::Mul, vec![a, x], true, 24);
    let p_r = b.reg(p);
    let nd_r = b.reg(nd);
    let acc = b.feedback_reg("acc", IntType::signed(32), 0, 1);
    let sum = b.add(acc, p_r, true, 32);
    // Hold the accumulator when nd = 0.
    let held = b.mux(nd_r, sum, acc, true, 32);
    b.close_feedback(acc, held);
    b.output("q", IntType::signed(32), held);
    b.finish(2)
}

/// 8-bit unsigned restoring divider, one pipeline stage per quotient bit
/// (the classic Xilinx pipelined divider structure).
pub fn udiv() -> Netlist {
    let mut b = NetBuilder::new();
    let n = b.input("n", IntType::unsigned(8));
    let d = b.input("d", IntType::unsigned(8));
    let mut rem = b.constant(0);
    let mut quo = b.constant(0);
    let mut n_cur = n;
    let mut d_cur = d;
    for k in (0..8u8).rev() {
        // rem = (rem << 1) | n[k]
        let shifted = b.shl_const(rem, 1, 9);
        let nk = b.bit(n_cur, k);
        let rem_in = b.op(Opcode::Or, vec![shifted, nk], false, 9);
        // Trial subtract.
        let diff = b.sub(rem_in, d_cur, 10);
        let zero = b.constant(0);
        let ge = b.op(Opcode::Sle, vec![zero, diff], false, 1);
        rem = b.mux(ge, diff, rem_in, false, 9);
        let quo_sh = b.shl_const(quo, 1, 8);
        quo = b.op(Opcode::Or, vec![quo_sh, ge], false, 8);
        // Stage registers: operands ride along the pipeline.
        rem = b.reg(rem);
        quo = b.reg(quo);
        n_cur = b.reg(n_cur);
        d_cur = b.reg(d_cur);
    }
    b.output("q", IntType::unsigned(8), quo);
    b.finish(9)
}

/// 24-bit integer square root by non-restoring digit recurrence, one
/// pipeline stage per result bit (12 stages).
pub fn square_root() -> Netlist {
    let mut b = NetBuilder::new();
    let x = b.input("x", IntType::unsigned(24));
    let mut rem = b.constant(0);
    let mut root = b.constant(0);
    let mut x_cur = x;
    for i in 0..12u8 {
        // rem = (rem << 2) | x[2(11-i)+1 .. 2(11-i)]
        let sh = b.shl_const(rem, 2, 26);
        let hi = b.bit(x_cur, 2 * (11 - i) + 1);
        let lo = b.bit(x_cur, 2 * (11 - i));
        let hi_sh = b.shl_const(hi, 1, 2);
        let pair = b.op(Opcode::Or, vec![hi_sh, lo], false, 2);
        let rem_in = b.op(Opcode::Or, vec![sh, pair], false, 26);
        // test = (root << 2) | 1
        let root_sh = b.shl_const(root, 2, 14);
        let one = b.constant(1);
        let test = b.op(Opcode::Or, vec![root_sh, one], false, 14);
        let diff = b.sub(rem_in, test, 27);
        let zero = b.constant(0);
        let ge = b.op(Opcode::Sle, vec![zero, diff], false, 1);
        rem = b.mux(ge, diff, rem_in, false, 26);
        let root2 = b.shl_const(root, 1, 12);
        root = b.op(Opcode::Or, vec![root2, ge], false, 12);
        rem = b.reg(rem);
        root = b.reg(root);
        x_cur = b.reg(x_cur);
    }
    b.output("r", IntType::unsigned(12), root);
    b.finish(13)
}

/// The scaled-cosine table contents shared by the baseline and the
/// compiler-side kernel: `cos(2π·i/1024)` in signed Q1.14 stored as a
/// 16-bit offset-binary word (matching the Xilinx sine/cosine LUT output
/// format closely enough for the comparison).
pub fn cos_table_entry(i: usize) -> i64 {
    let theta = 2.0 * std::f64::consts::PI * (i as f64) / 1024.0;
    let v = (theta.cos() * 16383.0).round() as i64;
    // Offset into unsigned 16-bit.
    v + 16384
}

/// 10-bit in / 16-bit out cosine lookup exploiting half-wave symmetry:
/// a 512-entry ROM plus reconstruction ("this cos/sin lookup table stores
/// only half wave", §5).
pub fn cos_lut() -> Netlist {
    let mut b = NetBuilder::new();
    let theta = b.input("theta", IntType::unsigned(10));
    // addr = theta mod 512; upper half mirrors with sign flip.
    let mask = b.constant(511);
    let addr = b.op(Opcode::And, vec![theta, mask], false, 9);
    let half: Vec<i64> = (0..512).map(|i| cos_table_entry(i) - 16384).collect();
    let rom = b.rom("cos_half", IntType::signed(15), half, addr);
    let in_second_half = b.bit(theta, 9);
    let zero = b.constant(0);
    let neg = b.sub(zero, rom, 16);
    let val = b.mux(in_second_half, neg, rom, true, 16);
    let offset = b.constant(16384);
    let out = b.add(val, offset, false, 16);
    b.output("c", IntType::unsigned(16), out);
    b.finish(1)
}

/// Deterministic pseudo-random contents for the arbitrary 1024×16 table
/// (the paper uses an unspecified user table with the same port sizes).
pub fn arbitrary_table_entry(i: usize) -> i64 {
    let mut h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17);
    h ^= h >> 23;
    (h % 65536) as i64
}

/// Arbitrary 10-bit in / 16-bit out ROM: full 1024-entry table (no
/// symmetry to exploit — hence ~3.7× the area of the half-wave cosine).
pub fn rom_lut() -> Netlist {
    let mut b = NetBuilder::new();
    let addr = b.input("addr", IntType::unsigned(10));
    let data: Vec<i64> = (0..1024).map(arbitrary_table_entry).collect();
    let out = b.rom("user_rom", IntType::unsigned(16), data, addr);
    b.output("data", IntType::unsigned(16), out);
    b.finish(1)
}

/// The two 5-tap coefficient sets of the FIR comparison (the paper's
/// Figure 3 taps and a complementary smoothing set).
pub const FIR_COEFFS: [[i64; 5]; 2] = [[3, 5, 7, 9, -1], [1, 4, 6, 4, 1]];

/// Distributed-arithmetic 5-tap FIR pair ("two 5-tap 8-bit constant
/// coefficient filters, whose bus sizes are 16-bit"): per filter, one
/// partial-sum ROM per sample bit plus a shift-accumulate tree — the
/// classic parallel-DA structure Xilinx FIR IP uses.
pub fn fir() -> Netlist {
    let mut b = NetBuilder::new();
    let xs: Vec<_> = (0..5)
        .map(|i| b.input(&format!("x{i}"), IntType::signed(8)))
        .collect();
    let mut fir_levels = 0u32;
    for (f, coeffs) in FIR_COEFFS.iter().enumerate() {
        // Partial-sum ROM: entry m = Σ coeff[i]·bit_i(m).
        let table: Vec<i64> = (0..32)
            .map(|m| {
                (0..5)
                    .map(|i| if (m >> i) & 1 == 1 { coeffs[i] } else { 0 })
                    .sum()
            })
            .collect();
        let mut terms = Vec::new();
        for k in 0..8u8 {
            let bits: Vec<_> = xs.iter().map(|x| b.bit(*x, k)).collect();
            // addr = concatenated sample bits.
            let mut addr = bits[0];
            for (i, bit) in bits.iter().enumerate().skip(1) {
                let sh = b.shl_const(*bit, i as u8, i as u8 + 1);
                addr = b.op(Opcode::Or, vec![addr, sh], false, i as u8 + 1);
            }
            let ps_raw = b.rom(
                &format!("da{f}_{k}"),
                IntType::signed(7),
                table.clone(),
                addr,
            );
            // Pipeline register after the partial-sum ROM (the Xilinx DA
            // FIR registers the ROM outputs).
            let ps = b.reg(ps_raw);
            let shifted = if k == 0 { ps } else { b.shl_const(ps, k, 16) };
            if k == 7 {
                // Sign-bit slice subtracts (two's-complement weighting).
                let zero = b.constant(0);
                let neg = b.sub(zero, shifted, 16);
                terms.push(neg);
            } else {
                terms.push(shifted);
            }
        }
        let (y, levels) = b.adder_tree_pipelined(&terms, true, 16);
        b.output(&format!("y{f}"), IntType::signed(16), y);
        fir_levels = levels;
    }
    b.finish(2 + fir_levels)
}

/// The 8-point DCT-II coefficient matrix in Q1.6 (values ≤ 64), the
/// fixed-point basis both sides of the DCT row use.
pub fn dct_coeff(row: usize, col: usize) -> i64 {
    let n = 8.0f64;
    let scale = if row == 0 {
        (1.0 / n).sqrt()
    } else {
        (2.0 / n).sqrt()
    };
    let v =
        scale * ((std::f64::consts::PI * (2.0 * col as f64 + 1.0) * row as f64) / (2.0 * n)).cos();
    (v * 64.0).round() as i64
}

/// One-output-per-cycle 8-point DCT ("the throughput of Xilinx DCT IP is
/// one output data per clock cycle"): a single row-product unit that the
/// control sequencer reuses across the 8 coefficient rows. The netlist
/// models that shared unit — eight 8×8 multipliers (coefficient operand
/// from a small ROM) and an adder tree — plus the row sequencing counter.
pub fn dct() -> Netlist {
    let mut b = NetBuilder::new();
    let xs: Vec<_> = (0..8)
        .map(|i| b.input(&format!("x{i}"), IntType::signed(8)))
        .collect();
    let row = b.input("row", IntType::unsigned(3));
    let mut terms = Vec::new();
    for (c, x) in xs.iter().enumerate() {
        // Coefficient ROM for this column: 8 entries, one per row.
        let table: Vec<i64> = (0..8).map(|r| dct_coeff(r, c)).collect();
        let coeff = b.rom(&format!("coef{c}"), IntType::signed(8), table, row);
        let p = b.op(Opcode::Mul, vec![*x, coeff], true, 16);
        // Registered products: one multiplier per pipeline stage.
        terms.push(b.reg(p));
    }
    let (sum, levels) = b.adder_tree_pipelined(&terms, true, 19);
    b.output("y", IntType::signed(19), sum);
    b.finish(2 + levels)
}

/// Image row width assumed by the wavelet engines (both sides use the
/// same width so line-buffer costs compare fairly).
pub const WAVELET_ROW_WIDTH: usize = 64;

/// Handwritten-style 2-D (5,3) lifting wavelet engine: the lifting
/// data path (adds, shifts) for one 2×2 output block per cycle plus two
/// full line buffers of storage — "this wavelet transform engine includes
/// the address generator, smart buffer and data path" (§5).
pub fn wavelet() -> Netlist {
    let mut b = NetBuilder::new();
    // 5×5 pixel window inputs.
    let mut px = Vec::new();
    for r in 0..5 {
        for c in 0..5 {
            px.push(b.input(&format!("p{r}{c}"), IntType::signed(16)));
        }
    }
    let at = |r: usize, c: usize| px[r * 5 + c];

    // Row lifting on rows 0..5: high at odd columns, low at even.
    let mut row_l = Vec::new(); // low-pass value per row (center col 2)
    let mut row_h = Vec::new(); // high-pass value per row (col 3)
    for r in 0..5 {
        let s = b.add(at(r, 2), at(r, 4), true, 17);
        let half = b.shr_const(s, 1, 17);
        let h = b.sub(at(r, 3), half, 18);
        let s2 = b.add(at(r, 0), at(r, 2), true, 17);
        let half2 = b.shr_const(s2, 1, 17);
        let h_prev = b.sub(at(r, 1), half2, 18);
        let hs = b.add(h_prev, h, true, 19);
        let q = b.shr_const(hs, 2, 19);
        let l = b.add(at(r, 2), q, true, 18);
        // Stage boundary between the row pass and the column pass.
        row_l.push(b.reg(l));
        row_h.push(b.reg(h));
    }
    // Column lifting on the row results (rows 0,2,4 even / 1,3 odd).
    let lift_col = |b: &mut NetBuilder, v: &[roccc_netlist::cells::CellId]| {
        let s = b.add(v[2], v[4], true, 19);
        let half = b.shr_const(s, 1, 19);
        let hh = b.sub(v[3], half, 20);
        let s2 = b.add(v[0], v[2], true, 19);
        let half2 = b.shr_const(s2, 1, 19);
        let h_prev = b.sub(v[1], half2, 20);
        let hs = b.add(h_prev, hh, true, 21);
        let q = b.shr_const(hs, 2, 21);
        let ll = b.add(v[2], q, true, 20);
        (ll, hh)
    };
    let (ll, lh) = lift_col(&mut b, &row_l);
    let (hl, hh) = lift_col(&mut b, &row_h);
    for (name, v) in [("ll", ll), ("lh", lh), ("hl", hl), ("hh", hh)] {
        let r = b.reg(v);
        b.output(name, IntType::signed(16), r);
    }

    // Line buffers: a handwritten engine keeps 4 rows of 16-bit pixels in
    // SRL/FF storage to feed the 5-row window (modeled as register chains).
    let feed = px[0];
    for _line in 0..4 {
        let mut cur = feed;
        for _ in 0..WAVELET_ROW_WIDTH {
            cur = b.reg(cur);
        }
        // Terminate the chain into the window (already counted as inputs);
        // the last register output is intentionally left for the next line.
        let _ = cur;
    }
    b.finish(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_netlist::NetlistSim;

    #[test]
    fn bit_correlator_counts_matching_bits() {
        let nl = bit_correlator();
        let mut sim = NetlistSim::new(&nl);
        let cases = [0u8, 0xA5, 0xFF, 0x5A, 0x3C];
        let iters: Vec<Vec<i64>> = cases.iter().map(|x| vec![*x as i64]).collect();
        let outs = sim.run_stream(&iters).unwrap();
        for (x, out) in cases.iter().zip(outs) {
            let expect = 8 - (x ^ CORRELATOR_MASK).count_ones() as i64;
            assert_eq!(out[0], expect, "x = {x:#x}");
        }
    }

    #[test]
    fn udiv_divides() {
        let nl = udiv();
        let mut sim = NetlistSim::new(&nl);
        let cases = [(100u8, 7u8), (255, 1), (13, 13), (0, 5), (200, 9)];
        let iters: Vec<Vec<i64>> = cases
            .iter()
            .map(|(n, d)| vec![*n as i64, *d as i64])
            .collect();
        let outs = sim.run_stream(&iters).unwrap();
        for ((n, d), out) in cases.iter().zip(outs) {
            assert_eq!(out[0], (*n / *d.max(&1)) as i64, "{n}/{d}");
        }
    }

    #[test]
    fn square_root_is_exact() {
        let nl = square_root();
        let mut sim = NetlistSim::new(&nl);
        let cases: Vec<u32> = vec![0, 1, 2, 99, 144, 65535, 1 << 23, (1 << 24) - 1];
        let iters: Vec<Vec<i64>> = cases.iter().map(|x| vec![*x as i64]).collect();
        let outs = sim.run_stream(&iters).unwrap();
        for (x, out) in cases.iter().zip(outs) {
            let expect = (*x as f64).sqrt().floor() as i64;
            assert_eq!(out[0], expect, "sqrt({x})");
        }
    }

    #[test]
    fn mul_acc_accumulates_with_nd_gating() {
        let nl = mul_acc();
        let mut sim = NetlistSim::new(&nl);
        // (a, b, nd): accumulate only when nd = 1.
        let seq: [(i64, i64, i64); 4] = [(3, 4, 1), (10, 10, 0), (-2, 5, 1), (7, 7, 0)];
        let mut acc = 0i64;
        for (a, bb, nd) in seq {
            sim.step(&[a, bb, nd], true).unwrap();
            if nd == 1 {
                acc += a * bb;
            }
        }
        for _ in 0..3 {
            sim.step(&[0, 0, 0], false).unwrap();
        }
        assert_eq!(sim.feedback_value("acc"), Some(acc));
    }

    #[test]
    fn cos_lut_matches_full_table() {
        let nl = cos_lut();
        let mut sim = NetlistSim::new(&nl);
        let thetas = [0usize, 100, 255, 511, 512, 700, 1023];
        let iters: Vec<Vec<i64>> = thetas.iter().map(|t| vec![*t as i64]).collect();
        let outs = sim.run_stream(&iters).unwrap();
        for (t, out) in thetas.iter().zip(outs) {
            let expect = cos_table_entry(*t);
            // Half-wave reconstruction is exact up to rounding of the
            // mirrored entry (±1 LSB).
            assert!(
                (out[0] - expect).abs() <= 1,
                "theta {t}: got {} expect {expect}",
                out[0]
            );
        }
    }

    #[test]
    fn rom_lut_returns_table_contents() {
        let nl = rom_lut();
        let mut sim = NetlistSim::new(&nl);
        let outs = sim.run_stream(&[vec![0], vec![17], vec![1023]]).unwrap();
        assert_eq!(outs[0][0], arbitrary_table_entry(0));
        assert_eq!(outs[1][0], arbitrary_table_entry(17));
        assert_eq!(outs[2][0], arbitrary_table_entry(1023));
    }

    #[test]
    fn fir_da_matches_direct_convolution() {
        let nl = fir();
        let mut sim = NetlistSim::new(&nl);
        let x: [i64; 5] = [10, -3, 7, 0, 22];
        let outs = sim.run_stream(&[x.to_vec()]).unwrap();
        for (f, coeffs) in FIR_COEFFS.iter().enumerate() {
            let expect: i64 = coeffs.iter().zip(&x).map(|(c, v)| c * v).sum();
            assert_eq!(outs[0][f], expect, "filter {f}");
        }
    }

    #[test]
    fn dct_row_products_match() {
        let nl = dct();
        let mut sim = NetlistSim::new(&nl);
        let x: [i64; 8] = [100, -50, 25, 0, 13, -90, 3, 70];
        // Row 2.
        let mut args = x.to_vec();
        args.push(2);
        let outs = sim.run_stream(&[args]).unwrap();
        let expect: i64 = (0..8).map(|c| dct_coeff(2, c) * x[c]).sum();
        assert_eq!(outs[0][0], expect);
    }

    #[test]
    fn wavelet_outputs_have_expected_shape() {
        let nl = wavelet();
        nl.verify().unwrap();
        assert_eq!(nl.outputs.len(), 4);
        // Line buffers dominate the register count.
        assert!(nl.register_bits() > 4 * WAVELET_ROW_WIDTH as u64 * 16 - 1);
        // Flat window: all equal pixels → HH ≈ 0.
        let mut sim = NetlistSim::new(&nl);
        let flat = vec![50i64; 25];
        let outs = sim.run_stream(&[flat]).unwrap();
        let hh = outs[0][3];
        assert_eq!(hh, 0, "flat image has no high-frequency energy");
    }

    #[test]
    fn all_baselines_verify() {
        for (name, nl) in [
            ("bit_correlator", bit_correlator()),
            ("mul_acc", mul_acc()),
            ("udiv", udiv()),
            ("square_root", square_root()),
            ("cos", cos_lut()),
            ("rom_lut", rom_lut()),
            ("fir", fir()),
            ("dct", dct()),
            ("wavelet", wavelet()),
        ] {
            nl.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
