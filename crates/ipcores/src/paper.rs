//! The paper's published Table 1 numbers, kept verbatim for comparison.

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Kernel name as printed in the paper.
    pub name: &'static str,
    /// Xilinx IP clock, MHz.
    pub ip_clock_mhz: f64,
    /// Xilinx IP area, slices.
    pub ip_area_slices: u64,
    /// ROCCC-generated clock, MHz.
    pub roccc_clock_mhz: f64,
    /// ROCCC-generated area, slices.
    pub roccc_area_slices: u64,
}

impl PaperRow {
    /// The paper's %Clock column (ROCCC ÷ IP).
    pub fn clock_ratio(&self) -> f64 {
        self.roccc_clock_mhz / self.ip_clock_mhz
    }

    /// The paper's %Area column (ROCCC ÷ IP).
    pub fn area_ratio(&self) -> f64 {
        self.roccc_area_slices as f64 / self.ip_area_slices as f64
    }
}

/// Table 1 of the paper ("A comparison of hardware performance from Xilinx
/// IPs and ROCCC-generated VHDL code"). The wavelet row's baseline is a
/// handwritten VHDL engine, not a Xilinx IP.
pub const TABLE1: [PaperRow; 9] = [
    PaperRow {
        name: "bit_correlator",
        ip_clock_mhz: 212.0,
        ip_area_slices: 9,
        roccc_clock_mhz: 144.0,
        roccc_area_slices: 19,
    },
    PaperRow {
        name: "mul_acc",
        ip_clock_mhz: 238.0,
        ip_area_slices: 18,
        roccc_clock_mhz: 238.0,
        roccc_area_slices: 59,
    },
    PaperRow {
        name: "udiv",
        ip_clock_mhz: 216.0,
        ip_area_slices: 144,
        roccc_clock_mhz: 272.0,
        roccc_area_slices: 495,
    },
    PaperRow {
        name: "square_root",
        ip_clock_mhz: 167.0,
        ip_area_slices: 585,
        roccc_clock_mhz: 220.0,
        roccc_area_slices: 1199,
    },
    PaperRow {
        name: "cos",
        ip_clock_mhz: 170.0,
        ip_area_slices: 150,
        roccc_clock_mhz: 170.0,
        roccc_area_slices: 150,
    },
    PaperRow {
        name: "arbitrary_lut",
        ip_clock_mhz: 170.0,
        ip_area_slices: 549,
        roccc_clock_mhz: 170.0,
        roccc_area_slices: 549,
    },
    PaperRow {
        name: "fir",
        ip_clock_mhz: 185.0,
        ip_area_slices: 270,
        roccc_clock_mhz: 194.0,
        roccc_area_slices: 293,
    },
    PaperRow {
        name: "dct",
        ip_clock_mhz: 181.0,
        ip_area_slices: 412,
        roccc_clock_mhz: 133.0,
        roccc_area_slices: 724,
    },
    PaperRow {
        name: "wavelet",
        ip_clock_mhz: 104.0,
        ip_area_slices: 1464,
        roccc_clock_mhz: 101.0,
        roccc_area_slices: 2415,
    },
];

/// Looks a row up by name.
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    TABLE1.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_nine_rows_matching_the_paper() {
        assert_eq!(TABLE1.len(), 9);
        let row = paper_row("udiv").unwrap();
        assert!((row.clock_ratio() - 1.26).abs() < 0.01);
        assert!((row.area_ratio() - 3.44).abs() < 0.01);
        let fir = paper_row("fir").unwrap();
        assert!((fir.clock_ratio() - 1.05).abs() < 0.01);
        assert!((fir.area_ratio() - 1.09).abs() < 0.01);
    }

    #[test]
    fn lut_rows_are_identical_by_construction() {
        for name in ["cos", "arbitrary_lut"] {
            let r = paper_row(name).unwrap();
            assert_eq!(r.clock_ratio(), 1.0);
            assert_eq!(r.area_ratio(), 1.0);
        }
    }

    #[test]
    fn headline_claim_area_2x_to_3x() {
        // "ROCCC-generated circuit takes around 2x ~ 3x area and runs at
        // comparable clock rate" — on the non-LUT compute kernels.
        let compute: Vec<&PaperRow> = TABLE1
            .iter()
            .filter(|r| !matches!(r.name, "cos" | "arbitrary_lut"))
            .collect();
        let mean_area: f64 =
            compute.iter().map(|r| r.area_ratio()).sum::<f64>() / compute.len() as f64;
        assert!(mean_area > 1.5 && mean_area < 3.5, "mean {mean_area}");
    }
}
