//! The C kernels compiled by the ROCCC side of every Table 1 row.
//!
//! Scalar cores (bit_correlator, mul_acc via a stream loop, udiv, square
//! root, the two lookup tables) are written the way the paper describes —
//! "The C input, as a high-level code, is not good at describing bit
//! operations", hence the explicit shift/mask style for the bit kernels —
//! and the streaming kernels (FIR, DCT, wavelet) are loop nests with
//! sliding windows.

use crate::baselines::{
    arbitrary_table_entry, cos_table_entry, dct_coeff, CORRELATOR_MASK, FIR_COEFFS,
};
use std::fmt::Write as _;

/// C source of the bit-correlator kernel: straight-line bit tests, fully
/// parallel in hardware.
pub fn bit_correlator_source() -> String {
    let mut terms = Vec::new();
    for k in 0..8 {
        let mb = (CORRELATOR_MASK >> k) & 1;
        terms.push(format!("(((x >> {k}) & 1) == {mb})"));
    }
    format!(
        "void bit_correlator(uint8 x, uint4* count) {{\n  *count = {};\n}}\n",
        terms.join(" + ")
    )
}

/// C source of the streaming multiplier-accumulator with the `nd` (new
/// data) qualifier, written with the if-else the paper discusses in §5.
pub fn mul_acc_source() -> String {
    "void mul_acc(int12 a[256], int12 b[256], uint1 nd[256], int* q) {
  int acc = 0;
  int i;
  for (i = 0; i < 256; i++) {
    int p;
    p = 0;
    if (nd[i]) { p = a[i] * b[i]; }
    acc = acc + p;
  }
  *q = acc;
}
"
    .to_string()
}

/// Algorithm-level alternative from §5: multiply the product by `nd`
/// instead of branching ("we used to convert this C code by multiplying nd
/// with the new input data … the overall area and clock rate performance
/// was better").
pub fn mul_acc_multiply_source() -> String {
    "void mul_acc(int12 a[256], int12 b[256], uint1 nd[256], int* q) {
  int acc = 0;
  int i;
  for (i = 0; i < 256; i++) {
    acc = acc + a[i] * b[i] * nd[i];
  }
  *q = acc;
}
"
    .to_string()
}

/// C source of the 8-bit unsigned divider: restoring shift-subtract,
/// fully unrolled into an 8-deep data path.
pub fn udiv_source() -> String {
    let mut s = String::from("void udiv(uint8 n, uint8 d, uint8* q) {\n");
    // Natural C declarations: `int` temporaries. The paper names exactly
    // this as a major cause of the area gap — "The C input, as a
    // high-level code, is not good at describing bit operations" — the
    // hand-built divider keeps a 9-bit remainder, the C version a 32-bit
    // one (backward narrowing recovers some, but comparisons demand full
    // width).
    s.push_str("  int rem = 0;\n  int quo = 0;\n");
    for k in (0..8).rev() {
        let _ = writeln!(s, "  rem = (rem << 1) | ((n >> {k}) & 1);");
        s.push_str("  quo = quo << 1;\n");
        s.push_str("  if (rem >= d) { rem = rem - d; quo = quo | 1; }\n");
    }
    s.push_str("  *q = quo;\n}\n");
    s
}

/// The divider rewritten with the paper's future-work "bit manipulation
/// macros" (`ROCCC_bits` keeps every temporary at its true width): the
/// D6 ablation shows this recovers most of the area gap to the hand
/// design.
pub fn udiv_bits_source() -> String {
    let mut s = String::from("void udiv(uint8 n, uint8 d, uint8* q) {\n");
    s.push_str("  uint9 rem = 0;\n  uint8 quo = 0;\n");
    for k in (0..8).rev() {
        let _ = writeln!(
            s,
            "  rem = ROCCC_cat(ROCCC_bits(rem, 7, 0), ROCCC_bits(n, {k}, {k}), 1);"
        );
        s.push_str("  quo = quo << 1;\n");
        s.push_str("  if (rem >= d) { rem = rem - d; quo = quo | 1; }\n");
    }
    s.push_str("  *q = quo;\n}\n");
    s
}

/// C source of the 24-bit integer square root: restoring digit recurrence,
/// 12 unrolled steps.
pub fn square_root_source() -> String {
    let mut s = String::from("void square_root(uint24 x, uint12* r) {\n");
    // Natural C `int` temporaries (see `udiv_source` on why this is the
    // faithful ROCCC-side formulation).
    s.push_str("  int rem = 0;\n  int root = 0;\n  int test = 0;\n");
    for i in 0..12 {
        let hi = 2 * (11 - i) + 1;
        let lo = 2 * (11 - i);
        let _ = writeln!(
            s,
            "  rem = (rem << 2) | (((x >> {hi}) & 1) << 1) | ((x >> {lo}) & 1);"
        );
        s.push_str("  test = (root << 2) | 1;\n");
        s.push_str("  root = root << 1;\n");
        s.push_str("  if (rem >= test) { rem = rem - test; root = root | 1; }\n");
    }
    s.push_str("  *r = root;\n}\n");
    s
}

/// C source of the cosine lookup: the compiler instantiates the table as a
/// ROM IP ("the only thing the user needs to do is to edit a pure text
/// initialization file").
pub fn cos_source() -> String {
    let entries: Vec<String> = (0..1024).map(|i| cos_table_entry(i).to_string()).collect();
    format!(
        "const uint16 cos_table[1024] = {{ {} }};\n\
         void cos_lut(uint10 theta, uint16* c) {{\n  *c = ROCCC_lut(cos_table, theta);\n}}\n",
        entries.join(", ")
    )
}

/// C source of the arbitrary lookup table (same ports as the cosine).
pub fn rom_lut_source() -> String {
    let entries: Vec<String> = (0..1024)
        .map(|i| arbitrary_table_entry(i).to_string())
        .collect();
    format!(
        "const uint16 user_table[1024] = {{ {} }};\n\
         void rom_lut(uint10 addr, uint16* data) {{\n  *data = ROCCC_lut(user_table, addr);\n}}\n",
        entries.join(", ")
    )
}

/// C source of the FIR pair (Figure 3's 5-tap filter plus a second
/// coefficient set; the bus carries 16-bit data).
pub fn fir_source() -> String {
    let c0 = FIR_COEFFS[0];
    let c1 = FIR_COEFFS[1];
    format!(
        "void fir(int16 A[128], int16 Y0[124], int16 Y1[124]) {{
  int i;
  for (i = 0; i < 124; i = i + 1) {{
    Y0[i] = {}*A[i] + {}*A[i+1] + {}*A[i+2] + {}*A[i+3] + {}*A[i+4];
    Y1[i] = {}*A[i] + {}*A[i+1] + {}*A[i+2] + {}*A[i+3] + {}*A[i+4];
  }}
}}
",
        c0[0], c0[1], c0[2], c0[3], c0[4], c1[0], c1[1], c1[2], c1[3], c1[4]
    )
}

/// C source of the 8-point DCT: one unrolled matrix-vector product per
/// window, eight outputs per iteration ("ROCCC's throughput is eight
/// output data per clock cycle").
pub fn dct_source() -> String {
    // "Both ROCCC DCT and Xilinx IP DCT explore the symmetry within the
    // cosine coefficients": even rows are symmetric in the inputs, odd
    // rows antisymmetric, halving the constant multiplies via the
    // butterfly decomposition s_c = x_c + x_{7−c}, d_c = x_c − x_{7−c}.
    let mut s = String::from(
        "void dct(int8 X[64], int19 Y[64]) {\n  int i;\n  for (i = 0; i < 64; i = i + 8) {\n",
    );
    for c in 0..4 {
        let _ = writeln!(s, "    int s{c} = X[i+{c}] + X[i+{}];", 7 - c);
        let _ = writeln!(s, "    int d{c} = X[i+{c}] - X[i+{}];", 7 - c);
    }
    for r in 0..8 {
        let var = if r % 2 == 0 { "s" } else { "d" };
        let terms: Vec<String> = (0..4)
            .map(|c| format!("{}*{var}{c}", dct_coeff(r, c)))
            .collect();
        let _ = writeln!(s, "    Y[i+{r}] = ({}) >> 6;", terms.join(" + "));
    }
    s.push_str("  }\n}\n");
    s
}

/// C source of the 2-D (5,3) lifting wavelet: a 5×5 window sliding by 2 in
/// both dimensions produces the four subband samples of one 2×2 block,
/// written to an interleaved output image.
pub fn wavelet_source() -> String {
    let w = crate::baselines::WAVELET_ROW_WIDTH; // input row width
    let n = w - 6; // window positions per dimension (stride 2)
    let mut s = String::new();
    let _ = writeln!(s, "void wavelet(int16 X[{w}][{w}], int16 Y[{w}][{w}]) {{");
    s.push_str("  int i;\n  int j;\n");
    let _ = writeln!(s, "  for (i = 0; i < {n}; i = i + 2) {{");
    let _ = writeln!(s, "    for (j = 0; j < {n}; j = j + 2) {{");
    // Row lifting per window row r: l_r (low) and h_r (high).
    for r in 0..5 {
        let _ = writeln!(
            s,
            "      int h{r} = X[i+{r}][j+3] - ((X[i+{r}][j+2] + X[i+{r}][j+4]) >> 1);"
        );
        let _ = writeln!(
            s,
            "      int g{r} = X[i+{r}][j+1] - ((X[i+{r}][j+0] + X[i+{r}][j+2]) >> 1);"
        );
        let _ = writeln!(s, "      int l{r} = X[i+{r}][j+2] + ((g{r} + h{r}) >> 2);");
    }
    // Column lifting over the row results.
    s.push_str("      int lh = l3 - ((l2 + l4) >> 1);\n");
    s.push_str("      int lg = l1 - ((l0 + l2) >> 1);\n");
    s.push_str("      int ll = l2 + ((lg + lh) >> 2);\n");
    s.push_str("      int hh = h3 - ((h2 + h4) >> 1);\n");
    s.push_str("      int hg = h1 - ((h0 + h2) >> 1);\n");
    s.push_str("      int hl = h2 + ((hg + hh) >> 2);\n");
    s.push_str("      Y[i][j] = ll;\n");
    s.push_str("      Y[i][j+1] = hl;\n");
    s.push_str("      Y[i+1][j] = lh;\n");
    s.push_str("      Y[i+1][j+1] = hh;\n");
    s.push_str("    }\n  }\n}\n");
    s
}

/// C source of the coefficient-threshold stage: zeroes wavelet
/// coefficients whose magnitude is at most 8, passing the significant
/// ones through unchanged. Elementwise (1×1 window), so it consumes the
/// wavelet's output stream in flat-address order.
pub fn threshold_source() -> String {
    let w = crate::baselines::WAVELET_ROW_WIDTH;
    format!(
        "void threshold(int16 Y[{w}][{w}], int16 T[{w}][{w}]) {{\n\
         \x20 int i;\n\
         \x20 int j;\n\
         \x20 for (i = 0; i < {w}; i = i + 1) {{\n\
         \x20   for (j = 0; j < {w}; j = j + 1) {{\n\
         \x20     int v = Y[i][j];\n\
         \x20     int m = v >> 15;\n\
         \x20     int mag = (v + m) ^ m;\n\
         \x20     int keep = 0;\n\
         \x20     if (mag > 8) {{ keep = v; }}\n\
         \x20     T[i][j] = keep;\n\
         \x20   }}\n\
         \x20 }}\n\
         }}\n"
    )
}

/// C source of the zig-zag encode stage: folds the signed thresholded
/// coefficients onto non-negative codes (`v >= 0 → 2v`, `v < 0 →
/// -2v-1`), the usual front half of an entropy coder.
pub fn encode_source() -> String {
    let w = crate::baselines::WAVELET_ROW_WIDTH;
    format!(
        "void encode(int16 T[{w}][{w}], int16 E[{w}][{w}]) {{\n\
         \x20 int i;\n\
         \x20 int j;\n\
         \x20 for (i = 0; i < {w}; i = i + 1) {{\n\
         \x20   for (j = 0; j < {w}; j = j + 1) {{\n\
         \x20     int v = T[i][j];\n\
         \x20     int m = v >> 15;\n\
         \x20     E[i][j] = (((v + m) ^ m) << 1) + m;\n\
         \x20   }}\n\
         \x20 }}\n\
         }}\n"
    )
}

/// The three-kernel image pipeline source: the Table 1 wavelet engine
/// followed by coefficient thresholding and zig-zag encoding, sharing
/// one translation unit so `wavelet | threshold | encode` compiles each
/// stage from the same text.
pub fn wavelet_pipeline_source() -> String {
    format!(
        "{}{}{}",
        wavelet_source(),
        threshold_source(),
        encode_source()
    )
}

/// The matching pipeline description for [`wavelet_pipeline_source`].
pub fn wavelet_pipeline_spec() -> String {
    "name wavelet_pipe\npipeline wavelet | threshold | encode\n".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::{frontend, Interpreter};
    use std::collections::HashMap;

    #[test]
    fn all_sources_pass_the_front_end() {
        for (name, src) in [
            ("bit_correlator", bit_correlator_source()),
            ("mul_acc", mul_acc_source()),
            ("mul_acc_multiply", mul_acc_multiply_source()),
            ("udiv", udiv_source()),
            ("square_root", square_root_source()),
            ("cos", cos_source()),
            ("rom_lut", rom_lut_source()),
            ("fir", fir_source()),
            ("dct", dct_source()),
            ("wavelet", wavelet_source()),
            ("threshold", threshold_source()),
            ("encode", encode_source()),
            ("wavelet_pipeline", wavelet_pipeline_source()),
        ] {
            frontend(&src).unwrap_or_else(|e| panic!("{name}: {}", e.render(&src)));
        }
    }

    #[test]
    fn udiv_bits_variant_matches_plain() {
        let plain = frontend(&udiv_source()).unwrap();
        let bits = frontend(&udiv_bits_source()).unwrap();
        for (n, d) in [(100i64, 7i64), (255, 255), (0, 3), (199, 4), (17, 1)] {
            let p = Interpreter::new(&plain)
                .call("udiv", &[n, d], &mut HashMap::new())
                .unwrap();
            let b = Interpreter::new(&bits)
                .call("udiv", &[n, d], &mut HashMap::new())
                .unwrap();
            assert_eq!(p.outputs["q"], b.outputs["q"], "{n}/{d}");
            assert_eq!(p.outputs["q"], n / d.max(1));
        }
    }

    #[test]
    fn udiv_kernel_divides_in_software() {
        let src = udiv_source();
        let prog = frontend(&src).unwrap();
        let mut interp = Interpreter::new(&prog);
        for (n, d) in [(100i64, 7i64), (255, 3), (8, 9), (77, 11)] {
            let out = interp.call("udiv", &[n, d], &mut HashMap::new()).unwrap();
            assert_eq!(out.outputs["q"], n / d, "{n}/{d}");
        }
    }

    #[test]
    fn square_root_kernel_is_exact_in_software() {
        let src = square_root_source();
        let prog = frontend(&src).unwrap();
        let mut interp = Interpreter::new(&prog);
        for x in [0i64, 1, 99, 6250000, (1 << 24) - 1] {
            let out = interp
                .call("square_root", &[x], &mut HashMap::new())
                .unwrap();
            assert_eq!(
                out.outputs["r"],
                (x as f64).sqrt().floor() as i64,
                "sqrt({x})"
            );
        }
    }

    #[test]
    fn bit_correlator_kernel_counts() {
        let src = bit_correlator_source();
        let prog = frontend(&src).unwrap();
        let mut interp = Interpreter::new(&prog);
        for x in [0u8, 0xA5, 0xFF, 0x42] {
            let out = interp
                .call("bit_correlator", &[x as i64], &mut HashMap::new())
                .unwrap();
            let expect = 8 - (x ^ CORRELATOR_MASK).count_ones() as i64;
            assert_eq!(out.outputs["count"], expect, "x = {x:#x}");
        }
    }

    #[test]
    fn mul_acc_variants_agree() {
        let branchy = frontend(&mul_acc_source()).unwrap();
        let multiply = frontend(&mul_acc_multiply_source()).unwrap();
        let mk = || {
            let mut m = HashMap::new();
            m.insert(
                "a".to_string(),
                (0..256).map(|x| (x * 7 % 211) - 100).collect::<Vec<i64>>(),
            );
            m.insert(
                "b".to_string(),
                (0..256).map(|x| 50 - (x % 101)).collect::<Vec<i64>>(),
            );
            m.insert(
                "nd".to_string(),
                (0..256).map(|x| (x / 3) % 2).collect::<Vec<i64>>(),
            );
            m
        };
        let mut m1 = mk();
        let mut m2 = mk();
        let o1 = Interpreter::new(&branchy)
            .call("mul_acc", &[], &mut m1)
            .unwrap();
        let o2 = Interpreter::new(&multiply)
            .call("mul_acc", &[], &mut m2)
            .unwrap();
        assert_eq!(o1.outputs["q"], o2.outputs["q"]);
    }

    #[test]
    fn dct_kernel_matches_matrix_product() {
        let src = dct_source();
        let prog = frontend(&src).unwrap();
        let mut interp = Interpreter::new(&prog);
        let x: Vec<i64> = (0..64).map(|i| (i * 13 % 255) - 128).collect();
        let mut arrays = HashMap::new();
        arrays.insert("X".to_string(), x.clone());
        arrays.insert("Y".to_string(), vec![0i64; 64]);
        interp.call("dct", &[], &mut arrays).unwrap();
        for blk in 0..8usize {
            for r in 0..8usize {
                let expect: i64 = (0..8)
                    .map(|c| dct_coeff(r, c) * x[blk * 8 + c])
                    .sum::<i64>()
                    >> 6;
                assert_eq!(arrays["Y"][blk * 8 + r], expect, "block {blk} row {r}");
            }
        }
    }

    #[test]
    fn wavelet_kernel_runs_in_software() {
        let src = wavelet_source();
        let prog = frontend(&src).unwrap();
        let w = crate::baselines::WAVELET_ROW_WIDTH;
        let mut interp = Interpreter::new(&prog);
        let mut arrays = HashMap::new();
        // Flat image: every HH output must be zero.
        arrays.insert("X".to_string(), vec![100i64; w * w]);
        arrays.insert("Y".to_string(), vec![0i64; w * w]);
        interp.call("wavelet", &[], &mut arrays).unwrap();
        let y = &arrays["Y"];
        assert_eq!(y[w + 1], 0, "HH of a flat image");
        assert_eq!(y[0], 100, "LL of a flat image is the DC value");
    }

    #[test]
    fn threshold_and_encode_stages_run_in_software() {
        let w = crate::baselines::WAVELET_ROW_WIDTH;
        let prog = frontend(&wavelet_pipeline_source()).unwrap();

        let mut arrays = HashMap::new();
        let mut y = vec![0i64; w * w];
        y[0] = 100; // significant, kept
        y[1] = -3; // small, zeroed
        y[2] = -20; // significant negative, kept
        y[3] = 8; // boundary magnitude, zeroed
        arrays.insert("Y".to_string(), y);
        arrays.insert("T".to_string(), vec![0i64; w * w]);
        Interpreter::new(&prog)
            .call("threshold", &[], &mut arrays)
            .unwrap();
        assert_eq!(arrays["T"][..4], [100, 0, -20, 0]);

        arrays.insert("E".to_string(), vec![0i64; w * w]);
        Interpreter::new(&prog)
            .call("encode", &[], &mut arrays)
            .unwrap();
        // Zig-zag: v >= 0 → 2v, v < 0 → -2v-1.
        assert_eq!(arrays["E"][..4], [200, 0, 39, 0]);
    }
}
