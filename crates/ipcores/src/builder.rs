//! A small builder for hand-structured netlists.
//!
//! The baseline "IP cores" of Table 1 are written directly at the netlist
//! level, the way a hardware engineer would structure them (carry-chain
//! adders, shift-add constant multipliers, digit-recurrence stages), so
//! the synthesis estimator scores hand design vs compiler output on equal
//! footing.

use roccc_cparse::types::IntType;
use roccc_netlist::cells::{Cell, CellId, CellKind, Netlist};
use roccc_suifvm::ir::{LutTable, Opcode};

/// Fluent netlist construction.
#[derive(Debug, Default)]
pub struct NetBuilder {
    nl: Netlist,
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetBuilder { nl: Netlist::new() }
    }

    /// Declares an input port.
    pub fn input(&mut self, name: &str, ty: IntType) -> CellId {
        let k = self.nl.inputs.len();
        self.nl.inputs.push((name.into(), ty));
        self.nl.add(Cell {
            kind: CellKind::Input(k),
            width: ty.bits,
            signed: ty.signed,
        })
    }

    /// A constant.
    pub fn constant(&mut self, v: i64) -> CellId {
        self.nl.constant(v)
    }

    /// A binary/unary operation producing a `(signed, bits)` result.
    pub fn op(&mut self, op: Opcode, srcs: Vec<CellId>, signed: bool, bits: u8) -> CellId {
        self.nl.add(Cell {
            kind: CellKind::Op {
                op,
                srcs: srcs.into(),
                imm: 0,
            },
            width: bits,
            signed,
        })
    }

    /// A ROM lookup: registers the table and returns the data output.
    pub fn rom(&mut self, name: &str, elem: IntType, data: Vec<i64>, addr: CellId) -> CellId {
        let imm = self.nl.roms.len() as i64;
        self.nl.roms.push(LutTable {
            name: name.into(),
            elem,
            data,
        });
        self.nl.add(Cell {
            kind: CellKind::Op {
                op: Opcode::Lut,
                srcs: [addr].into(),
                imm,
            },
            width: elem.bits,
            signed: elem.signed,
        })
    }

    /// A free-running pipeline register.
    pub fn reg(&mut self, d: CellId) -> CellId {
        let cell = self.nl.cells[d.0 as usize];
        self.nl.add(Cell {
            kind: CellKind::Reg {
                d: Some(d),
                init: 0,
                stage_gate: None,
            },
            width: cell.width,
            signed: cell.signed,
        })
    }

    /// A feedback register (latches only on valid stage-0 cycles).
    pub fn feedback_reg(&mut self, name: &str, ty: IntType, init: i64, stage: u32) -> CellId {
        let id = self.nl.add(Cell {
            kind: CellKind::Reg {
                d: None,
                init,
                stage_gate: Some(stage),
            },
            width: ty.bits,
            signed: ty.signed,
        });
        self.nl.feedback_regs.push((name.into(), id));
        id
    }

    /// Closes a feedback register's loop.
    pub fn close_feedback(&mut self, reg: CellId, d: CellId) {
        self.nl.connect_reg(reg, d);
    }

    /// Shift left by a constant (free wiring, width grows).
    pub fn shl_const(&mut self, x: CellId, k: u8, bits: u8) -> CellId {
        let amt = self.constant(k as i64);
        let signed = self.nl.cells[x.0 as usize].signed;
        self.op(Opcode::Shl, vec![x, amt], signed, bits)
    }

    /// Shift right by a constant.
    pub fn shr_const(&mut self, x: CellId, k: u8, bits: u8) -> CellId {
        let amt = self.constant(k as i64);
        let signed = self.nl.cells[x.0 as usize].signed;
        self.op(Opcode::Shr, vec![x, amt], signed, bits)
    }

    /// Extracts bit `k` of `x` as an unsigned 1-bit value.
    pub fn bit(&mut self, x: CellId, k: u8) -> CellId {
        let sh = self.shr_const(x, k, self.width(x));
        let one = self.constant(1);
        self.op(Opcode::And, vec![sh, one], false, 1)
    }

    /// Adds two nets at the given result width.
    pub fn add(&mut self, a: CellId, b: CellId, signed: bool, bits: u8) -> CellId {
        self.op(Opcode::Add, vec![a, b], signed, bits)
    }

    /// Subtracts at the given result width (always signed).
    pub fn sub(&mut self, a: CellId, b: CellId, bits: u8) -> CellId {
        self.op(Opcode::Sub, vec![a, b], true, bits)
    }

    /// 2:1 mux.
    pub fn mux(&mut self, sel: CellId, a: CellId, b: CellId, signed: bool, bits: u8) -> CellId {
        self.op(Opcode::Mux, vec![sel, a, b], signed, bits)
    }

    /// Constant multiply as a shift-add network (distributed-arithmetic
    /// style — how the Xilinx FIR/DCT IPs implement coefficient products).
    pub fn mul_const(&mut self, x: CellId, c: i64, bits: u8) -> CellId {
        if c == 0 {
            return self.constant(0);
        }
        let neg = c < 0;
        let mag = c.unsigned_abs();
        let mut acc: Option<CellId> = None;
        for k in 0..63 {
            if (mag >> k) & 1 == 1 {
                let term = if k == 0 {
                    x
                } else {
                    self.shl_const(x, k as u8, bits)
                };
                acc = Some(match acc {
                    None => term,
                    Some(a) => self.add(a, term, true, bits),
                });
            }
        }
        let v = acc.expect("c != 0");
        if neg {
            let zero = self.constant(0);
            self.sub(zero, v, bits)
        } else {
            v
        }
    }

    /// Balanced adder tree over `terms`.
    pub fn adder_tree(&mut self, terms: &[CellId], signed: bool, bits: u8) -> CellId {
        self.adder_tree_impl(terms, signed, bits, false).0
    }

    /// Balanced adder tree with a pipeline register after every level
    /// (how the Xilinx DA FIR/DCT cores keep their clock rates up).
    /// Returns `(result, register levels added)`.
    pub fn adder_tree_pipelined(
        &mut self,
        terms: &[CellId],
        signed: bool,
        bits: u8,
    ) -> (CellId, u32) {
        self.adder_tree_impl(terms, signed, bits, true)
    }

    fn adder_tree_impl(
        &mut self,
        terms: &[CellId],
        signed: bool,
        bits: u8,
        pipelined: bool,
    ) -> (CellId, u32) {
        assert!(!terms.is_empty());
        let mut level: Vec<CellId> = terms.to_vec();
        let mut levels = 0u32;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                match pair {
                    [a, b] => {
                        let sum = self.add(*a, *b, signed, bits);
                        next.push(if pipelined { self.reg(sum) } else { sum });
                    }
                    // Odd element rides along (registered to stay aligned).
                    [a] => next.push(if pipelined { self.reg(*a) } else { *a }),
                    _ => unreachable!(),
                }
            }
            if pipelined {
                levels += 1;
            }
            level = next;
        }
        (level[0], levels)
    }

    /// Width of a net.
    pub fn width(&self, id: CellId) -> u8 {
        self.nl.cells[id.0 as usize].width
    }

    /// Declares an output port.
    pub fn output(&mut self, name: &str, ty: IntType, v: CellId) {
        // Output register, as the compiler flow does.
        let reg = self.nl.add(Cell {
            kind: CellKind::Reg {
                d: Some(v),
                init: 0,
                stage_gate: None,
            },
            width: ty.bits,
            signed: ty.signed,
        });
        self.nl.outputs.push((name.into(), ty, reg));
    }

    /// Finishes the netlist with the given pipeline latency.
    ///
    /// # Panics
    ///
    /// Panics if the constructed netlist fails structural verification.
    pub fn finish(mut self, latency: u32) -> Netlist {
        self.nl.latency = latency.max(1);
        self.nl.verify().expect("hand-built netlist is well-formed");
        self.nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_netlist::NetlistSim;

    #[test]
    fn mul_const_matches_arithmetic() {
        let mut b = NetBuilder::new();
        let x = b.input("x", IntType::signed(8));
        let y = b.mul_const(x, 23, 14);
        b.output("y", IntType::signed(14), y);
        let nl = b.finish(1);
        let mut sim = NetlistSim::new(&nl);
        let outs = sim.run_stream(&[vec![5], vec![-7], vec![0]]).unwrap();
        assert_eq!(outs, vec![vec![115], vec![-161], vec![0]]);
    }

    #[test]
    fn adder_tree_sums() {
        let mut b = NetBuilder::new();
        let xs: Vec<CellId> = (0..5)
            .map(|i| b.input(&format!("x{i}"), IntType::signed(8)))
            .collect();
        let sum = b.adder_tree(&xs, true, 12);
        b.output("s", IntType::signed(12), sum);
        let nl = b.finish(1);
        let mut sim = NetlistSim::new(&nl);
        let outs = sim.run_stream(&[vec![1, 2, 3, 4, 5]]).unwrap();
        assert_eq!(outs[0], vec![15]);
    }

    #[test]
    fn bit_extraction() {
        let mut b = NetBuilder::new();
        let x = b.input("x", IntType::unsigned(8));
        let b5 = b.bit(x, 5);
        b.output("o", IntType::unsigned(1), b5);
        let nl = b.finish(1);
        let mut sim = NetlistSim::new(&nl);
        let outs = sim
            .run_stream(&[vec![0b0010_0000], vec![0b1101_1111]])
            .unwrap();
        assert_eq!(outs, vec![vec![1], vec![0]]);
    }
}
