//! # roccc-ipcores — Table 1 baselines and kernels
//!
//! For each row of the paper's Table 1, this crate provides
//!
//! * a **baseline netlist** ([`baselines`]) structured the way the Xilinx
//!   IP core (or, for the wavelet, handwritten VHDL) is documented to
//!   work — digit-recurrence dividers, half-wave cosine ROMs,
//!   distributed-arithmetic FIR, block-multiplier MAC;
//! * the **C kernel** ([`kernels`]) the ROCCC side compiles;
//! * the **published numbers** ([`paper`]); and
//! * the **comparison harness** ([`table`]) that scores both sides with
//!   the shared Virtex-II model and renders the reproduced Table 1.

#![warn(missing_docs)]

pub mod baselines;
pub mod builder;
pub mod kernels;
pub mod paper;
pub mod table;

pub use builder::NetBuilder;
pub use paper::{paper_row, PaperRow, TABLE1};
pub use table::{
    benchmarks, buffer_overhead, measure_row, render_table, run_table1, Benchmark, MeasuredRow,
};
