//! Sharded in-memory LRU over compiled artifacts, plus an optional
//! on-disk artifact store.
//!
//! The unit of caching is the whole [`CacheEntry`] behind an `Arc`:
//! workers share one compiled kernel without cloning netlists, and a
//! request renders whatever artifact it asked for from the shared entry.
//! Sharding by key keeps lock contention proportional to `1/shards`
//! under concurrent load; eviction is least-recently-used per shard
//! (a stamp scan — shards are small, so O(shard) eviction beats the
//! bookkeeping of an intrusive list).

use roccc::{Compiled, Diagnostic, PhaseTimings};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached compile: the compiled kernel plus artifacts that are
/// rendered once and shared (VHDL text and its lint findings).
#[derive(Debug)]
pub struct CacheEntry {
    /// The compiled kernel (netlist, datapath, IR, kernel description).
    pub compiled: Compiled,
    /// Rendered VHDL (rendered once at compile time; also the source of
    /// the lint findings below).
    pub vhdl: String,
    /// `roccc-vhdl` lint findings over `vhdl` (empty = clean).
    pub lint: Vec<Diagnostic>,
    /// `roccc-verify` findings over the compiled IR, data path and
    /// netlist (always computed on a cache miss, independent of the
    /// request's verify level; empty = clean).
    pub verify: Vec<Diagnostic>,
    /// Per-phase compile timings (includes the VHDL rendering phase).
    pub timings: PhaseTimings,
}

struct Slot {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Slot>,
}

/// A sharded LRU keyed by the 64-bit content hash.
pub struct ShardedLru {
    shards: Box<[Mutex<Shard>]>,
    cap_per_shard: usize,
    clock: AtomicU64,
}

impl ShardedLru {
    /// Cache holding at most `capacity` entries across `shards` shards
    /// (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let cap_per_shard = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            cap_per_shard,
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits: the FNV avalanche is weakest in the low bits.
        &self.shards[(key >> 57) as usize % self.shards.len()]
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<Arc<CacheEntry>> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let slot = shard.map.get_mut(&key)?;
        slot.last_used = stamp;
        Some(Arc::clone(&slot.entry))
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used
    /// entry of the shard if it is full.
    pub fn insert(&self, key: u64, entry: Arc<CacheEntry>) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if !shard.map.contains_key(&key) && shard.map.len() >= self.cap_per_shard {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(
            key,
            Slot {
                entry,
                last_used: stamp,
            },
        );
    }

    /// Number of resident entries (sums shard sizes; racy but exact
    /// when quiescent).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Write-through on-disk artifact store: rendered artifact bytes keyed
/// by `(cache key, emit kind)`. Survives server restarts — a warm disk
/// store serves artifacts without recompiling.
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> std::io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskStore {
            dir: dir.to_path_buf(),
        })
    }

    fn path(&self, key: u64, emit: &str) -> PathBuf {
        // emit kinds are a fixed vocabulary (validated upstream), so the
        // filename is shell- and filesystem-safe.
        self.dir.join(format!("{key:016x}.{emit}"))
    }

    /// Fetches the artifact bytes for `(key, emit)` if present.
    pub fn get(&self, key: u64, emit: &str) -> Option<Vec<u8>> {
        std::fs::read(self.path(key, emit)).ok()
    }

    /// Stores artifact bytes (atomically via a temp-file rename so a
    /// concurrent reader never observes a torn write).
    pub fn put(&self, key: u64, emit: &str, bytes: &[u8]) {
        let tmp = self.dir.join(format!(".tmp.{key:016x}.{emit}"));
        if std::fs::write(&tmp, bytes).is_ok() {
            let _ = std::fs::rename(&tmp, self.path(key, emit));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_entry() -> Arc<CacheEntry> {
        let compiled = roccc::compile(
            "void id(int a, int* o) { *o = a; }",
            "id",
            &roccc::CompileOptions::default(),
        )
        .expect("dummy kernel compiles");
        Arc::new(CacheEntry {
            vhdl: String::new(),
            lint: Vec::new(),
            verify: Vec::new(),
            timings: PhaseTimings::default(),
            compiled,
        })
    }

    #[test]
    fn get_after_insert_and_miss() {
        let lru = ShardedLru::new(8, 4);
        assert!(lru.get(1).is_none());
        let e = dummy_entry();
        lru.insert(1, Arc::clone(&e));
        assert!(Arc::ptr_eq(&lru.get(1).unwrap(), &e));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        // One shard of capacity 2 so the policy is observable.
        let lru = ShardedLru::new(2, 1);
        let e = dummy_entry();
        lru.insert(10, Arc::clone(&e));
        lru.insert(20, Arc::clone(&e));
        // Touch 10 so 20 becomes the LRU victim.
        assert!(lru.get(10).is_some());
        lru.insert(30, Arc::clone(&e));
        assert!(lru.get(10).is_some(), "recently used survives");
        assert!(lru.get(20).is_none(), "LRU entry evicted");
        assert!(lru.get(30).is_some());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn disk_store_roundtrips_and_overwrites() {
        let dir = std::env::temp_dir().join(format!("roccc_serve_store_{}", std::process::id()));
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.get(0xabc, "vhdl").is_none());
        store.put(0xabc, "vhdl", b"entity x is");
        assert_eq!(store.get(0xabc, "vhdl").unwrap(), b"entity x is");
        store.put(0xabc, "vhdl", b"v2");
        assert_eq!(store.get(0xabc, "vhdl").unwrap(), b"v2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
