//! Content addressing for compile artifacts.
//!
//! The FNV-1a hashing itself lives in [`roccc::hash`] so that the serve
//! cache and the `roccc-explore` design-space-exploration memo share one
//! key definition and can never disagree about whether two
//! configurations alias; this module re-exports it under the historical
//! path and keeps the behavioral tests.

pub use roccc::hash::{cache_key, Fnv64};

#[cfg(test)]
mod tests {
    use super::*;
    use roccc::{CompileOptions, UnrollStrategy};

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn identical_inputs_produce_equal_keys() {
        let src =
            "void f(int A[4], int B[4]) { int i;\n  for (i = 0; i < 4; i++) { B[i] = A[i]; } }";
        let a = cache_key(src, "f", &CompileOptions::default());
        let b = cache_key(src, "f", &CompileOptions::default());
        assert_eq!(a, b);
        // Same options built by hand, not via Default.
        let opts = CompileOptions {
            target_period_ns: 7.0,
            unroll: UnrollStrategy::Keep,
            stripmine: None,
            optimize: true,
            narrow: true,
            range_narrow: false,
            fuse: false,
            verify: roccc::VerifyLevel::default(),
            pipeline_ii: None,
            prove: false,
            verify_families: None,
        };
        assert_eq!(a, cache_key(src, "f", &opts));
    }

    #[test]
    fn differing_options_produce_different_keys() {
        let src =
            "void f(int A[8], int B[8]) { int i;\n  for (i = 0; i < 8; i++) { B[i] = A[i] * 3; } }";
        let base = CompileOptions::default();
        let unrolled = CompileOptions {
            unroll: UnrollStrategy::Partial(4),
            ..base.clone()
        };
        // The ISSUE's canonical pair: unroll factor 1 (Keep) vs 4.
        assert_ne!(cache_key(src, "f", &base), cache_key(src, "f", &unrolled));

        // Every other option axis must also separate keys.
        for variant in [
            CompileOptions {
                target_period_ns: 9.5,
                ..base.clone()
            },
            CompileOptions {
                unroll: UnrollStrategy::Full,
                ..base.clone()
            },
            CompileOptions {
                stripmine: Some(4),
                ..base.clone()
            },
            CompileOptions {
                optimize: false,
                ..base.clone()
            },
            CompileOptions {
                narrow: false,
                ..base.clone()
            },
            CompileOptions {
                fuse: true,
                ..base.clone()
            },
            CompileOptions {
                range_narrow: true,
                ..base.clone()
            },
            CompileOptions {
                verify: roccc::VerifyLevel::Deny,
                ..base.clone()
            },
            CompileOptions {
                pipeline_ii: Some(0),
                ..base.clone()
            },
            CompileOptions {
                pipeline_ii: Some(2),
                ..base.clone()
            },
            CompileOptions {
                prove: true,
                ..base.clone()
            },
            CompileOptions {
                verify_families: Some("S,D,E".into()),
                ..base.clone()
            },
        ] {
            assert_ne!(
                cache_key(src, "f", &base),
                cache_key(src, "f", &variant),
                "{variant:?}"
            );
        }
    }

    #[test]
    fn source_and_function_separate_keys() {
        let opts = CompileOptions::default();
        assert_ne!(
            cache_key("void f() {}", "f", &opts),
            cache_key("void g() {}", "g", &opts)
        );
        // Length-prefixing: shifting a byte across the field boundary
        // must change the key.
        assert_ne!(cache_key("ab", "c", &opts), cache_key("a", "bc", &opts));
    }

    #[test]
    fn canonical_bytes_distinguish_partial_factors() {
        let k1 = CompileOptions {
            unroll: UnrollStrategy::Partial(1),
            ..CompileOptions::default()
        };
        let k2 = CompileOptions {
            unroll: UnrollStrategy::Partial(4),
            ..CompileOptions::default()
        };
        assert_ne!(k1.canonical_bytes(), k2.canonical_bytes());
        assert_eq!(k1.canonical_bytes(), k1.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_distinguish_strip_widths() {
        // DSE memoization correctness: strip-mined configurations must
        // never alias the un-mined base or each other.
        let base = CompileOptions::default();
        let s4 = CompileOptions {
            stripmine: Some(4),
            ..base.clone()
        };
        let s8 = CompileOptions {
            stripmine: Some(8),
            ..base.clone()
        };
        assert_ne!(base.canonical_bytes(), s4.canonical_bytes());
        assert_ne!(s4.canonical_bytes(), s8.canonical_bytes());
        // And `stripmine: None` must not alias `Some(0)`-style encodings
        // of other fields: the tag byte keeps boundaries unambiguous.
        assert_eq!(
            base.canonical_bytes(),
            CompileOptions::default().canonical_bytes()
        );
    }
}
