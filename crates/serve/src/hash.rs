//! Content addressing for compile artifacts.
//!
//! A 64-bit FNV-1a hash over `(source, function, canonical options)`
//! keys the cache. FNV is not collision-resistant against adversaries,
//! but the cache is an optimization, not a trust boundary: a collision
//! serves a stale artifact to a local client, it does not corrupt the
//! compiler. Length prefixes keep field boundaries unambiguous
//! (`("ab","c")` must not collide with `("a","bc")`).

use roccc::CompileOptions;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a length-prefixed field (8-byte LE length, then bytes).
    pub fn write_field(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The content-addressed cache key of one compile request.
pub fn cache_key(source: &str, function: &str, opts: &CompileOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_field(source.as_bytes());
    h.write_field(function.as_bytes());
    h.write_field(&opts.canonical_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc::UnrollStrategy;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn identical_inputs_produce_equal_keys() {
        let src =
            "void f(int A[4], int B[4]) { int i;\n  for (i = 0; i < 4; i++) { B[i] = A[i]; } }";
        let a = cache_key(src, "f", &CompileOptions::default());
        let b = cache_key(src, "f", &CompileOptions::default());
        assert_eq!(a, b);
        // Same options built by hand, not via Default.
        let opts = CompileOptions {
            target_period_ns: 7.0,
            unroll: UnrollStrategy::Keep,
            optimize: true,
            narrow: true,
            fuse: false,
            verify: roccc::VerifyLevel::default(),
        };
        assert_eq!(a, cache_key(src, "f", &opts));
    }

    #[test]
    fn differing_options_produce_different_keys() {
        let src =
            "void f(int A[8], int B[8]) { int i;\n  for (i = 0; i < 8; i++) { B[i] = A[i] * 3; } }";
        let base = CompileOptions::default();
        let unrolled = CompileOptions {
            unroll: UnrollStrategy::Partial(4),
            ..base.clone()
        };
        // The ISSUE's canonical pair: unroll factor 1 (Keep) vs 4.
        assert_ne!(cache_key(src, "f", &base), cache_key(src, "f", &unrolled));

        // Every other option axis must also separate keys.
        for variant in [
            CompileOptions {
                target_period_ns: 9.5,
                ..base.clone()
            },
            CompileOptions {
                unroll: UnrollStrategy::Full,
                ..base.clone()
            },
            CompileOptions {
                optimize: false,
                ..base.clone()
            },
            CompileOptions {
                narrow: false,
                ..base.clone()
            },
            CompileOptions {
                fuse: true,
                ..base.clone()
            },
            CompileOptions {
                verify: roccc::VerifyLevel::Deny,
                ..base.clone()
            },
        ] {
            assert_ne!(
                cache_key(src, "f", &base),
                cache_key(src, "f", &variant),
                "{variant:?}"
            );
        }
    }

    #[test]
    fn source_and_function_separate_keys() {
        let opts = CompileOptions::default();
        assert_ne!(
            cache_key("void f() {}", "f", &opts),
            cache_key("void g() {}", "g", &opts)
        );
        // Length-prefixing: shifting a byte across the field boundary
        // must change the key.
        assert_ne!(cache_key("ab", "c", &opts), cache_key("a", "bc", &opts));
    }

    #[test]
    fn canonical_bytes_distinguish_partial_factors() {
        let k1 = CompileOptions {
            unroll: UnrollStrategy::Partial(1),
            ..CompileOptions::default()
        };
        let k2 = CompileOptions {
            unroll: UnrollStrategy::Partial(4),
            ..CompileOptions::default()
        };
        assert_ne!(k1.canonical_bytes(), k2.canonical_bytes());
        assert_eq!(k1.canonical_bytes(), k1.canonical_bytes());
    }
}
