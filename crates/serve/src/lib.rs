//! # roccc-serve — the concurrent compile service
//!
//! The ROADMAP's production goal means the compiler has to stop being a
//! one-shot CLI call: design-space sweeps recompile the same FIR/DCT/
//! wavelet kernels under different unroll factors over and over (the
//! paper's §4.1 area-driven unrolling loop), which is exactly a
//! repeated, cacheable, concurrent workload. This crate turns
//! [`roccc::compile`] into a daemon:
//!
//! * **content-addressed artifact cache** — a 64-bit FNV-1a hash over
//!   `(source, function, canonical CompileOptions)` keys a sharded
//!   in-memory LRU of `Arc`-shared compiles, with an optional
//!   write-through on-disk artifact store ([`cache`], [`hash`]);
//! * **robustness** — a bounded admission queue replies `busy` under
//!   overload, a watchdog thread enforces a per-request wall-clock
//!   budget, `catch_unwind` isolates compiler panics, and identical
//!   concurrent requests are deduplicated single-flight ([`server`]);
//! * **observability** — atomic counters and fixed-bucket per-phase
//!   latency histograms (fed by [`roccc::PhaseTimings`]), exposed as
//!   Prometheus-style text via the `metrics` protocol command
//!   ([`metrics`]).
//!
//! The wire protocol lives in [`roccc::proto`], shared with the
//! `roccc --connect` client mode. Everything is `std`-only: the
//! workspace builds offline with an empty cargo registry.
//!
//! ```no_run
//! use roccc_serve::{start, ServerConfig};
//! use roccc::proto::{roundtrip, Request, Response};
//!
//! let handle = start(ServerConfig::default()).unwrap();
//! let addr = handle.local_addr();
//! let resp = roundtrip(addr, &Request::Ping, None).unwrap();
//! assert!(matches!(resp, Response::Ok { .. }));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod hash;
pub mod metrics;
pub mod server;

pub use cache::{CacheEntry, DiskStore, ShardedLru};
pub use hash::{cache_key, Fnv64};
pub use metrics::{scrape_counter, Metrics};
pub use server::{start, CompileFn, ServerConfig, ServerHandle};
