//! The `roccc-serve` daemon binary.
//!
//! ```text
//! roccc-serve [options]
//!
//! Options:
//!   --addr <ip>          bind address (default 127.0.0.1)
//!   --port <n>           port; 0 picks an ephemeral port (default 9317)
//!   --workers <n>        worker threads (default 4)
//!   --queue <n>          admission queue capacity (default 64)
//!   --cache <n>          in-memory cache entries (default 256)
//!   --timeout-ms <n>     per-request compile budget (default 30000)
//!   --disk-cache <dir>   enable the on-disk artifact store
//! ```
//!
//! Prints `roccc-serve listening on <addr>` once bound, then serves
//! until it receives the `shutdown` protocol command (e.g.
//! `roccc --connect <addr> --shutdown`).

use roccc_serve::ServerConfig;
use std::process::ExitCode;
use std::time::Duration;

fn parse_args() -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut ip = "127.0.0.1".to_string();
    let mut port = 9317u16;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--addr" => ip = grab("--addr")?,
            "--port" => {
                port = grab("--port")?
                    .parse()
                    .map_err(|_| "--port expects a number")?;
            }
            "--workers" => {
                cfg.workers = grab("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a number")?;
            }
            "--queue" => {
                cfg.queue_cap = grab("--queue")?
                    .parse()
                    .map_err(|_| "--queue expects a number")?;
            }
            "--cache" => {
                cfg.cache_cap = grab("--cache")?
                    .parse()
                    .map_err(|_| "--cache expects a number")?;
            }
            "--timeout-ms" => {
                cfg.timeout = Duration::from_millis(
                    grab("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms expects a number")?,
                );
            }
            "--disk-cache" => cfg.disk_dir = Some(grab("--disk-cache")?.into()),
            "--help" | "-h" => {
                return Err("usage: roccc-serve [--addr ip] [--port n] [--workers n] \
                            [--queue n] [--cache n] [--timeout-ms n] [--disk-cache dir]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    cfg.addr = format!("{ip}:{port}");
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let workers = cfg.workers;
    let handle = match roccc_serve::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("roccc-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("roccc-serve listening on {}", handle.local_addr());
    println!("({workers} workers; send the `shutdown` protocol command to stop)");
    handle.join();
    println!("roccc-serve: shut down");
    ExitCode::SUCCESS
}
