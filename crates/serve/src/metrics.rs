//! Lock-free service metrics: atomic counters and fixed-bucket latency
//! histograms, rendered as Prometheus-style exposition text for the
//! `metrics` protocol command.

use roccc::PhaseTimings;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (seconds, inclusive) of the latency histogram buckets.
/// A final implicit `+Inf` bucket catches the tail. The 1-2-5-style
/// decades span 100 µs (a cache hit) to 10 s (a pathological compile).
pub const BUCKET_BOUNDS_SECS: [f64; 10] = [
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 10.0,
];

const NBUCKETS: usize = BUCKET_BOUNDS_SECS.len() + 1; // + the +Inf bucket

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket latency histogram (cumulative on render, like
/// Prometheus `_bucket{le=...}` series).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        let idx = BUCKET_BOUNDS_SECS
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(NBUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    fn render_into(&self, out: &mut String, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS_SECS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.buckets[NBUCKETS - 1].load(Ordering::Relaxed);
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}\n"
        ));
        if labels.is_empty() {
            out.push_str(&format!("{name}_sum {}\n", self.sum_secs()));
            out.push_str(&format!("{name}_count {}\n", self.count()));
        } else {
            out.push_str(&format!("{name}_sum{{{labels}}} {}\n", self.sum_secs()));
            out.push_str(&format!("{name}_count{{{labels}}} {}\n", self.count()));
        }
    }
}

/// All service metrics, shared across workers behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests read off the wire (all commands).
    pub requests: Counter,
    /// Compile requests answered from the in-memory cache.
    pub cache_hits: Counter,
    /// Compile requests answered from the on-disk artifact store.
    pub disk_hits: Counter,
    /// Compile requests that ran the compiler.
    pub cache_misses: Counter,
    /// Compile or protocol errors replied to clients.
    pub errors: Counter,
    /// Requests that exceeded the wall-clock budget.
    pub timeouts: Counter,
    /// Compiles that panicked (isolated by `catch_unwind`).
    pub panics: Counter,
    /// Connections refused with `busy` by admission control.
    pub busy_rejections: Counter,
    /// Verifier + VHDL lint findings across all actual compiles
    /// (`roccc::verify_compiled` runs on every cache miss).
    pub verify_findings: Counter,
    /// Operator bits shaved by width narrowing, summed over all actual
    /// compiles (`roccc_datapath::width_bits_saved` per cache miss).
    pub width_bits_saved: Counter,
    /// Loop-carried dependence edges found, summed over actual compiles.
    pub deps_carried_edges: Counter,
    /// Feedback recurrences (LPR→SNX cycles) found across compiles.
    pub deps_recurrences: Counter,
    /// Sum of MinII lower bounds across actual compiles.
    pub deps_min_ii: Counter,
    /// Sum of achieved initiation intervals across modulo-scheduled
    /// compiles (compiles requesting `pipeline_ii`).
    pub schedule_ii: Counter,
    /// Modulo-schedule requests that fell back to the plain latch
    /// pipeline (no feasible II below the body latency).
    pub schedule_fallback: Counter,
    /// Compiles whose translation-validation certificate proved the
    /// netlist equal to the IR (verdict `equal`).
    pub prove_proved: Counter,
    /// Compiles whose certificate refuted equivalence with a replayed
    /// counterexample (verdict `refuted`).
    pub prove_refuted: Counter,
    /// Compiles whose certificate left residual unknown obligations
    /// (verdict `unknown`).
    pub prove_unknown: Counter,
    /// Streaming-pipeline compile requests served.
    pub pipeline_requests: Counter,
    /// Pipeline requests answered from the pipeline cache.
    pub pipeline_cache_hits: Counter,
    /// Design-space exploration requests served.
    pub explore_requests: Counter,
    /// Candidates visited across all explore sweeps.
    pub explore_candidates: Counter,
    /// Explore candidates served entirely from the DSE memo.
    pub explore_memo_hits: Counter,
    /// Explore candidates pruned by budget or beam.
    pub explore_pruned: Counter,
    /// Explore candidates skipped on compile/simulation failure.
    pub explore_skipped: Counter,
    /// End-to-end request latency (all compile requests).
    pub request_latency: Histogram,
    /// Per-phase compile latency, indexed like [`PhaseTimings::PHASES`].
    pub phase_latency: [Histogram; 6],
}

impl Metrics {
    /// Records the per-phase timings of one actual (non-cached) compile.
    pub fn observe_phases(&self, t: &PhaseTimings) {
        for (i, hist) in self.phase_latency.iter().enumerate() {
            let d = t.get(i);
            if !d.is_zero() {
                hist.observe(d);
            }
        }
    }

    /// Renders the Prometheus-style exposition text.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(4096);
        for (name, help, c) in [
            ("roccc_requests_total", "Requests received", &self.requests),
            (
                "roccc_cache_hits_total",
                "Compiles served from the in-memory cache",
                &self.cache_hits,
            ),
            (
                "roccc_disk_hits_total",
                "Compiles served from the on-disk artifact store",
                &self.disk_hits,
            ),
            (
                "roccc_cache_misses_total",
                "Compiles that ran the compiler",
                &self.cache_misses,
            ),
            ("roccc_errors_total", "Error replies", &self.errors),
            (
                "roccc_timeouts_total",
                "Deadline-exceeded replies",
                &self.timeouts,
            ),
            (
                "roccc_panics_total",
                "Compiler panics isolated by catch_unwind",
                &self.panics,
            ),
            (
                "roccc_busy_total",
                "Connections rejected busy by admission control",
                &self.busy_rejections,
            ),
            (
                "roccc_verify_findings_total",
                "Static verifier and VHDL lint findings across compiles",
                &self.verify_findings,
            ),
            (
                "roccc_width_bits_saved_total",
                "Operator bits saved by width narrowing across compiles",
                &self.width_bits_saved,
            ),
            (
                "roccc_deps_carried_edges_total",
                "Loop-carried dependence edges across compiles",
                &self.deps_carried_edges,
            ),
            (
                "roccc_deps_recurrences_total",
                "Feedback recurrences across compiles",
                &self.deps_recurrences,
            ),
            (
                "roccc_deps_min_ii_total",
                "Sum of MinII lower bounds across compiles",
                &self.deps_min_ii,
            ),
            (
                "roccc_schedule_ii_total",
                "Sum of achieved initiation intervals across scheduled compiles",
                &self.schedule_ii,
            ),
            (
                "roccc_schedule_fallback_total",
                "Modulo-schedule requests that fell back to the latch pipeline",
                &self.schedule_fallback,
            ),
            (
                "roccc_prove_proved_total",
                "Compiles whose translation-validation certificate proved equal",
                &self.prove_proved,
            ),
            (
                "roccc_prove_refuted_total",
                "Compiles whose certificate refuted equivalence",
                &self.prove_refuted,
            ),
            (
                "roccc_prove_unknown_total",
                "Compiles whose certificate left unknown obligations",
                &self.prove_unknown,
            ),
            (
                "roccc_pipeline_requests_total",
                "Streaming-pipeline compiles served",
                &self.pipeline_requests,
            ),
            (
                "roccc_pipeline_cache_hits_total",
                "Pipeline requests served from the pipeline cache",
                &self.pipeline_cache_hits,
            ),
            (
                "roccc_explore_requests_total",
                "Design-space exploration sweeps served",
                &self.explore_requests,
            ),
            (
                "roccc_explore_candidates_total",
                "Candidates visited across explore sweeps",
                &self.explore_candidates,
            ),
            (
                "roccc_explore_memo_hits_total",
                "Explore candidates served from the DSE memo",
                &self.explore_memo_hits,
            ),
            (
                "roccc_explore_pruned_total",
                "Explore candidates pruned by budget or beam",
                &self.explore_pruned,
            ),
            (
                "roccc_explore_skipped_total",
                "Explore candidates skipped on failure",
                &self.explore_skipped,
            ),
        ] {
            s.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            s.push_str(&format!("{name} {}\n", c.get()));
        }

        s.push_str(
            "# HELP roccc_request_seconds End-to-end compile request latency\n\
             # TYPE roccc_request_seconds histogram\n",
        );
        self.request_latency
            .render_into(&mut s, "roccc_request_seconds", "");

        s.push_str(
            "# HELP roccc_phase_seconds Compiler phase latency\n\
             # TYPE roccc_phase_seconds histogram\n",
        );
        for (i, phase) in PhaseTimings::PHASES.iter().enumerate() {
            self.phase_latency[i].render_into(
                &mut s,
                "roccc_phase_seconds",
                &format!("phase=\"{phase}\""),
            );
        }
        s
    }
}

/// Pulls one counter value back out of rendered exposition text — the
/// client-side helper tests and `loadgen` use to read hit/miss counts.
pub fn scrape_counter(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(50)); // <= 0.0001
        h.observe(Duration::from_millis(2)); // <= 0.005
        h.observe(Duration::from_secs(100)); // +Inf
        let mut out = String::new();
        h.render_into(&mut out, "x_seconds", "");
        assert!(out.contains("x_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(out.contains("x_seconds_bucket{le=\"0.005\"} 2"));
        assert!(out.contains("x_seconds_bucket{le=\"10\"} 2"));
        assert!(out.contains("x_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("x_seconds_count 3"));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn render_and_scrape_roundtrip() {
        let m = Metrics::default();
        m.requests.inc();
        m.requests.inc();
        m.cache_hits.inc();
        m.observe_phases(&PhaseTimings {
            parse: Duration::from_millis(1),
            ..PhaseTimings::default()
        });
        let text = m.render();
        assert_eq!(scrape_counter(&text, "roccc_requests_total"), Some(2));
        assert_eq!(scrape_counter(&text, "roccc_cache_hits_total"), Some(1));
        assert_eq!(scrape_counter(&text, "roccc_cache_misses_total"), Some(0));
        assert!(text.contains("roccc_phase_seconds_bucket{phase=\"parse\",le=\"0.001\"} 1"));
        // Zero-duration phases are not recorded.
        assert!(text.contains("roccc_phase_seconds_count{phase=\"vhdl\"} 0"));
    }
}
