//! The compile daemon: TCP accept loop, bounded admission queue, worker
//! pool, single-flight compile deduplication, watchdog-enforced
//! wall-clock timeouts, and `catch_unwind` panic isolation.
//!
//! Threading model:
//!
//! * one **acceptor** thread owns the listener. A full admission queue is
//!   answered inline with `busy` and the connection dropped — clients see
//!   backpressure instead of unbounded queueing;
//! * `workers` **worker** threads pop connections and serve one request
//!   each. Cache hits are answered in the worker; misses hand the actual
//!   compile to a detached **compile** thread and wait on a channel;
//! * one **watchdog** thread tracks every in-flight compile's deadline
//!   and posts a timeout outcome to the waiting worker when it expires.
//!   The detached compile keeps running after a timeout reply; if it
//!   eventually succeeds it still populates the cache, so a retry of the
//!   same request hits;
//! * compile panics are caught in the compile thread (`catch_unwind`),
//!   counted, and reported as an error reply — a poisoned kernel cannot
//!   take a worker down.

use crate::cache::{CacheEntry, DiskStore, ShardedLru};
use crate::hash::cache_key;
use crate::metrics::Metrics;
use roccc::proto::{self, Request, Response};
use roccc::{CompileError, CompileOptions, Compiled, PhaseTimings};
use std::collections::{HashSet, VecDeque};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The pluggable compile function (timed). The default is
/// [`roccc::compile_timed`]; tests inject failure modes.
pub type CompileFn = Arc<
    dyn Fn(&str, &str, &CompileOptions) -> Result<(Compiled, PhaseTimings), CompileError>
        + Send
        + Sync,
>;

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Admission queue capacity; further connections get `busy`.
    pub queue_cap: usize,
    /// In-memory cache capacity (entries).
    pub cache_cap: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Per-request wall-clock compile budget.
    pub timeout: Duration,
    /// Optional on-disk artifact store directory.
    pub disk_dir: Option<PathBuf>,
    /// Compiler override (None = `roccc::compile_timed`).
    pub compiler: Option<CompileFn>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 256,
            cache_shards: 8,
            timeout: Duration::from_secs(30),
            disk_dir: None,
            compiler: None,
        }
    }
}

/// Outcome of a miss, delivered to the waiting worker by either the
/// compile thread or the watchdog — whichever speaks first.
enum Outcome {
    Done(Arc<CacheEntry>),
    Failed(String),
    Panicked(String),
    TimedOut,
}

/// Deadline registry serviced by the watchdog thread.
#[derive(Default)]
struct WatchdogState {
    pending: Vec<(Instant, SyncSender<Outcome>)>,
    stop: bool,
}

struct Watchdog {
    state: Mutex<WatchdogState>,
    cv: Condvar,
}

impl Watchdog {
    fn register(&self, deadline: Instant, tx: SyncSender<Outcome>) {
        let mut st = self.state.lock().expect("watchdog poisoned");
        st.pending.push((deadline, tx));
        self.cv.notify_one();
    }

    fn run(&self) {
        let mut st = self.state.lock().expect("watchdog poisoned");
        loop {
            if st.stop {
                return;
            }
            let now = Instant::now();
            // Fire everything due; `try_send` loses gracefully to a
            // compile that finished in the same instant.
            st.pending.retain(|(deadline, tx)| {
                if *deadline <= now {
                    let _ = tx.try_send(Outcome::TimedOut);
                    false
                } else {
                    true
                }
            });
            let wait = st
                .pending
                .iter()
                .map(|(d, _)| d.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_secs(3600));
            let (guard, _) = self.cv.wait_timeout(st, wait).expect("watchdog poisoned");
            st = guard;
        }
    }

    fn stop(&self) {
        self.state.lock().expect("watchdog poisoned").stop = true;
        self.cv.notify_all();
    }
}

struct Shared {
    cfg: ServerConfig,
    compiler: CompileFn,
    cache: ShardedLru,
    disk: Option<DiskStore>,
    metrics: Arc<Metrics>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    inflight: Mutex<HashSet<u64>>,
    inflight_cv: Condvar,
    watchdog: Watchdog,
    stop: AtomicBool,
    /// Process-wide DSE memo: repeated explore sweeps (or sweeps whose
    /// spaces overlap) reuse fully-scored candidates by content hash.
    explore_memo: roccc_explore::Memo,
    /// Bounded cache of compiled pipelines, keyed by
    /// [`roccc_stream::pipeline_cache_key`]. The key space is
    /// domain-separated from single-kernel compile keys, and the entries
    /// are kept apart from [`Shared::cache`] so a burst of pipeline
    /// requests cannot evict hot single-kernel artifacts (or vice versa).
    pipeline_cache: Mutex<PipelineCache>,
}

/// One cached pipeline compile: both renderable artifacts, produced once
/// when the compile lands.
struct PipelineEntry {
    stats: String,
    vhdl: String,
}

/// Tiny bounded LRU for pipeline entries. Pipelines are far rarer than
/// single-kernel compiles, so one mutex and a stamp scan is enough.
struct PipelineCache {
    map: std::collections::HashMap<u64, (Arc<PipelineEntry>, u64)>,
    cap: usize,
    clock: u64,
}

impl PipelineCache {
    fn new(cap: usize) -> Self {
        PipelineCache {
            map: std::collections::HashMap::new(),
            cap: cap.max(1),
            clock: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<PipelineEntry>> {
        self.clock += 1;
        let stamp = self.clock;
        let (entry, last_used) = self.map.get_mut(&key)?;
        *last_used = stamp;
        Some(Arc::clone(entry))
    }

    fn insert(&mut self, key: u64, entry: Arc<PipelineEntry>) {
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, (entry, self.clock));
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or send the `shutdown` protocol command
/// and then [`ServerHandle::join`]).
pub struct ServerHandle {
    local_addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Requests shutdown and joins all service threads. Detached compile
    /// threads (from timed-out requests) are not waited for.
    pub fn shutdown(self) {
        request_stop(&self.shared, self.local_addr);
        self.join();
    }

    /// Joins the service threads (acceptor, workers, watchdog); returns
    /// once a shutdown has been requested and drained.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn request_stop(shared: &Shared, addr: std::net::SocketAddr) {
    shared.stop.store(true, Ordering::SeqCst);
    shared.watchdog.stop();
    shared.queue_cv.notify_all();
    // Unblock the acceptor with a throwaway connection.
    let _ = TcpStream::connect(addr);
}

/// Starts the service and returns once the listener is bound.
///
/// # Errors
///
/// Propagates bind/configuration I/O errors (e.g. a bad `addr` or an
/// unwritable disk-store directory).
pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let local_addr = listener.local_addr()?;
    let disk = match &cfg.disk_dir {
        Some(dir) => Some(DiskStore::open(dir)?),
        None => None,
    };
    let compiler: CompileFn = cfg
        .compiler
        .clone()
        .unwrap_or_else(|| Arc::new(roccc::compile_timed));
    let shared = Arc::new(Shared {
        cache: ShardedLru::new(cfg.cache_cap, cfg.cache_shards),
        disk,
        metrics: Arc::new(Metrics::default()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        inflight: Mutex::new(HashSet::new()),
        inflight_cv: Condvar::new(),
        watchdog: Watchdog {
            state: Mutex::new(WatchdogState::default()),
            cv: Condvar::new(),
        },
        stop: AtomicBool::new(false),
        explore_memo: roccc_explore::Memo::new(),
        pipeline_cache: Mutex::new(PipelineCache::new(cfg.cache_cap.max(1).div_ceil(4))),
        compiler,
        cfg,
    });

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("roccc-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &shared))?,
        );
    }
    for i in 0..shared.cfg.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("roccc-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("roccc-serve-watchdog".to_string())
                .spawn(move || shared.watchdog.run())?,
        );
    }

    Ok(ServerHandle {
        local_addr,
        shared,
        threads,
    })
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if queue.len() >= shared.cfg.queue_cap {
            drop(queue);
            shared.metrics.busy_rejections.inc();
            let mut s = stream;
            let _ = proto::write_response(&mut s, &Response::Busy);
            continue;
        }
        queue.push_back(stream);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue poisoned");
            }
        };
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // A stalled or dead client must not pin a worker forever.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);

    let req = match proto::read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.errors.inc();
            let _ = proto::write_response(&mut writer, &Response::Err(e.to_string()));
            return;
        }
    };
    shared.metrics.requests.inc();

    let resp = match req {
        Request::Ping => Response::Ok {
            payload: b"pong\n".to_vec(),
            cached: false,
        },
        Request::Metrics => Response::Ok {
            payload: shared.metrics.render().into_bytes(),
            cached: false,
        },
        Request::Shutdown => {
            let addr = reader
                .get_ref()
                .local_addr()
                .expect("connected socket has a local addr");
            let _ = proto::write_response(
                &mut writer,
                &Response::Ok {
                    payload: b"bye\n".to_vec(),
                    cached: false,
                },
            );
            request_stop(shared, addr);
            return;
        }
        Request::Compile {
            source,
            function,
            opts,
            emit,
        } => handle_compile(shared, &source, &function, &opts, &emit),
        Request::Pipeline {
            source,
            pipeline,
            opts,
            emit,
        } => handle_pipeline(shared, &source, &pipeline, &opts, &emit),
        Request::Explore {
            source,
            function,
            opts,
            unroll_factors,
            strip_widths,
            scalar_opt_both,
            budget_slices,
            beam,
            emit,
        } => handle_explore(
            shared,
            &source,
            &function,
            &opts,
            &unroll_factors,
            &strip_widths,
            scalar_opt_both,
            budget_slices,
            beam,
            &emit,
        ),
    };
    if matches!(resp, Response::Err(_)) {
        shared.metrics.errors.inc();
    }
    let _ = proto::write_response(&mut writer, &resp);
}

/// Renders the artifact `emit` from a cached entry.
fn render_artifact(entry: &CacheEntry, emit: &str) -> Result<Vec<u8>, String> {
    match emit {
        "vhdl" => Ok(entry.vhdl.clone().into_bytes()),
        "dot" => Ok(entry.compiled.to_dot().into_bytes()),
        "ir" => Ok(entry.compiled.ir.dump().into_bytes()),
        "c" => Ok(format!(
            "// Figure 3(b)-style rewritten kernel:\n{}\n// Exported data-path function:\n{}",
            entry.compiled.kernel.rewritten.to_c(),
            entry.compiled.kernel.dp_func.to_c()
        )
        .into_bytes()),
        "stats" => Ok(render_stats(entry).into_bytes()),
        "ranges" => Ok(entry.compiled.range_report().into_bytes()),
        "deps" => Ok(entry.compiled.deps_report().into_bytes()),
        "deps-json" => Ok(entry.compiled.deps_json().into_bytes()),
        "schedule" => Ok(entry.compiled.schedule_report().into_bytes()),
        "schedule-json" => entry
            .compiled
            .schedule_json()
            .map(String::into_bytes)
            .ok_or_else(|| "no schedule artifact (compile with pipeline-ii)".to_string()),
        "prove" => Ok(entry.compiled.prove_report().into_bytes()),
        "prove-json" => entry
            .compiled
            .prove_json()
            .map(String::into_bytes)
            .ok_or_else(|| "no proof certificate (compile with prove)".to_string()),
        "table-row" => {
            let model = roccc_synth::VirtexII::default();
            let r = roccc_synth::map_netlist(&entry.compiled.netlist, &model);
            Ok(format!(
                "{} {} {} {} {:.1}\n",
                entry.compiled.kernel.name, r.luts, r.ffs, r.slices, r.fmax_mhz
            )
            .into_bytes())
        }
        other => Err(format!(
            "unknown emit `{other}` (stats|vhdl|dot|ir|c|ranges|deps|deps-json|\
             schedule|schedule-json|table-row)"
        )),
    }
}

/// The `stats` artifact: the CLI's summary plus lint findings and
/// compile-phase timings (per the service's observability contract).
fn render_stats(entry: &CacheEntry) -> String {
    let hw = &entry.compiled;
    let model = roccc_synth::VirtexII::default();
    let full = roccc_synth::map_netlist(&hw.netlist, &model);
    let fast = roccc_synth::fast_estimate(&hw.datapath, &model);
    let (soft, hard) = hw.datapath.node_census();
    let mut s = String::new();
    s.push_str(&format!("kernel           : {}\n", hw.kernel.name));
    s.push_str(&format!(
        "data path        : {} ops, {soft} soft + {hard} hard nodes, {} stages\n",
        hw.datapath.ops.len(),
        hw.datapath.num_stages
    ));
    s.push_str(&format!(
        "outputs per cycle: {}\n",
        hw.datapath.throughput_per_cycle()
    ));
    s.push_str(&format!(
        "min II           : {} (rec {}, res {}), body latency {} cycle(s)\n",
        hw.deps.min_ii, hw.deps.rec_mii, hw.deps.res_mii, hw.deps.body_latency
    ));
    if let Some(sched) = &hw.schedule {
        s.push_str(&format!(
            "achieved II      : {} ({})\n",
            sched.ii,
            if sched.fallback.is_some() {
                "latch-pipeline fallback"
            } else {
                "modulo-scheduled"
            }
        ));
    }
    s.push_str(&format!(
        "estimate (fast)  : {} LUT, {} FF, {} slices\n",
        fast.luts, fast.ffs, fast.slices
    ));
    s.push_str(&format!(
        "mapped (full)    : {} LUT, {} FF, {} slices, Fmax {:.0} MHz\n",
        full.luts, full.ffs, full.slices, full.fmax_mhz
    ));
    s.push_str(&format!(
        "verify           : {} finding(s)\n",
        entry.verify.len()
    ));
    for d in &entry.verify {
        s.push_str(&format!("  {d}\n"));
    }
    s.push_str(&format!(
        "vhdl lint        : {} warning(s)\n",
        entry.lint.len()
    ));
    for w in &entry.lint {
        s.push_str(&format!("  {w}\n"));
    }
    let t = &entry.timings;
    s.push_str(&format!(
        "compile time     : {:.3} ms (parse {:.3} / hlir {:.3} / suifvm {:.3} / datapath {:.3} / netlist {:.3} / vhdl {:.3})\n",
        t.total().as_secs_f64() * 1e3,
        t.parse.as_secs_f64() * 1e3,
        t.hlir.as_secs_f64() * 1e3,
        t.suifvm.as_secs_f64() * 1e3,
        t.datapath.as_secs_f64() * 1e3,
        t.netlist.as_secs_f64() * 1e3,
        t.vhdl.as_secs_f64() * 1e3,
    ));
    s
}

fn handle_compile(
    shared: &Arc<Shared>,
    source: &str,
    function: &str,
    opts: &CompileOptions,
    emit: &str,
) -> Response {
    let start = Instant::now();
    let deadline = start + shared.cfg.timeout;
    let key = cache_key(source, function, opts);

    // Validate the artifact kind up front so a bogus `emit` never costs
    // a compile.
    if !matches!(
        emit,
        "stats"
            | "vhdl"
            | "dot"
            | "ir"
            | "c"
            | "ranges"
            | "deps"
            | "deps-json"
            | "schedule"
            | "schedule-json"
            | "prove"
            | "prove-json"
            | "table-row"
    ) {
        return Response::Err(format!(
            "unknown emit `{emit}` (stats|vhdl|dot|ir|c|ranges|deps|deps-json|\
             schedule|schedule-json|prove|prove-json|table-row)"
        ));
    }

    loop {
        // Fast path: in-memory cache.
        if let Some(entry) = shared.cache.get(key) {
            shared.metrics.cache_hits.inc();
            let resp = match render_artifact(&entry, emit) {
                Ok(payload) => Response::Ok {
                    payload,
                    cached: true,
                },
                Err(e) => Response::Err(e),
            };
            shared.metrics.request_latency.observe(start.elapsed());
            return resp;
        }

        // Second chance: the on-disk artifact store (survives restarts).
        if let Some(disk) = &shared.disk {
            if let Some(payload) = disk.get(key, emit) {
                shared.metrics.disk_hits.inc();
                shared.metrics.request_latency.observe(start.elapsed());
                return Response::Ok {
                    payload,
                    cached: true,
                };
            }
        }

        // Single flight: if another worker is compiling this key, wait
        // for it (bounded by our own deadline) and re-check the cache.
        let mut inflight = shared.inflight.lock().expect("inflight poisoned");
        if !inflight.contains(&key) {
            inflight.insert(key);
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            shared.metrics.timeouts.inc();
            return Response::Timeout(format!(
                "compile exceeded the {:?} wall-clock budget (waiting on an identical in-flight compile)",
                shared.cfg.timeout
            ));
        }
        let (_guard, _res) = shared
            .inflight_cv
            .wait_timeout(inflight, deadline - now)
            .expect("inflight poisoned");
        // Loop: re-check cache (the winner inserts before clearing the
        // in-flight mark, so a completed twin is a guaranteed hit).
    }

    // We own the compile. Run it on a detached thread so the watchdog
    // can give up on it without killing the worker.
    shared.metrics.cache_misses.inc();
    let (tx, rx) = sync_channel::<Outcome>(2);
    shared.watchdog.register(deadline, tx.clone());
    spawn_compile(shared, key, source, function, opts, tx);

    let outcome = rx.recv().unwrap_or(Outcome::Failed(
        "compile thread vanished without a result".to_string(),
    ));
    let resp = match outcome {
        Outcome::Done(entry) => match render_artifact(&entry, emit) {
            Ok(payload) => {
                if let Some(disk) = &shared.disk {
                    disk.put(key, emit, &payload);
                }
                Response::Ok {
                    payload,
                    cached: false,
                }
            }
            Err(e) => Response::Err(e),
        },
        Outcome::Failed(msg) => Response::Err(msg),
        Outcome::Panicked(msg) => Response::Err(format!("compiler panicked: {msg}")),
        Outcome::TimedOut => {
            shared.metrics.timeouts.inc();
            Response::Timeout(format!(
                "compile exceeded the {:?} wall-clock budget",
                shared.cfg.timeout
            ))
        }
    };
    shared.metrics.request_latency.observe(start.elapsed());
    resp
}

/// Runs a design-space exploration sweep inline on the worker. The
/// engine already fans out over its own bounded `thread::scope` pool and
/// skip-reports per-candidate failures, so the worker only has to guard
/// against panics and account the sweep's counters.
#[allow(clippy::too_many_arguments)]
fn handle_explore(
    shared: &Arc<Shared>,
    source: &str,
    function: &str,
    opts: &CompileOptions,
    unroll_factors: &[u64],
    strip_widths: &[u64],
    scalar_opt_both: bool,
    budget_slices: Option<u64>,
    beam: Option<usize>,
    emit: &str,
) -> Response {
    let start = Instant::now();
    shared.metrics.explore_requests.inc();
    if !matches!(emit, "json" | "table") {
        return Response::Err(format!("unknown explore emit `{emit}` (json|table)"));
    }

    let space = roccc_explore::Space::new(unroll_factors, strip_widths, scalar_opt_both);
    let cfg = roccc_explore::ExploreConfig {
        workers: shared.cfg.workers.max(1),
        budget_slices,
        beam,
        compiler: Some(Arc::clone(&shared.compiler)),
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        roccc_explore::explore(source, function, opts, &space, &cfg, &shared.explore_memo)
    }));
    let resp = match result {
        Ok(result) => {
            let st = &result.stats;
            shared.metrics.explore_candidates.add(st.candidates as u64);
            shared.metrics.explore_memo_hits.add(st.memo_hits as u64);
            shared
                .metrics
                .explore_pruned
                .add((st.pruned_budget + st.pruned_beam) as u64);
            shared.metrics.explore_skipped.add(st.skipped as u64);
            let payload = match emit {
                "table" => roccc_explore::render_table(&result),
                _ => roccc_explore::render_json(&result),
            };
            Response::Ok {
                payload: payload.into_bytes(),
                cached: false,
            }
        }
        Err(panic) => {
            shared.metrics.panics.inc();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".to_string());
            Response::Err(format!("explore panicked: {msg}"))
        }
    };
    shared.metrics.request_latency.observe(start.elapsed());
    resp
}

/// Compiles a streaming pipeline inline on the worker. A pipeline is a
/// handful of ordinary kernel compiles plus plain-data composition
/// checks, so it reuses the worker's panic isolation rather than the
/// detached-thread watchdog machinery; both artifacts (`stats` and
/// `vhdl`) are rendered once and cached under the topology-hashed key.
fn handle_pipeline(
    shared: &Arc<Shared>,
    source: &str,
    pipeline: &str,
    opts: &CompileOptions,
    emit: &str,
) -> Response {
    let start = Instant::now();
    shared.metrics.pipeline_requests.inc();
    if !matches!(emit, "stats" | "vhdl") {
        return Response::Err(format!("unknown pipeline emit `{emit}` (stats|vhdl)"));
    }
    let spec = match roccc_stream::parse_spec(pipeline) {
        Ok(s) => s,
        Err(e) => return Response::Err(e.to_string()),
    };
    let key = match roccc_stream::pipeline_cache_key(source, &spec, opts) {
        Ok(k) => k,
        Err(e) => return Response::Err(e.to_string()),
    };

    let render = |entry: &PipelineEntry| match emit {
        "vhdl" => entry.vhdl.clone().into_bytes(),
        _ => entry.stats.clone().into_bytes(),
    };

    if let Some(entry) = shared
        .pipeline_cache
        .lock()
        .expect("pipeline cache poisoned")
        .get(key)
    {
        shared.metrics.pipeline_cache_hits.inc();
        shared.metrics.request_latency.observe(start.elapsed());
        return Response::Ok {
            payload: render(&entry),
            cached: true,
        };
    }

    let result = catch_unwind(AssertUnwindSafe(|| {
        roccc_stream::compile_pipeline(source, &spec, opts)
    }));
    let resp = match result {
        Ok(Ok(cp)) => {
            shared
                .metrics
                .verify_findings
                .add(cp.diagnostics.len() as u64);
            let entry = Arc::new(PipelineEntry {
                stats: roccc_stream::stats_report(&cp),
                vhdl: roccc_stream::generate_pipeline_vhdl(&cp),
            });
            shared
                .pipeline_cache
                .lock()
                .expect("pipeline cache poisoned")
                .insert(key, Arc::clone(&entry));
            Response::Ok {
                payload: render(&entry),
                cached: false,
            }
        }
        Ok(Err(e)) => Response::Err(e.to_string()),
        Err(panic) => {
            shared.metrics.panics.inc();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".to_string());
            Response::Err(format!("pipeline compile panicked: {msg}"))
        }
    };
    shared.metrics.request_latency.observe(start.elapsed());
    resp
}

/// Runs the compile on a detached thread. On success the entry is
/// published to the cache *before* the in-flight mark is cleared, so
/// single-flight waiters always find it.
fn spawn_compile(
    shared: &Arc<Shared>,
    key: u64,
    source: &str,
    function: &str,
    opts: &CompileOptions,
    tx: SyncSender<Outcome>,
) {
    // The detached thread may outlive the request (timeout path), so it
    // owns its inputs and an Arc of the shared state.
    let source = source.to_string();
    let function = function.to_string();
    let opts = opts.clone();
    let shared = Arc::clone(shared);
    let builder = std::thread::Builder::new().name(format!("roccc-compile-{key:08x}"));
    let spawned = builder.spawn({
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let (compiled, mut timings) = (shared.compiler)(&source, &function, &opts)?;
                // Render VHDL once per compile; it feeds both the artifact
                // cache and the lint findings, and charges the vhdl phase.
                let t0 = Instant::now();
                let vhdl = compiled.to_vhdl();
                timings.vhdl += t0.elapsed();
                let lint = roccc_vhdl::lint::lint(&vhdl);
                // Always re-verify the artifacts on a real compile so the
                // daemon surfaces findings even for clients that did not
                // ask for a verify level.
                let verify = roccc::verify_compiled(&compiled);
                Ok::<CacheEntry, CompileError>(CacheEntry {
                    compiled,
                    vhdl,
                    lint,
                    verify,
                    timings,
                })
            }));
            let outcome = match result {
                Ok(Ok(entry)) => {
                    shared.metrics.observe_phases(&entry.timings);
                    shared
                        .metrics
                        .verify_findings
                        .add((entry.verify.len() + entry.lint.len()) as u64);
                    shared
                        .metrics
                        .width_bits_saved
                        .add(roccc::width_bits_saved(&entry.compiled.datapath));
                    let deps = &entry.compiled.deps;
                    shared
                        .metrics
                        .deps_carried_edges
                        .add(deps.edges.iter().filter(|e| e.carried).count() as u64);
                    shared
                        .metrics
                        .deps_recurrences
                        .add(deps.recurrences.len() as u64);
                    shared.metrics.deps_min_ii.add(deps.min_ii);
                    if let Some(sched) = &entry.compiled.schedule {
                        shared.metrics.schedule_ii.add(sched.ii);
                        if sched.fallback.is_some() {
                            shared.metrics.schedule_fallback.inc();
                        }
                    }
                    if let Some(cert) = &entry.compiled.certificate {
                        match cert.verdict {
                            roccc::Verdict::Equal => shared.metrics.prove_proved.inc(),
                            roccc::Verdict::Refuted => shared.metrics.prove_refuted.inc(),
                            roccc::Verdict::Unknown => shared.metrics.prove_unknown.inc(),
                        }
                    }
                    let entry = Arc::new(entry);
                    shared.cache.insert(key, Arc::clone(&entry));
                    shared.clear_inflight(key);
                    Outcome::Done(entry)
                }
                Ok(Err(e)) => {
                    shared.clear_inflight(key);
                    Outcome::Failed(e.to_string())
                }
                Err(panic) => {
                    shared.metrics.panics.inc();
                    shared.clear_inflight(key);
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic payload".to_string());
                    Outcome::Panicked(msg)
                }
            };
            // The worker may already have timed out and gone; that's fine.
            let _ = tx.try_send(outcome);
        }
    });
    if let Err(e) = spawned {
        shared.clear_inflight(key);
        let _ = tx.try_send(Outcome::Failed(format!("cannot spawn compile thread: {e}")));
    }
}

impl Shared {
    /// Removes the single-flight mark for `key` and wakes waiters.
    fn clear_inflight(&self, key: u64) {
        let mut inflight = self.inflight.lock().expect("inflight poisoned");
        inflight.remove(&key);
        drop(inflight);
        self.inflight_cv.notify_all();
    }
}
