//! Benchmarks regenerating each Table 1 row (compile + map both sides).
//! `cargo bench -p roccc-bench --bench table1` times every row;
//! `cargo run -p roccc-bench --bin table1` prints the comparison itself.

use criterion::{criterion_group, criterion_main, Criterion};
use roccc_synth::{map_netlist, VirtexII};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_row");
    group.sample_size(10);
    for b in roccc_ipcores::benchmarks() {
        group.bench_function(b.name, |bench| {
            let model = VirtexII::with_mult_style(b.mult_style);
            bench.iter(|| {
                let ip = map_netlist(&(b.baseline)(), &model);
                let hw = roccc_ipcores::table::compile_benchmark(&b).expect("compiles");
                let rc = map_netlist(&hw.netlist, &model);
                black_box((ip.slices, rc.slices))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
