//! Cycle-accurate simulation throughput: netlist cycles per second for the
//! FIR data path, and the full system run (BRAM + smart buffer + data
//! path) for the streaming kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use roccc::CompileOptions;
use roccc_netlist::NetlistSim;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    // Data-path-only cycles.
    let src = "void fir_dp(int16 A0,int16 A1,int16 A2,int16 A3,int16 A4,int16* T) {
       *T = 3*A0 + 5*A1 + 7*A2 + 9*A3 - A4; }";
    let hw = roccc::compile(src, "fir_dp", &CompileOptions::default()).expect("compiles");
    let mut group = c.benchmark_group("netlist_sim");
    let cycles = 1024u64;
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("fir_dp_cycles", |b| {
        b.iter(|| {
            let mut sim = NetlistSim::new(&hw.netlist);
            let mut acc = 0i64;
            for i in 0..cycles {
                let x = i as i64 % 100;
                let r = sim.step(&[x, x + 1, x + 2, x + 3, x + 4], true).unwrap();
                acc ^= r.outputs[0];
            }
            black_box(acc)
        })
    });
    group.finish();

    // Whole-system run.
    let fir = roccc_ipcores::kernels::fir_source();
    let hw = roccc::compile(&fir, "fir", &CompileOptions::default()).expect("compiles");
    let mut group = c.benchmark_group("system_sim");
    group.sample_size(20);
    group.bench_function("fir_128_samples", |b| {
        b.iter(|| {
            let mut arrays = HashMap::new();
            arrays.insert("A".to_string(), (0..128).collect::<Vec<i64>>());
            let run = hw.run(&arrays, &HashMap::new()).unwrap();
            black_box(run.cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
