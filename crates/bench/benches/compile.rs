//! Compile-time benchmarks: full C-to-netlist pipeline per Table 1 kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use roccc_synth::VirtexII;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    for b in roccc_ipcores::benchmarks() {
        // The LUT sources embed 1024-entry tables; keep them but note the
        // parse cost dominates there.
        group.bench_function(b.name, |bench| {
            let model = VirtexII::with_mult_style(b.mult_style);
            bench.iter(|| {
                let hw = roccc::compile_with_model(black_box(&b.source), b.func, &b.opts, &model)
                    .expect("benchmark kernels compile");
                black_box(hw.netlist.cells.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
