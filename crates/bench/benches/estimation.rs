//! The paper's §2 claim via [13]: compile-time area estimation "in less
//! than one millisecond and within 5% accuracy". Benchmarks the fast
//! estimator against the full technology mapper on every kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use roccc_synth::{fast_estimate, map_netlist, VirtexII};
use std::hint::black_box;

fn bench_estimation(c: &mut Criterion) {
    let compiled: Vec<_> = roccc_ipcores::benchmarks()
        .iter()
        .map(|b| {
            let hw = roccc_ipcores::table::compile_benchmark(b).expect("compiles");
            (b.name, hw, VirtexII::with_mult_style(b.mult_style))
        })
        .collect();

    let mut fast = c.benchmark_group("fast_estimate");
    for (name, hw, model) in &compiled {
        fast.bench_function(*name, |bench| {
            bench.iter(|| black_box(fast_estimate(&hw.datapath, model)).slices)
        });
    }
    fast.finish();

    let mut full = c.benchmark_group("full_map");
    for (name, hw, model) in &compiled {
        full.bench_function(*name, |bench| {
            bench.iter(|| black_box(map_netlist(&hw.netlist, model)).slices)
        });
    }
    full.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
