//! # roccc-bench — benchmark harness for the Table 1 reproduction
//!
//! Criterion benchmarks (`cargo bench -p roccc-bench`) cover compile time,
//! the sub-millisecond area-estimation claim, and simulation throughput;
//! the binaries regenerate the paper's evaluation artifacts:
//!
//! * `cargo run -p roccc-bench --bin table1` — the full Table 1
//!   comparison with paper numbers alongside;
//! * `cargo run -p roccc-bench --bin ablations` — the design-choice
//!   ablations from DESIGN.md (D1–D5).

#![warn(missing_docs)]

use roccc_synth::ResourceReport;

/// Formats a resource report on one line.
pub fn fmt_report(r: &ResourceReport) -> String {
    format!(
        "{:>6} LUT {:>6} FF {:>5} slices {:>7.1} MHz",
        r.luts, r.ffs, r.slices, r.fmax_mhz
    )
}

/// The ratio `a / b` guarding against division by zero.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::NAN
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        assert!(ratio(1.0, 0.0).is_nan());
        assert_eq!(ratio(6.0, 3.0), 2.0);
    }
}
