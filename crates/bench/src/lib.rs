//! # roccc-bench — in-tree benchmark harness and evaluation binaries
//!
//! The workspace builds fully offline, so instead of criterion this crate
//! carries its own small measurement harness: wall-clock timing over a
//! calibrated number of in-loop repetitions, median-of-runs reporting, and
//! a hand-rolled JSON writer for the tracked artifact `BENCH_sim.json`.
//!
//! Binaries:
//!
//! * `cargo run --release -p roccc-bench --bin bench_sim` — simulation
//!   throughput (cycles/sec) of the reference interpreter vs. the
//!   compiled engine on the paper kernels; writes `BENCH_sim.json`;
//! * `cargo run --release -p roccc-bench --bin table1` — the full
//!   Table 1 comparison with paper numbers alongside (rows in parallel);
//! * `cargo run --release -p roccc-bench --bin ablations` — the
//!   design-choice ablations from DESIGN.md (D1–D6, in parallel);
//! * `cargo run --release -p roccc-bench --bin loadgen` — hammers a
//!   `roccc-serve` compile daemon from N client threads over the
//!   Table 1 kernels and writes `BENCH_serve.json` (throughput,
//!   p50/p99 latency, cache hit rate).

#![warn(missing_docs)]

use roccc_synth::ResourceReport;
use std::time::Instant;

/// Formats a resource report on one line.
pub fn fmt_report(r: &ResourceReport) -> String {
    format!(
        "{:>6} LUT {:>6} FF {:>5} slices {:>7.1} MHz",
        r.luts, r.ffs, r.slices, r.fmax_mhz
    )
}

/// The ratio `a / b` guarding against division by zero.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::NAN
    } else {
        a / b
    }
}

/// One measured simulation-engine result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Kernel name (`fir`, `dct`, `wavelet`, …).
    pub kernel: String,
    /// Engine name (`reference` or `compiled`).
    pub engine: String,
    /// Clock cycles simulated per timed run.
    pub cycles: u64,
    /// Median wall-clock seconds per run.
    pub seconds: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Speedup over the reference engine on the same kernel
    /// (1.0 for the reference itself).
    pub speedup: f64,
}

/// Times `f` (which must simulate `cycles` clock cycles) `runs` times and
/// returns the median seconds per run. The closure's return value is
/// folded into a sink to keep the optimizer honest.
pub fn time_median<F: FnMut() -> u64>(runs: usize, mut f: F) -> f64 {
    assert!(runs > 0);
    let mut sink = 0u64;
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            sink = sink.wrapping_add(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    std::hint::black_box(sink);
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Builds a [`BenchResult`] from a timed simulation run.
pub fn bench_result(kernel: &str, engine: &str, cycles: u64, seconds: f64) -> BenchResult {
    BenchResult {
        kernel: kernel.to_string(),
        engine: engine.to_string(),
        cycles,
        seconds,
        cycles_per_sec: if seconds > 0.0 {
            cycles as f64 / seconds
        } else {
            f64::INFINITY
        },
        speedup: 1.0,
    }
}

/// Linear-interpolated percentile (`p` in 0..=100) of an ascending
/// `sorted` slice. Returns NaN on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Serializes results as the `BENCH_sim.json` artifact (a stable,
/// hand-rolled JSON document — no serde in the offline build).
pub fn render_bench_json(results: &[BenchResult]) -> String {
    let mut s = String::from("{\n  \"benchmark\": \"netlist-simulation\",\n  \"unit\": \"cycles/sec\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"engine\": \"{}\", \"cycles\": {}, \"seconds\": {:.6}, \"cycles_per_sec\": {:.1}, \"speedup\": {:.3}}}{}\n",
            json_escape(&r.kernel),
            json_escape(&r.engine),
            r.cycles,
            r.seconds,
            r.cycles_per_sec,
            r.speedup,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        assert!(ratio(1.0, 0.0).is_nan());
        assert_eq!(ratio(6.0, 3.0), 2.0);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let a = bench_result("fir", "reference", 1000, 0.5);
        let mut b = bench_result("fir", "compiled", 1000, 0.1);
        b.speedup = b.cycles_per_sec / a.cycles_per_sec;
        assert!((b.speedup - 5.0).abs() < 1e-9);
        let doc = render_bench_json(&[a, b]);
        // Structural smoke checks (no JSON parser in the offline build).
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches("\"kernel\"").count(), 2);
        assert_eq!(doc.matches("\"cycles_per_sec\"").count(), 2);
        assert!(!doc.contains(",\n  ]"), "no trailing comma:\n{doc}");
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn time_median_is_positive() {
        let t = time_median(3, || {
            let mut x = 0u64;
            for i in 0..1000u64 {
                x = x.wrapping_add(i * i);
            }
            x
        });
        assert!(t >= 0.0 && t.is_finite());
    }
}
