//! Regenerates the paper's Table 1: compiles all nine kernels, scores the
//! compiler output and the IP-style baselines with the shared Virtex-II
//! model, and prints the comparison alongside the published numbers.

fn main() {
    println!("Reproduction of Table 1 (DATE 2005, \"Optimized Generation of");
    println!("Data-path from C Codes for FPGAs\") — all numbers from the shared");
    println!("Virtex-II xc2v2000-style synthesis model.\n");

    // Rows compile and simulate concurrently (one scoped thread each).
    let rows = roccc_ipcores::run_table1();
    println!("{}", roccc_ipcores::render_table(&rows));

    println!("\nThroughput (outputs per clock once the pipeline is full):");
    for r in &rows {
        if r.outputs_per_cycle > 1 {
            println!(
                "  {:<14} {} outputs/cycle (the Xilinx IP produces 1) — the paper: \
                 \"though ROCCC-generated DCT runs at a lower speed, the overall \
                 throughput of ROCCC-generated circuit is higher\"",
                r.name, r.outputs_per_cycle
            );
        }
    }

    println!("\nFast-estimator ablation (paper §2: <1 ms, ~5% accuracy):");
    for r in &rows {
        let err = roccc_synth::estimate_error_pct(&r.roccc_fast, &r.roccc);
        println!(
            "  {:<14} fast {:>5} slices vs full {:>5} slices ({:>5.1}% error)",
            r.name, r.roccc_fast.slices, r.roccc.slices, err
        );
    }
}
