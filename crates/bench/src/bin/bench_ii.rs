//! Initiation-interval bench: MinII lower bounds vs. body latency on
//! every Table 1 kernel.
//!
//! ```text
//! cargo run --release -p roccc-bench --bin bench_ii -- [--out PATH]
//! ```
//!
//! For each row the kernel is compiled and its dependence/recurrence
//! analysis is read back: the recurrence-constrained MinII (`RecMII`),
//! the resource-constrained MinII (`ResMII`), their maximum (`MinII`),
//! and the pipeline body latency in stages. The kernel is then compiled
//! again with modulo scheduling requested (`pipeline_ii = auto`) and
//! the achieved II and the resulting steady-state throughput in windows
//! per cycle are recorded next to the bound. The table is written to
//! `BENCH_ii.json` so both the bound and what the scheduler actually
//! achieves are tracked PR over PR.

use roccc::{compile, CompileOptions};
use roccc_ipcores::benchmarks;
use std::fmt::Write as _;

fn parse_out() -> String {
    let mut out = "BENCH_ii.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--help" | "-h" => {
                eprintln!("usage: bench_ii [--out PATH]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    out
}

struct Row {
    name: &'static str,
    rec_mii: u64,
    res_mii: u64,
    min_ii: u64,
    body_latency: u32,
    carried_edges: usize,
    recurrences: usize,
    achieved_ii: u64,
    throughput_windows_per_cycle: f64,
}

fn main() {
    let out = parse_out();

    let mut rows = Vec::new();
    for b in benchmarks() {
        let c = compile(&b.source, b.func, &b.opts).expect("benchmark compiles");
        let d = &c.deps;
        let sched_opts = CompileOptions {
            pipeline_ii: Some(0),
            ..b.opts.clone()
        };
        let scheduled =
            compile(&b.source, b.func, &sched_opts).expect("scheduled benchmark compiles");
        let s = scheduled
            .schedule
            .as_ref()
            .expect("schedule artifact present");
        println!(
            "{:16} MinII {:2} (rec {:2}, res {:2})   achieved II {:2}   body latency {:2}   {} carried edge(s), {} recurrence(s)",
            b.name,
            d.min_ii,
            d.rec_mii,
            d.res_mii,
            s.ii,
            d.body_latency,
            d.edges.iter().filter(|e| e.carried).count(),
            d.recurrences.len()
        );
        rows.push(Row {
            name: b.name,
            rec_mii: d.rec_mii,
            res_mii: d.res_mii,
            min_ii: d.min_ii,
            body_latency: d.body_latency,
            carried_edges: d.edges.iter().filter(|e| e.carried).count(),
            recurrences: d.recurrences.len(),
            achieved_ii: s.ii,
            throughput_windows_per_cycle: s.throughput_windows_per_cycle(),
        });
    }

    // The bench JSON schema is bespoke to this harness, like
    // BENCH_width.json: hand-written, deterministic field order.
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"min-ii\",\n  \"unit\": \"cycles\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"rec_mii\": {}, \"res_mii\": {}, \"min_ii\": {}, \
             \"achieved_ii\": {}, \"throughput_windows_per_cycle\": {:.4}, \
             \"body_latency\": {}, \"headroom\": {}, \"carried_edges\": {}, \"recurrences\": {}}}",
            r.name,
            r.rec_mii,
            r.res_mii,
            r.min_ii,
            r.achieved_ii,
            r.throughput_windows_per_cycle,
            r.body_latency,
            u64::from(r.body_latency).saturating_sub(r.min_ii),
            r.carried_edges,
            r.recurrences
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&out, &s).expect("write bench json");

    // The paper's three headline kernels must show pipelining headroom —
    // the dependence bound strictly below the body latency — and the
    // scheduler must actually close that gap: achieved II == MinII.
    for name in ["fir", "dct", "wavelet"] {
        let r = rows
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("Table 1 kernel `{name}` missing"));
        assert!(
            r.min_ii < u64::from(r.body_latency),
            "{name}: MinII {} must be below body latency {}",
            r.min_ii,
            r.body_latency
        );
        assert_eq!(
            r.achieved_ii, r.min_ii,
            "{name}: the scheduler must achieve the MinII bound"
        );
    }

    let headroom = rows
        .iter()
        .filter(|r| r.min_ii < u64::from(r.body_latency))
        .count();
    println!(
        "\n{headroom}/{} kernels have MinII below body latency; wrote {out}",
        rows.len()
    );
}
