//! Load generator for the `roccc-serve` compile daemon.
//!
//! ```text
//! cargo run --release -p roccc-bench --bin loadgen -- [options]
//!
//!   --threads <n>      concurrent client threads (default 8)
//!   --requests <n>     requests per thread (default 32)
//!   --unique-pct <p>   % of requests with a unique (never-cached)
//!                      source variant (default 25)
//!   --server <addr>    use a running daemon instead of an in-process one
//!   --emit <what>      artifact to request (default vhdl)
//!   --out <path>       JSON artifact path (default BENCH_serve.json)
//!   --seed <n>         PRNG seed (default 7)
//! ```
//!
//! Each thread draws kernels from the nine Table 1 benchmarks
//! (repeated requests exercise the content-addressed cache; the unique
//! fraction appends a distinguishing comment so it always misses) and
//! opens one connection per request, retrying with backoff on `busy`.
//! The run reports client-observed throughput, p50/p99 latency, the
//! cache hit rate, and the hit-vs-cold speedup, then writes the
//! tracked artifact `BENCH_serve.json`.

use roccc::proto::{roundtrip, Request, Response};
use roccc_bench::percentile;
use roccc_testutil::XorShift64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Config {
    threads: usize,
    requests: usize,
    unique_pct: u64,
    server: Option<String>,
    emit: String,
    out: String,
    seed: u64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        threads: 8,
        requests: 32,
        unique_pct: 25,
        server: None,
        emit: "vhdl".to_string(),
        out: "BENCH_serve.json".to_string(),
        seed: 7,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--threads" => cfg.threads = grab("--threads").parse().expect("--threads: integer"),
            "--requests" => cfg.requests = grab("--requests").parse().expect("--requests: integer"),
            "--unique-pct" => {
                cfg.unique_pct = grab("--unique-pct").parse().expect("--unique-pct: integer")
            }
            "--server" => cfg.server = Some(grab("--server")),
            "--emit" => cfg.emit = grab("--emit"),
            "--out" => cfg.out = grab("--out"),
            "--seed" => cfg.seed = grab("--seed").parse().expect("--seed: integer"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--threads N] [--requests M] [--unique-pct P] \
                     [--server addr] [--emit what] [--out PATH] [--seed S]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    cfg
}

/// One client-side observation.
struct Sample {
    seconds: f64,
    cached: bool,
}

fn main() {
    let cfg = parse_args();

    // Spin up an in-process daemon unless pointed at a running one.
    let (addr, handle) = match &cfg.server {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = roccc_serve::start(roccc_serve::ServerConfig {
                workers: cfg.threads.max(4),
                queue_cap: cfg.threads * 4,
                cache_cap: 512,
                ..roccc_serve::ServerConfig::default()
            })
            .expect("in-process roccc-serve starts");
            (handle.local_addr().to_string(), Some(handle))
        }
    };

    let pool: Vec<(String, String, roccc::CompileOptions)> = roccc_ipcores::table::benchmarks()
        .into_iter()
        .map(|b| (b.source, b.func.to_string(), b.opts))
        .collect();
    println!(
        "loadgen: {} threads x {} requests ({}% unique) against {} kernels at {}",
        cfg.threads,
        cfg.requests,
        cfg.unique_pct,
        pool.len(),
        addr
    );

    let busy_retries = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let io_timeout = Some(Duration::from_secs(120));

    let t_start = Instant::now();
    let mut samples: Vec<Sample> = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..cfg.threads {
            let pool = &pool;
            let addr = addr.clone();
            let emit = cfg.emit.clone();
            let busy_retries = Arc::clone(&busy_retries);
            let dropped = Arc::clone(&dropped);
            let unique_pct = cfg.unique_pct;
            let requests = cfg.requests;
            let seed = cfg.seed;
            joins.push(scope.spawn(move || {
                let mut rng = XorShift64::new(seed ^ (t as u64).wrapping_mul(0x9e37));
                let mut local = Vec::with_capacity(requests);
                for i in 0..requests {
                    let (src, func, opts) = &pool[rng.gen_range(0, pool.len() as i64 - 1) as usize];
                    let mut source = src.clone();
                    if (rng.gen_range(0, 99) as u64) < unique_pct {
                        // A distinguishing comment flips the content hash
                        // without changing what is compiled.
                        source.push_str(&format!("\n// uniq {t}-{i}\n"));
                    }
                    let req = Request::Compile {
                        source,
                        function: func.clone(),
                        opts: opts.clone(),
                        emit: emit.clone(),
                    };
                    let t0 = Instant::now();
                    let mut attempts = 0u32;
                    loop {
                        match roundtrip(addr.as_str(), &req, io_timeout) {
                            Ok(Response::Ok { cached, .. }) => {
                                local.push(Sample {
                                    seconds: t0.elapsed().as_secs_f64(),
                                    cached,
                                });
                                break;
                            }
                            Ok(Response::Busy) => {
                                busy_retries.fetch_add(1, Ordering::Relaxed);
                                attempts += 1;
                                if attempts > 1000 {
                                    dropped.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(
                                    2 * u64::from(attempts.min(10)),
                                ));
                            }
                            Ok(other) => {
                                eprintln!("loadgen: non-ok reply: {other:?}");
                                dropped.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) => {
                                eprintln!("loadgen: transport error: {e}");
                                dropped.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
                local
            }));
        }
        for j in joins {
            samples.extend(j.join().expect("client thread"));
        }
    });
    let wall = t_start.elapsed().as_secs_f64();

    // Uncontended probe for the hit-vs-cold comparison: under the
    // concurrent hammer a "hit" sample can be a single-flight waiter
    // that paid most of a compile, so measure the two paths cleanly on
    // one idle connection each. Every pool kernel is warm by now (the
    // hammer compiled them); a unique suffix forces a cold compile.
    let probe_one =
        |source: String, func: &str, opts: &roccc::CompileOptions| -> Option<(f64, bool)> {
            let req = Request::Compile {
                source,
                function: func.to_string(),
                opts: opts.clone(),
                emit: cfg.emit.clone(),
            };
            let t0 = Instant::now();
            match roundtrip(addr.as_str(), &req, io_timeout) {
                Ok(Response::Ok { cached, .. }) => Some((t0.elapsed().as_secs_f64(), cached)),
                other => {
                    eprintln!("loadgen: probe failed: {other:?}");
                    None
                }
            }
        };
    let mut probe_hit = Vec::with_capacity(pool.len());
    let mut probe_cold = Vec::with_capacity(pool.len());
    println!("\nuncontended probe (hit = best of 3):");
    for (i, (src, func, opts)) in pool.iter().enumerate() {
        // Steady-state hit: best of three repeated requests (all warm).
        let hit = (0..3)
            .filter_map(|_| probe_one(src.clone(), func, opts))
            .filter(|&(_, cached)| cached)
            .map(|(s, _)| s)
            .fold(f64::INFINITY, f64::min);
        // Cold: a unique variant, never seen by the cache.
        let cold = probe_one(format!("{src}\n// uniq probe-{i}\n"), func, opts)
            .filter(|&(_, cached)| !cached)
            .map(|(s, _)| s);
        if let (true, Some(cold)) = (hit.is_finite(), cold) {
            println!(
                "  {:<16} cold {:>8.3} ms   hit {:>7.3} ms   {:>6.1}x",
                func,
                cold * 1e3,
                hit * 1e3,
                cold / hit
            );
            probe_hit.push(hit);
            probe_cold.push(cold);
        }
    }

    // Server-side truth for the hit rate (memory + disk hits).
    let (srv_hits, srv_misses) = match roundtrip(addr.as_str(), &Request::Metrics, io_timeout) {
        Ok(Response::Ok { payload, .. }) => {
            let text = String::from_utf8_lossy(&payload).into_owned();
            (
                roccc_serve::scrape_counter(&text, "roccc_cache_hits_total").unwrap_or(0)
                    + roccc_serve::scrape_counter(&text, "roccc_disk_hits_total").unwrap_or(0),
                roccc_serve::scrape_counter(&text, "roccc_cache_misses_total").unwrap_or(0),
            )
        }
        _ => (0, 0),
    };
    if let Some(h) = handle {
        h.shutdown();
    }

    let total = samples.len();
    let dropped = dropped.load(Ordering::Relaxed);
    let busy_retries = busy_retries.load(Ordering::Relaxed);
    let mut lat: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&lat, 50.0) * 1e3;
    let p99 = percentile(&lat, 99.0) * 1e3;
    let throughput = total as f64 / wall;
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let hit_lat: Vec<f64> = samples
        .iter()
        .filter(|s| s.cached)
        .map(|s| s.seconds)
        .collect();
    let hit_ms = mean(&probe_hit) * 1e3;
    let cold_ms = mean(&probe_cold) * 1e3;
    let hit_speedup = if hit_ms > 0.0 {
        cold_ms / hit_ms
    } else {
        f64::NAN
    };
    let hit_rate = if srv_hits + srv_misses > 0 {
        srv_hits as f64 / (srv_hits + srv_misses) as f64
    } else {
        hit_lat.len() as f64 / total.max(1) as f64
    };

    println!("\ncompleted {total} requests in {wall:.2}s ({dropped} dropped, {busy_retries} busy retries)");
    println!("throughput       : {throughput:.1} req/s");
    println!("latency p50/p99  : {p50:.2} ms / {p99:.2} ms");
    println!(
        "cache hit rate   : {:.1}% ({srv_hits} hits / {srv_misses} misses)",
        hit_rate * 100.0
    );
    println!(
        "cold vs hit      : {cold_ms:.2} ms vs {hit_ms:.3} ms ({hit_speedup:.0}x, uncontended probe)"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"serve-loadgen\",\n  \"threads\": {},\n  \"requests_per_thread\": {},\n  \"unique_pct\": {},\n  \"emit\": \"{}\",\n  \"completed\": {},\n  \"dropped\": {},\n  \"busy_retries\": {},\n  \"wall_seconds\": {:.3},\n  \"throughput_rps\": {:.1},\n  \"latency_p50_ms\": {:.3},\n  \"latency_p99_ms\": {:.3},\n  \"hit_rate\": {:.4},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cold_latency_ms\": {:.3},\n  \"hit_latency_ms\": {:.4},\n  \"hit_speedup\": {:.1}\n}}\n",
        cfg.threads,
        cfg.requests,
        cfg.unique_pct,
        cfg.emit,
        total,
        dropped,
        busy_retries,
        wall,
        throughput,
        p50,
        p99,
        hit_rate,
        srv_hits,
        srv_misses,
        cold_ms,
        hit_ms,
        hit_speedup
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_serve.json");
    println!("\nwrote {}", cfg.out);

    if dropped > 0 {
        eprintln!("WARNING: {dropped} requests dropped (acceptance target: zero non-busy drops)");
        std::process::exit(1);
    }
    if hit_speedup < 10.0 {
        eprintln!(
            "WARNING: cache-hit speedup {hit_speedup:.1}x is below the 10x acceptance target"
        );
    }
}
