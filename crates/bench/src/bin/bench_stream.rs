//! Streaming-pipeline benchmark: compiles the wavelet | threshold |
//! encode demo pipeline, co-simulates the whole process network, and
//! contrasts it with the store-and-forward baseline (each stage run to
//! completion on its own, outputs handed over as whole arrays). Writes
//! the tracked artifact `BENCH_stream.json`.
//!
//! ```text
//! cargo run --release -p roccc-bench --bin bench_stream [-- options]
//!   --out <path>   JSON artifact path (default BENCH_stream.json)
//!   --quick        tiny 2-stage pipeline for CI smoke
//! ```
//!
//! The headline number is `overlap_speedup` = sum of standalone stage
//! cycles / whole-pipeline cycles: how much latency the FIFO-coupled
//! network hides by letting consumers start before producers finish.
//! Cycle counts are machine-independent; wall-clock fields are not.

use roccc::CompileOptions;
use roccc_stream::{compile_pipeline, parse_spec, run_cosim, CompiledPipeline};
use std::collections::HashMap;
use std::time::Instant;

const QUICK_SOURCE: &str = "void scale(int A[64], int B[64]) {\n\
                            \x20 for (int i = 0; i < 64; i = i + 1) { B[i] = A[i] * 3; }\n\
                            }\n\
                            void offset(int B[64], int C[64]) {\n\
                            \x20 for (int i = 0; i < 64; i = i + 1) { C[i] = B[i] + 7; }\n\
                            }\n";
const QUICK_SPEC: &str = "name quick_duo\npipeline scale | offset\n";

/// Reproducible external inputs: pseudo-random words for every
/// non-channel-fed input array, 1 for every scalar live-in.
fn synth_inputs(cp: &CompiledPipeline) -> (HashMap<String, Vec<i64>>, HashMap<String, i64>) {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 201) as i64 - 100
    };
    let mut arrays = HashMap::new();
    let mut scalars = HashMap::new();
    for (si, st) in cp.stages.iter().enumerate() {
        for c in &st.rates.consumes {
            let channel_fed = cp
                .channels
                .iter()
                .any(|ch| ch.to_stage == si && ch.to_array == c.array);
            if !channel_fed {
                arrays.insert(
                    format!("{}.{}", st.name, c.array),
                    (0..c.len).map(|_| next()).collect(),
                );
            }
        }
        for (name, _) in &st.compiled.kernel.scalar_inputs {
            scalars.insert(format!("{}.{name}", st.name), 1);
        }
    }
    (arrays, scalars)
}

/// Store-and-forward baseline: run every stage standalone in pipeline
/// order, handing finished output arrays to channel-fed consumers.
/// Returns the per-stage cycle counts.
fn sum_of_stages(
    cp: &CompiledPipeline,
    external: &HashMap<String, Vec<i64>>,
    scalars: &HashMap<String, i64>,
) -> Vec<u64> {
    let bus = cp.spec.bus_elems.max(1);
    let mut produced: HashMap<String, Vec<i64>> = HashMap::new();
    let mut cycles = Vec::with_capacity(cp.stages.len());
    for (si, st) in cp.stages.iter().enumerate() {
        let kernel = &st.compiled.kernel;
        let mut arrays = HashMap::new();
        for w in &kernel.windows {
            let key = format!("{}.{}", st.name, w.array);
            let data = match cp
                .channels
                .iter()
                .find(|ch| ch.to_stage == si && ch.to_array == w.array)
            {
                Some(ch) => produced
                    [&format!("{}.{}", cp.stages[ch.from_stage].name, ch.from_array)]
                    .clone(),
                None => external[&key].clone(),
            };
            arrays.insert(w.array.clone(), data);
        }
        let mut stage_scalars = HashMap::new();
        for (name, _) in &kernel.scalar_inputs {
            stage_scalars.insert(name.clone(), scalars[&format!("{}.{name}", st.name)]);
        }
        let run = st
            .compiled
            .run_with_bus(&arrays, &stage_scalars, bus)
            .expect("standalone stage run");
        for o in &kernel.outputs {
            let size: usize = o.dims.iter().product();
            let mut data = run.arrays.get(&o.array).cloned().unwrap_or_default();
            data.resize(size, 0);
            produced.insert(format!("{}.{}", st.name, o.array), data);
        }
        cycles.push(run.cycles);
    }
    cycles
}

fn main() {
    let mut out = "BENCH_stream.json".to_string();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--quick" => quick = true,
            other => panic!("unknown argument `{other}`"),
        }
    }

    let (source, spec_text) = if quick {
        (QUICK_SOURCE.to_string(), QUICK_SPEC.to_string())
    } else {
        (
            roccc_ipcores::kernels::wavelet_pipeline_source(),
            roccc_ipcores::kernels::wavelet_pipeline_spec(),
        )
    };
    let spec = parse_spec(&spec_text).expect("pipeline spec parses");
    let t0 = Instant::now();
    let cp =
        compile_pipeline(&source, &spec, &CompileOptions::default()).expect("pipeline compiles");
    let wall_compile = t0.elapsed().as_secs_f64();

    let (arrays, scalars) = synth_inputs(&cp);
    let t1 = Instant::now();
    let run = run_cosim(&cp, std::slice::from_ref(&arrays), &scalars).expect("cosim runs");
    let wall_cosim = t1.elapsed().as_secs_f64();
    let stage_cycles = sum_of_stages(&cp, &arrays, &scalars);
    let sum_cycles: u64 = stage_cycles.iter().sum();
    let overlap = sum_cycles as f64 / run.cycles.max(1) as f64;

    println!(
        "bench_stream: pipeline `{}` | cosim {} cycles vs sum-of-stages {} cycles \
         ({overlap:.2}x overlap) | {:.4} outputs/cycle",
        cp.spec.name,
        run.cycles,
        sum_cycles,
        run.throughput(),
    );

    let per_stage: Vec<String> = cp
        .stages
        .iter()
        .zip(&run.stages)
        .zip(&stage_cycles)
        .map(|((st, ss), solo)| {
            format!(
                "    {{\n      \"stage\": \"{}\",\n      \"standalone_cycles\": {},\n      \"fired\": {},\n      \"stall_cycles\": {},\n      \"starve_cycles\": {}\n    }}",
                st.name, solo, ss.fired, ss.stall_cycles, ss.starve_cycles
            )
        })
        .collect();
    let fifos: Vec<String> = cp
        .channels
        .iter()
        .zip(&run.fifo_peaks)
        .map(|(c, peak)| {
            format!(
                "    {{\n      \"channel\": \"{}.{} -> {}.{}\",\n      \"min_depth\": {},\n      \"depth\": {},\n      \"peak_occupancy\": {}\n    }}",
                cp.stages[c.from_stage].name,
                c.from_array,
                cp.stages[c.to_stage].name,
                c.to_array,
                c.min_depth,
                c.depth,
                peak
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"benchmark\": \"stream-pipeline\",\n  \"pipeline\": \"{}\",\n  \"stages\": {:?},\n  \"cosim_cycles\": {},\n  \"sum_stage_cycles\": {},\n  \"overlap_speedup\": {:.4},\n  \"outputs_per_cycle\": {:.4},\n  \"output_words\": {},\n  \"wall_compile_s\": {:.4},\n  \"wall_cosim_s\": {:.4},\n  \"per_stage\": [\n{}\n  ],\n  \"fifos\": [\n{}\n  ]\n}}\n",
        cp.spec.name,
        cp.stages.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
        run.cycles,
        sum_cycles,
        overlap,
        run.throughput(),
        run.mem_writes,
        wall_compile,
        wall_cosim,
        per_stage.join(",\n"),
        fifos.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write BENCH_stream.json");
    println!("  -> {out}");
}
