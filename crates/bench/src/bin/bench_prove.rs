//! Translation-validation bench: certification cost and discharge mix on
//! every Table 1 kernel.
//!
//! ```text
//! cargo run --release -p roccc-bench --bin bench_prove -- [--out PATH]
//! ```
//!
//! Each kernel is compiled once (without proving) and the prover is then
//! timed on the resulting IR/netlist pair: wall time, how each obligation
//! was discharged (normalizing rewriter vs. range facts vs. the SAT
//! fallback), total rewrite steps, the symbolic footprint in hash-consed
//! terms, and the rendered certificate size. The table is written to
//! `BENCH_prove.json` so the rewriter's coverage — how much of the proof
//! closes without touching SAT — is tracked PR over PR.

use roccc::compile;
use roccc_ipcores::benchmarks;
use roccc_prove::{certificate_json, prove, ProveOptions, Verdict};
use std::fmt::Write as _;
use std::time::Instant;

fn parse_out() -> String {
    let mut out = "BENCH_prove.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--help" | "-h" => {
                eprintln!("usage: bench_prove [--out PATH]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    out
}

struct Row {
    name: &'static str,
    verdict: &'static str,
    wall_ms: f64,
    obligations: usize,
    proved_rewrite: usize,
    proved_range: usize,
    proved_sat: usize,
    refuted: usize,
    unknown: usize,
    rewrite_steps: u64,
    terms: usize,
    cert_bytes: usize,
}

fn main() {
    let out = parse_out();

    let mut rows = Vec::new();
    for b in benchmarks() {
        let c = compile(&b.source, b.func, &b.opts).expect("benchmark compiles");
        let t0 = Instant::now();
        let cert = prove(&c.ir, &c.netlist, b.name, &ProveOptions::default());
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (rw, rg, sat, refuted, unknown) = cert.status_counts();
        let verdict = match cert.verdict {
            Verdict::Equal => "equal",
            Verdict::Refuted => "refuted",
            Verdict::Unknown => "unknown",
        };
        println!(
            "{:16} {:8} {:8.2} ms   {:2} obligation(s): {} rewrite, {} range, {} sat   {} step(s), {} term(s)",
            b.name,
            verdict,
            wall_ms,
            cert.obligations.len(),
            rw,
            rg,
            sat,
            cert.rewrite_steps,
            cert.terms
        );
        rows.push(Row {
            name: b.name,
            verdict,
            wall_ms,
            obligations: cert.obligations.len(),
            proved_rewrite: rw,
            proved_range: rg,
            proved_sat: sat,
            refuted,
            unknown,
            rewrite_steps: cert.rewrite_steps,
            terms: cert.terms,
            cert_bytes: certificate_json(&cert).len(),
        });
    }

    // The bench JSON schema is bespoke to this harness, like
    // BENCH_ii.json: hand-written, deterministic field order.
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"prove\",\n  \"unit\": \"ms\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"verdict\": \"{}\", \"wall_ms\": {:.3}, \
             \"obligations\": {}, \"proved_rewrite\": {}, \"proved_range\": {}, \
             \"proved_sat\": {}, \"refuted\": {}, \"unknown\": {}, \
             \"rewrite_steps\": {}, \"terms\": {}, \"cert_bytes\": {}}}",
            r.name,
            r.verdict,
            r.wall_ms,
            r.obligations,
            r.proved_rewrite,
            r.proved_range,
            r.proved_sat,
            r.refuted,
            r.unknown,
            r.rewrite_steps,
            r.terms,
            r.cert_bytes
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&out, &s).expect("write bench json");

    // Every Table 1 kernel must certify EQUAL with nothing left unknown,
    // and the straight-line arithmetic kernels must close entirely in the
    // normalizing rewriter — no SAT calls at all.
    for r in &rows {
        assert_eq!(
            r.verdict, "equal",
            "{}: Table 1 kernel must certify EQUAL",
            r.name
        );
        assert_eq!(r.unknown, 0, "{}: residual unknown obligations", r.name);
    }
    for name in ["fir", "mul_acc"] {
        let r = rows
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("Table 1 kernel `{name}` missing"));
        assert_eq!(
            r.proved_sat, 0,
            "{name}: must close rewrite-only, but {} obligation(s) needed SAT",
            r.proved_sat
        );
    }

    let rewrite_only = rows.iter().filter(|r| r.proved_sat == 0).count();
    println!(
        "\n{rewrite_only}/{} kernels close without the SAT fallback; wrote {out}",
        rows.len()
    );
}
