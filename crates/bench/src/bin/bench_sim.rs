//! Simulation-throughput micro-bench: reference interpreter vs. compiled
//! engine, cycles per second, on the paper's pipelined kernels.
//!
//! ```text
//! cargo run --release -p roccc-bench --bin bench_sim -- [--cycles N] [--runs R] [--out PATH]
//! ```
//!
//! For each kernel the same cycle stream (same arguments, same
//! valid/bubble pattern) is driven through [`NetlistSim`] (the readable
//! per-cycle interpreter) and [`CompiledSim`] (the levelized zero-alloc
//! engine), and the median-of-runs cycles/sec plus the compiled-engine
//! speedup are written to `BENCH_sim.json` so the perf trajectory is
//! tracked PR over PR.

use roccc::{CompileOptions, CompiledSim, NetlistSim};
use roccc_bench::{bench_result, render_bench_json, time_median, BenchResult};
use roccc_netlist::SimPlan;
use roccc_testutil::XorShift64;
use std::hint::black_box;

struct Config {
    cycles: u64,
    runs: usize,
    lanes: usize,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        cycles: 200_000,
        runs: 5,
        lanes: 64,
        out: "BENCH_sim.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--cycles" => cfg.cycles = grab("--cycles").parse().expect("--cycles: integer"),
            "--runs" => cfg.runs = grab("--runs").parse().expect("--runs: integer"),
            "--lanes" => cfg.lanes = grab("--lanes").parse().expect("--lanes: integer"),
            "--out" => cfg.out = grab("--out"),
            "--help" | "-h" => {
                eprintln!("usage: bench_sim [--cycles N] [--runs R] [--lanes L] [--out PATH]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    cfg
}

/// The benched kernels: straight-line data paths driven cycle by cycle.
/// (`fir_dp` is the paper's 5-tap FIR inner product — the acceptance
/// kernel; `dct`/`wavelet` are the heavier Table 1 streaming bodies.)
fn kernels() -> Vec<(&'static str, String, &'static str, f64)> {
    vec![
        (
            "fir",
            "void fir_dp(int16 A0, int16 A1, int16 A2, int16 A3, int16 A4, int16* T) {
               *T = 3*A0 + 5*A1 + 7*A2 + 9*A3 - A4; }"
                .to_string(),
            "fir_dp",
            5.2,
        ),
        ("dct", roccc_ipcores::kernels::dct_source(), "dct", 7.5),
        (
            "wavelet",
            roccc_ipcores::kernels::wavelet_source(),
            "wavelet",
            9.9,
        ),
    ]
}

fn main() {
    let cfg = parse_args();
    println!(
        "netlist simulation throughput — {} cycles/kernel, median of {} runs\n",
        cfg.cycles, cfg.runs
    );
    println!(
        "{:<10} {:>16} {:>16} {:>9} {:>16} {:>9}",
        "kernel", "reference c/s", "compiled c/s", "speedup", "batched c/s", "speedup"
    );

    let mut results: Vec<BenchResult> = Vec::new();
    for (name, src, func, period) in kernels() {
        let hw = roccc::compile(
            &src,
            func,
            &CompileOptions {
                target_period_ns: period,
                ..CompileOptions::default()
            },
        )
        .expect("bench kernel compiles");
        let nl = &hw.netlist;
        let plan = SimPlan::compile(nl).expect("plan compiles");
        let n_in = nl.inputs.len();
        let n_out = nl.outputs.len();

        // One shared input stream: random in-range args, ~1/8 bubbles.
        let mut rng = XorShift64::new(0xb0c0 + cfg.cycles);
        let flat_args: Vec<i64> = (0..cfg.cycles as usize)
            .flat_map(|_| {
                let r = &mut rng;
                nl.inputs
                    .iter()
                    .map(|(_, t)| r.sample_int(*t))
                    .collect::<Vec<i64>>()
            })
            .collect();
        let valids: Vec<bool> = (0..cfg.cycles).map(|_| rng.gen_ratio(7, 8)).collect();

        // Reference: per-cycle interpreter.
        let ref_secs = time_median(cfg.runs, || {
            let mut sim = NetlistSim::new(nl);
            let mut acc = 0i64;
            for (t, &v) in valids.iter().enumerate() {
                let args = &flat_args[t * n_in..(t + 1) * n_in];
                let r = sim.step(args, v).expect("reference step");
                if r.out_valid && n_out > 0 {
                    acc ^= r.outputs[0];
                }
            }
            black_box(acc) as u64
        });

        // Compiled: levelized zero-alloc engine over the same stream.
        let mut out_flat = vec![0i64; n_out];
        let comp_secs = time_median(cfg.runs, || {
            let mut sim = CompiledSim::new(&plan);
            let mut acc = 0i64;
            for (t, &v) in valids.iter().enumerate() {
                let args = &flat_args[t * n_in..(t + 1) * n_in];
                let out_valid = sim.step(args, v).expect("compiled step");
                if out_valid && n_out > 0 {
                    sim.read_outputs(&mut out_flat);
                    acc ^= out_flat[0];
                }
            }
            black_box(acc) as u64
        });

        // Batched: SoA lane engine over the same argument stream, every
        // iteration valid (the lane driver packs the stream densely, so
        // its unit is iterations == pipeline cycles per lane-pass).
        let mut batch_out: Vec<i64> = Vec::new();
        let batch_secs = time_median(cfg.runs, || {
            batch_out.clear();
            let rows = plan
                .run_batch_lanes(&flat_args, cfg.cycles as usize, cfg.lanes, &mut batch_out)
                .expect("batched run");
            black_box(rows as u64 ^ batch_out.first().copied().unwrap_or(0) as u64)
        });

        let mut reference = bench_result(name, "reference", cfg.cycles, ref_secs);
        let mut compiled = bench_result(name, "compiled", cfg.cycles, comp_secs);
        let mut batched = bench_result(name, "batched", cfg.cycles, batch_secs);
        compiled.speedup = compiled.cycles_per_sec / reference.cycles_per_sec;
        batched.speedup = batched.cycles_per_sec / compiled.cycles_per_sec;
        reference.speedup = 1.0;
        println!(
            "{:<10} {:>16.0} {:>16.0} {:>8.2}x {:>16.0} {:>8.2}x",
            name,
            reference.cycles_per_sec,
            compiled.cycles_per_sec,
            compiled.speedup,
            batched.cycles_per_sec,
            batched.speedup
        );
        results.push(reference);
        results.push(compiled);
        results.push(batched);
    }

    // Cross-check the engines agree on a short differential stream before
    // publishing numbers (belt and braces; the test suite covers this
    // exhaustively).
    verify_engines_agree();

    let doc = render_bench_json(&results);
    std::fs::write(&cfg.out, &doc).expect("write BENCH_sim.json");
    println!("\nwrote {}", cfg.out);

    let fir_speedup = results
        .iter()
        .find(|r| r.kernel == "fir" && r.engine == "compiled")
        .map(|r| r.speedup)
        .unwrap_or(0.0);
    if fir_speedup < 3.0 {
        eprintln!(
            "WARNING: compiled FIR speedup {fir_speedup:.2}x is below the 3x acceptance target"
        );
    }
}

fn verify_engines_agree() {
    let src = "void fir_dp(int16 A0, int16 A1, int16 A2, int16 A3, int16 A4, int16* T) {
       *T = 3*A0 + 5*A1 + 7*A2 + 9*A3 - A4; }";
    let hw = roccc::compile(src, "fir_dp", &CompileOptions::default()).expect("compiles");
    let plan = SimPlan::compile(&hw.netlist).expect("plan");
    let mut rng = XorShift64::new(1);
    let iters: Vec<Vec<i64>> = (0..64)
        .map(|_| {
            hw.netlist
                .inputs
                .iter()
                .map(|(_, t)| rng.sample_int(*t))
                .collect()
        })
        .collect();
    let a = NetlistSim::new(&hw.netlist).run_stream(&iters).unwrap();
    let b = CompiledSim::new(&plan).run_stream(&iters).unwrap();
    assert_eq!(a, b, "engines disagree — refusing to write BENCH_sim.json");
    // The lane-batched engine must be bit-exact too, remainder lanes
    // included (64 iterations over 7 lanes).
    let flat: Vec<i64> = iters.iter().flatten().copied().collect();
    let mut batched = Vec::new();
    plan.run_batch_lanes(&flat, iters.len(), 7, &mut batched)
        .unwrap();
    let flattened: Vec<i64> = a.into_iter().flatten().collect();
    assert_eq!(
        batched, flattened,
        "batched engine disagrees — refusing to write BENCH_sim.json"
    );
}
