//! Design-space exploration benchmark: sweeps several Table-1 kernels'
//! unroll × strip-mine spaces three ways each and writes the tracked
//! artifact `BENCH_dse.json`:
//!
//! 1. **sequential** — one worker, cold memo (the baseline);
//! 2. **parallel** — bounded worker pool, cold memo;
//! 3. **memoized re-run** — the parallel sweep again against its own
//!    memo, measuring the content-hash cache.
//!
//! ```text
//! cargo run --release -p roccc-bench --bin bench_dse [-- options]
//!   --kernels <csv>    Table-1 kernels to sweep (default fir,dct,wavelet)
//!   --factors <csv>    unroll factors (default 1,2,3,4,6,8)
//!   --strips <csv>     strip widths (default 0,2,4,8)
//!   --workers <n>      parallel worker count (default 8)
//!   --out <path>       JSON artifact path (default BENCH_dse.json)
//!   --quick            tiny space for CI smoke (fir; factors 1,2; strips 0)
//! ```
//!
//! The artifact carries one row per kernel plus an aggregate, so the
//! parallel numbers are measured over a workload large enough to be
//! stable run-to-run (a single 8-candidate sweep finishes in tens of
//! milliseconds — pure measurement noise). Wall-clock numbers are
//! machine-dependent (in particular, `parallel_speedup` tracks the host
//! core count, and is `null` on a single-CPU host where the ratio
//! measures scheduler contention rather than parallelism); the
//! machine-independent sweep facts (candidate counts, frontier sizes,
//! hit rates) travel alongside for regression judging.

use roccc::CompileOptions;
use roccc_explore::{explore, ExploreConfig, ExploreResult, Memo, Space};
use roccc_ipcores::benchmarks;
use std::time::Instant;

struct Cfg {
    kernels: Vec<String>,
    factors: Vec<u64>,
    strips: Vec<u64>,
    workers: usize,
    out: String,
}

fn parse_csv(flag: &str, v: &str) -> Vec<u64> {
    v.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{flag} expects comma-separated numbers, got `{p}`"))
        })
        .collect()
}

fn parse_args() -> Cfg {
    let mut cfg = Cfg {
        kernels: vec!["fir".into(), "dct".into(), "wavelet".into()],
        factors: vec![1, 2, 3, 4, 6, 8],
        strips: vec![0, 2, 4, 8],
        workers: 8,
        out: "BENCH_dse.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match a.as_str() {
            "--kernels" | "--kernel" => {
                cfg.kernels = need("--kernels")
                    .split(',')
                    .map(|s| s.trim().into())
                    .collect()
            }
            "--factors" => cfg.factors = parse_csv("--factors", &need("--factors")),
            "--strips" => cfg.strips = parse_csv("--strips", &need("--strips")),
            "--workers" => cfg.workers = need("--workers").parse().expect("--workers number"),
            "--out" => cfg.out = need("--out"),
            "--quick" => {
                cfg.kernels = vec!["fir".into()];
                cfg.factors = vec![1, 2];
                cfg.strips = vec![0];
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    cfg
}

/// Per-kernel sweep measurements.
struct KernelRow {
    name: String,
    candidates: usize,
    scored: usize,
    skipped: usize,
    frontier: usize,
    wall_seq: f64,
    wall_par: f64,
    wall_rerun: f64,
    hits: usize,
}

fn sweep_kernel(name: &str, base: &CompileOptions, space: &Space, workers: usize) -> KernelRow {
    let bench = benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown kernel `{name}` (see Table 1 rows)"));
    let n_candidates = space.candidates(base).len();

    let run = |workers: usize, memo: &Memo| -> (f64, ExploreResult) {
        let t0 = Instant::now();
        let result = explore(
            &bench.source,
            bench.func,
            base,
            space,
            &ExploreConfig {
                workers,
                budget_slices: None,
                beam: None,
                compiler: None,
            },
            memo,
        );
        (t0.elapsed().as_secs_f64(), result)
    };

    let (wall_seq, seq) = run(1, &Memo::new());
    let par_memo = Memo::new();
    let (wall_par, par) = run(workers, &par_memo);
    assert_eq!(
        seq.frontier, par.frontier,
        "{name}: worker count must not change the frontier"
    );
    let (wall_rerun, rerun) = run(workers, &par_memo);
    assert_eq!(
        rerun.stats.scored, 0,
        "{name}: re-run must not recompile anything"
    );
    // A failed candidate memoizes its (deterministic) error, so re-run
    // hits count both full scores and remembered failures.
    let hits = rerun.stats.memo_hits + rerun.stats.skipped;

    println!(
        "  {name:<10} {n_candidates:>4} cand | seq {wall_seq:.3}s  par {wall_par:.3}s ({:.2}x) | {} scored, {} skipped, frontier {}",
        wall_seq / wall_par.max(1e-12),
        par.stats.scored,
        par.stats.skipped,
        par.frontier.len(),
    );

    KernelRow {
        name: name.to_string(),
        candidates: n_candidates,
        scored: par.stats.scored,
        skipped: par.stats.skipped,
        frontier: par.frontier.len(),
        wall_seq,
        wall_par,
        wall_rerun,
        hits,
    }
}

fn main() {
    let cfg = parse_args();
    let base = CompileOptions::default();
    let space = Space::new(&cfg.factors, &cfg.strips, false);
    let per_kernel = space.candidates(&base).len();
    let workers = cfg.workers.max(1);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a single-CPU host the parallel pool measures scheduler
    // contention, not speedup; the ratio is noise in either direction, so
    // the artifact reports `null` rather than a misleading number (the
    // ci.sh parallel gate skips on the same condition).
    let speedup_json = |seq: f64, par: f64| -> String {
        if host_cpus < 2 {
            "null".to_string()
        } else {
            format!("{:.2}", seq / par.max(1e-12))
        }
    };

    println!(
        "bench_dse: kernels {:?} | space {:?} x {:?} = {} candidates/kernel | {} workers",
        cfg.kernels, cfg.factors, cfg.strips, per_kernel, workers
    );

    let rows: Vec<KernelRow> = cfg
        .kernels
        .iter()
        .map(|k| sweep_kernel(k, &base, &space, workers))
        .collect();

    let total: usize = rows.iter().map(|r| r.candidates).sum();
    let scored: usize = rows.iter().map(|r| r.scored).sum();
    let skipped: usize = rows.iter().map(|r| r.skipped).sum();
    let wall_seq: f64 = rows.iter().map(|r| r.wall_seq).sum();
    let wall_par: f64 = rows.iter().map(|r| r.wall_par).sum();
    let wall_rerun: f64 = rows.iter().map(|r| r.wall_rerun).sum();
    let hits: usize = rows.iter().map(|r| r.hits).sum();
    let speedup = speedup_json(wall_seq, wall_par);
    let cps = if wall_par > 0.0 {
        total as f64 / wall_par
    } else {
        0.0
    };
    let hit_rate = hits as f64 / total.max(1) as f64;

    let kernel_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"kernel\": \"{}\",\n      \"candidates\": {},\n      \"scored\": {},\n      \"skipped\": {},\n      \"frontier_size\": {},\n      \"wall_seq_s\": {:.4},\n      \"wall_par_s\": {:.4},\n      \"parallel_speedup\": {},\n      \"candidates_per_sec\": {:.2},\n      \"wall_rerun_s\": {:.4}\n    }}",
                r.name,
                r.candidates,
                r.scored,
                r.skipped,
                r.frontier,
                r.wall_seq,
                r.wall_par,
                speedup_json(r.wall_seq, r.wall_par),
                r.candidates as f64 / r.wall_par.max(1e-12),
                r.wall_rerun,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"benchmark\": \"dse-sweep\",\n  \"kernels_swept\": {:?},\n  \"unroll_factors\": {:?},\n  \"strip_widths\": {:?},\n  \"candidates\": {},\n  \"workers\": {},\n  \"host_cpus\": {},\n  \"scored\": {},\n  \"skipped\": {},\n  \"wall_seq_s\": {:.4},\n  \"wall_par_s\": {:.4},\n  \"parallel_speedup\": {},\n  \"candidates_per_sec\": {:.2},\n  \"wall_rerun_s\": {:.4},\n  \"rerun_hit_rate\": {:.4},\n  \"per_kernel\": [\n{}\n  ]\n}}\n",
        cfg.kernels,
        cfg.factors,
        cfg.strips,
        total,
        workers,
        host_cpus,
        scored,
        skipped,
        wall_seq,
        wall_par,
        speedup,
        cps,
        wall_rerun,
        hit_rate,
        kernel_rows.join(",\n"),
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_dse.json");
    println!(
        "  aggregate: {total} candidates | speedup {speedup}x | {cps:.1} candidates/s -> {}",
        cfg.out
    );
}
