//! Design-space exploration benchmark: sweeps the fir kernel's
//! unroll × strip-mine space three ways and writes the tracked artifact
//! `BENCH_dse.json`:
//!
//! 1. **sequential** — one worker, cold memo (the baseline);
//! 2. **parallel** — bounded worker pool, cold memo;
//! 3. **memoized re-run** — the parallel sweep again against its own
//!    memo, measuring the content-hash cache.
//!
//! ```text
//! cargo run --release -p roccc-bench --bin bench_dse [-- options]
//!   --kernel <name>    Table-1 kernel to sweep (default fir)
//!   --factors <csv>    unroll factors (default 1,2,4,8)
//!   --strips <csv>     strip widths (default 0,4)
//!   --workers <n>      parallel worker count (default min(candidates, 8))
//!   --out <path>       JSON artifact path (default BENCH_dse.json)
//!   --quick            tiny space for CI smoke (factors 1,2; strips 0)
//! ```
//!
//! All wall-clock numbers are machine-dependent; the artifact also
//! carries machine-independent sweep facts (candidate counts, frontier
//! size, hit rate) that regressions can be judged against.

use roccc::CompileOptions;
use roccc_explore::{explore, ExploreConfig, Memo, Space};
use roccc_ipcores::benchmarks;
use std::time::Instant;

struct Cfg {
    kernel: String,
    factors: Vec<u64>,
    strips: Vec<u64>,
    workers: usize,
    out: String,
}

fn parse_csv(flag: &str, v: &str) -> Vec<u64> {
    v.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{flag} expects comma-separated numbers, got `{p}`"))
        })
        .collect()
}

fn parse_args() -> Cfg {
    let mut cfg = Cfg {
        kernel: "fir".to_string(),
        factors: vec![1, 2, 4, 8],
        strips: vec![0, 4],
        workers: 0,
        out: "BENCH_dse.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match a.as_str() {
            "--kernel" => cfg.kernel = need("--kernel"),
            "--factors" => cfg.factors = parse_csv("--factors", &need("--factors")),
            "--strips" => cfg.strips = parse_csv("--strips", &need("--strips")),
            "--workers" => cfg.workers = need("--workers").parse().expect("--workers number"),
            "--out" => cfg.out = need("--out"),
            "--quick" => {
                cfg.factors = vec![1, 2];
                cfg.strips = vec![0];
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    cfg
}

fn main() {
    let cfg = parse_args();
    let bench = benchmarks()
        .into_iter()
        .find(|b| b.name == cfg.kernel)
        .unwrap_or_else(|| panic!("unknown kernel `{}` (see Table 1 rows)", cfg.kernel));
    let base = CompileOptions::default();
    let space = Space::new(&cfg.factors, &cfg.strips, false);
    let n_candidates = space.candidates(&base).len();
    let workers = if cfg.workers == 0 {
        n_candidates.clamp(1, 8)
    } else {
        cfg.workers
    };

    let run = |workers: usize, memo: &Memo| {
        let t0 = Instant::now();
        let result = explore(
            &bench.source,
            bench.func,
            &base,
            &space,
            &ExploreConfig {
                workers,
                budget_slices: None,
                beam: None,
                compiler: None,
            },
            memo,
        );
        (t0.elapsed().as_secs_f64(), result)
    };

    println!(
        "bench_dse: kernel {} | space {:?} x {:?} = {} candidates | {} workers",
        bench.name, cfg.factors, cfg.strips, n_candidates, workers
    );

    let (wall_seq, seq) = run(1, &Memo::new());
    println!(
        "  sequential : {wall_seq:.3} s ({} scored, {} skipped)",
        seq.stats.scored, seq.stats.skipped
    );

    let par_memo = Memo::new();
    let (wall_par, par) = run(workers, &par_memo);
    println!(
        "  parallel   : {wall_par:.3} s ({} scored, {} skipped)",
        par.stats.scored, par.stats.skipped
    );
    assert_eq!(
        seq.frontier, par.frontier,
        "worker count must not change the frontier"
    );

    let (wall_rerun, rerun) = run(workers, &par_memo);
    // A failed candidate memoizes its (deterministic) error, so re-run
    // hits count both full scores and remembered failures.
    let hits = rerun.stats.memo_hits + rerun.stats.skipped;
    let hit_rate = hits as f64 / rerun.stats.candidates.max(1) as f64;
    println!(
        "  memoized   : {wall_rerun:.3} s ({} hits of {} candidates, rate {hit_rate:.2})",
        hits, rerun.stats.candidates
    );
    assert_eq!(rerun.stats.scored, 0, "re-run must not recompile anything");

    let speedup = if wall_par > 0.0 {
        wall_seq / wall_par
    } else {
        0.0
    };
    let cps = if wall_par > 0.0 {
        n_candidates as f64 / wall_par
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"benchmark\": \"dse-sweep\",\n  \"kernel\": \"{}\",\n  \"unroll_factors\": {:?},\n  \"strip_widths\": {:?},\n  \"candidates\": {},\n  \"workers\": {},\n  \"scored\": {},\n  \"skipped\": {},\n  \"frontier_size\": {},\n  \"wall_seq_s\": {:.4},\n  \"wall_par_s\": {:.4},\n  \"parallel_speedup\": {:.2},\n  \"candidates_per_sec\": {:.2},\n  \"wall_rerun_s\": {:.4},\n  \"rerun_hit_rate\": {:.4}\n}}\n",
        bench.name,
        cfg.factors,
        cfg.strips,
        n_candidates,
        workers,
        par.stats.scored,
        par.stats.skipped,
        par.frontier.len(),
        wall_seq,
        wall_par,
        speedup,
        cps,
        wall_rerun,
        hit_rate,
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH_dse.json");
    println!(
        "  speedup {speedup:.2}x | {cps:.1} candidates/s | frontier {} -> {}",
        par.frontier.len(),
        cfg.out
    );
}
