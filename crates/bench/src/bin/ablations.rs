//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * **D1** — mux/pipe hard nodes (if-else) vs. the §5 algorithm-level
//!   rewrite that multiplies by the `nd` flag;
//! * **D2** — pipeline target-period sweep (area/Fmax trade-off);
//! * **D3** — bit-width narrowing on/off;
//! * **D4** — smart-buffer reuse vs. naive re-fetch;
//! * **D5** — multiplier style LUT vs. embedded MULT18x18;
//! * **D6** — bit-manipulation macros (the paper's future work).
//!
//! The sections are independent, so each one compiles and simulates its
//! kernels on its own scoped thread; the report prints in order once all
//! are done.

use roccc::{compile_with_model, CompileOptions};
use roccc_bench::fmt_report;
use roccc_synth::{map_netlist, MultiplierStyle, VirtexII};
use std::collections::HashMap;
use std::fmt::Write;

fn main() {
    let sections: [fn() -> String; 6] = [
        d1_mux_vs_multiply,
        d2_period_sweep,
        d3_narrowing,
        d4_smart_buffer,
        d5_multiplier_style,
        d6_bit_macros,
    ];
    let reports = std::thread::scope(|s| {
        let handles: Vec<_> = sections.iter().map(|f| s.spawn(f)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ablation section panicked"))
            .collect::<Vec<String>>()
    });
    for r in reports {
        print!("{r}");
    }
}

fn d1_mux_vs_multiply() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== D1: if-else (mux/pipe hard nodes) vs multiply-by-flag =="
    );
    let _ = writeln!(
        out,
        "   (§5: the authors found the multiply form better overall)"
    );
    let model = VirtexII::with_mult_style(MultiplierStyle::Block);
    let opts = CompileOptions {
        target_period_ns: 4.2,
        ..CompileOptions::default()
    };
    for (label, src) in [
        ("if-else ", roccc_ipcores::kernels::mul_acc_source()),
        (
            "multiply",
            roccc_ipcores::kernels::mul_acc_multiply_source(),
        ),
    ] {
        let hw = compile_with_model(&src, "mul_acc", &opts, &model).expect("compiles");
        let rep = map_netlist(&hw.netlist, &model);
        let (soft, hard) = hw.datapath.node_census();
        let _ = writeln!(
            out,
            "  {label}: {} | {soft} soft + {hard} hard nodes",
            fmt_report(&rep)
        );
    }
    out
}

fn d2_period_sweep() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== D2: pipeline target-period sweep (5-tap FIR data path) =="
    );
    let model = VirtexII::default();
    let src = roccc_ipcores::kernels::fir_source();
    for period in [20.0, 10.0, 7.0, 5.0, 3.5] {
        let opts = CompileOptions {
            target_period_ns: period,
            ..CompileOptions::default()
        };
        let hw = compile_with_model(&src, "fir", &opts, &model).expect("compiles");
        let rep = map_netlist(&hw.netlist, &model);
        let _ = writeln!(
            out,
            "  target {period:>5.1} ns: {} | {} stages",
            fmt_report(&rep),
            hw.datapath.num_stages
        );
    }
    out
}

fn d3_narrowing() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== D3: bit-width narrowing on/off ==");
    let model = VirtexII::default();
    for b in roccc_ipcores::benchmarks() {
        if b.lut_row {
            continue;
        }
        let on = compile_with_model(&b.source, b.func, &b.opts, &model);
        let off = compile_with_model(
            &b.source,
            b.func,
            &CompileOptions {
                narrow: false,
                ..b.opts.clone()
            },
            &model,
        );
        if let (Ok(on), Ok(off)) = (on, off) {
            let r_on = map_netlist(&on.netlist, &model);
            let r_off = map_netlist(&off.netlist, &model);
            let _ = writeln!(
                out,
                "  {:<14} narrowed {:>5} slices / unnarrowed {:>5} slices ({:.0}% saved)",
                b.name,
                r_on.slices,
                r_off.slices,
                100.0 * (1.0 - r_on.slices as f64 / r_off.slices.max(1) as f64)
            );
        }
    }
    out
}

fn d4_smart_buffer() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== D4: smart-buffer reuse vs naive re-fetch (FIR window scan) =="
    );
    let src = roccc_ipcores::kernels::fir_source();
    let hw = roccc::compile(&src, "fir", &CompileOptions::default()).expect("compiles");
    let mut arrays = HashMap::new();
    arrays.insert("A".to_string(), (0..128).collect::<Vec<i64>>());
    let run = hw.run(&arrays, &HashMap::new()).expect("runs");
    let window: u64 = hw.kernel.windows[0].reads.len() as u64;
    let naive = run.fired * window;
    let _ = writeln!(
        out,
        "  memory reads: smart buffer {} vs naive {} ({}x reuse), {} outputs in {} cycles",
        run.mem_reads,
        naive,
        naive / run.mem_reads.max(1),
        run.mem_writes,
        run.cycles
    );
    out
}

fn d5_multiplier_style() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== D5: multiplier style LUT vs MULT18x18 (12×12 variable multiply) =="
    );
    let src = "void mul12(int12 a, int12 b, int24* p) { *p = a * b; }";
    for (label, style) in [
        ("LUT fabric", MultiplierStyle::Lut),
        ("MULT18x18 ", MultiplierStyle::Block),
    ] {
        let model = VirtexII::with_mult_style(style);
        let hw =
            compile_with_model(src, "mul12", &CompileOptions::default(), &model).expect("compiles");
        let rep = map_netlist(&hw.netlist, &model);
        let _ = writeln!(
            out,
            "  {label}: {} | {} MULT blocks",
            fmt_report(&rep),
            rep.mult_blocks
        );
    }
    out
}

/// The paper's §4.2.1 future work: "We are working on supporting bit
/// manipulation macros, which are the lack of high-level languages."
/// This repo implements them (`ROCCC_bits` / `ROCCC_cat`); the ablation
/// shows they recover most of the udiv area gap caused by 32-bit C
/// temporaries.
fn d6_bit_macros() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== D6: bit-manipulation macros (the paper's future work) =="
    );
    let model = VirtexII::default();
    let opts = CompileOptions {
        target_period_ns: 3.7,
        ..CompileOptions::default()
    };
    let baseline = map_netlist(&roccc_ipcores::baselines::udiv(), &model);
    let _ = writeln!(out, "  hand-built divider     : {}", fmt_report(&baseline));
    for (label, src) in [
        (
            "plain C (int temps)    ",
            roccc_ipcores::kernels::udiv_source(),
        ),
        (
            "ROCCC_bits/cat + widths",
            roccc_ipcores::kernels::udiv_bits_source(),
        ),
    ] {
        let hw = compile_with_model(&src, "udiv", &opts, &model).expect("compiles");
        let rep = map_netlist(&hw.netlist, &model);
        let _ = writeln!(out, "  {label}: {}", fmt_report(&rep));
    }
    out
}
