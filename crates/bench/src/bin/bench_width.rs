//! Width-narrowing impact bench: demand-only vs. range-driven narrowing
//! on every Table 1 kernel.
//!
//! ```text
//! cargo run --release -p roccc-bench --bin bench_width -- [--out PATH]
//! ```
//!
//! For each row the kernel is compiled twice — once with the default
//! backward-demand narrowing, once with `range_narrow` on — and the
//! total operator bits, the bits the range analysis shaved, and the
//! fast slice estimates of both configurations are written to
//! `BENCH_width.json` so the area trajectory is tracked PR over PR.

use roccc::{compile, CompileOptions, Compiled};
use roccc_ipcores::benchmarks;
use roccc_synth::{fast_estimate, VirtexII};
use std::fmt::Write as _;

fn parse_out() -> String {
    let mut out = "BENCH_width.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--help" | "-h" => {
                eprintln!("usage: bench_width [--out PATH]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    out
}

fn op_bits(c: &Compiled) -> u64 {
    c.datapath.ops.iter().map(|o| o.hw_bits as u64).sum()
}

fn main() {
    let out = parse_out();
    let model = VirtexII::default();

    let mut rows = Vec::new();
    for b in benchmarks() {
        let plain = compile(&b.source, b.func, &b.opts).expect("baseline compiles");
        let ranged_opts = CompileOptions {
            range_narrow: true,
            ..b.opts.clone()
        };
        let ranged = compile(&b.source, b.func, &ranged_opts).expect("range-narrow compiles");
        let plain_bits = op_bits(&plain);
        let ranged_bits = op_bits(&ranged);
        let plain_slices = fast_estimate(&plain.datapath, &model).slices;
        let ranged_slices = fast_estimate(&ranged.datapath, &model).slices;
        println!(
            "{:16} op bits {:5} -> {:5} ({:5} saved)   slices {:5} -> {:5}",
            b.name,
            plain_bits,
            ranged_bits,
            plain_bits - ranged_bits,
            plain_slices,
            ranged_slices
        );
        rows.push((b.name, plain_bits, ranged_bits, plain_slices, ranged_slices));
    }

    // The bench JSON schema is bespoke to this harness (the shared
    // renderer is simulation-throughput shaped), so write it by hand.
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"width-narrowing\",\n  \"unit\": \"operator bits\",\n  \"results\": [\n");
    for (i, (name, pb, rb, ps, rs)) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{name}\", \"plain_bits\": {pb}, \"ranged_bits\": {rb}, \
             \"bits_saved\": {}, \"plain_slices\": {ps}, \"ranged_slices\": {rs}}}",
            pb - rb
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&out, &s).expect("write bench json");

    let improved = rows.iter().filter(|(_, pb, rb, _, _)| rb < pb).count();
    println!("\n{improved}/{} kernels improved; wrote {out}", rows.len());
}
