//! Cycle-accurate netlist simulation.
//!
//! Two-phase execution per clock: combinational settle (cells evaluate in
//! topological order; register cells present their current state), then
//! the clock edge (registers latch; the valid shift-register advances).
//! Feedback registers carry a stage gate: they latch only on cycles where
//! a *valid* iteration occupies their pipeline stage, so bubbles in the
//! input stream never corrupt an accumulator.

use crate::cells::*;
use crate::plan::cell_stages;
use roccc_cparse::types::IntType;
use roccc_suifvm::ir::Opcode;

/// Simulation error (division by zero, negative dynamic shift).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError(pub String);

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "netlist simulation error: {}", self.0)
    }
}

impl std::error::Error for SimError {}

/// The result of one simulated clock cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleResult {
    /// Output-port values after the clock edge.
    pub outputs: Vec<i64>,
    /// Whether the outputs correspond to a valid iteration.
    pub out_valid: bool,
}

/// A running netlist simulation.
#[derive(Debug, Clone)]
pub struct NetlistSim<'n> {
    nl: &'n Netlist,
    /// Current register states (indexed like cells; non-registers unused).
    regs: Vec<i64>,
    /// Valid-bit occupancy per pipeline stage.
    occupancy: Vec<bool>,
    /// Levelized pipeline stage per cell (divide/rem bubble gating).
    stages: Vec<u32>,
    cycles: u64,
}

impl<'n> NetlistSim<'n> {
    /// Creates a simulation with registers at their power-on values.
    pub fn new(nl: &'n Netlist) -> Self {
        let regs = nl
            .cells
            .iter()
            .map(|c| match c.kind {
                CellKind::Reg { init, .. } => c.ty().wrap(init),
                _ => 0,
            })
            .collect();
        NetlistSim {
            nl,
            regs,
            occupancy: vec![false; nl.latency.max(1) as usize],
            stages: cell_stages(nl),
            cycles: 0,
        }
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current state of a feedback register by slot name.
    pub fn feedback_value(&self, name: &str) -> Option<i64> {
        self.nl
            .feedback_regs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| self.regs[id.0 as usize])
    }

    /// Simulates one clock cycle: `args` drive the input ports, `valid`
    /// marks them as a real iteration. Returns the post-edge outputs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on division by zero or negative dynamic shifts
    /// *during valid cycles* (invalid cycles force benign operands).
    pub fn step(&mut self, args: &[i64], valid: bool) -> Result<CycleResult, SimError> {
        assert_eq!(args.len(), self.nl.inputs.len(), "input arity");
        let ii = self.nl.effective_ii();
        if valid && ii > 1 && !self.cycles.is_multiple_of(ii) {
            return Err(SimError(format!(
                "valid iteration presented at cycle {} of a schedule with II {ii}; \
                 launches must land on multiples of the initiation interval",
                self.cycles
            )));
        }
        self.cycles += 1;

        // Stage occupancy for THIS cycle: stage 0 holds the new iteration.
        let mut occ = vec![false; self.occupancy.len()];
        occ[0] = valid;
        let n_occ = occ.len();
        occ[1..].copy_from_slice(&self.occupancy[..n_occ - 1]);

        // Combinational settle.
        let mut vals: Vec<i64> = vec![0; self.nl.cells.len()];
        for (i, cell) in self.nl.cells.iter().enumerate() {
            let v = match &cell.kind {
                CellKind::Const(c) => *c,
                CellKind::Input(k) => self.nl.inputs[*k].1.wrap(args[*k]),
                CellKind::Reg { .. } => self.regs[i],
                CellKind::Op { op, srcs, imm } => {
                    let s = |k: usize| vals[srcs[k].0 as usize];
                    match op {
                        Opcode::Add => s(0).wrapping_add(s(1)),
                        Opcode::Sub => s(0).wrapping_sub(s(1)),
                        Opcode::Mul => s(0).wrapping_mul(s(1)),
                        Opcode::Div => {
                            let d = s(1);
                            if d == 0 {
                                // The zero only matters if a *valid*
                                // iteration occupies the divider's own
                                // stage; garbage bubbles are benign.
                                let stage = self.stages[i] as usize;
                                if occ.get(stage).copied().unwrap_or(false) {
                                    return Err(SimError("division by zero".into()));
                                }
                                0
                            } else {
                                s(0).wrapping_div(d)
                            }
                        }
                        Opcode::Rem => {
                            let d = s(1);
                            if d == 0 {
                                let stage = self.stages[i] as usize;
                                if occ.get(stage).copied().unwrap_or(false) {
                                    return Err(SimError("remainder by zero".into()));
                                }
                                0
                            } else {
                                s(0).wrapping_rem(d)
                            }
                        }
                        Opcode::Neg => s(0).wrapping_neg(),
                        Opcode::Not => !s(0),
                        Opcode::Shl => s(0).wrapping_shl(s(1).clamp(0, 63) as u32),
                        Opcode::Shr => s(0).wrapping_shr(s(1).clamp(0, 63) as u32),
                        Opcode::And => s(0) & s(1),
                        Opcode::Or => s(0) | s(1),
                        Opcode::Xor => s(0) ^ s(1),
                        Opcode::Slt => (s(0) < s(1)) as i64,
                        Opcode::Sle => (s(0) <= s(1)) as i64,
                        Opcode::Seq => (s(0) == s(1)) as i64,
                        Opcode::Sne => (s(0) != s(1)) as i64,
                        Opcode::Bool => (s(0) != 0) as i64,
                        Opcode::Mux => {
                            if s(0) != 0 {
                                s(1)
                            } else {
                                s(2)
                            }
                        }
                        Opcode::Cvt | Opcode::Mov => s(0),
                        Opcode::Lut => {
                            let idx = s(0);
                            let t = &self.nl.roms[*imm as usize];
                            if idx < 0 {
                                0
                            } else {
                                t.elem.wrap(t.data.get(idx as usize).copied().unwrap_or(0))
                            }
                        }
                        other => {
                            return Err(SimError(format!(
                                "opcode {other} cannot appear in a netlist"
                            )))
                        }
                    }
                }
            };
            let wire = IntType {
                signed: cell.signed,
                bits: cell.width.max(1),
            };
            vals[i] = wire.wrap(v);
        }

        // Clock edge.
        for (i, cell) in self.nl.cells.iter().enumerate() {
            if let CellKind::Reg { d, stage_gate, .. } = &cell.kind {
                let latch = match stage_gate {
                    None => true,
                    Some(s) => occ.get(*s as usize).copied().unwrap_or(false),
                };
                if latch {
                    let d = d.expect("verified netlist");
                    self.regs[i] = cell.ty().wrap(vals[d.0 as usize]);
                }
            }
        }
        let out_valid = *occ.last().unwrap_or(&false);
        self.occupancy = occ;

        let outputs = self
            .nl
            .outputs
            .iter()
            .map(|(_, ty, net)| ty.wrap(self.regs[net.0 as usize]))
            .collect();
        Ok(CycleResult { outputs, out_valid })
    }

    /// Convenience: streams `iterations` through the pipeline as densely
    /// as the initiation interval allows (back-to-back at II 1, every
    /// `ii` cycles otherwise) and returns only the valid outputs, in
    /// order.
    pub fn run_stream(&mut self, iterations: &[Vec<i64>]) -> Result<Vec<Vec<i64>>, SimError> {
        let mut out = Vec::with_capacity(iterations.len());
        let zeros = vec![0i64; self.nl.inputs.len()];
        let ii = self.nl.effective_ii();
        let total = iterations.len() as u64 * ii + self.nl.latency as u64 + 2;
        for t in 0..total {
            // Reuse the single zero buffer for bubble cycles instead of
            // cloning argument vectors on every iteration.
            let iter = (t % ii == 0)
                .then(|| iterations.get((t / ii) as usize))
                .flatten();
            let (args, valid) = match iter {
                Some(a) => (a.as_slice(), true),
                None => (zeros.as_slice(), false),
            };
            let r = self.step(args, valid)?;
            if r.out_valid {
                out.push(r.outputs);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_dp::netlist_from_datapath;
    use crate::from_dp::tests::dp_for;
    use roccc_cparse::interp::Interpreter;
    use roccc_cparse::parser::parse;
    use std::collections::HashMap;

    fn check_against_golden(src: &str, func: &str, period: f64, arg_sets: &[Vec<i64>]) {
        let prog = parse(src).unwrap();
        let dp = dp_for(src, func, period);
        let nl = netlist_from_datapath(&dp);
        nl.verify().unwrap();
        let mut sim = NetlistSim::new(&nl);
        let results = sim.run_stream(arg_sets).unwrap();
        assert_eq!(results.len(), arg_sets.len());
        for (args, hw) in arg_sets.iter().zip(&results) {
            let mut interp = Interpreter::new(&prog);
            let golden = interp.call(func, args, &mut HashMap::new()).unwrap();
            for ((name, _, _), v) in nl.outputs.iter().zip(hw) {
                assert_eq!(
                    *v,
                    golden.outputs[name.as_str()],
                    "output {name} args {args:?}"
                );
            }
        }
    }

    #[test]
    fn fir_netlist_matches_golden_combinational_and_pipelined() {
        let src = "void fir_dp(int A0, int A1, int A2, int A3, int A4, int* Tmp0) {
           *Tmp0 = 3*A0 + 5*A1 + 7*A2 + 9*A3 - A4; }";
        let args: Vec<Vec<i64>> = vec![
            vec![1, 2, 3, 4, 5],
            vec![-9, 8, -7, 6, -5],
            vec![1000, -1000, 500, -500, 0],
        ];
        check_against_golden(src, "fir_dp", 1000.0, &args);
        check_against_golden(src, "fir_dp", 5.0, &args);
        check_against_golden(src, "fir_dp", 3.0, &args);
    }

    #[test]
    fn if_else_netlist_matches_golden() {
        let src = "void if_else(int x1, int x2, int* x3, int* x4) {
           int a; int c;
           c = x1 - x2;
           if (c < x2) { a = x1 * x1; } else { a = x1 * x2 + 3; }
           c = c - a;
           *x3 = c; *x4 = a; }";
        check_against_golden(
            src,
            "if_else",
            6.0,
            &[vec![5, 3], vec![9, 2], vec![-5, -3], vec![0, 1]],
        );
    }

    #[test]
    fn pipeline_latency_matches_declared() {
        let src = "void f(int a, int b, int* o) { *o = (a * b) * (a + b) + a * 3; }";
        let dp = dp_for(src, "f", 4.0);
        let nl = netlist_from_datapath(&dp);
        let mut sim = NetlistSim::new(&nl);
        // Feed one valid iteration, then bubbles; out_valid must assert
        // exactly `latency` cycles later.
        let mut seen_at = None;
        let args = vec![3, 4];
        for t in 0..20u32 {
            let (a, v) = if t == 0 {
                (args.clone(), true)
            } else {
                (vec![0, 0], false)
            };
            let r = sim.step(&a, v).unwrap();
            if r.out_valid && seen_at.is_none() {
                seen_at = Some(t + 1);
            }
        }
        assert_eq!(seen_at, Some(nl.latency));
    }

    #[test]
    fn accumulator_ignores_bubbles() {
        let prog = parse(
            "void acc(int t0, int* t1) {
               int s; int c = ROCCC_load_prev(s) + t0;
               ROCCC_store2next(s, c);
               *t1 = c; }",
        )
        .unwrap();
        let f = prog.function("acc").unwrap();
        let fb = vec![roccc_hlir::kernel::FeedbackVar {
            name: "s".into(),
            ty: roccc_cparse::types::IntType::int(),
            init: 0,
        }];
        let mut ir = roccc_suifvm::lower_function(&prog, f, &fb).unwrap();
        roccc_suifvm::to_ssa(&mut ir);
        roccc_suifvm::optimize(&mut ir);
        let mut dp = roccc_datapath::build_datapath(&ir).unwrap();
        roccc_datapath::pipeline_datapath(&mut dp, 100.0, &roccc_datapath::DefaultDelayModel);
        roccc_datapath::narrow_widths(&mut dp);
        let nl = netlist_from_datapath(&dp);
        let mut sim = NetlistSim::new(&nl);
        // Valid 10, bubble with garbage 99, valid 5: sum must be 15, not 114.
        sim.step(&[10], true).unwrap();
        sim.step(&[99], false).unwrap();
        sim.step(&[5], true).unwrap();
        // Drain.
        for _ in 0..4 {
            sim.step(&[0], false).unwrap();
        }
        assert_eq!(sim.feedback_value("s"), Some(15));
    }

    #[test]
    fn divider_bubble_garbage_does_not_fault_reference_sim() {
        // Regression: a zero divisor in a *bubble* while a valid iteration
        // occupies some other stage must not raise division-by-zero. With
        // the old `occ.iter().any()` check, draining any pipelined divide
        // kernel with zeroed bubble args always faulted.
        let src = "void d(int a, int b, int* o) { *o = (a * a + b) / b; }";
        let dp = dp_for(src, "d", 4.0);
        let nl = netlist_from_datapath(&dp);
        assert!(nl.latency > 1, "test premise: pipelined");
        let mut sim = NetlistSim::new(&nl);
        sim.step(&[10, 3], true).unwrap();
        for _ in 0..(nl.latency + 2) {
            sim.step(&[0, 0], false).unwrap();
        }
        // run_stream drains with zero args: must now work for divides.
        let mut sim = NetlistSim::new(&nl);
        let outs = sim.run_stream(&[vec![9, 2], vec![8, 4]]).unwrap();
        assert_eq!(outs, vec![vec![(9 * 9 + 2) / 2], vec![(8 * 8 + 4) / 4]]);
    }

    #[test]
    fn run_stream_returns_one_output_per_iteration() {
        let src = "void f(uint8 a, uint8* o) { *o = a * 2 + 1; }";
        let dp = dp_for(src, "f", 1000.0);
        let nl = netlist_from_datapath(&dp);
        let mut sim = NetlistSim::new(&nl);
        let iters: Vec<Vec<i64>> = (0..10).map(|x| vec![x]).collect();
        let outs = sim.run_stream(&iters).unwrap();
        let expect: Vec<Vec<i64>> = (0..10).map(|x| vec![x * 2 + 1]).collect();
        assert_eq!(outs, expect);
    }

    #[test]
    fn lut_rom_in_netlist() {
        let src = "const uint16 tab[4] = {7, 14, 21, 28};
          void f(uint2 i, uint16* o) { *o = tab[i]; }";
        check_against_golden(src, "f", 1000.0, &[vec![0], vec![1], vec![2], vec![3]]);
    }
}
