//! Lowering a pipelined data path to a word-level netlist.
//!
//! Every data-path op becomes a combinational cell at its stage; values
//! crossing stage boundaries get chains of pipeline registers (the
//! "latches" of §4.2.3); feedback slots become clock-enabled registers
//! whose enable asserts when a valid iteration occupies the feedback
//! stage; outputs get a final output register.

use crate::cells::*;
use roccc_datapath::graph::{Datapath, Value};
use roccc_suifvm::ir::Opcode;
use std::collections::HashMap;

/// Converts a data path into a netlist.
///
/// The resulting netlist has `dp.num_stages` cycles of latency from input
/// port to output port (stage boundaries plus one output register).
pub fn netlist_from_datapath(dp: &Datapath) -> Netlist {
    let mut nl = Netlist::new();
    nl.inputs = dp.inputs.clone();
    nl.roms = dp.luts.clone();
    nl.latency = dp.num_stages;
    nl.ii = dp.ii.max(1);

    // Input port cells.
    let input_cells: Vec<CellId> = dp
        .inputs
        .iter()
        .enumerate()
        .map(|(k, (_, t))| {
            nl.add(Cell {
                kind: CellKind::Input(k),
                width: t.bits,
                signed: t.signed,
            })
        })
        .collect();

    // Feedback registers up front (read by LPR cells, closed at the end).
    let mut fb_regs: Vec<CellId> = Vec::new();
    for (slot_idx, (slot, _)) in dp.feedback.iter().enumerate() {
        // The latch enables when a valid iteration sits in the LPR/SNX
        // stage; find it from any LPR of this slot (fall back to 0).
        let stage = dp
            .ops
            .iter()
            .find(|o| o.op == Opcode::Lpr && o.imm == slot_idx as i64)
            .map(|o| o.stage)
            .unwrap_or(0);
        let reg = nl.add(Cell {
            kind: CellKind::Reg {
                d: None,
                init: slot.ty.wrap(slot.init),
                stage_gate: Some(stage),
            },
            width: slot.ty.bits,
            signed: slot.ty.signed,
        });
        nl.feedback_regs.push((slot.name, reg));
        fb_regs.push(reg);
    }

    // Base cell for each op, and register chains keyed by
    // (base cell, target stage).
    let mut base: Vec<CellId> = Vec::with_capacity(dp.ops.len());
    let mut const_cache: HashMap<i64, CellId> = HashMap::new();
    let mut chain: HashMap<(CellId, u32), CellId> = HashMap::new();

    // Resolves `v` as seen by a consumer at `stage`.
    #[allow(clippy::too_many_arguments)]
    fn at_stage(
        nl: &mut Netlist,
        dp: &Datapath,
        base: &[CellId],
        input_cells: &[CellId],
        const_cache: &mut HashMap<i64, CellId>,
        chain: &mut HashMap<(CellId, u32), CellId>,
        v: Value,
        stage: u32,
    ) -> CellId {
        let (cell, def_stage, width, signed) = match v {
            Value::Op(o) => {
                let op = &dp.ops[o.0 as usize];
                (base[o.0 as usize], op.stage, op.hw_bits, op.ty.signed)
            }
            Value::Input(k) => {
                let t = dp.inputs[k].1;
                (input_cells[k], 0, t.bits, t.signed)
            }
            Value::Const(c) => {
                // Constants are timeless: no registers needed.
                let id = *const_cache.entry(c).or_insert_with(|| nl.constant(c));
                return id;
            }
        };
        let mut cur = cell;
        for s in def_stage..stage {
            let key = (cell, s + 1);
            cur = *chain.entry(key).or_insert_with(|| {
                let prev = cur;
                nl.add(Cell {
                    kind: CellKind::Reg {
                        d: Some(prev),
                        init: 0,
                        stage_gate: None,
                    },
                    width,
                    signed,
                })
            });
        }
        cur
    }

    for op in dp.ops.iter() {
        let id = match op.op {
            Opcode::Lpr => fb_regs[op.imm as usize],
            Opcode::Mov | Opcode::Cvt => {
                // Pure renaming/truncation: model as an op cell so hardware
                // widths are observed (a CVT narrows the wire).
                let src = at_stage(
                    &mut nl,
                    dp,
                    &base,
                    &input_cells,
                    &mut const_cache,
                    &mut chain,
                    op.srcs[0],
                    op.stage,
                );
                nl.add(Cell {
                    kind: CellKind::Op {
                        op: Opcode::Cvt,
                        srcs: [src].into(),
                        imm: 0,
                    },
                    width: op.hw_bits,
                    signed: op.ty.signed,
                })
            }
            _ => {
                let srcs: crate::cells::CellSrcs = op
                    .srcs
                    .iter()
                    .map(|s| {
                        at_stage(
                            &mut nl,
                            dp,
                            &base,
                            &input_cells,
                            &mut const_cache,
                            &mut chain,
                            *s,
                            op.stage,
                        )
                    })
                    .collect();
                nl.add(Cell {
                    kind: CellKind::Op {
                        op: op.op,
                        srcs,
                        imm: op.imm,
                    },
                    width: op.hw_bits,
                    signed: op.ty.signed,
                })
            }
        };
        base.push(id);
    }

    // Close the feedback loops.
    for (slot_idx, (slot, snx_v)) in dp.feedback.iter().enumerate() {
        let stage = match nl.cells[fb_regs[slot_idx].0 as usize].kind {
            CellKind::Reg {
                stage_gate: Some(s),
                ..
            } => s,
            _ => 0,
        };
        let src = at_stage(
            &mut nl,
            dp,
            &base,
            &input_cells,
            &mut const_cache,
            &mut chain,
            *snx_v,
            stage,
        );
        // Wrap to the slot width via a CVT if necessary.
        let src_cell = &nl.cells[src.0 as usize];
        let d = if src_cell.width != slot.ty.bits || src_cell.signed != slot.ty.signed {
            nl.add(Cell {
                kind: CellKind::Op {
                    op: Opcode::Cvt,
                    srcs: [src].into(),
                    imm: 0,
                },
                width: slot.ty.bits,
                signed: slot.ty.signed,
            })
        } else {
            src
        };
        nl.connect_reg(fb_regs[slot_idx], d);
    }

    // Range annotations: an op cell whose hardware width covers its
    // proven range is wrap-free — its wire carries the exact value.
    // (LPRs share the feedback register, whose value over time includes
    // the power-on init, so they stay unannotated.)
    for (i, op) in dp.ops.iter().enumerate() {
        if op.op == Opcode::Lpr {
            continue;
        }
        if let Some(r) = op.range {
            if op.hw_bits >= r.bits(op.ty.signed).max(1) {
                nl.set_range(base[i], r);
            }
        }
    }
    // Propagate through pipeline balancing registers: a gateless register
    // wide enough for its annotated source carries the same exact value
    // one cycle later. Registers appear after their `d` source, so one
    // forward pass covers whole chains.
    for i in 0..nl.cells.len() {
        if let CellKind::Reg {
            d: Some(d),
            stage_gate: None,
            ..
        } = nl.cells[i].kind
        {
            if let Some(r) = nl.range_of(d).copied() {
                let cell = &nl.cells[i];
                if cell.width >= r.bits(cell.signed).max(1) {
                    nl.set_range(CellId(i as u32), r);
                }
            }
        }
    }

    // Output ports: value at the final stage, then one output register.
    let last_stage = dp.num_stages - 1;
    for out in &dp.outputs {
        let v = at_stage(
            &mut nl,
            dp,
            &base,
            &input_cells,
            &mut const_cache,
            &mut chain,
            out.value,
            last_stage,
        );
        let reg = nl.add(Cell {
            kind: CellKind::Reg {
                d: Some(v),
                init: 0,
                stage_gate: None,
            },
            width: out.ty.bits,
            signed: out.ty.signed,
        });
        nl.outputs.push((out.name, out.ty, reg));
    }

    nl
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use roccc_cparse::parser::parse;
    use roccc_datapath::{build_datapath, narrow_widths, pipeline_datapath, DefaultDelayModel};
    use roccc_suifvm::{lower_function, optimize, to_ssa};

    pub(crate) fn dp_for(src: &str, func: &str, period: f64) -> Datapath {
        let prog = parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function(func).unwrap();
        let mut ir = lower_function(&prog, f, &[]).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        let mut dp = build_datapath(&ir).unwrap();
        pipeline_datapath(&mut dp, period, &DefaultDelayModel);
        narrow_widths(&mut dp);
        dp
    }

    #[test]
    fn combinational_dp_gets_output_reg_only() {
        let dp = dp_for("void f(int a, int* o) { *o = a + 1; }", "f", 1000.0);
        let nl = netlist_from_datapath(&dp);
        nl.verify().unwrap();
        let (_, regs, _) = nl.census();
        assert_eq!(regs, 1, "only the output register");
        assert_eq!(nl.latency, 1);
    }

    #[test]
    fn pipelined_dp_gets_balancing_registers() {
        let src = "void f(int a, int b, int* o) { *o = (a * b) * (a + b) + a; }";
        let flat = netlist_from_datapath(&dp_for(src, "f", 1000.0));
        let deep = netlist_from_datapath(&dp_for(src, "f", 4.0));
        flat.verify().unwrap();
        deep.verify().unwrap();
        assert!(deep.register_bits() > flat.register_bits());
        assert!(deep.latency > flat.latency);
    }

    #[test]
    fn register_chains_are_shared() {
        // `a` used by two consumers in a later stage: one chain, not two.
        let src = "void f(int a, int b, int* o, int* p) {
           int m = a * b * a * b;
           *o = m + a; *p = m - a; }";
        let dp = dp_for(src, "f", 5.0);
        let nl = netlist_from_datapath(&dp);
        nl.verify().unwrap();
        // Count regs whose width equals a's (32): the chain for `a` should
        // appear once per stage crossing, not twice.
        let (_, regs, _) = nl.census();
        assert!(regs < nl.cells.len(), "sanity");
    }

    #[test]
    fn feedback_reg_has_stage_gate() {
        let prog = parse(
            "void acc(int t0, int* t1) {
               int s; int c = ROCCC_load_prev(s) + t0;
               ROCCC_store2next(s, c);
               *t1 = c; }",
        )
        .unwrap();
        let f = prog.function("acc").unwrap();
        let fb = vec![roccc_hlir::kernel::FeedbackVar {
            name: "s".into(),
            ty: roccc_cparse::types::IntType::int(),
            init: 0,
        }];
        let mut ir = lower_function(&prog, f, &fb).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        let mut dp = build_datapath(&ir).unwrap();
        pipeline_datapath(&mut dp, 100.0, &DefaultDelayModel);
        narrow_widths(&mut dp);
        let nl = netlist_from_datapath(&dp);
        nl.verify().unwrap();
        assert_eq!(nl.feedback_regs.len(), 1);
        let (_, reg) = &nl.feedback_regs[0];
        match nl.cells[reg.0 as usize].kind {
            CellKind::Reg { stage_gate, .. } => assert!(stage_gate.is_some()),
            _ => panic!("feedback net is not a register"),
        }
    }
}
