//! # roccc-netlist — RTL netlist and cycle-accurate simulation
//!
//! The hardware substrate the original authors got from synthesizing VHDL
//! and running on a Virtex-II: here, a word-level netlist lowered from the
//! pipelined data path, simulated cycle by cycle, and assembled into a full
//! system (BRAM → smart buffer → data path → BRAM, the paper's Figure 2).
//!
//! * [`cells`] — cell/netlist representation (combinational ops, registers
//!   with optional valid gating, ROMs);
//! * [`from_dp`] — lowering from `roccc_datapath::Datapath`, materializing
//!   the pipeline balancing registers and feedback latches;
//! * [`sim`] — two-phase cycle-accurate *reference* simulation with a
//!   valid chain (readable, interprets the cell graph every cycle);
//! * [`plan`] — the *compiled* engine: one-time levelization into a dense
//!   instruction stream ([`SimPlan`]) executed zero-allocation by
//!   [`CompiledSim`] — what `run_system` and the benches actually run;
//! * [`system`] — whole-kernel runs with smart buffers and controllers,
//!   producing throughput and memory-traffic numbers for the evaluation.

#![warn(missing_docs)]

pub mod cells;
pub mod from_dp;
pub mod plan;
pub mod sim;
pub mod system;

pub use cells::{Cell, CellId, CellKind, Netlist};
pub use from_dp::netlist_from_datapath;
pub use plan::{cell_stages, BatchedSim, CompiledSim, SimPlan};
pub use sim::{CycleResult, NetlistSim, SimError};
pub use system::{run_system, run_system_with_options, SystemError, SystemOptions, SystemRun};
