//! Compiled netlist simulation: levelize once, step fast forever.
//!
//! [`NetlistSim`](crate::sim::NetlistSim) re-interprets the cell graph on
//! every clock — matching on `CellKind`, chasing `Vec<CellId>` sources,
//! constructing an `IntType` per cell, and allocating fresh value and
//! occupancy buffers per cycle. That is fine as a readable reference, but
//! every evaluation artifact of the paper (Table 1, the §5 throughput
//! numbers, `run_system`'s memory traffic) funnels through that inner
//! loop.
//!
//! [`SimPlan::compile`] pays the interpretation cost once:
//!
//! * cells are **levelized** into a dense instruction stream of flat
//!   `(opcode, operand indices, precomputed wrap mask)` records —
//!   constants are pre-folded out of the stream entirely (including
//!   constant subexpressions), ROM tables are pre-wrapped, and register
//!   cells are split into a separate clock-edge list;
//! * every cell gets a **pipeline stage** from a levelization pass
//!   ([`cell_stages`]), so divide/rem bubble handling is keyed to the
//!   *divider's own stage* occupancy — a garbage bubble flowing past a
//!   divider no longer faults just because an unrelated valid iteration
//!   is elsewhere in the pipeline;
//! * [`CompiledSim::step`] then runs **zero-allocation** against
//!   preallocated value/occupancy buffers, and [`CompiledSim::run_batch`]
//!   streams whole iteration blocks without per-cycle argument clones or
//!   per-output `Vec` churn.
//!
//! The compiled engine is bit-identical to the reference simulator (the
//! workspace differential tests drive both over random kernels, bubbles
//! included) and is what `run_system` and the bench harness execute.

use crate::cells::{CellKind, Netlist};
use crate::sim::SimError;
use roccc_cparse::intern::Symbol;
use roccc_cparse::types::IntType;
use roccc_suifvm::ir::Opcode;

/// Precomputed two's-complement truncation for one net: the `IntType`
/// wrap with the mask and sign bit resolved at plan-compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Wrap {
    mask: u64,
    sign: u64,
}

impl Wrap {
    fn from_ty(ty: IntType) -> Wrap {
        if ty.bits >= 64 {
            return Wrap { mask: !0, sign: 0 };
        }
        let mask = (1u64 << ty.bits) - 1;
        Wrap {
            mask,
            sign: if ty.signed { 1u64 << (ty.bits - 1) } else { 0 },
        }
    }

    /// Branchless truncate-and-sign-extend: `(t ^ s) - s` flips the sign
    /// bit out and subtracts it back in, which is the identity for
    /// non-negative values and the two's-complement extension otherwise.
    /// No data-dependent branch, so the lane-batched engine's inner loops
    /// auto-vectorize through it.
    #[inline(always)]
    fn apply(self, v: i64) -> i64 {
        let t = (v as u64) & self.mask;
        (t ^ self.sign).wrapping_sub(self.sign) as i64
    }
}

/// Compiled per-cell operation. Operand slots index the value buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimOp {
    /// Load input port and wrap to the port type.
    Input {
        port: u32,
    },
    Add,
    Sub,
    Mul,
    /// Division; `stage` keys the bubble check to the divider's own
    /// pipeline stage occupancy.
    Div {
        stage: u32,
    },
    /// Remainder; `stage` as for `Div`.
    Rem {
        stage: u32,
    },
    Neg,
    Not,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    Slt,
    Sle,
    Seq,
    Sne,
    Bool,
    Mux,
    /// `Mov`/`Cvt`: copy (the wrap does the narrowing).
    Copy,
    /// ROM lookup into the pre-wrapped table `rom`.
    Lut {
        rom: u32,
    },
}

/// One combinational instruction: evaluate `op` over the value buffer and
/// store the wrapped result at `dst`.
#[derive(Debug, Clone, Copy)]
struct Instr {
    op: SimOp,
    dst: u32,
    a: u32,
    b: u32,
    c: u32,
    wrap: Wrap,
}

/// One register in the clock-edge list.
#[derive(Debug, Clone, Copy)]
struct RegEdge {
    /// Value-buffer slot of the register.
    reg: u32,
    /// Value-buffer slot of the data input.
    d: u32,
    /// Register width truncation.
    wrap: Wrap,
    /// `u32::MAX` latches every cycle; otherwise the occupancy stage that
    /// must hold a valid iteration for the register to latch.
    gate: u32,
}

const GATE_NONE: u32 = u32::MAX;

/// Computes the pipeline stage of every cell by levelization.
///
/// Inputs and constants sit at stage 0; combinational ops at the maximum
/// stage of their sources (same-cycle evaluation); pipeline registers one
/// stage after their data input; feedback registers (stage-gated) at their
/// gate stage, which is where their consumers read them. The pass iterates
/// to a fixpoint so hand-built netlists with forward register references
/// resolve too.
pub fn cell_stages(nl: &Netlist) -> Vec<u32> {
    let n = nl.cells.len();
    let mut stage = vec![0u32; n];
    // A netlist's combinational cells are topologically ordered, so one
    // pass settles everything except forward-connected plain registers;
    // iterate until stable with a small safety bound.
    for _ in 0..n.max(1) {
        let mut changed = false;
        for (i, cell) in nl.cells.iter().enumerate() {
            let s = match &cell.kind {
                CellKind::Const(_) | CellKind::Input(_) => 0,
                CellKind::Reg {
                    stage_gate: Some(g),
                    ..
                } => *g,
                CellKind::Reg {
                    d,
                    stage_gate: None,
                    ..
                } => match d {
                    Some(d) => stage[d.0 as usize].saturating_add(1),
                    None => 0,
                },
                CellKind::Op { srcs, .. } => {
                    srcs.iter().map(|s| stage[s.0 as usize]).max().unwrap_or(0)
                }
            };
            if stage[i] != s {
                stage[i] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    stage
}

/// A netlist compiled for fast simulation. Compile once per netlist with
/// [`SimPlan::compile`], then instantiate any number of cheap
/// [`CompiledSim`] states from it.
#[derive(Debug, Clone)]
pub struct SimPlan {
    /// Combinational instruction stream in evaluation order.
    instrs: Vec<Instr>,
    /// Clock-edge register list.
    edges: Vec<RegEdge>,
    /// Initial value buffer: power-on register values and pre-folded
    /// constants; combinational slots start at 0 and are overwritten
    /// before first use.
    init_vals: Vec<i64>,
    /// Pre-wrapped ROM tables.
    roms: Vec<Vec<i64>>,
    /// Output ports: `(name, value slot, port wrap)`.
    outputs: Vec<(Symbol, u32, Wrap)>,
    /// Feedback registers by slot name.
    feedback: Vec<(Symbol, u32)>,
    /// Pipeline depth (occupancy length).
    latency: u32,
    /// Initiation interval: valid iterations may only be presented on
    /// cycles that are multiples of `ii` (see [`Netlist::ii`]).
    ii: u64,
    /// Input port count and wraps.
    input_wraps: Vec<Wrap>,
}

impl SimPlan {
    /// Levelizes and compiles `nl` into a dense instruction stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the netlist contains an opcode the
    /// simulator cannot execute (checked here once instead of per cycle).
    pub fn compile(nl: &Netlist) -> Result<SimPlan, SimError> {
        let stages = cell_stages(nl);
        let n = nl.cells.len();
        let mut instrs = Vec::with_capacity(n);
        let mut edges = Vec::new();
        let mut init_vals = vec![0i64; n];
        // Constant value per cell, when the cell is a constant or folds to
        // one (all-constant sources and a side-effect-free evaluation).
        let mut const_val: Vec<Option<i64>> = vec![None; n];

        let roms: Vec<Vec<i64>> = nl
            .roms
            .iter()
            .map(|t| t.data.iter().map(|&v| t.elem.wrap(v)).collect())
            .collect();

        for (i, cell) in nl.cells.iter().enumerate() {
            let wrap = Wrap::from_ty(cell.ty());
            match &cell.kind {
                CellKind::Const(c) => {
                    let v = wrap.apply(*c);
                    const_val[i] = Some(v);
                    init_vals[i] = v;
                }
                CellKind::Input(k) => {
                    instrs.push(Instr {
                        op: SimOp::Input { port: *k as u32 },
                        dst: i as u32,
                        a: 0,
                        b: 0,
                        c: 0,
                        wrap,
                    });
                }
                CellKind::Reg {
                    d,
                    init,
                    stage_gate,
                } => {
                    let v = cell.ty().wrap(*init);
                    init_vals[i] = v;
                    edges.push(RegEdge {
                        reg: i as u32,
                        d: d.ok_or_else(|| SimError(format!("register n{i} has no data input")))?
                            .0,
                        wrap,
                        gate: stage_gate.map_or(GATE_NONE, |s| s),
                    });
                }
                CellKind::Op { op, srcs, imm } => {
                    let sim_op = lower_op(*op, *imm, stages[i], &roms)?;
                    let idx = |k: usize| srcs.get(k).map_or(0, |s| s.0);
                    // Pre-fold constant subexpressions (division excluded
                    // when the folded divisor is zero: that must stay a
                    // dynamic, occupancy-gated fault).
                    let folded = fold_const(sim_op, srcs, &const_val, &roms);
                    if let Some(v) = folded {
                        let v = wrap.apply(v);
                        const_val[i] = Some(v);
                        init_vals[i] = v;
                    } else {
                        instrs.push(Instr {
                            op: sim_op,
                            dst: i as u32,
                            a: idx(0),
                            b: idx(1),
                            c: idx(2),
                            wrap,
                        });
                    }
                }
            }
        }

        // Renumber value slots: non-instruction cells (constants, folded
        // ops, registers) first, then instruction destinations in stream
        // order. Combinational sources already precede their consumers in
        // the stream, so afterwards every instruction's sources sit
        // strictly below its destination — the invariant that lets the
        // batched engine split the value buffer and write destinations in
        // place without a scratch copy.
        let mut is_dst = vec![false; n];
        for ins in &instrs {
            is_dst[ins.dst as usize] = true;
        }
        let mut remap = vec![0u32; n];
        let mut next = 0u32;
        for (i, d) in is_dst.iter().enumerate() {
            if !d {
                remap[i] = next;
                next += 1;
            }
        }
        for ins in &mut instrs {
            let new = next;
            next += 1;
            remap[ins.dst as usize] = new;
        }
        for ins in &mut instrs {
            ins.dst = remap[ins.dst as usize];
            ins.a = remap[ins.a as usize];
            ins.b = remap[ins.b as usize];
            ins.c = remap[ins.c as usize];
            debug_assert!(
                matches!(ins.op, SimOp::Input { .. })
                    || (ins.a < ins.dst && ins.b < ins.dst && ins.c < ins.dst),
                "slot renumbering broke the sources-below-destination invariant"
            );
        }
        for e in &mut edges {
            e.reg = remap[e.reg as usize];
            e.d = remap[e.d as usize];
        }
        let mut permuted = vec![0i64; n];
        for (i, &v) in init_vals.iter().enumerate() {
            permuted[remap[i] as usize] = v;
        }
        let init_vals = permuted;

        // Order clock edges downstream-first: when edge `j` reads the
        // register edge `i` writes (a pipeline delay chain r1 -> r2),
        // commit `j` before `i` so a fused single-pass commit still sees
        // pre-edge values along the chain. Cyclic register loops can't be
        // ordered; they stay in place and the batched engine detects that
        // and falls back to its two-phase commit.
        {
            let m = edges.len();
            let mut writer = std::collections::HashMap::with_capacity(m);
            for (k, e) in edges.iter().enumerate() {
                writer.insert(e.reg, k);
            }
            let mut succ: Vec<Option<usize>> = vec![None; m];
            let mut indeg = vec![0usize; m];
            for (j, e) in edges.iter().enumerate() {
                if let Some(&i) = writer.get(&e.d) {
                    if i != j {
                        succ[j] = Some(i);
                        indeg[i] += 1;
                    }
                }
            }
            let mut order: Vec<usize> = (0..m).filter(|&k| indeg[k] == 0).collect();
            let mut head = 0;
            while head < order.len() {
                if let Some(i) = succ[order[head]] {
                    indeg[i] -= 1;
                    if indeg[i] == 0 {
                        order.push(i);
                    }
                }
                head += 1;
            }
            if order.len() == m {
                edges = order.into_iter().map(|k| edges[k]).collect();
            }
        }

        let outputs = nl
            .outputs
            .iter()
            .map(|(name, ty, net)| (*name, remap[net.0 as usize], Wrap::from_ty(*ty)))
            .collect();
        let feedback = nl
            .feedback_regs
            .iter()
            .map(|(name, id)| (*name, remap[id.0 as usize]))
            .collect();
        let input_wraps = nl.inputs.iter().map(|(_, t)| Wrap::from_ty(*t)).collect();

        Ok(SimPlan {
            instrs,
            edges,
            init_vals,
            roms,
            outputs,
            feedback,
            latency: nl.latency.max(1),
            ii: nl.effective_ii(),
            input_wraps,
        })
    }

    /// Number of combinational instructions in the stream (constants are
    /// pre-folded away and registers live in the edge list).
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// Number of clocked registers.
    pub fn reg_count(&self) -> usize {
        self.edges.len()
    }

    /// Pipeline latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Initiation interval: valid iterations may only launch on cycles
    /// that are multiples of `ii` (1 for latch pipelines).
    pub fn ii(&self) -> u64 {
        self.ii
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.input_wraps.len()
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Output port names in port order.
    pub fn output_names(&self) -> impl Iterator<Item = &str> {
        self.outputs.iter().map(|(n, _, _)| n.as_str())
    }

    /// Whether the plan carries loop-carried state (feedback registers).
    /// Lane-batched execution splits the iteration stream into independent
    /// chunks, which would break feedback chains, so stateful plans run
    /// single-lane.
    pub fn has_feedback(&self) -> bool {
        !self.feedback.is_empty() || self.edges.iter().any(|e| e.gate != GATE_NONE)
    }

    /// The lane count [`SimPlan::run_batch_lanes`] will actually use for
    /// a requested `lanes`: clamped to ≥1, and to 1 for stateful plans.
    pub fn effective_lanes(&self, lanes: usize) -> usize {
        if self.has_feedback() {
            1
        } else {
            lanes.max(1)
        }
    }

    /// Streams `iters` iterations (row-major in `flat_args`, as in
    /// [`CompiledSim::run_batch`]) through a [`BatchedSim`] with up to
    /// `lanes` lanes, appending output rows to `out_flat` in the original
    /// iteration order. Returns the number of output rows.
    ///
    /// Iterations are assigned to lanes round-robin, so every simulation
    /// pass consumes `lanes` *consecutive* rows of `flat_args` — a
    /// zero-copy tile — and, `latency` passes later, produces `lanes`
    /// consecutive output rows. Both streams stay sequential in memory,
    /// which is what keeps the driver overhead below the lane engine's
    /// gain. Lane counts that do not divide `iters` are fine: the final
    /// partial tile pads with bubble lanes. Stateful plans (feedback
    /// registers) are automatically clamped to a single lane —
    /// interleaving would corrupt the loop-carried state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as
    /// [`CompiledSim::step`] (valid-lane division by zero).
    ///
    /// # Panics
    ///
    /// Panics if `flat_args.len() != iters * num_inputs`.
    pub fn run_batch_lanes(
        &self,
        flat_args: &[i64],
        iters: usize,
        lanes: usize,
        out_flat: &mut Vec<i64>,
    ) -> Result<usize, SimError> {
        let n_in = self.input_wraps.len();
        let n_out = self.outputs.len();
        assert_eq!(flat_args.len(), iters * n_in, "batch arity");
        let lanes = self.effective_lanes(lanes).min(iters.max(1));

        let full = iters / lanes;
        let rem = iters % lanes;
        let tiles = full + usize::from(rem > 0);
        let ii = self.ii as usize;
        let total = tiles * ii + self.latency as usize + 2;

        let out_start = out_flat.len();
        out_flat.resize(out_start + iters * n_out, 0);

        let mut sim = BatchedSim::new(self, lanes);
        let all_valid = vec![true; lanes];
        let none_valid = vec![false; lanes];
        // The one partial tile (if any) gets a padded copy of the last
        // `rem` rows; bubble lanes carry zeros.
        let mut edge_valid = vec![false; lanes];
        let mut edge_rows = vec![0i64; lanes * n_in];
        if rem > 0 {
            edge_valid[..rem].fill(true);
            edge_rows[..rem * n_in].copy_from_slice(&flat_args[full * lanes * n_in..]);
        }
        let zero_rows = vec![0i64; lanes * n_in];

        let mut drained = 0usize;
        for t in 0..total {
            // Tiles launch every `ii` cycles; off-phase cycles are bubbles.
            let tile = if t % ii == 0 { Some(t / ii) } else { None };
            match tile {
                Some(k) if k < full => {
                    let rb = k * lanes * n_in;
                    sim.step_lanes(&flat_args[rb..rb + lanes * n_in], &all_valid)?;
                }
                Some(k) if k == full && rem > 0 => {
                    sim.step_lanes(&edge_rows, &edge_valid)?;
                }
                _ => sim.step_lanes(&zero_rows, &none_valid)?,
            }
            // Tiles exit in entry order; lane 0 is valid in every real
            // tile (full tiles entirely, the partial tile by `rem >= 1`).
            if sim.lane_out_valid(0) {
                let n_rows = lanes.min(iters - drained);
                let dst = out_start + drained * n_out;
                sim.read_output_rows(n_rows, &mut out_flat[dst..dst + n_rows * n_out]);
                drained += n_rows;
            }
        }
        debug_assert_eq!(drained, iters);
        Ok(iters)
    }
}

/// Lowers a netlist opcode to the compiled form, validating it is
/// executable.
fn lower_op(op: Opcode, imm: i64, stage: u32, roms: &[Vec<i64>]) -> Result<SimOp, SimError> {
    Ok(match op {
        Opcode::Add => SimOp::Add,
        Opcode::Sub => SimOp::Sub,
        Opcode::Mul => SimOp::Mul,
        Opcode::Div => SimOp::Div { stage },
        Opcode::Rem => SimOp::Rem { stage },
        Opcode::Neg => SimOp::Neg,
        Opcode::Not => SimOp::Not,
        Opcode::Shl => SimOp::Shl,
        Opcode::Shr => SimOp::Shr,
        Opcode::And => SimOp::And,
        Opcode::Or => SimOp::Or,
        Opcode::Xor => SimOp::Xor,
        Opcode::Slt => SimOp::Slt,
        Opcode::Sle => SimOp::Sle,
        Opcode::Seq => SimOp::Seq,
        Opcode::Sne => SimOp::Sne,
        Opcode::Bool => SimOp::Bool,
        Opcode::Mux => SimOp::Mux,
        Opcode::Cvt | Opcode::Mov => SimOp::Copy,
        Opcode::Lut => {
            let rom = imm as u32;
            if rom as usize >= roms.len() {
                return Err(SimError(format!("LUT references missing ROM {imm}")));
            }
            SimOp::Lut { rom }
        }
        other => {
            return Err(SimError(format!(
                "opcode {other} cannot appear in a netlist"
            )))
        }
    })
}

/// Evaluates `op` at compile time when every source is a known constant.
/// Returns `None` when any source is dynamic or the fold is unsafe.
fn fold_const(
    op: SimOp,
    srcs: &[crate::cells::CellId],
    const_val: &[Option<i64>],
    roms: &[Vec<i64>],
) -> Option<i64> {
    let cv = |k: usize| -> Option<i64> { const_val[srcs.get(k)?.0 as usize] };
    Some(match op {
        SimOp::Input { .. } => return None,
        SimOp::Add => cv(0)?.wrapping_add(cv(1)?),
        SimOp::Sub => cv(0)?.wrapping_sub(cv(1)?),
        SimOp::Mul => cv(0)?.wrapping_mul(cv(1)?),
        SimOp::Div { .. } => {
            let d = cv(1)?;
            if d == 0 {
                return None;
            }
            cv(0)?.wrapping_div(d)
        }
        SimOp::Rem { .. } => {
            let d = cv(1)?;
            if d == 0 {
                return None;
            }
            cv(0)?.wrapping_rem(d)
        }
        SimOp::Neg => cv(0)?.wrapping_neg(),
        SimOp::Not => !cv(0)?,
        SimOp::Shl => cv(0)?.wrapping_shl(cv(1)?.clamp(0, 63) as u32),
        SimOp::Shr => cv(0)?.wrapping_shr(cv(1)?.clamp(0, 63) as u32),
        SimOp::And => cv(0)? & cv(1)?,
        SimOp::Or => cv(0)? | cv(1)?,
        SimOp::Xor => cv(0)? ^ cv(1)?,
        SimOp::Slt => (cv(0)? < cv(1)?) as i64,
        SimOp::Sle => (cv(0)? <= cv(1)?) as i64,
        SimOp::Seq => (cv(0)? == cv(1)?) as i64,
        SimOp::Sne => (cv(0)? != cv(1)?) as i64,
        SimOp::Bool => (cv(0)? != 0) as i64,
        SimOp::Mux => {
            if cv(0)? != 0 {
                cv(1)?
            } else {
                cv(2)?
            }
        }
        SimOp::Copy => cv(0)?,
        SimOp::Lut { rom } => {
            let idx = cv(0)?;
            if idx < 0 {
                0
            } else {
                roms[rom as usize].get(idx as usize).copied().unwrap_or(0)
            }
        }
    })
}

/// A running compiled simulation: mutable buffers over a [`SimPlan`].
///
/// All buffers are allocated at construction; [`CompiledSim::step`] and
/// [`CompiledSim::run_batch`] perform no heap allocation.
#[derive(Debug, Clone)]
pub struct CompiledSim<'p> {
    plan: &'p SimPlan,
    /// Persistent value buffer: constants written once, registers updated
    /// at the clock edge, combinational slots overwritten every settle.
    vals: Vec<i64>,
    /// Next-state scratch for the two-phase register commit.
    reg_next: Vec<i64>,
    /// Valid-bit occupancy per pipeline stage (`occ[0]` = newest).
    occ: Vec<bool>,
    /// Reusable zero-argument buffer for bubble cycles.
    zero_args: Vec<i64>,
    cycles: u64,
}

impl<'p> CompiledSim<'p> {
    /// Creates a simulation with registers at their power-on values.
    pub fn new(plan: &'p SimPlan) -> Self {
        CompiledSim {
            plan,
            vals: plan.init_vals.clone(),
            reg_next: vec![0; plan.edges.len()],
            occ: vec![false; plan.latency as usize],
            zero_args: vec![0; plan.input_wraps.len()],
            cycles: 0,
        }
    }

    /// Resets registers, occupancy, and the cycle counter to power-on.
    pub fn reset(&mut self) {
        self.vals.copy_from_slice(&self.plan.init_vals);
        self.occ.fill(false);
        self.cycles = 0;
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current state of a feedback register by slot name.
    pub fn feedback_value(&self, name: &str) -> Option<i64> {
        self.plan
            .feedback
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, idx)| self.vals[*idx as usize])
    }

    /// Post-edge value of output port `k`.
    #[inline]
    pub fn output(&self, k: usize) -> i64 {
        let (_, idx, wrap) = &self.plan.outputs[k];
        wrap.apply(self.vals[*idx as usize])
    }

    /// Copies all post-edge output-port values into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the output-port count.
    pub fn read_outputs(&self, out: &mut [i64]) {
        assert_eq!(out.len(), self.plan.outputs.len(), "output arity");
        for (slot, (_, idx, wrap)) in out.iter_mut().zip(&self.plan.outputs) {
            *slot = wrap.apply(self.vals[*idx as usize]);
        }
    }

    /// Whether the most recent [`CompiledSim::step`] retired a valid
    /// iteration (same value the step returned).
    pub fn out_valid(&self) -> bool {
        *self.occ.last().unwrap_or(&false)
    }

    /// Simulates one clock cycle without allocating: `args` drive the
    /// input ports, `valid` marks them as a real iteration. Returns
    /// whether the post-edge outputs correspond to a valid iteration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on division/remainder by zero while a valid
    /// iteration occupies the divider's own pipeline stage (bubbles force
    /// benign results), or on negative dynamic shifts during valid cycles.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the input-port arity.
    pub fn step(&mut self, args: &[i64], valid: bool) -> Result<bool, SimError> {
        assert_eq!(args.len(), self.plan.input_wraps.len(), "input arity");
        if valid && self.plan.ii > 1 && !self.cycles.is_multiple_of(self.plan.ii) {
            return Err(SimError(format!(
                "valid iteration presented at cycle {} of a schedule with II {}; \
                 launches must land on multiples of the initiation interval",
                self.cycles, self.plan.ii
            )));
        }
        self.cycles += 1;

        // Advance occupancy in place: stage 0 holds the new iteration.
        let l = self.occ.len();
        self.occ.copy_within(0..l - 1, 1);
        self.occ[0] = valid;

        // Combinational settle over the dense instruction stream.
        let vals = &mut self.vals;
        for ins in &self.plan.instrs {
            let s = |k: u32| vals[k as usize];
            let v = match ins.op {
                SimOp::Input { port } => args[port as usize],
                SimOp::Add => s(ins.a).wrapping_add(s(ins.b)),
                SimOp::Sub => s(ins.a).wrapping_sub(s(ins.b)),
                SimOp::Mul => s(ins.a).wrapping_mul(s(ins.b)),
                SimOp::Div { stage } => {
                    let d = s(ins.b);
                    if d == 0 {
                        if self.occ.get(stage as usize).copied().unwrap_or(false) {
                            return Err(SimError("division by zero".into()));
                        }
                        0
                    } else {
                        s(ins.a).wrapping_div(d)
                    }
                }
                SimOp::Rem { stage } => {
                    let d = s(ins.b);
                    if d == 0 {
                        if self.occ.get(stage as usize).copied().unwrap_or(false) {
                            return Err(SimError("remainder by zero".into()));
                        }
                        0
                    } else {
                        s(ins.a).wrapping_rem(d)
                    }
                }
                SimOp::Neg => s(ins.a).wrapping_neg(),
                SimOp::Not => !s(ins.a),
                SimOp::Shl => s(ins.a).wrapping_shl(s(ins.b).clamp(0, 63) as u32),
                SimOp::Shr => s(ins.a).wrapping_shr(s(ins.b).clamp(0, 63) as u32),
                SimOp::And => s(ins.a) & s(ins.b),
                SimOp::Or => s(ins.a) | s(ins.b),
                SimOp::Xor => s(ins.a) ^ s(ins.b),
                SimOp::Slt => (s(ins.a) < s(ins.b)) as i64,
                SimOp::Sle => (s(ins.a) <= s(ins.b)) as i64,
                SimOp::Seq => (s(ins.a) == s(ins.b)) as i64,
                SimOp::Sne => (s(ins.a) != s(ins.b)) as i64,
                SimOp::Bool => (s(ins.a) != 0) as i64,
                SimOp::Mux => {
                    if s(ins.a) != 0 {
                        s(ins.b)
                    } else {
                        s(ins.c)
                    }
                }
                SimOp::Copy => s(ins.a),
                SimOp::Lut { rom } => {
                    let idx = s(ins.a);
                    if idx < 0 {
                        0
                    } else {
                        self.plan.roms[rom as usize]
                            .get(idx as usize)
                            .copied()
                            .unwrap_or(0)
                    }
                }
            };
            vals[ins.dst as usize] = ins.wrap.apply(v);
        }

        // Clock edge: two-phase so register-to-register chains observe
        // pre-edge values, exactly like real flip-flops.
        for (next, edge) in self.reg_next.iter_mut().zip(&self.plan.edges) {
            *next = edge.wrap.apply(vals[edge.d as usize]);
        }
        for (next, edge) in self.reg_next.iter().zip(&self.plan.edges) {
            let latch = edge.gate == GATE_NONE
                || self.occ.get(edge.gate as usize).copied().unwrap_or(false);
            if latch {
                vals[edge.reg as usize] = *next;
            }
        }

        Ok(*self.occ.last().unwrap_or(&false))
    }

    /// Streams `iterations` through the pipeline back-to-back and returns
    /// only the valid outputs, in order (API-compatible with
    /// [`NetlistSim::run_stream`](crate::sim::NetlistSim::run_stream), but
    /// with preallocated buffers and no per-cycle clones).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`CompiledSim::step`].
    pub fn run_stream(&mut self, iterations: &[Vec<i64>]) -> Result<Vec<Vec<i64>>, SimError> {
        let n_out = self.plan.outputs.len();
        let mut out = Vec::with_capacity(iterations.len());
        let zeros = std::mem::take(&mut self.zero_args);
        let ii = self.plan.ii;
        let total = iterations.len() as u64 * ii + self.plan.latency as u64 + 2;
        let mut run = || -> Result<(), SimError> {
            for t in 0..total {
                let iter = (t % ii == 0)
                    .then(|| iterations.get((t / ii) as usize))
                    .flatten();
                let (args, valid) = match iter {
                    Some(a) => (a.as_slice(), true),
                    None => (zeros.as_slice(), false),
                };
                if self.step(args, valid)? {
                    let mut row = vec![0i64; n_out];
                    self.read_outputs(&mut row);
                    out.push(row);
                }
            }
            Ok(())
        };
        let r = run();
        self.zero_args = zeros;
        r.map(|()| out)
    }

    /// Streams `iters` iterations whose arguments are packed row-major in
    /// `flat_args` (`iters × num_inputs`), appending each valid output row
    /// (`num_outputs` words) to `out_flat`. Returns the number of valid
    /// output rows produced. This is the zero-churn batch entry point the
    /// bench harness and throughput drivers use: no per-cycle argument
    /// clones, no per-output `Vec`s.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`CompiledSim::step`].
    ///
    /// # Panics
    ///
    /// Panics if `flat_args.len() != iters * num_inputs`.
    pub fn run_batch(
        &mut self,
        flat_args: &[i64],
        iters: usize,
        out_flat: &mut Vec<i64>,
    ) -> Result<usize, SimError> {
        let n_in = self.plan.input_wraps.len();
        let n_out = self.plan.outputs.len();
        assert_eq!(flat_args.len(), iters * n_in, "batch arity");
        out_flat.reserve(iters * n_out);
        let mut rows = 0usize;
        let zeros = std::mem::take(&mut self.zero_args);
        let ii = self.plan.ii;
        let total = iters as u64 * ii + self.plan.latency as u64 + 2;
        let mut run = || -> Result<(), SimError> {
            for t in 0..total {
                let valid = t % ii == 0 && ((t / ii) as usize) < iters;
                let args: &[i64] = if valid {
                    let base = (t / ii) as usize * n_in;
                    &flat_args[base..base + n_in]
                } else {
                    &zeros
                };
                if self.step(args, valid)? {
                    let start = out_flat.len();
                    out_flat.resize(start + n_out, 0);
                    self.read_outputs(&mut out_flat[start..]);
                    rows += 1;
                }
            }
            Ok(())
        };
        let r = run();
        self.zero_args = zeros;
        r.map(|()| rows)
    }
}

/// A lane-batched compiled simulation: structure-of-arrays state that
/// advances `lanes` independent input vectors per instruction pass.
///
/// Where [`CompiledSim`] walks the instruction stream once per clock for a
/// single iteration pipeline, `BatchedSim` keeps the value buffer
/// **slot-major** (`vals[slot * lanes + lane]`) so each instruction's
/// opcode dispatch is paid once and the per-lane arithmetic runs as a
/// tight, auto-vectorizable inner loop over contiguous memory. Lanes are
/// fully independent — lane `l` simulates its own copy of the datapath —
/// which is exactly the shape differential suites and throughput drivers
/// need: N test vectors through the same netlist.
///
/// Bit-exactness: each lane computes precisely what a dedicated
/// [`CompiledSim`] would, including wrap semantics, divider bubble
/// gating (per-lane occupancy), and two-phase register commit.
#[derive(Debug, Clone)]
pub struct BatchedSim<'p> {
    plan: &'p SimPlan,
    lanes: usize,
    /// Slot-major SoA value buffer: `vals[slot * lanes + lane]`.
    vals: Vec<i64>,
    /// Per-lane next-state scratch for the two-phase register commit
    /// (`reg_next[edge * lanes + lane]`).
    reg_next: Vec<i64>,
    /// Per-lane pipeline occupancy, stage-major
    /// (`occ[stage * lanes + lane]`; stage 0 = newest).
    occ: Vec<bool>,
    /// Per-instruction compute scratch (one word per lane), so the inner
    /// loops read `vals` immutably and write disjoint scratch — the
    /// pattern LLVM vectorizes.
    tmp: Vec<i64>,
    /// Whether the edge list, in commit order, has an edge reading a
    /// register an earlier edge already overwrote (only cyclic register
    /// loops, since the plan orders delay chains downstream-first). Only
    /// then does the clock edge need the full two-phase commit through
    /// `reg_next`; otherwise each edge commits independently, halving the
    /// edge traffic.
    chained_regs: bool,
    cycles: u64,
}

impl<'p> BatchedSim<'p> {
    /// Creates a `lanes`-wide simulation, every lane at power-on state.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(plan: &'p SimPlan, lanes: usize) -> Self {
        assert!(lanes > 0, "at least one lane");
        let n_slots = plan.init_vals.len();
        let mut vals = vec![0i64; n_slots * lanes];
        for (slot, &v) in plan.init_vals.iter().enumerate() {
            vals[slot * lanes..(slot + 1) * lanes].fill(v);
        }
        // Single-pass commit is sound iff no edge reads a register an
        // earlier edge in commit order already overwrote (compile() orders
        // chains downstream-first, so this only stays true for cyclic
        // register loops).
        let mut committed = vec![false; n_slots];
        let mut chained_regs = false;
        for e in &plan.edges {
            if committed[e.d as usize] {
                chained_regs = true;
                break;
            }
            committed[e.reg as usize] = true;
        }
        BatchedSim {
            plan,
            lanes,
            vals,
            reg_next: vec![0; plan.edges.len() * lanes],
            occ: vec![false; plan.latency as usize * lanes],
            tmp: vec![0; lanes],
            chained_regs,
            cycles: 0,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles simulated so far (each step advances every lane one cycle).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether lane `l`'s post-edge outputs correspond to a valid
    /// iteration.
    #[inline]
    pub fn lane_out_valid(&self, l: usize) -> bool {
        let last = (self.plan.latency as usize - 1) * self.lanes;
        self.occ[last + l]
    }

    /// Post-edge value of output port `k` in lane `l`.
    #[inline]
    pub fn output_lane(&self, k: usize, l: usize) -> i64 {
        let (_, idx, wrap) = &self.plan.outputs[k];
        wrap.apply(self.vals[*idx as usize * self.lanes + l])
    }

    /// Copies lane `l`'s post-edge output-port values into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the output-port count.
    pub fn read_outputs_lane(&self, l: usize, out: &mut [i64]) {
        assert_eq!(out.len(), self.plan.outputs.len(), "output arity");
        for (slot, (_, idx, wrap)) in out.iter_mut().zip(&self.plan.outputs) {
            *slot = wrap.apply(self.vals[*idx as usize * self.lanes + l]);
        }
    }

    /// Copies the post-edge outputs of the first `n_rows` lanes into `out`
    /// row-major (`out[lane * num_outputs + port]`) — the bulk drain used
    /// by [`SimPlan::run_batch_lanes`] when a whole tile retires at once.
    ///
    /// # Panics
    ///
    /// Panics if `n_rows` exceeds the lane count or `out.len()` differs
    /// from `n_rows * num_outputs`.
    pub fn read_output_rows(&self, n_rows: usize, out: &mut [i64]) {
        let n_out = self.plan.outputs.len();
        assert!(n_rows <= self.lanes, "row count");
        assert_eq!(out.len(), n_rows * n_out, "output arity");
        for (k, (_, idx, wrap)) in self.plan.outputs.iter().enumerate() {
            let base = *idx as usize * self.lanes;
            for l in 0..n_rows {
                out[l * n_out + k] = wrap.apply(self.vals[base + l]);
            }
        }
    }

    /// Simulates one clock cycle in every lane. `args_rows` is row-major —
    /// `args_rows[lane * num_inputs + port]`, i.e. `lanes` consecutive
    /// iteration rows exactly as they sit in a flat batch buffer, so
    /// callers feed input slices with no transpose. `valid[l]` marks lane
    /// `l`'s inputs as a real iteration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any lane divides by zero while a valid
    /// iteration occupies that divider's stage in that lane (bubble lanes
    /// produce benign zeros), or mirrors of the other
    /// [`CompiledSim::step`] fault conditions.
    ///
    /// # Panics
    ///
    /// Panics if `args_rows.len() != num_inputs * lanes` or
    /// `valid.len() != lanes`.
    pub fn step_lanes(&mut self, args_rows: &[i64], valid: &[bool]) -> Result<(), SimError> {
        assert_eq!(
            args_rows.len(),
            self.plan.input_wraps.len() * self.lanes,
            "input arity"
        );
        assert_eq!(valid.len(), self.lanes, "valid arity");
        // Dispatch on the common lane widths with a literal count so each
        // monomorphized body sees a constant trip count: the lane loops
        // then unroll to exact full-width vector ops with no remainder
        // handling.
        match self.lanes {
            4 => self.step_impl(args_rows, valid, 4),
            8 => self.step_impl(args_rows, valid, 8),
            16 => self.step_impl(args_rows, valid, 16),
            32 => self.step_impl(args_rows, valid, 32),
            64 => self.step_impl(args_rows, valid, 64),
            n => self.step_impl(args_rows, valid, n),
        }
    }

    #[inline(always)]
    fn step_impl(
        &mut self,
        args_rows: &[i64],
        valid: &[bool],
        lanes: usize,
    ) -> Result<(), SimError> {
        debug_assert_eq!(lanes, self.lanes);
        let ii = self.plan.ii;
        if ii > 1 && !self.cycles.is_multiple_of(ii) && valid.iter().any(|&v| v) {
            return Err(SimError(format!(
                "valid iteration presented at cycle {} of a schedule with II {ii}; \
                 launches must land on multiples of the initiation interval",
                self.cycles
            )));
        }
        self.cycles += 1;

        // Advance occupancy: stage-major, so shifting all lanes of all
        // stages is one contiguous copy by `lanes`.
        let occ_len = self.occ.len();
        self.occ.copy_within(0..occ_len - lanes, lanes);
        self.occ[..lanes].copy_from_slice(valid);

        // Combinational settle: one opcode dispatch per instruction, one
        // vectorizable lane loop per dispatch. Slot numbering puts every
        // source strictly below the destination (see the renumbering in
        // [`SimPlan::compile`]), so the value buffer splits into a
        // read-only source region and an in-place destination — no scratch
        // copy. The truncation wrap is branchless and fused into each
        // loop; the zipped exact-length slices elide every bounds check.
        let n_in = self.plan.input_wraps.len();
        for ins in &self.plan.instrs {
            let db = ins.dst as usize * lanes;
            let (src, rest) = self.vals.split_at_mut(db);
            let dst = &mut rest[..lanes];
            let ab = ins.a as usize * lanes;
            let bb = ins.b as usize * lanes;
            let cb = ins.c as usize * lanes;
            let w = ins.wrap;
            match ins.op {
                SimOp::Input { port } => {
                    // Row-major tile: the transpose into lane order is this
                    // strided read, fused with the port wrap (the tile is
                    // L1-resident, so the stride costs little).
                    let p = port as usize;
                    for (l, t) in dst.iter_mut().enumerate() {
                        *t = w.apply(args_rows[l * n_in + p]);
                    }
                }
                SimOp::Add => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = w.apply(x.wrapping_add(y));
                    }
                }
                SimOp::Sub => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = w.apply(x.wrapping_sub(y));
                    }
                }
                SimOp::Mul => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = w.apply(x.wrapping_mul(y));
                    }
                }
                SimOp::Div { stage } => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    let ob = stage as usize * lanes;
                    for (l, ((t, &x), &d)) in dst.iter_mut().zip(a).zip(b).enumerate() {
                        *t = if d == 0 {
                            if self.occ.get(ob + l).copied().unwrap_or(false) {
                                return Err(SimError("division by zero".into()));
                            }
                            0
                        } else {
                            w.apply(x.wrapping_div(d))
                        };
                    }
                }
                SimOp::Rem { stage } => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    let ob = stage as usize * lanes;
                    for (l, ((t, &x), &d)) in dst.iter_mut().zip(a).zip(b).enumerate() {
                        *t = if d == 0 {
                            if self.occ.get(ob + l).copied().unwrap_or(false) {
                                return Err(SimError("remainder by zero".into()));
                            }
                            0
                        } else {
                            w.apply(x.wrapping_rem(d))
                        };
                    }
                }
                SimOp::Neg => {
                    let a = &src[ab..ab + lanes];
                    for (t, &x) in dst.iter_mut().zip(a) {
                        *t = w.apply(x.wrapping_neg());
                    }
                }
                SimOp::Not => {
                    let a = &src[ab..ab + lanes];
                    for (t, &x) in dst.iter_mut().zip(a) {
                        *t = w.apply(!x);
                    }
                }
                SimOp::Shl => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = w.apply(x.wrapping_shl(y.clamp(0, 63) as u32));
                    }
                }
                SimOp::Shr => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = w.apply(x.wrapping_shr(y.clamp(0, 63) as u32));
                    }
                }
                SimOp::And => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = w.apply(x & y);
                    }
                }
                SimOp::Or => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = w.apply(x | y);
                    }
                }
                SimOp::Xor => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = w.apply(x ^ y);
                    }
                }
                SimOp::Slt => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = (x < y) as i64;
                    }
                }
                SimOp::Sle => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = (x <= y) as i64;
                    }
                }
                SimOp::Seq => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = (x == y) as i64;
                    }
                }
                SimOp::Sne => {
                    let (a, b) = (&src[ab..ab + lanes], &src[bb..bb + lanes]);
                    for ((t, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *t = (x != y) as i64;
                    }
                }
                SimOp::Bool => {
                    let a = &src[ab..ab + lanes];
                    for (t, &x) in dst.iter_mut().zip(a) {
                        *t = (x != 0) as i64;
                    }
                }
                SimOp::Mux => {
                    let (a, b, c) = (
                        &src[ab..ab + lanes],
                        &src[bb..bb + lanes],
                        &src[cb..cb + lanes],
                    );
                    for (((t, &s), &x), &y) in dst.iter_mut().zip(a).zip(b).zip(c) {
                        *t = w.apply(if s != 0 { x } else { y });
                    }
                }
                SimOp::Copy => {
                    let a = &src[ab..ab + lanes];
                    for (t, &x) in dst.iter_mut().zip(a) {
                        *t = w.apply(x);
                    }
                }
                SimOp::Lut { rom } => {
                    let a = &src[ab..ab + lanes];
                    let rom = &self.plan.roms[rom as usize];
                    for (t, &x) in dst.iter_mut().zip(a) {
                        *t = if x < 0 {
                            0
                        } else {
                            w.apply(rom.get(x as usize).copied().unwrap_or(0))
                        };
                    }
                }
            }
        }

        // Clock edge. When no register feeds another register directly,
        // every edge reads a combinational slot the commit cannot disturb,
        // so each commits independently (wrap into scratch, one copy).
        // Register-to-register chains need the classic two-phase commit
        // through `reg_next` to read pre-edge values.
        if !self.chained_regs {
            let tmp = &mut self.tmp[..lanes];
            for edge in &self.plan.edges {
                let db = edge.d as usize * lanes;
                for (t, &x) in tmp.iter_mut().zip(&self.vals[db..db + lanes]) {
                    *t = edge.wrap.apply(x);
                }
                let rb = edge.reg as usize * lanes;
                if edge.gate == GATE_NONE {
                    self.vals[rb..rb + lanes].copy_from_slice(tmp);
                } else {
                    let ob = edge.gate as usize * lanes;
                    for (l, &t) in tmp.iter().enumerate() {
                        if self.occ.get(ob + l).copied().unwrap_or(false) {
                            self.vals[rb + l] = t;
                        }
                    }
                }
            }
            return Ok(());
        }
        for (e, edge) in self.plan.edges.iter().enumerate() {
            let db = edge.d as usize * lanes;
            let nb = e * lanes;
            for l in 0..lanes {
                self.reg_next[nb + l] = edge.wrap.apply(self.vals[db + l]);
            }
        }
        for (e, edge) in self.plan.edges.iter().enumerate() {
            let rb = edge.reg as usize * lanes;
            let nb = e * lanes;
            if edge.gate == GATE_NONE {
                self.vals[rb..rb + lanes].copy_from_slice(&self.reg_next[nb..nb + lanes]);
            } else {
                let ob = edge.gate as usize * lanes;
                for l in 0..lanes {
                    if self.occ.get(ob + l).copied().unwrap_or(false) {
                        self.vals[rb + l] = self.reg_next[nb + l];
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_dp::netlist_from_datapath;
    use crate::from_dp::tests::dp_for;
    use crate::sim::NetlistSim;

    #[test]
    fn compiled_matches_reference_on_fir() {
        let src = "void fir_dp(int A0, int A1, int A2, int A3, int A4, int* Tmp0) {
           *Tmp0 = 3*A0 + 5*A1 + 7*A2 + 9*A3 - A4; }";
        for period in [1000.0, 5.0, 3.0] {
            let dp = dp_for(src, "fir_dp", period);
            let nl = netlist_from_datapath(&dp);
            let plan = SimPlan::compile(&nl).unwrap();
            let mut reference = NetlistSim::new(&nl);
            let mut compiled = CompiledSim::new(&plan);
            let iters: Vec<Vec<i64>> = (0..20)
                .map(|i| (0..5).map(|j| (i * 7 + j * 13) % 200 - 100).collect())
                .collect();
            let a = reference.run_stream(&iters).unwrap();
            let b = compiled.run_stream(&iters).unwrap();
            assert_eq!(a, b, "period {period}");
        }
    }

    #[test]
    fn constants_fold_out_of_the_stream() {
        // 3*A0 + ... : the literal coefficients and any constant math
        // disappear from the instruction stream.
        let src = "void f(int a, int* o) { *o = a * 3 + (2 + 5); }";
        let dp = dp_for(src, "f", 1000.0);
        let nl = netlist_from_datapath(&dp);
        let plan = SimPlan::compile(&nl).unwrap();
        let consts = nl
            .cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::Const(_)))
            .count();
        assert!(consts > 0, "test premise: netlist has constants");
        // Stream = cells − constants − registers (at minimum).
        assert!(plan.instr_count() <= nl.cells.len() - consts - plan.reg_count());
    }

    #[test]
    fn batch_and_stream_agree() {
        let src = "void f(uint8 a, uint8 b, uint8* o) { *o = a * b + 1; }";
        let dp = dp_for(src, "f", 4.0);
        let nl = netlist_from_datapath(&dp);
        let plan = SimPlan::compile(&nl).unwrap();
        let iters: Vec<Vec<i64>> = (0..32).map(|i| vec![i % 17, (i * 3) % 11]).collect();
        let mut s1 = CompiledSim::new(&plan);
        let streamed = s1.run_stream(&iters).unwrap();
        let flat: Vec<i64> = iters.iter().flatten().copied().collect();
        let mut s2 = CompiledSim::new(&plan);
        let mut out = Vec::new();
        let rows = s2.run_batch(&flat, iters.len(), &mut out).unwrap();
        assert_eq!(rows, streamed.len());
        let flattened: Vec<i64> = streamed.into_iter().flatten().collect();
        assert_eq!(out, flattened);
    }

    #[test]
    fn divider_bubble_with_garbage_zero_is_benign() {
        // Pipelined divide: a bubble carrying a zero divisor while a valid
        // iteration is in flight elsewhere must NOT fault (the reference
        // simulator used to error on any occupied stage).
        let src = "void d(int a, int b, int* o) { *o = (a * a + b) / b; }";
        let dp = dp_for(src, "d", 4.0);
        let nl = netlist_from_datapath(&dp);
        assert!(nl.latency > 1, "test premise: pipelined");
        let plan = SimPlan::compile(&nl).unwrap();
        let mut sim = CompiledSim::new(&plan);
        // Valid iteration with a safe divisor, then garbage bubbles with
        // zero divisors while it drains.
        sim.step(&[10, 3], true).unwrap();
        for _ in 0..(nl.latency + 2) {
            sim.step(&[7, 0], false).unwrap();
        }
        // A valid zero divisor still faults.
        sim.step(&[1, 0], true).unwrap();
        let mut faulted = false;
        for _ in 0..(nl.latency + 2) {
            if sim.step(&[0, 0], false).is_err() {
                faulted = true;
                break;
            }
        }
        // The fault fires on the cycle the valid iteration reaches the
        // divider's stage (possibly the firing cycle itself for stage 0).
        assert!(faulted || nl.latency == 1);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let src = "void acc(int t0, int* t1) {
           int s; int c = ROCCC_load_prev(s) + t0;
           ROCCC_store2next(s, c);
           *t1 = c; }";
        let prog = roccc_cparse::parser::parse(src).unwrap();
        let f = prog.function("acc").unwrap();
        let fb = vec![roccc_hlir::kernel::FeedbackVar {
            name: "s".into(),
            ty: roccc_cparse::types::IntType::int(),
            init: 0,
        }];
        let mut ir = roccc_suifvm::lower_function(&prog, f, &fb).unwrap();
        roccc_suifvm::to_ssa(&mut ir);
        roccc_suifvm::optimize(&mut ir);
        let mut dp = roccc_datapath::build_datapath(&ir).unwrap();
        roccc_datapath::pipeline_datapath(&mut dp, 100.0, &roccc_datapath::DefaultDelayModel);
        roccc_datapath::narrow_widths(&mut dp);
        let nl = netlist_from_datapath(&dp);
        let plan = SimPlan::compile(&nl).unwrap();
        let mut sim = CompiledSim::new(&plan);
        sim.step(&[10], true).unwrap();
        sim.step(&[5], true).unwrap();
        for _ in 0..4 {
            sim.step(&[0], false).unwrap();
        }
        assert_eq!(sim.feedback_value("s"), Some(15));
        sim.reset();
        assert_eq!(sim.feedback_value("s"), Some(0));
        assert_eq!(sim.cycles(), 0);
    }

    #[test]
    fn batched_lanes_match_single_lane() {
        let src = "void f(int a, int b, int* o) { *o = (a * b) * (a + b) + a * 3; }";
        let dp = dp_for(src, "f", 4.0);
        let nl = netlist_from_datapath(&dp);
        let plan = SimPlan::compile(&nl).unwrap();
        let iters: Vec<Vec<i64>> = (0..37)
            .map(|i| vec![(i * 31) % 211 - 100, (i * 17) % 97 - 48])
            .collect();
        let flat: Vec<i64> = iters.iter().flatten().copied().collect();
        let mut single = CompiledSim::new(&plan);
        let mut want = Vec::new();
        single.run_batch(&flat, iters.len(), &mut want).unwrap();
        // Lane counts that do and do not divide 37, plus over-provisioned.
        for lanes in [1, 2, 8, 37, 64] {
            let mut got = Vec::new();
            let rows = plan
                .run_batch_lanes(&flat, iters.len(), lanes, &mut got)
                .unwrap();
            assert_eq!(rows, iters.len(), "{lanes} lanes");
            assert_eq!(got, want, "{lanes} lanes");
        }
    }

    #[test]
    fn feedback_plans_clamp_to_one_lane() {
        let src = "void acc(int t0, int* t1) {
           int s; int c = ROCCC_load_prev(s) + t0;
           ROCCC_store2next(s, c);
           *t1 = c; }";
        let prog = roccc_cparse::parser::parse(src).unwrap();
        let f = prog.function("acc").unwrap();
        let fb = vec![roccc_hlir::kernel::FeedbackVar {
            name: "s".into(),
            ty: roccc_cparse::types::IntType::int(),
            init: 0,
        }];
        let mut ir = roccc_suifvm::lower_function(&prog, f, &fb).unwrap();
        roccc_suifvm::to_ssa(&mut ir);
        roccc_suifvm::optimize(&mut ir);
        let mut dp = roccc_datapath::build_datapath(&ir).unwrap();
        roccc_datapath::pipeline_datapath(&mut dp, 100.0, &roccc_datapath::DefaultDelayModel);
        roccc_datapath::narrow_widths(&mut dp);
        let nl = netlist_from_datapath(&dp);
        let plan = SimPlan::compile(&nl).unwrap();
        assert!(plan.has_feedback());
        assert_eq!(plan.effective_lanes(8), 1);
        // And the driver still produces the exact running-sum sequence.
        let flat: Vec<i64> = (1..=10).collect();
        let mut out = Vec::new();
        plan.run_batch_lanes(&flat, 10, 8, &mut out).unwrap();
        let want: Vec<i64> = (1..=10)
            .scan(0i64, |s, x| {
                *s += x;
                Some(*s)
            })
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn batched_divider_bubbles_are_per_lane() {
        // Remainder lanes drain as bubbles carrying zero divisors; only a
        // *valid* lane with a zero divisor may fault.
        let src = "void d(int a, int b, int* o) { *o = (a * a + b) / b; }";
        let dp = dp_for(src, "d", 4.0);
        let nl = netlist_from_datapath(&dp);
        let plan = SimPlan::compile(&nl).unwrap();
        // 5 iterations over 3 lanes: chunks of 2/2/1 — lane 2 bubbles
        // early while others are mid-flight. All divisors nonzero.
        let iters: Vec<Vec<i64>> = (0..5).map(|i| vec![i + 10, i + 1]).collect();
        let flat: Vec<i64> = iters.iter().flatten().copied().collect();
        let mut out = Vec::new();
        plan.run_batch_lanes(&flat, 5, 3, &mut out).unwrap();
        let mut single = CompiledSim::new(&plan);
        let mut want = Vec::new();
        single.run_batch(&flat, 5, &mut want).unwrap();
        assert_eq!(out, want);
        // A valid zero divisor faults in the batched engine too.
        let bad: Vec<i64> = vec![4, 2, 9, 0, 5, 1];
        let mut out2 = Vec::new();
        assert!(plan.run_batch_lanes(&bad, 3, 2, &mut out2).is_err());
    }

    #[test]
    fn stages_levelize_inputs_ops_and_registers() {
        let src = "void f(int a, int b, int* o) { *o = (a * b) * (a + b) + a * 3; }";
        let dp = dp_for(src, "f", 4.0);
        let nl = netlist_from_datapath(&dp);
        let stages = cell_stages(&nl);
        assert_eq!(stages.len(), nl.cells.len());
        for (i, cell) in nl.cells.iter().enumerate() {
            match &cell.kind {
                CellKind::Input(_) | CellKind::Const(_) => assert_eq!(stages[i], 0),
                CellKind::Op { srcs, .. } => {
                    let m = srcs.iter().map(|s| stages[s.0 as usize]).max().unwrap_or(0);
                    assert_eq!(stages[i], m, "op n{i}");
                }
                CellKind::Reg {
                    d,
                    stage_gate: None,
                    ..
                } => {
                    assert_eq!(stages[i], stages[d.unwrap().0 as usize] + 1, "reg n{i}");
                }
                CellKind::Reg {
                    stage_gate: Some(g),
                    ..
                } => assert_eq!(stages[i], *g),
            }
        }
        // No combinational cell sits beyond the last pipeline stage.
        for (i, cell) in nl.cells.iter().enumerate() {
            if matches!(cell.kind, CellKind::Op { .. }) {
                assert!(stages[i] < nl.latency, "op n{i} stage {}", stages[i]);
            }
        }
    }
}
