//! Whole-kernel system simulation (the paper's Figure 2 execution model).
//!
//! Instantiates, per input array, a BRAM + address generator + smart
//! buffer; per output array, an output address generator + BRAM; plus the
//! higher-level firing logic and the pipelined data-path netlist. Each
//! simulated clock cycle: memory data lands in the smart buffers, a new
//! iteration fires when every buffer has a valid window, and valid outputs
//! retire into the output BRAMs.
//!
//! This is the cycle-accurate counterpart of running the kernel on the
//! FPGA; integration tests check it word-for-word against the golden-model
//! C interpreter, and the Table 1 harness reads its throughput numbers.

use crate::cells::Netlist;
use crate::plan::{CompiledSim, SimPlan};
use crate::sim::SimError;
use roccc_buffers::addr::{AddressGen1d, AddressGen2d, DimScan, OutputAddressGen};
use roccc_buffers::bram::BramModel;
use roccc_buffers::smart::{SmartBuffer1d, SmartBuffer2d};
use roccc_hlir::kernel::{Kernel, WindowSpec};
use std::collections::HashMap;

/// Result of a full system run.
#[derive(Debug, Clone, Default)]
pub struct SystemRun {
    /// Final contents of each output array.
    pub arrays: HashMap<String, Vec<i64>>,
    /// Final values of exported feedback scalars (`<name>_final`).
    pub scalars: HashMap<String, i64>,
    /// Total clock cycles from start to done.
    pub cycles: u64,
    /// Iterations fired.
    pub fired: u64,
    /// Words read from input BRAMs.
    pub mem_reads: u64,
    /// Words written to output BRAMs.
    pub mem_writes: u64,
}

impl SystemRun {
    /// Output words produced per clock cycle, averaged over the run.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.mem_writes as f64 / self.cycles as f64
    }
}

/// System-level error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemError(pub String);

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "system simulation error: {}", self.0)
    }
}

impl std::error::Error for SystemError {}

impl From<SimError> for SystemError {
    fn from(e: SimError) -> Self {
        SystemError(e.0)
    }
}

enum AnyBuffer {
    One(SmartBuffer1d),
    Two(SmartBuffer2d),
}

struct InputLane {
    bram: BramModel,
    addrs: Box<dyn Iterator<Item = i64>>,
    buffer: AnyBuffer,
    /// Map from window position (row-major within the window) to input
    /// port index — windows may be sparse.
    port_map: Vec<(usize, usize)>, // (window slot, dp input port)
    staged: Option<Vec<i64>>,
}

struct OutputLane {
    name: String,
    bram: BramModel,
    addrs: OutputAddressGen,
    /// Data-path output port feeding this lane.
    port: usize,
    remaining: u64,
}

/// System-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemOptions {
    /// Words delivered per memory beat ("bus size ÷ data size" in the
    /// paper's smart-buffer parameterization). 1 models a word-wide bus;
    /// the paper's FIR uses 2 (16-bit bus, 8-bit data).
    pub bus_elems: usize,
}

impl Default for SystemOptions {
    fn default() -> Self {
        SystemOptions { bus_elems: 1 }
    }
}

/// Runs a kernel's generated hardware over concrete array contents.
///
/// `arrays` supplies input arrays by parameter name; `scalars` supplies
/// scalar live-in parameters. `netlist` must come from the kernel's
/// pipelined data path.
///
/// # Errors
///
/// Returns [`SystemError`] on missing buffers, unsupported access shapes
/// or netlist simulation faults.
pub fn run_system(
    kernel: &Kernel,
    netlist: &Netlist,
    arrays: &HashMap<String, Vec<i64>>,
    scalars: &HashMap<String, i64>,
) -> Result<SystemRun, SystemError> {
    run_system_with_options(kernel, netlist, arrays, scalars, SystemOptions::default())
}

/// [`run_system`] with explicit [`SystemOptions`] (bus width etc.).
///
/// # Errors
///
/// See [`run_system`].
pub fn run_system_with_options(
    kernel: &Kernel,
    netlist: &Netlist,
    arrays: &HashMap<String, Vec<i64>>,
    scalars: &HashMap<String, i64>,
    options: SystemOptions,
) -> Result<SystemRun, SystemError> {
    if kernel.dims.is_empty() {
        return Err(SystemError(
            "straight-line kernels have no loop to stream; use NetlistSim directly".into(),
        ));
    }

    // ----- input lanes ------------------------------------------------------
    let ports = kernel.input_ports();
    let port_index: HashMap<&str, usize> = ports
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();

    let mut lanes: Vec<InputLane> = Vec::new();
    for w in &kernel.windows {
        let data = arrays
            .get(&w.array)
            .ok_or_else(|| SystemError(format!("missing input array `{}`", w.array)))?;
        lanes.push(build_lane(kernel, w, data, &port_index)?);
    }

    // ----- scalar live-ins --------------------------------------------------
    let mut const_inputs: Vec<(usize, i64)> = Vec::new();
    for (name, _) in &kernel.scalar_inputs {
        let v = *scalars
            .get(name)
            .ok_or_else(|| SystemError(format!("missing scalar input `{name}`")))?;
        const_inputs.push((port_index[name.as_str()], v));
    }

    // ----- output lanes -----------------------------------------------------
    let out_ports = kernel.output_ports();
    let mut out_lanes: Vec<OutputLane> = Vec::new();
    for o in &kernel.outputs {
        for wr in &o.writes {
            let port = out_ports
                .iter()
                .position(|(n, _)| n == &wr.scalar)
                .ok_or_else(|| SystemError(format!("no output port for `{}`", wr.scalar)))?;
            let mut dims = Vec::new();
            for (d, ai) in wr.index.iter().enumerate() {
                let var = ai.var.as_ref().ok_or_else(|| {
                    SystemError("constant store indices are not supported".into())
                })?;
                let ld = kernel
                    .dims
                    .iter()
                    .find(|l| &l.var == var)
                    .ok_or_else(|| SystemError(format!("store index var `{var}` unknown")))?;
                dims.push(DimScan {
                    start: ld.start + ai.offset,
                    bound: ld.bound + ai.offset,
                    step: ld.step,
                    extent: 1,
                });
                let _ = d;
            }
            let row_width = if o.dims.len() == 2 { o.dims[1] } else { 1 };
            let gen = OutputAddressGen::new(dims, 0, row_width);
            let total = gen.total();
            let size: usize = o.dims.iter().product();
            out_lanes.push(OutputLane {
                name: o.array.clone(),
                bram: BramModel::zeroed(size),
                addrs: gen,
                port,
                remaining: total,
            });
        }
    }

    // ----- main loop ----------------------------------------------------------
    // Compile the netlist once; every cycle then runs the zero-allocation
    // levelized engine instead of re-interpreting the cell graph.
    let plan = SimPlan::compile(netlist)?;
    let mut sim = CompiledSim::new(&plan);
    let total_iters = kernel.total_iterations();
    let mut fired = 0u64;
    let mut cycles = 0u64;
    // Single argument buffer reused every cycle (zeroed, then window
    // values written in for firing cycles).
    let mut args_buf = vec![0i64; netlist.inputs.len()];
    let ii = plan.ii();
    let safety = 16 * total_iters * ii + 4096;
    let mut drain = 0u32;
    let drain_needed = netlist.latency + 2;

    // Run until every output array is written, all iterations have fired,
    // and the pipeline has drained (so feedback finals are settled).
    while out_lanes.iter().any(|l| l.remaining > 0) || fired < total_iters || drain < drain_needed {
        if fired >= total_iters {
            drain += 1;
        }
        cycles += 1;
        if cycles > safety {
            return Err(SystemError(format!(
                "system did not converge after {cycles} cycles ({fired}/{total_iters} fired)"
            )));
        }

        // 1. Memory data from last cycle lands in the smart buffers (the
        //    whole bus beat arrives together).
        for lane in &mut lanes {
            for (addr, v) in lane.bram.clock_all() {
                match &mut lane.buffer {
                    AnyBuffer::One(sb) => sb.push(addr as i64, v),
                    AnyBuffer::Two(sb) => sb.push_flat(addr as i64, v),
                }
            }
            if lane.staged.is_none() {
                lane.staged = match &mut lane.buffer {
                    AnyBuffer::One(sb) => sb.pop_window(),
                    AnyBuffer::Two(sb) => sb.pop_window(),
                };
            }
        }

        // 2. Fire when every lane has a window and the cycle lands on the
        //    schedule's initiation interval (the sim has stepped
        //    `cycles - 1` times at this point).
        let all_ready = fired < total_iters
            && !lanes.is_empty()
            && lanes.iter().all(|l| l.staged.is_some())
            && (cycles - 1).is_multiple_of(ii);
        args_buf.fill(0);
        let valid = if all_ready {
            for lane in &mut lanes {
                let win = lane.staged.take().expect("all_ready");
                for (slot, port) in &lane.port_map {
                    args_buf[*port] = win[*slot];
                }
            }
            for (port, v) in &const_inputs {
                args_buf[*port] = *v;
            }
            fired += 1;
            true
        } else {
            false
        };

        // 3. Step the data path.
        let out_valid = sim.step(&args_buf, valid)?;

        // 4. Retire valid outputs.
        if out_valid {
            for lane in &mut out_lanes {
                if lane.remaining > 0 {
                    let addr = lane
                        .addrs
                        .next()
                        .ok_or_else(|| SystemError("output address underflow".into()))?;
                    lane.bram.write(addr as usize, sim.output(lane.port));
                    lane.remaining -= 1;
                }
            }
        }

        // 5. Issue next input reads (one beat of `bus_elems` words).
        for lane in &mut lanes {
            for _ in 0..options.bus_elems.max(1) {
                match lane.addrs.next() {
                    Some(a) => lane.bram.issue_read(a as usize),
                    None => break,
                }
            }
        }
    }

    // Collect results.
    let mut result = SystemRun {
        cycles,
        fired,
        ..SystemRun::default()
    };
    for lane in &mut lanes {
        let (r, _) = lane.bram.traffic();
        result.mem_reads += r;
    }
    for lane in out_lanes {
        let (_, w) = lane.bram.traffic();
        result.mem_writes += w;
        // Merge multi-port writes into one array image.
        let entry = result
            .arrays
            .entry(lane.name.clone())
            .or_insert_with(|| vec![0; lane.bram.len()]);
        for (i, v) in lane.bram.data().iter().enumerate() {
            if *v != 0 || entry.get(i) == Some(&0) {
                if i >= entry.len() {
                    entry.resize(i + 1, 0);
                }
                if *v != 0 {
                    entry[i] = *v;
                }
            }
        }
    }
    for name in &kernel.live_out {
        if let Some(v) = sim.feedback_value(name) {
            result.scalars.insert(format!("{name}_final"), v);
            result.scalars.insert(name.clone(), v);
        }
    }
    Ok(result)
}

fn build_lane(
    kernel: &Kernel,
    w: &WindowSpec,
    data: &[i64],
    port_index: &HashMap<&str, usize>,
) -> Result<InputLane, SystemError> {
    let ndim = w
        .reads
        .first()
        .map(|r| r.index.len())
        .ok_or_else(|| SystemError(format!("window `{}` has no reads", w.array)))?;
    let extent = w.extent();

    // Loop dimension for each window dimension.
    let mut scans = Vec::new();
    let mut min_off = Vec::new();
    for (d, ext) in extent.iter().enumerate().take(ndim) {
        let var = w.reads[0].index[d]
            .var
            .clone()
            .ok_or_else(|| SystemError("constant window dimensions unsupported".into()))?;
        let ld = kernel
            .dims
            .iter()
            .find(|l| l.var == var)
            .ok_or_else(|| SystemError(format!("window index var `{var}` unknown")))?;
        let mo = w.reads.iter().map(|r| r.index[d].offset).min().unwrap_or(0);
        min_off.push(mo);
        scans.push(DimScan {
            start: ld.start + mo,
            bound: ld.bound + mo,
            step: ld.step,
            extent: *ext,
        });
    }

    // Port map: window slot (row-major in the extent box) → dp port.
    let mut port_map = Vec::new();
    for r in &w.reads {
        let slot = match ndim {
            1 => (r.index[0].offset - min_off[0]) as usize,
            2 => {
                let dr = (r.index[0].offset - min_off[0]) as usize;
                let dc = (r.index[1].offset - min_off[1]) as usize;
                dr * extent[1] + dc
            }
            n => return Err(SystemError(format!("{n}-dimensional windows unsupported"))),
        };
        let port = *port_index
            .get(r.scalar.as_str())
            .ok_or_else(|| SystemError(format!("no input port for `{}`", r.scalar)))?;
        port_map.push((slot, port));
    }

    let (addrs, buffer): (Box<dyn Iterator<Item = i64>>, AnyBuffer) = match ndim {
        1 => (
            Box::new(AddressGen1d::new(scans[0])),
            AnyBuffer::One(SmartBuffer1d::new(
                extent[0],
                scans[0].step as usize,
                scans[0].start,
            )),
        ),
        2 => {
            let row_width = if w.dims.len() == 2 { w.dims[1] } else { 1 };
            (
                Box::new(AddressGen2d::new(scans[0], scans[1], row_width)),
                AnyBuffer::Two(SmartBuffer2d::new(
                    extent[0],
                    extent[1],
                    scans[0].step as usize,
                    scans[1].step as usize,
                    scans[0].start,
                    scans[0].bound,
                    scans[1].start,
                    scans[1].bound,
                    row_width,
                )),
            )
        }
        n => return Err(SystemError(format!("{n}-dimensional windows unsupported"))),
    };

    Ok(InputLane {
        bram: BramModel::new(data.to_vec()),
        addrs,
        buffer,
        port_map,
        staged: None,
    })
}
