//! Word-level netlist cells.
//!
//! The RTL level below the data-path graph: every operation becomes a
//! combinational cell, every stage crossing a register, every lookup table
//! a ROM. This is the representation the synthesis estimator
//! (`roccc-synth`) maps to Virtex-II resources and the cycle-accurate
//! simulator executes.

use roccc_cparse::inline_vec::InlineVec;
use roccc_cparse::intern::Symbol;
use roccc_cparse::types::IntType;
use roccc_suifvm::ir::{LutTable, Opcode};
use roccc_suifvm::range::ValueRange;
use std::fmt;

/// Identifies a cell (and its output net).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Inline source-net list of a combinational cell (at most three).
pub type CellSrcs = InlineVec<CellId, 3>;

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a cell does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellKind {
    /// Constant driver.
    Const(i64),
    /// External input port `k` (combinational from the environment).
    Input(usize),
    /// Combinational operation (`Opcode` subset: arithmetic/logic/mux/LUT).
    Op {
        /// Operation.
        op: Opcode,
        /// Input nets (inline; at most three).
        srcs: CellSrcs,
        /// ROM index for `Lut`.
        imm: i64,
    },
    /// Clocked register. `d` may be connected after creation
    /// ([`Netlist::connect_reg`]) to close feedback cycles.
    Reg {
        /// Data input net.
        d: Option<CellId>,
        /// Power-on value.
        init: i64,
        /// When `Some(s)`, the register only latches on cycles where a
        /// valid iteration occupies pipeline stage `s` (feedback latches).
        /// `None` latches every cycle (pipeline balancing registers).
        stage_gate: Option<u32>,
    },
}

/// A cell with its output net type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Behaviour.
    pub kind: CellKind,
    /// Output width in bits.
    pub width: u8,
    /// Signed interpretation of the output net.
    pub signed: bool,
}

impl Cell {
    /// The output net's type.
    pub fn ty(&self) -> IntType {
        IntType {
            signed: self.signed,
            bits: self.width.max(1),
        }
    }
}

/// A word-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// All cells; combinational sources of a cell always precede it.
    pub cells: Vec<Cell>,
    /// Input ports `(name, type)`; `CellKind::Input(k)` refers to these.
    pub inputs: Vec<(Symbol, IntType)>,
    /// Output ports `(name, type, net)`.
    pub outputs: Vec<(Symbol, IntType, CellId)>,
    /// ROMs referenced by `Lut` cells.
    pub roms: Vec<LutTable>,
    /// Pipeline depth in clock cycles from input to output port.
    pub latency: u32,
    /// Initiation interval: valid iterations may only be presented on
    /// cycles that are multiples of `ii` (1 = every cycle, the latch
    /// pipeline; >1 = a modulo schedule sharing multiplier blocks across
    /// congruence classes). Simulators reject misaligned launches.
    pub ii: u32,
    /// Nets that are feedback registers, with their slot names.
    pub feedback_regs: Vec<(Symbol, CellId)>,
    /// Wrap-free proven value ranges, parallel to `cells`: `ranges[i]` is
    /// `Some(r)` only when cell `i`'s wire provably carries the exact
    /// (pre-wrap) value of the computation it implements and that value
    /// lies in `r`. Stamped by `netlist_from_datapath` from the data
    /// path's range annotations; checked by `W005` in `roccc-verify`.
    pub ranges: Vec<Option<ValueRange>>,
}

impl Netlist {
    /// Creates an empty netlist (initiation interval 1).
    pub fn new() -> Self {
        Netlist {
            ii: 1,
            ..Self::default()
        }
    }

    /// The effective initiation interval (treats an unset 0 as 1).
    pub fn effective_ii(&self) -> u64 {
        u64::from(self.ii.max(1))
    }

    /// Adds a cell, returning its id.
    pub fn add(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        self.ranges.push(None);
        id
    }

    /// Annotates `c` with a wrap-free proven range.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn set_range(&mut self, c: CellId, r: ValueRange) {
        self.ranges[c.0 as usize] = Some(r);
    }

    /// The wrap-free proven range of `c`, if annotated.
    pub fn range_of(&self, c: CellId) -> Option<&ValueRange> {
        self.ranges.get(c.0 as usize).and_then(|o| o.as_ref())
    }

    /// Adds a constant.
    pub fn constant(&mut self, value: i64) -> CellId {
        let ty = IntType {
            signed: value < 0,
            bits: IntType::width_for(value, value < 0),
        };
        self.add(Cell {
            kind: CellKind::Const(value),
            width: ty.bits,
            signed: ty.signed,
        })
    }

    /// Connects a register's data input after the fact.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register cell.
    pub fn connect_reg(&mut self, reg: CellId, d: CellId) {
        match &mut self.cells[reg.0 as usize].kind {
            CellKind::Reg { d: slot, .. } => *slot = Some(d),
            other => panic!("connect_reg on non-register cell {other:?}"),
        }
    }

    /// Census: `(combinational ops, registers, constants+inputs)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut comb = 0;
        let mut regs = 0;
        let mut other = 0;
        for c in &self.cells {
            match c.kind {
                CellKind::Op { .. } => comb += 1,
                CellKind::Reg { .. } => regs += 1,
                _ => other += 1,
            }
        }
        (comb, regs, other)
    }

    /// Total register bits.
    pub fn register_bits(&self) -> u64 {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::Reg { .. }))
            .map(|c| c.width as u64)
            .sum()
    }

    /// Structural check: combinational sources precede their users, all
    /// registers are connected, and referenced ROMs/inputs exist.
    pub fn verify(&self) -> Result<(), String> {
        for (i, c) in self.cells.iter().enumerate() {
            match &c.kind {
                CellKind::Op { op, srcs, imm } => {
                    for s in srcs {
                        if s.0 as usize >= self.cells.len() {
                            return Err(format!("cell n{i} uses missing cell {s}"));
                        }
                        if s.0 as usize >= i
                            && !matches!(self.cells[s.0 as usize].kind, CellKind::Reg { .. })
                        {
                            return Err(format!("cell n{i} uses later combinational cell {s}"));
                        }
                    }
                    if *op == Opcode::Lut && (*imm as usize) >= self.roms.len() {
                        return Err(format!("cell n{i} references missing ROM {imm}"));
                    }
                }
                CellKind::Reg { d, .. } => {
                    if d.is_none() {
                        return Err(format!("register n{i} has no data input"));
                    }
                }
                CellKind::Input(k) => {
                    if *k >= self.inputs.len() {
                        return Err(format!("cell n{i} reads missing input {k}"));
                    }
                }
                CellKind::Const(_) => {}
            }
        }
        for (name, _, net) in &self.outputs {
            if net.0 as usize >= self.cells.len() {
                return Err(format!("output {name} driven by missing net {net}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_census() {
        let mut nl = Netlist::new();
        nl.inputs.push(("a".into(), IntType::unsigned(8)));
        let a = nl.add(Cell {
            kind: CellKind::Input(0),
            width: 8,
            signed: false,
        });
        let one = nl.constant(1);
        let sum = nl.add(Cell {
            kind: CellKind::Op {
                op: Opcode::Add,
                srcs: [a, one].into(),
                imm: 0,
            },
            width: 9,
            signed: false,
        });
        let reg = nl.add(Cell {
            kind: CellKind::Reg {
                d: Some(sum),
                init: 0,
                stage_gate: None,
            },
            width: 9,
            signed: false,
        });
        nl.outputs.push(("o".into(), IntType::unsigned(9), reg));
        nl.verify().unwrap();
        assert_eq!(nl.census(), (1, 1, 2));
        assert_eq!(nl.register_bits(), 9);
    }

    #[test]
    fn verify_catches_unconnected_reg() {
        let mut nl = Netlist::new();
        nl.add(Cell {
            kind: CellKind::Reg {
                d: None,
                init: 0,
                stage_gate: None,
            },
            width: 4,
            signed: false,
        });
        assert!(nl.verify().is_err());
    }

    #[test]
    fn verify_allows_backward_reg_reference() {
        // Feedback: reg → add → reg.d
        let mut nl = Netlist::new();
        nl.inputs.push(("x".into(), IntType::unsigned(8)));
        let reg = nl.add(Cell {
            kind: CellKind::Reg {
                d: None,
                init: 0,
                stage_gate: Some(0),
            },
            width: 8,
            signed: false,
        });
        let x = nl.add(Cell {
            kind: CellKind::Input(0),
            width: 8,
            signed: false,
        });
        let sum = nl.add(Cell {
            kind: CellKind::Op {
                op: Opcode::Add,
                srcs: [reg, x].into(),
                imm: 0,
            },
            width: 8,
            signed: false,
        });
        nl.connect_reg(reg, sum);
        nl.verify().unwrap();
    }

    #[test]
    fn verify_catches_forward_comb_reference() {
        let mut nl = Netlist::new();
        nl.inputs.push(("x".into(), IntType::unsigned(8)));
        let bogus = CellId(5);
        nl.add(Cell {
            kind: CellKind::Op {
                op: Opcode::Not,
                srcs: [bogus].into(),
                imm: 0,
            },
            width: 8,
            signed: false,
        });
        assert!(nl.verify().is_err());
    }
}
