//! Loop strip-mining.
//!
//! One of ROCCC's "FPGA-specific optimizations" (§2): a counted loop is
//! split into an outer loop advancing by `strip` and an inner loop covering
//! one strip. On the FPGA the inner loop is then typically fully unrolled so
//! that each outer iteration feeds a wide data-path fed from one smart-buffer
//! line, matching the strip size to the memory bus width.

use crate::loops::{recognize, CanonLoop};
use roccc_cparse::ast::*;
use roccc_cparse::span::Span;

/// Strip-mines every *innermost* canonical loop in `f` by `strip` and
/// fully unrolls the strip, the composition the paper actually feeds the
/// data-path builder: "the inner loop is then typically fully unrolled so
/// that each outer iteration feeds a wide data-path fed from one
/// smart-buffer line". The nested form produced by [`stripmine_function`]
/// has a symbolic-start inner loop that kernel extraction cannot window,
/// so this pass flattens the strip immediately: the result is a single
/// loop stepping by `strip * step` whose body computes one whole strip
/// (algebraically the same expansion as partial unrolling, which the
/// flattening reuses — what distinguishes a strip-mined configuration is
/// that the strip width is matched to the smart-buffer line / memory bus
/// width downstream).
///
/// Loops that are not innermost, not canonical, or shorter than one strip
/// are left untouched.
pub fn stripmine_unroll_function(f: &Function, strip: u64) -> Function {
    Function {
        body: smu_block(&f.body, strip),
        ..f.clone()
    }
}

/// [`stripmine_unroll_function`] behind the loop-carried dependence gate:
/// refuses (diagnostic `L011-stripmine-carried-dep`) when `crate::deps`
/// proves an innermost-loop carried dependence at distance below the
/// strip width — the flattened strip would compute dependent iterations
/// as one parallel body.
pub fn stripmine_unroll_function_checked(
    f: &Function,
    strip: u64,
) -> roccc_cparse::error::CResult<Function> {
    if let Some(dep) = crate::deps::find_blocking_dep(f, strip, true) {
        return Err(roccc_cparse::error::CError::new(
            roccc_cparse::error::Stage::Sema,
            dep.span,
            format!(
                "L011-stripmine-carried-dep: cannot strip-mine by {strip}: {}",
                dep.describe()
            ),
        ));
    }
    Ok(stripmine_unroll_function(f, strip))
}

fn smu_block(b: &Block, strip: u64) -> Block {
    Block {
        stmts: b.stmts.iter().map(|s| smu_stmt(s, strip)).collect(),
        span: b.span,
    }
}

fn contains_loop(b: &Block) -> bool {
    b.stmts.iter().any(|s| match &s.kind {
        StmtKind::For { .. } | StmtKind::While { .. } => true,
        StmtKind::If {
            then_blk, else_blk, ..
        } => contains_loop(then_blk) || else_blk.as_ref().is_some_and(contains_loop),
        StmtKind::Block(inner) => contains_loop(inner),
        _ => false,
    })
}

fn smu_stmt(s: &Stmt, strip: u64) -> Stmt {
    match &s.kind {
        StmtKind::For { .. } => {
            if let Some(l) = recognize(s) {
                let body = smu_block(&l.body, strip);
                if contains_loop(&body) {
                    // Not innermost: keep the header, recurse only.
                    if body == l.body {
                        s.clone()
                    } else {
                        CanonLoop { body, ..l }.to_stmt()
                    }
                } else {
                    let l = CanonLoop { body, ..l };
                    match stripmine_unroll(&l, strip) {
                        Some(flattened) => flattened,
                        // Too short for one strip: leave the loop untouched.
                        None => s.clone(),
                    }
                }
            } else {
                s.clone()
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => Stmt {
            kind: StmtKind::If {
                cond: cond.clone(),
                then_blk: smu_block(then_blk, strip),
                else_blk: else_blk.as_ref().map(|b| smu_block(b, strip)),
            },
            span: s.span,
        },
        StmtKind::Block(b) => Stmt {
            kind: StmtKind::Block(smu_block(b, strip)),
            span: s.span,
        },
        _ => s.clone(),
    }
}

/// Strip-mines one canonical loop and fully unrolls the strip (see
/// [`stripmine_unroll_function`]). `None` when the trip count is unknown
/// or smaller than the strip, or `strip < 2`.
pub fn stripmine_unroll(l: &CanonLoop, strip: u64) -> Option<Stmt> {
    let trips = l.trip_count()?;
    if strip < 2 || trips < strip {
        return None;
    }
    // stripmine(l, strip) followed by full unrolling of the inner loop
    // yields exactly the partial-unroll expansion (strip copies offset by
    // 0, step, …, with the same straight-line remainder), so delegate.
    Some(crate::unroll::partially_unroll(l, strip))
}

/// Strip-mines every canonical loop in `f` by `strip`.
pub fn stripmine_function(f: &Function, strip: u64) -> Function {
    Function {
        body: stripmine_block(&f.body, strip),
        ..f.clone()
    }
}

fn stripmine_block(b: &Block, strip: u64) -> Block {
    Block {
        stmts: b.stmts.iter().map(|s| stripmine_stmt(s, strip)).collect(),
        span: b.span,
    }
}

fn stripmine_stmt(s: &Stmt, strip: u64) -> Stmt {
    match &s.kind {
        StmtKind::For { .. } => {
            if let Some(l) = recognize(s) {
                stripmine(&l, strip).unwrap_or_else(|| s.clone())
            } else {
                s.clone()
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => Stmt {
            kind: StmtKind::If {
                cond: cond.clone(),
                then_blk: stripmine_block(then_blk, strip),
                else_blk: else_blk.as_ref().map(|b| stripmine_block(b, strip)),
            },
            span: s.span,
        },
        StmtKind::Block(b) => Stmt {
            kind: StmtKind::Block(stripmine_block(b, strip)),
            span: s.span,
        },
        _ => s.clone(),
    }
}

/// Strip-mines a canonical loop, returning
/// `for (v_strip = start; v_strip < bound; v_strip += strip*step)
///    for (v = v_strip; v < min(v_strip + strip*step, bound); v += step) body`.
///
/// Returns `None` when the trip count is unknown, or smaller than the strip
/// (nothing to gain). When the trip count divides evenly the inner bound is
/// the simple `v_strip + strip*step`; otherwise the inner loop keeps the
/// original global bound as a second conjunct — represented by clamping the
/// outer bound and emitting a remainder loop.
pub fn stripmine(l: &CanonLoop, strip: u64) -> Option<Stmt> {
    let trips = l.trip_count()?;
    if strip < 2 || trips < strip {
        return None;
    }
    let sp = l.span;
    let outer_var = format!("{}_strip", l.var);
    let main_trips = trips / strip * strip;
    let chunk = strip as i64 * l.step;

    // Inner loop: `for (v = outer; v < outer + chunk; v += step) body`.
    let inner = Stmt {
        kind: StmtKind::For {
            init: Some(Box::new(Stmt {
                kind: StmtKind::Assign {
                    target: LValue::Var(l.var.clone()),
                    op: None,
                    value: Expr::var(outer_var.clone(), sp),
                },
                span: sp,
            })),
            cond: Some(Expr {
                kind: ExprKind::Binary {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::var(l.var.clone(), sp)),
                    rhs: Box::new(Expr {
                        kind: ExprKind::Binary {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::var(outer_var.clone(), sp)),
                            rhs: Box::new(Expr::int(chunk, sp)),
                        },
                        span: sp,
                    }),
                },
                span: sp,
            }),
            step: Some(Box::new(Stmt {
                kind: StmtKind::Assign {
                    target: LValue::Var(l.var.clone()),
                    op: Some(BinOp::Add),
                    value: Expr::int(l.step, sp),
                },
                span: sp,
            })),
            body: l.body.clone(),
        },
        span: sp,
    };

    // Outer loop over strips.
    let outer_bound = l.start + main_trips as i64 * l.step;
    let outer = Stmt {
        kind: StmtKind::For {
            init: Some(Box::new(Stmt {
                kind: StmtKind::Decl {
                    name: outer_var.clone(),
                    ty: roccc_cparse::types::CType::Int(roccc_cparse::types::IntType::int()),
                    init: Some(Expr::int(l.start, sp)),
                },
                span: sp,
            })),
            cond: Some(Expr {
                kind: ExprKind::Binary {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::var(outer_var.clone(), sp)),
                    rhs: Box::new(Expr::int(outer_bound, sp)),
                },
                span: sp,
            }),
            step: Some(Box::new(Stmt {
                kind: StmtKind::Assign {
                    target: LValue::Var(outer_var),
                    op: Some(BinOp::Add),
                    value: Expr::int(chunk, sp),
                },
                span: sp,
            })),
            body: Block {
                stmts: vec![inner],
                span: sp,
            },
        },
        span: sp,
    };

    if main_trips == trips {
        return Some(outer);
    }
    // Remainder loop for the leftover iterations.
    let remainder = CanonLoop {
        start: outer_bound,
        ..l.clone()
    }
    .to_stmt();
    Some(Stmt {
        kind: StmtKind::Block(Block {
            stmts: vec![outer, remainder],
            span: sp,
        }),
        span: Span::dummy(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::interp::Interpreter;
    use roccc_cparse::parser::parse;
    use std::collections::HashMap;

    fn assert_equivalent(src: &str, func: &str, strip: u64) {
        let prog = parse(src).unwrap();
        let f = prog.function(func).unwrap();
        let mined = stripmine_function(f, strip);
        let mut prog2 = prog.clone();
        for item in &mut prog2.items {
            if let Item::Function(g) = item {
                if g.name == func {
                    *g = mined.clone();
                }
            }
        }
        let proto: HashMap<String, Vec<i64>> = f
            .params
            .iter()
            .filter_map(|p| match &p.ty {
                roccc_cparse::types::CType::Array(_, dims) => {
                    let n: usize = dims.iter().product();
                    Some((p.name.clone(), (0..n as i64).map(|x| 7 - x).collect()))
                }
                _ => None,
            })
            .collect();
        let mut a1 = proto.clone();
        let mut a2 = proto;
        let o1 = Interpreter::new(&prog).call(func, &[], &mut a1).unwrap();
        let o2 = Interpreter::new(&prog2).call(func, &[], &mut a2).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn exact_strips_preserve_semantics() {
        let src = "void f(int A[16], int B[16]) { int i;
          for (i = 0; i < 16; i++) { B[i] = A[i] * 3 - 1; } }";
        assert_equivalent(src, "f", 4);
        assert_equivalent(src, "f", 8);
        assert_equivalent(src, "f", 16);
    }

    #[test]
    fn remainder_strips_preserve_semantics() {
        let src = "void f(int A[13], int B[13]) { int i;
          for (i = 0; i < 13; i++) { B[i] = A[i] + 5; } }";
        assert_equivalent(src, "f", 4);
        assert_equivalent(src, "f", 5);
    }

    #[test]
    fn produces_nested_loops() {
        let src = "void f(int A[16]) { int i; for (i = 0; i < 16; i++) { A[i] = 0; } }";
        let prog = parse(src).unwrap();
        let mined = stripmine_function(prog.function("f").unwrap(), 4);
        // Outer for → body contains inner for.
        let outer = mined
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .expect("outer loop");
        match &outer.kind {
            StmtKind::For { body, .. } => {
                assert!(matches!(body.stmts[0].kind, StmtKind::For { .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn small_loops_are_left_alone() {
        let src = "void f(int A[3]) { int i; for (i = 0; i < 3; i++) { A[i] = 0; } }";
        let prog = parse(src).unwrap();
        let f = prog.function("f").unwrap();
        let mined = stripmine_function(f, 8);
        assert_eq!(&mined.body, &f.body);
    }

    #[test]
    fn strided_loops_stripmine() {
        let src = "void f(int A[32], int B[32]) { int i;
          for (i = 0; i < 32; i += 2) { B[i] = A[i] * 2; } }";
        assert_equivalent(src, "f", 4);
    }

    fn assert_smu_equivalent(src: &str, func: &str, strip: u64) {
        let prog = parse(src).unwrap();
        let f = prog.function(func).unwrap();
        let mined = stripmine_unroll_function(f, strip);
        let mut prog2 = prog.clone();
        for item in &mut prog2.items {
            if let Item::Function(g) = item {
                if g.name == func {
                    *g = mined.clone();
                }
            }
        }
        let proto: HashMap<String, Vec<i64>> = f
            .params
            .iter()
            .filter_map(|p| match &p.ty {
                roccc_cparse::types::CType::Array(_, dims) => {
                    let n: usize = dims.iter().product();
                    Some((p.name.clone(), (0..n as i64).map(|x| 7 - x).collect()))
                }
                _ => None,
            })
            .collect();
        let mut a1 = proto.clone();
        let mut a2 = proto;
        let o1 = Interpreter::new(&prog).call(func, &[], &mut a1).unwrap();
        let o2 = Interpreter::new(&prog2).call(func, &[], &mut a2).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn stripmine_unroll_preserves_semantics() {
        let src = "void f(int A[16], int B[16]) { int i;
          for (i = 0; i < 16; i++) { B[i] = A[i] * 3 - 1; } }";
        assert_smu_equivalent(src, "f", 4);
        assert_smu_equivalent(src, "f", 8);
        let rem = "void f(int A[13], int B[13]) { int i;
          for (i = 0; i < 13; i++) { B[i] = A[i] + 5; } }";
        assert_smu_equivalent(rem, "f", 4);
    }

    #[test]
    fn stripmine_unroll_flattens_to_single_loop() {
        let src = "void f(int A[16]) { int i; for (i = 0; i < 16; i++) { A[i] = 0; } }";
        let prog = parse(src).unwrap();
        let mined = stripmine_unroll_function(prog.function("f").unwrap(), 4);
        let outer = mined
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .expect("loop survives");
        match &outer.kind {
            StmtKind::For { body, .. } => {
                assert!(
                    !contains_loop(body),
                    "strip is flattened, no inner loop remains"
                );
                assert_eq!(body.stmts.len(), 4, "one copy per strip element");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn stripmine_unroll_targets_innermost_only() {
        let src = "void f(int A[64]) { int i; int j;
          for (i = 0; i < 8; i++) { for (j = 0; j < 8; j++) { A[i * 8 + j] = i + j; } } }";
        let prog = parse(src).unwrap();
        let mined = stripmine_unroll_function(prog.function("f").unwrap(), 4);
        // Outer loop header intact, inner loop flattened.
        let outer = mined
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .expect("outer loop survives");
        let l = recognize(outer).expect("outer still canonical");
        assert_eq!(l.trip_count(), Some(8));
        assert!(
            !contains_loop(&l.body) || {
                // The flattened inner strip loop is still a loop, but it must
                // be the only depth below the outer header.
                let inner = l
                    .body
                    .stmts
                    .iter()
                    .find(|s| matches!(s.kind, StmtKind::For { .. }))
                    .unwrap();
                match &inner.kind {
                    StmtKind::For { body, .. } => !contains_loop(body),
                    _ => false,
                }
            },
            "inner strip fully flattened below the outer header"
        );
        assert_smu_equivalent(src, "f", 4);
    }

    #[test]
    fn stripmine_unroll_leaves_short_loops_alone() {
        let src = "void f(int A[3]) { int i; for (i = 0; i < 3; i++) { A[i] = 0; } }";
        let prog = parse(src).unwrap();
        let f = prog.function("f").unwrap();
        let mined = stripmine_unroll_function(f, 8);
        assert_eq!(&mined.body, &f.body);
    }
}
