//! Loop unrolling.
//!
//! "Full loop unrolling converts a for-loop with constant bounds into a
//! non-iterative block of code and therefore eliminates the loop
//! controller" (§2). Partial unrolling by a factor duplicates the body and
//! widens the step, exposing instruction-level parallelism to the data-path
//! builder; the unroll factor is normally chosen under an area budget
//! supplied by the fast estimator (see `roccc-synth`).

use crate::loops::{recognize, CanonLoop};
use crate::subst::subst_var_stmt;
use roccc_cparse::ast::*;

/// Maximum trip count that full unrolling will expand, as a safety valve.
pub const FULL_UNROLL_LIMIT: u64 = 4096;

/// Fully unrolls every constant-bound loop in the function (recursively,
/// innermost first). Loops that are not canonical or exceed
/// [`FULL_UNROLL_LIMIT`] iterations are left in place.
pub fn fully_unroll_function(f: &Function) -> Function {
    Function {
        body: unroll_block(&f.body, None),
        ..f.clone()
    }
}

/// Partially unrolls every canonical loop in the function by `factor`.
pub fn partially_unroll_function(f: &Function, factor: u64) -> Function {
    Function {
        body: unroll_block(&f.body, Some(factor.max(1))),
        ..f.clone()
    }
}

/// [`partially_unroll_function`] behind the loop-carried dependence gate:
/// refuses (diagnostic `L010-unroll-carried-dep`) when `crate::deps`
/// proves a carried dependence at distance below the factor, because the
/// duplicated bodies would then touch the same array element inside one
/// parallel iteration of the generated hardware.
pub fn partially_unroll_function_checked(
    f: &Function,
    factor: u64,
) -> roccc_cparse::error::CResult<Function> {
    if let Some(dep) = crate::deps::find_blocking_dep(f, factor, false) {
        return Err(roccc_cparse::error::CError::new(
            roccc_cparse::error::Stage::Sema,
            dep.span,
            format!(
                "L010-unroll-carried-dep: cannot unroll by {factor}: {}",
                dep.describe()
            ),
        ));
    }
    Ok(partially_unroll_function(f, factor))
}

fn unroll_block(b: &Block, factor: Option<u64>) -> Block {
    let mut stmts = Vec::new();
    for s in &b.stmts {
        stmts.extend(unroll_stmt(s, factor));
    }
    Block {
        stmts,
        span: b.span,
    }
}

fn unroll_stmt(s: &Stmt, factor: Option<u64>) -> Vec<Stmt> {
    match &s.kind {
        StmtKind::For { .. } => {
            if let Some(l) = recognize(s) {
                // Unroll inner loops first so nests fully flatten.
                let inner_unrolled = CanonLoop {
                    body: unroll_block(&l.body, factor),
                    ..l
                };
                match factor {
                    None => fully_unroll(&inner_unrolled)
                        .unwrap_or_else(|| vec![inner_unrolled.to_stmt()]),
                    Some(k) => vec![partially_unroll(&inner_unrolled, k)],
                }
            } else {
                vec![rebuild_with_unrolled_children(s, factor)]
            }
        }
        _ => vec![rebuild_with_unrolled_children(s, factor)],
    }
}

fn rebuild_with_unrolled_children(s: &Stmt, factor: Option<u64>) -> Stmt {
    let kind = match &s.kind {
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => StmtKind::If {
            cond: cond.clone(),
            then_blk: unroll_block(then_blk, factor),
            else_blk: else_blk.as_ref().map(|b| unroll_block(b, factor)),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: cond.clone(),
            body: unroll_block(body, factor),
        },
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => StmtKind::For {
            init: init.clone(),
            cond: cond.clone(),
            step: step.clone(),
            body: unroll_block(body, factor),
        },
        StmtKind::Block(b) => StmtKind::Block(unroll_block(b, factor)),
        other => other.clone(),
    };
    Stmt { kind, span: s.span }
}

/// Fully expands a canonical loop into straight-line statements, or `None`
/// when the trip count is unknown or too large.
///
/// The induction variable is substituted as a literal constant in each
/// copy, so downstream constant folding collapses all index arithmetic —
/// this is what turns the paper's DCT into a branch-free 8-outputs-per-cycle
/// data-path.
pub fn fully_unroll(l: &CanonLoop) -> Option<Vec<Stmt>> {
    let trips = l.trip_count()?;
    if trips > FULL_UNROLL_LIMIT {
        return None;
    }
    let mut out = Vec::new();
    for k in 0..trips {
        let value = Expr::int(l.iter_value(k), l.span);
        for stmt in &l.body.stmts {
            out.push(subst_var_stmt(stmt, &l.var, &value));
        }
    }
    Some(out)
}

/// Unrolls a canonical loop by `factor`: the body is duplicated `factor`
/// times with the induction variable offset by `0, step, 2*step, …`, and the
/// loop step becomes `factor * step`. A remainder loop is appended when the
/// trip count is not divisible by the factor.
pub fn partially_unroll(l: &CanonLoop, factor: u64) -> Stmt {
    let factor = factor.max(1);
    let trips = l.trip_count().unwrap_or(0);
    if factor <= 1 || trips == 0 {
        return l.to_stmt();
    }
    let main_trips = trips / factor * factor;
    let sp = l.span;

    let mut body_stmts = Vec::new();
    for j in 0..factor {
        let offset = Expr {
            kind: ExprKind::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::var(l.var.clone(), sp)),
                rhs: Box::new(Expr::int(l.step * j as i64, sp)),
            },
            span: sp,
        };
        for stmt in &l.body.stmts {
            body_stmts.push(subst_var_stmt(stmt, &l.var, &offset));
        }
    }

    let main_loop = CanonLoop {
        bound: l.start + main_trips as i64 * l.step,
        cmp: BinOp::Lt,
        step: l.step * factor as i64,
        body: Block {
            stmts: body_stmts,
            span: l.body.span,
        },
        decl_ty: l.decl_ty.clone(),
        ..l.clone()
    }
    .to_stmt();

    if main_trips == trips {
        main_loop
    } else {
        // Remainder iterations as straight-line code.
        let mut stmts = vec![main_loop];
        for k in main_trips..trips {
            let value = Expr::int(l.iter_value(k), sp);
            for stmt in &l.body.stmts {
                stmts.push(subst_var_stmt(stmt, &l.var, &value));
            }
        }
        Stmt {
            kind: StmtKind::Block(Block { stmts, span: sp }),
            span: sp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold_function;
    use roccc_cparse::interp::Interpreter;
    use roccc_cparse::parser::parse;
    use std::collections::HashMap;

    /// Runs `func` on both the original and transformed program and asserts
    /// identical array/output results.
    fn assert_equivalent(src: &str, func: &str, transform: impl Fn(&Function) -> Function) {
        let prog = parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function(func).unwrap();
        let transformed = transform(f);
        let mut prog2 = prog.clone();
        for item in &mut prog2.items {
            if let Item::Function(g) = item {
                if g.name == func {
                    *g = transformed.clone();
                }
            }
        }

        let arrays_proto: HashMap<String, Vec<i64>> = f
            .params
            .iter()
            .filter_map(|p| match &p.ty {
                roccc_cparse::types::CType::Array(_, dims) => {
                    let n: usize = dims.iter().product();
                    Some((
                        p.name.clone(),
                        (0..n as i64).map(|x| x * 3 % 17 - 5).collect(),
                    ))
                }
                _ => None,
            })
            .collect();

        let mut a1 = arrays_proto.clone();
        let mut a2 = arrays_proto;
        let o1 = Interpreter::new(&prog).call(func, &[], &mut a1).unwrap();
        let o2 = Interpreter::new(&prog2).call(func, &[], &mut a2).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn full_unroll_preserves_fir_semantics() {
        let src = "void fir(int A[21], int C[17]) { int i;
          for (i = 0; i < 17; i = i + 1) {
            C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4]; } }";
        assert_equivalent(src, "fir", fully_unroll_function);
    }

    #[test]
    fn full_unroll_eliminates_loop() {
        let src = "void f(int A[4]) { int i; for (i = 0; i < 4; i++) { A[i] = i * 2; } }";
        let prog = parse(src).unwrap();
        let unrolled = fully_unroll_function(prog.function("f").unwrap());
        let has_for = unrolled
            .body
            .stmts
            .iter()
            .any(|s| matches!(s.kind, StmtKind::For { .. }));
        assert!(!has_for, "loop should be gone: {}", unrolled.to_c());
        // After folding, indices are literals.
        let folded = fold_function(&unrolled);
        assert!(folded.to_c().contains("A[3]"));
    }

    #[test]
    fn full_unroll_flattens_nests() {
        let src = "void f(int A[2][3]) { int i; int j;
          for (i = 0; i < 2; i++) { for (j = 0; j < 3; j++) { A[i][j] = i + j; } } }";
        let prog = parse(src).unwrap();
        let unrolled = fully_unroll_function(prog.function("f").unwrap());
        let has_for = format!("{unrolled:?}").contains("For");
        assert!(!has_for);
        assert_equivalent(src, "f", fully_unroll_function);
    }

    #[test]
    fn partial_unroll_by_2_and_4_preserve_semantics() {
        let src = "void f(int A[16], int B[16]) { int i;
          for (i = 0; i < 16; i++) { B[i] = A[i] * 2 + 1; } }";
        assert_equivalent(src, "f", |f| partially_unroll_function(f, 2));
        assert_equivalent(src, "f", |f| partially_unroll_function(f, 4));
    }

    #[test]
    fn partial_unroll_with_remainder() {
        let src = "void f(int A[10], int B[10]) { int i;
          for (i = 0; i < 10; i++) { B[i] = A[i] - 3; } }";
        assert_equivalent(src, "f", |f| partially_unroll_function(f, 4));
        assert_equivalent(src, "f", |f| partially_unroll_function(f, 3));
        assert_equivalent(src, "f", |f| partially_unroll_function(f, 7));
    }

    #[test]
    fn partial_unroll_widens_step() {
        let src = "void f(int A[16]) { int i; for (i = 0; i < 16; i++) { A[i] = 1; } }";
        let prog = parse(src).unwrap();
        let unrolled = partially_unroll_function(prog.function("f").unwrap(), 4);
        let l = unrolled
            .body
            .stmts
            .iter()
            .find_map(crate::loops::recognize)
            .unwrap();
        assert_eq!(l.step, 4);
        assert_eq!(l.body.stmts.len(), 4);
    }

    #[test]
    fn unroll_limit_leaves_huge_loops() {
        let src = "void f(int* o) { int i; int s = 0;
          for (i = 0; i < 100000; i++) { s = s + 1; } *o = s; }";
        let prog = parse(src).unwrap();
        let unrolled = fully_unroll_function(prog.function("f").unwrap());
        let has_for = unrolled
            .body
            .stmts
            .iter()
            .any(|s| matches!(s.kind, StmtKind::For { .. }));
        assert!(has_for);
    }

    #[test]
    fn accumulator_unrolls_correctly() {
        let src = "void acc(int A[32], int* out) { int sum = 0; int i;
          for (i = 0; i < 32; i++) { sum = sum + A[i]; } *out = sum; }";
        assert_equivalent(src, "acc", fully_unroll_function);
        assert_equivalent(src, "acc", |f| partially_unroll_function(f, 8));
    }
}
