//! Kernel description produced by the front end.
//!
//! A [`Kernel`] is everything the rest of the compiler needs to build
//! hardware for one loop nest:
//!
//! * the **data-path function** (Figure 3 (c) / Figure 4 (c) in the paper) —
//!   pure scalar computation with window scalars in, `Tmp` scalars out, and
//!   `ROCCC_load_prev`/`ROCCC_store2next` intrinsics marking feedback;
//! * the **window specifications** consumed by the smart-buffer generator
//!   (`roccc-buffers`);
//! * the **loop dimensions** consumed by the address generators and the
//!   higher-level controller;
//! * the **feedback variables** that become `LPR`/`SNX` latches.

use roccc_cparse::ast::Function;
use roccc_cparse::types::IntType;
use std::fmt;

/// One dimension of the loop nest (outermost first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDim {
    /// Induction variable name.
    pub var: String,
    /// First value.
    pub start: i64,
    /// Exclusive bound (normalized to `<`).
    pub bound: i64,
    /// Step per iteration.
    pub step: i64,
    /// Total iterations.
    pub trip: u64,
}

/// An affine array index in one dimension: `var + offset`, or a constant
/// when `var` is `None`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineIndex {
    /// The loop variable, if the index moves with the loop.
    pub var: Option<String>,
    /// Constant offset.
    pub offset: i64,
}

impl fmt::Display for AffineIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.var, self.offset) {
            (Some(v), 0) => write!(f, "{v}"),
            (Some(v), o) if o > 0 => write!(f, "{v}+{o}"),
            (Some(v), o) => write!(f, "{v}{o}"),
            (None, o) => write!(f, "{o}"),
        }
    }
}

/// One element read from an input window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRead {
    /// Name of the scalar the element was replaced with (e.g. `A0`).
    pub scalar: String,
    /// Index expression per dimension.
    pub index: Vec<AffineIndex>,
}

/// The set of elements read from one input array — the sliding window the
/// smart buffer must serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSpec {
    /// Array (function parameter) name.
    pub array: String,
    /// Element type.
    pub elem: IntType,
    /// Array dimensions as declared.
    pub dims: Vec<usize>,
    /// All reads, ordered by ascending offset.
    pub reads: Vec<WindowRead>,
}

impl WindowSpec {
    /// Window extent per dimension: `max(offset) - min(offset) + 1` over the
    /// moving dimensions (1 for constant dimensions).
    pub fn extent(&self) -> Vec<usize> {
        if self.reads.is_empty() {
            return vec![];
        }
        let ndim = self.reads[0].index.len();
        (0..ndim)
            .map(|d| {
                let offs: Vec<i64> = self.reads.iter().map(|r| r.index[d].offset).collect();
                let min = offs.iter().min().copied().unwrap_or(0);
                let max = offs.iter().max().copied().unwrap_or(0);
                (max - min + 1) as usize
            })
            .collect()
    }
}

/// One element written to an output array per iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputWrite {
    /// The scalar holding the computed value (e.g. `Tmp0`).
    pub scalar: String,
    /// Index expression per dimension.
    pub index: Vec<AffineIndex>,
}

/// The writes into one output array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSpec {
    /// Array (function parameter) name.
    pub array: String,
    /// Element type.
    pub elem: IntType,
    /// Array dimensions as declared.
    pub dims: Vec<usize>,
    /// All writes performed per iteration.
    pub writes: Vec<OutputWrite>,
}

/// A loop-carried scalar that becomes an `LPR`/`SNX` feedback latch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackVar {
    /// Variable name (e.g. `sum`).
    pub name: String,
    /// Declared type.
    pub ty: IntType,
    /// Initial value latched before the first iteration.
    pub init: i64,
}

/// A compiled kernel description. See the module docs.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel (original function) name.
    pub name: String,
    /// Loop nest, outermost first. Empty for straight-line kernels
    /// (fully-unrolled loops, pure scalar functions).
    pub dims: Vec<LoopDim>,
    /// Input windows, one per array read.
    pub windows: Vec<WindowSpec>,
    /// Output arrays written.
    pub outputs: Vec<OutputSpec>,
    /// Scalar live-in parameters of the original function that the loop body
    /// reads (become constant input ports of the data-path).
    pub scalar_inputs: Vec<(String, IntType)>,
    /// Scalar outputs delivered through out-pointer parameters each
    /// invocation (straight-line kernels) — `(param, type)`.
    pub scalar_outputs: Vec<(String, IntType)>,
    /// Feedback variables.
    pub feedback: Vec<FeedbackVar>,
    /// Names of feedback variables whose final value is exported after the
    /// loop drains (via a `<name>_final` out-parameter on the data-path).
    pub live_out: Vec<String>,
    /// The extracted data-path function (Figure 3 (c) / 4 (c) shape).
    pub dp_func: Function,
    /// The scalar-replaced loop function (Figure 3 (b) shape) — functionally
    /// identical to the original, used for golden-model checks.
    pub rewritten: Function,
}

impl Kernel {
    /// Per-iteration input port list of the data-path, in order: window
    /// scalars then scalar live-ins.
    pub fn input_ports(&self) -> Vec<(String, IntType)> {
        let mut ports = Vec::new();
        for w in &self.windows {
            for r in &w.reads {
                ports.push((r.scalar.clone(), w.elem));
            }
        }
        ports.extend(self.scalar_inputs.iter().cloned());
        ports
    }

    /// Per-iteration output port list: output scalars then feedback finals.
    pub fn output_ports(&self) -> Vec<(String, IntType)> {
        let mut ports = Vec::new();
        for o in &self.outputs {
            for w in &o.writes {
                ports.push((w.scalar.clone(), o.elem));
            }
        }
        ports.extend(self.scalar_outputs.iter().cloned());
        for name in &self.live_out {
            if let Some(fb) = self.feedback.iter().find(|f| &f.name == name) {
                ports.push((format!("{name}_final"), fb.ty));
            }
        }
        ports
    }

    /// Total iterations of the whole nest.
    pub fn total_iterations(&self) -> u64 {
        self.dims.iter().map(|d| d.trip).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_index_displays() {
        let i = AffineIndex {
            var: Some("i".into()),
            offset: 0,
        };
        assert_eq!(i.to_string(), "i");
        let j = AffineIndex {
            var: Some("i".into()),
            offset: 3,
        };
        assert_eq!(j.to_string(), "i+3");
        let k = AffineIndex {
            var: Some("i".into()),
            offset: -2,
        };
        assert_eq!(k.to_string(), "i-2");
        let c = AffineIndex {
            var: None,
            offset: 7,
        };
        assert_eq!(c.to_string(), "7");
    }

    #[test]
    fn window_extent_spans_offsets() {
        let w = WindowSpec {
            array: "A".into(),
            elem: IntType::int(),
            dims: vec![32],
            reads: (0..5)
                .map(|k| WindowRead {
                    scalar: format!("A{k}"),
                    index: vec![AffineIndex {
                        var: Some("i".into()),
                        offset: k,
                    }],
                })
                .collect(),
        };
        assert_eq!(w.extent(), vec![5]);
    }

    #[test]
    fn window_extent_2d() {
        let mut reads = Vec::new();
        for r in 0..2i64 {
            for c in 0..3i64 {
                reads.push(WindowRead {
                    scalar: format!("A{}", r * 3 + c),
                    index: vec![
                        AffineIndex {
                            var: Some("i".into()),
                            offset: r,
                        },
                        AffineIndex {
                            var: Some("j".into()),
                            offset: c,
                        },
                    ],
                });
            }
        }
        let w = WindowSpec {
            array: "A".into(),
            elem: IntType::int(),
            dims: vec![16, 16],
            reads,
        };
        assert_eq!(w.extent(), vec![2, 3]);
    }
}
