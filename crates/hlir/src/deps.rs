//! Loop-carried memory-dependence analysis.
//!
//! The paper's transform suite (unrolling, strip-mining, scalar
//! replacement) silently assumes that duplicated loop bodies never touch
//! the same array element across iterations. This module makes that
//! assumption checkable: affine subscripts are extracted from the loop
//! nest and classical dependence tests (ZIV, strong/weak-zero SIV with
//! the GCD divisibility condition, a Banerjee-style interval guard)
//! either *prove* two accesses independent or produce a per-dimension
//! iteration-distance vector, falling back to an unconstrained
//! ([`DimDist::Any`]) distance whenever nothing can be proven.
//!
//! Consumers:
//!
//! * the `unroll`/`stripmine` legality gates ([`find_blocking_dep`]) —
//!   refuse body duplication when a carried dependence exists at a
//!   distance smaller than the factor;
//! * the kernel-extraction gate ([`overlapping_writes`]) — refuse output
//!   arrays whose per-iteration writes can collide, because the parallel
//!   write lanes of the generated system cannot preserve program order;
//! * `suifvm::deps` — builds the `DepGraph` MinII artifact from the same
//!   tests over the extracted kernel's windows and outputs.

use crate::extract::affine;
use crate::kernel::{AffineIndex, LoopDim, OutputWrite};
use crate::loops::{recognize, CanonLoop};
use roccc_cparse::ast::*;
use roccc_cparse::span::Span;
use std::collections::HashSet;

/// Iteration distance of a dependence in one loop dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimDist {
    /// The dependent iterations are exactly `d` apart in this dimension
    /// (`src` iteration minus `dst` iteration; 0 = same iteration).
    Eq(i64),
    /// The analysis cannot pin this dimension: any distance is possible.
    Any,
}

impl std::fmt::Display for DimDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimDist::Eq(d) => write!(f, "{d}"),
            DimDist::Any => write!(f, "*"),
        }
    }
}

/// Classical dependence kind, named from the program-order earlier access
/// (`src`) to the later one (`dst`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Write then read (read-after-write).
    Flow,
    /// Read then write (write-after-read).
    Anti,
    /// Write then write (write-after-write).
    Output,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepKind::Flow => write!(f, "flow"),
            DepKind::Anti => write!(f, "anti"),
            DepKind::Output => write!(f, "output"),
        }
    }
}

/// One affine array access inside a loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Array name.
    pub array: String,
    /// Whether the access stores (reads and compound-assign targets also
    /// produce a read access).
    pub write: bool,
    /// Affine subscript per array dimension.
    pub index: Vec<AffineIndex>,
    /// Source location of the access.
    pub span: Span,
}

impl Access {
    /// Renders the subscript list (`i+1`, `j`, `3`, …).
    pub fn index_string(&self) -> String {
        let parts: Vec<String> = self.index.iter().map(|a| a.to_string()).collect();
        parts.join("][")
    }
}

/// Whether any per-dimension distance allows the dependence to cross an
/// iteration boundary of the analyzed loops.
pub fn is_carried(dist: &[DimDist]) -> bool {
    dist.iter().any(|d| !matches!(d, DimDist::Eq(0)))
}

/// Pairwise dependence test over two affine subscript vectors.
///
/// Returns `None` when the accesses are *proven* to never touch the same
/// element, otherwise the per-dimension iteration distances (`dims`
/// order). Subscript variables that are not analyzed dimensions are
/// treated as loop-invariant symbols unless listed in `varying` (e.g. an
/// inner loop's induction variable when analyzing the outer loop), in
/// which case no refutation is attempted for them.
///
/// The tests applied per subscript pair:
/// * **ZIV** — two constants: unequal proves independence;
/// * **strong SIV / GCD** — same dimension variable on both sides: the
///   offset difference must be divisible by the loop step and the
///   resulting iteration distance must be smaller than the trip count,
///   otherwise independent;
/// * **weak-zero SIV** — constant vs. dimension variable: the variable
///   side is pinned to one iteration; independence when that iteration is
///   never executed, an unconstrained distance otherwise;
/// * **Banerjee interval guard** — different variables: disjoint value
///   intervals over the iteration space prove independence.
pub fn dep_test(
    a: &[AffineIndex],
    b: &[AffineIndex],
    dims: &[LoopDim],
    varying: &[String],
) -> Option<Vec<DimDist>> {
    if dims.iter().any(|d| d.trip == 0) {
        return None; // zero-trip loops execute no accesses at all
    }
    let mut dist = vec![DimDist::Any; dims.len()];
    if a.len() != b.len() {
        return Some(dist); // rank mismatch: stay conservative
    }
    for (sa, sb) in a.iter().zip(b.iter()) {
        match (&sa.var, &sb.var) {
            (None, None) => {
                if sa.offset != sb.offset {
                    return None; // ZIV: distinct constants never collide
                }
            }
            (Some(va), Some(vb)) if va == vb => {
                if let Some(k) = dims.iter().position(|d| d.var == *va) {
                    let d = &dims[k];
                    let diff = sa.offset - sb.offset;
                    if diff % d.step != 0 {
                        return None; // GCD: offset gap not a step multiple
                    }
                    let it = diff / d.step;
                    if it.unsigned_abs() >= d.trip {
                        return None; // distance exceeds the iteration space
                    }
                    match dist[k] {
                        DimDist::Any => dist[k] = DimDist::Eq(it),
                        DimDist::Eq(prev) => {
                            if prev != it {
                                return None; // two subscripts disagree
                            }
                        }
                    }
                } else if !varying.iter().any(|v| v == va) && sa.offset != sb.offset {
                    // A loop-invariant symbol holds one value for the whole
                    // analyzed execution, so distinct offsets are distinct
                    // elements. Varying symbols (inner loops) get no such
                    // refutation.
                    return None;
                }
            }
            (Some(v), None) | (None, Some(v)) => {
                let (cv, cc) = if sa.var.is_some() {
                    (sa.offset, sb.offset)
                } else {
                    (sb.offset, sa.offset)
                };
                if let Some(k) = dims.iter().position(|d| d.var == *v) {
                    // Weak-zero SIV: the variable side collides only in the
                    // single iteration where v + cv == cc.
                    let d = &dims[k];
                    let need = cc - cv - d.start;
                    if need % d.step != 0 {
                        return None;
                    }
                    let it = need / d.step;
                    if it < 0 || it as u64 >= d.trip {
                        return None;
                    }
                    // The constant side is iteration-independent, so the
                    // distance in dimension k stays unconstrained.
                }
            }
            (Some(_), Some(_)) => {
                // Different variables: Banerjee-style disjointness of the
                // subscript value intervals over the iteration space.
                if let (Some((alo, ahi)), Some((blo, bhi))) =
                    (value_range(sa, dims), value_range(sb, dims))
                {
                    if ahi < blo || bhi < alo {
                        return None;
                    }
                }
            }
        }
    }
    Some(dist)
}

/// Value interval of one affine subscript over the iteration space, when
/// the variable (if any) is an analyzed dimension.
fn value_range(s: &AffineIndex, dims: &[LoopDim]) -> Option<(i64, i64)> {
    match &s.var {
        None => Some((s.offset, s.offset)),
        Some(v) => {
            let d = dims.iter().find(|d| d.var == *v)?;
            let last = d.start + d.step * (d.trip as i64 - 1);
            Some((d.start.min(last) + s.offset, d.start.max(last) + s.offset))
        }
    }
}

/// Two distinct per-iteration writes of one output array that can touch
/// the same element, at any iteration distance including zero. The system
/// generator materializes one write lane per [`OutputWrite`] and merges
/// the lanes order-insensitively, so *any* collision between distinct
/// writes can silently drop the program-order-later value.
///
/// Returns the indices of the first colliding pair and the distance
/// vector the test produced.
pub fn overlapping_writes(
    writes: &[OutputWrite],
    dims: &[LoopDim],
) -> Option<(usize, usize, Vec<DimDist>)> {
    for i in 0..writes.len() {
        for j in (i + 1)..writes.len() {
            if let Some(d) = dep_test(&writes[i].index, &writes[j].index, dims, &[]) {
                return Some((i, j, d));
            }
        }
    }
    None
}

/// A proven (or conservatively assumed) loop-carried dependence that
/// makes a body-duplicating transform illegal at the requested factor.
#[derive(Debug, Clone)]
pub struct CarriedDep {
    /// The array both accesses touch.
    pub array: String,
    /// Induction variable of the loop carrying the dependence.
    pub loop_var: String,
    /// Proven iteration distance; `None` when the distance is
    /// unconstrained or a subscript was not analyzable (conservative).
    pub distance: Option<u64>,
    /// Source location of the loop.
    pub span: Span,
}

impl CarriedDep {
    /// One-line description used inside the transform diagnostics.
    pub fn describe(&self) -> String {
        match self.distance {
            Some(d) => format!(
                "array `{}` has a loop-carried dependence at distance {d} in `{}`",
                self.array, self.loop_var
            ),
            None => format!(
                "array `{}` has a loop-carried dependence at unknown distance in `{}`",
                self.array, self.loop_var
            ),
        }
    }
}

/// Scans every canonical loop of `f` (innermost loops only when
/// `innermost_only`, matching the strip-miner's reach) for a loop-carried
/// memory dependence that blocks duplicating the body by `factor`:
/// a carried dependence at distance `< factor`, an unconstrained
/// distance, or a non-affine access to a parameter array.
///
/// Returns the first blocking dependence found, `None` when every loop is
/// provably safe to transform. Factors below 2 never block.
pub fn find_blocking_dep(f: &Function, factor: u64, innermost_only: bool) -> Option<CarriedDep> {
    if factor < 2 {
        return None;
    }
    let arrays: HashSet<String> = f
        .params
        .iter()
        .filter_map(|p| match &p.ty {
            roccc_cparse::types::CType::Array(..) => Some(p.name.clone()),
            _ => None,
        })
        .collect();
    if arrays.is_empty() {
        return None;
    }
    let mut enclosing = Vec::new();
    walk_block(&f.body, &arrays, &mut enclosing, factor, innermost_only)
}

fn walk_block(
    b: &Block,
    arrays: &HashSet<String>,
    enclosing: &mut Vec<String>,
    factor: u64,
    innermost_only: bool,
) -> Option<CarriedDep> {
    for s in &b.stmts {
        if let Some(v) = walk_stmt(s, arrays, enclosing, factor, innermost_only) {
            return Some(v);
        }
    }
    None
}

fn walk_stmt(
    s: &Stmt,
    arrays: &HashSet<String>,
    enclosing: &mut Vec<String>,
    factor: u64,
    innermost_only: bool,
) -> Option<CarriedDep> {
    match &s.kind {
        StmtKind::For { body, .. } => {
            if let Some(l) = recognize(s) {
                enclosing.push(l.var.clone());
                let inner = walk_block(&l.body, arrays, enclosing, factor, innermost_only);
                enclosing.pop();
                if let Some(v) = inner {
                    return Some(v);
                }
                if innermost_only && contains_loop(&l.body) {
                    return None; // the strip-miner leaves this header alone
                }
                check_canon_loop(&l, arrays, enclosing, factor)
            } else {
                walk_block(body, arrays, enclosing, factor, innermost_only)
            }
        }
        StmtKind::While { body, .. } => walk_block(body, arrays, enclosing, factor, innermost_only),
        StmtKind::If {
            then_blk, else_blk, ..
        } => walk_block(then_blk, arrays, enclosing, factor, innermost_only).or_else(|| {
            else_blk
                .as_ref()
                .and_then(|e| walk_block(e, arrays, enclosing, factor, innermost_only))
        }),
        StmtKind::Block(b) => walk_block(b, arrays, enclosing, factor, innermost_only),
        _ => None,
    }
}

fn contains_loop(b: &Block) -> bool {
    b.stmts.iter().any(|s| match &s.kind {
        StmtKind::For { .. } | StmtKind::While { .. } => true,
        StmtKind::If {
            then_blk, else_blk, ..
        } => contains_loop(then_blk) || else_blk.as_ref().is_some_and(contains_loop),
        StmtKind::Block(inner) => contains_loop(inner),
        _ => false,
    })
}

/// Induction variables of every nested canonical loop below `b`.
fn nested_loop_vars(b: &Block, out: &mut Vec<String>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::For { body, .. } => {
                if let Some(l) = recognize(s) {
                    out.push(l.var.clone());
                    nested_loop_vars(&l.body, out);
                } else {
                    nested_loop_vars(body, out);
                }
            }
            StmtKind::While { body, .. } => nested_loop_vars(body, out),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                nested_loop_vars(then_blk, out);
                if let Some(e) = else_blk {
                    nested_loop_vars(e, out);
                }
            }
            StmtKind::Block(inner) => nested_loop_vars(inner, out),
            _ => {}
        }
    }
}

/// Checks the dependences carried by one canonical loop against `factor`.
fn check_canon_loop(
    l: &CanonLoop,
    arrays: &HashSet<String>,
    enclosing: &[String],
    factor: u64,
) -> Option<CarriedDep> {
    let Some(trip) = l.trip_count() else {
        return None; // the transforms leave unknown-trip loops untouched
    };
    let dim = LoopDim {
        var: l.var.clone(),
        start: l.start,
        bound: l.start + trip as i64 * l.step,
        step: l.step,
        trip,
    };
    let mut inner_vars = Vec::new();
    nested_loop_vars(&l.body, &mut inner_vars);
    let mut known: Vec<String> = enclosing.to_vec();
    known.push(l.var.clone());
    known.extend(inner_vars.iter().cloned());

    let mut accesses = Vec::new();
    let mut unknown: Option<(String, Span)> = None;
    collect_block(&l.body, arrays, &known, &mut accesses, &mut unknown);
    if let Some((array, span)) = unknown {
        // A parameter-array access we could not analyze: conservative.
        return Some(CarriedDep {
            array,
            loop_var: l.var.clone(),
            distance: None,
            span,
        });
    }

    let dims = [dim];
    for i in 0..accesses.len() {
        for j in i..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.array != b.array || !(a.write || b.write) {
                continue;
            }
            if i == j && !a.write {
                continue;
            }
            let Some(dist) = dep_test(&a.index, &b.index, &dims, &inner_vars) else {
                continue;
            };
            let blocking = match dist[0] {
                DimDist::Eq(0) => false, // loop-independent
                DimDist::Eq(d) => d.unsigned_abs() < factor,
                DimDist::Any => true,
            };
            if blocking {
                return Some(CarriedDep {
                    array: a.array.clone(),
                    loop_var: l.var.clone(),
                    distance: match dist[0] {
                        DimDist::Eq(d) => Some(d.unsigned_abs()),
                        DimDist::Any => None,
                    },
                    span: l.span,
                });
            }
        }
    }
    None
}

/// Collects every parameter-array access in a block, in program order.
/// `unknown` records the first access whose subscripts are not affine in
/// the known induction variables.
pub fn collect_block(
    b: &Block,
    arrays: &HashSet<String>,
    known_vars: &[String],
    out: &mut Vec<Access>,
    unknown: &mut Option<(String, Span)>,
) {
    for s in &b.stmts {
        collect_stmt(s, arrays, known_vars, out, unknown);
    }
}

fn collect_stmt(
    s: &Stmt,
    arrays: &HashSet<String>,
    known_vars: &[String],
    out: &mut Vec<Access>,
    unknown: &mut Option<(String, Span)>,
) {
    match &s.kind {
        StmtKind::Assign { target, op, value } => {
            collect_expr(value, arrays, known_vars, out, unknown);
            if let LValue::ArrayElem { name, indices } = target {
                for ix in indices {
                    collect_expr(ix, arrays, known_vars, out, unknown);
                }
                if arrays.contains(name) {
                    match indices
                        .iter()
                        .map(|ix| affine(ix, known_vars))
                        .collect::<Option<Vec<_>>>()
                    {
                        Some(aff) => {
                            if op.is_some() {
                                // Compound assignment reads the cell too.
                                out.push(Access {
                                    array: name.clone(),
                                    write: false,
                                    index: aff.clone(),
                                    span: s.span,
                                });
                            }
                            out.push(Access {
                                array: name.clone(),
                                write: true,
                                index: aff,
                                span: s.span,
                            });
                        }
                        None => {
                            unknown.get_or_insert((name.clone(), s.span));
                        }
                    }
                }
            }
        }
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                collect_expr(e, arrays, known_vars, out, unknown);
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            collect_expr(cond, arrays, known_vars, out, unknown);
            collect_block(then_blk, arrays, known_vars, out, unknown);
            if let Some(e) = else_blk {
                collect_block(e, arrays, known_vars, out, unknown);
            }
        }
        StmtKind::Block(b) => collect_block(b, arrays, known_vars, out, unknown),
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => {
            collect_expr(e, arrays, known_vars, out, unknown)
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                collect_stmt(i, arrays, known_vars, out, unknown);
            }
            if let Some(c) = cond {
                collect_expr(c, arrays, known_vars, out, unknown);
            }
            if let Some(st) = step {
                collect_stmt(st, arrays, known_vars, out, unknown);
            }
            collect_block(body, arrays, known_vars, out, unknown);
        }
        StmtKind::While { cond, body } => {
            collect_expr(cond, arrays, known_vars, out, unknown);
            collect_block(body, arrays, known_vars, out, unknown);
        }
        StmtKind::Return(None) => {}
    }
}

fn collect_expr(
    e: &Expr,
    arrays: &HashSet<String>,
    known_vars: &[String],
    out: &mut Vec<Access>,
    unknown: &mut Option<(String, Span)>,
) {
    match &e.kind {
        ExprKind::ArrayIndex { name, indices } => {
            for ix in indices {
                collect_expr(ix, arrays, known_vars, out, unknown);
            }
            if arrays.contains(name) {
                match indices
                    .iter()
                    .map(|ix| affine(ix, known_vars))
                    .collect::<Option<Vec<_>>>()
                {
                    Some(aff) => out.push(Access {
                        array: name.clone(),
                        write: false,
                        index: aff,
                        span: e.span,
                    }),
                    None => {
                        unknown.get_or_insert((name.clone(), e.span));
                    }
                }
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, arrays, known_vars, out, unknown);
            collect_expr(rhs, arrays, known_vars, out, unknown);
        }
        ExprKind::Unary { operand, .. } => collect_expr(operand, arrays, known_vars, out, unknown),
        ExprKind::Cond {
            cond,
            then_e,
            else_e,
        } => {
            collect_expr(cond, arrays, known_vars, out, unknown);
            collect_expr(then_e, arrays, known_vars, out, unknown);
            collect_expr(else_e, arrays, known_vars, out, unknown);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_expr(a, arrays, known_vars, out, unknown);
            }
        }
        ExprKind::IntLit(_) | ExprKind::Var(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::parser::parse;

    fn func(src: &str) -> Function {
        let prog = parse(src).unwrap();
        prog.items
            .iter()
            .find_map(|i| match i {
                Item::Function(f) => Some(f.clone()),
                _ => None,
            })
            .unwrap()
    }

    fn dim(var: &str, start: i64, step: i64, trip: u64) -> LoopDim {
        LoopDim {
            var: var.to_string(),
            start,
            bound: start + step * trip as i64,
            step,
            trip,
        }
    }

    fn ix(var: Option<&str>, off: i64) -> AffineIndex {
        AffineIndex {
            var: var.map(|s| s.to_string()),
            offset: off,
        }
    }

    #[test]
    fn strong_siv_distance_and_gcd() {
        let d = [dim("i", 0, 1, 16)];
        // A[i+1] vs A[i]: distance 1.
        let r = dep_test(&[ix(Some("i"), 1)], &[ix(Some("i"), 0)], &d, &[]).unwrap();
        assert_eq!(r, vec![DimDist::Eq(1)]);
        // A[i] vs A[i]: same iteration only.
        let r = dep_test(&[ix(Some("i"), 0)], &[ix(Some("i"), 0)], &d, &[]).unwrap();
        assert_eq!(r, vec![DimDist::Eq(0)]);
        // Step 2: offset gap 1 is not a step multiple → independent.
        let d2 = [dim("i", 0, 2, 8)];
        assert!(dep_test(&[ix(Some("i"), 1)], &[ix(Some("i"), 0)], &d2, &[]).is_none());
        // Distance beyond the trip count → independent.
        let d3 = [dim("i", 0, 1, 4)];
        assert!(dep_test(&[ix(Some("i"), 9)], &[ix(Some("i"), 0)], &d3, &[]).is_none());
    }

    #[test]
    fn ziv_and_weak_zero() {
        let d = [dim("i", 0, 1, 8)];
        // Distinct constants never collide.
        assert!(dep_test(&[ix(None, 3)], &[ix(None, 4)], &d, &[]).is_none());
        // Same constant: unconstrained distance.
        let r = dep_test(&[ix(None, 3)], &[ix(None, 3)], &d, &[]).unwrap();
        assert_eq!(r, vec![DimDist::Any]);
        assert!(is_carried(&r));
        // Weak-zero: A[3] vs A[i] collide at i = 3 (inside the range).
        assert!(dep_test(&[ix(None, 3)], &[ix(Some("i"), 0)], &d, &[]).is_some());
        // A[20] vs A[i]: i = 20 never executes.
        assert!(dep_test(&[ix(None, 20)], &[ix(Some("i"), 0)], &d, &[]).is_none());
        // Off-grid with step 2: A[3] vs A[i] over i = 0,2,4,….
        let d2 = [dim("i", 0, 2, 8)];
        assert!(dep_test(&[ix(None, 3)], &[ix(Some("i"), 0)], &d2, &[]).is_none());
    }

    #[test]
    fn banerjee_interval_guard_refutes_disjoint_vars() {
        let d = [dim("i", 0, 1, 4), dim("j", 100, 1, 4)];
        // A[i] vs A[j]: i ∈ [0,3], j ∈ [100,103] — disjoint.
        assert!(dep_test(&[ix(Some("i"), 0)], &[ix(Some("j"), 0)], &d, &[]).is_none());
        // Overlapping ranges: conservative dependence.
        let d2 = [dim("i", 0, 1, 8), dim("j", 4, 1, 8)];
        let r = dep_test(&[ix(Some("i"), 0)], &[ix(Some("j"), 0)], &d2, &[]).unwrap();
        assert!(is_carried(&r));
    }

    #[test]
    fn multidim_wavelet_writes_are_independent() {
        // Y[i][j], Y[i][j+1], Y[i+1][j], Y[i+1][j+1] with both steps 2.
        let d = [dim("i", 0, 2, 8), dim("j", 0, 2, 8)];
        let w = |a: i64, b: i64| vec![ix(Some("i"), a), ix(Some("j"), b)];
        let writes = [w(0, 0), w(0, 1), w(1, 0), w(1, 1)];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    dep_test(&writes[i], &writes[j], &d, &[]).is_none(),
                    "writes {i} and {j} must be independent"
                );
            }
        }
    }

    #[test]
    fn dct_writes_are_independent_at_step_8() {
        let d = [dim("i", 0, 8, 8)];
        for a in 0..8i64 {
            for b in (a + 1)..8 {
                assert!(
                    dep_test(&[ix(Some("i"), a)], &[ix(Some("i"), b)], &d, &[]).is_none(),
                    "Y[i+{a}] vs Y[i+{b}] at step 8"
                );
            }
        }
    }

    #[test]
    fn overlapping_writes_flags_step1_neighbors() {
        let d = [dim("i", 0, 1, 16)];
        let writes = vec![
            OutputWrite {
                scalar: "Tmp0".into(),
                index: vec![ix(Some("i"), 0)],
            },
            OutputWrite {
                scalar: "Tmp1".into(),
                index: vec![ix(Some("i"), 1)],
            },
        ];
        let (a, b, dist) = overlapping_writes(&writes, &d).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(dist, vec![DimDist::Eq(-1)]);
        // The same pair at step 2 is clean.
        let d2 = [dim("i", 0, 2, 8)];
        assert!(overlapping_writes(&writes, &d2).is_none());
    }

    #[test]
    fn gate_blocks_carried_write_pair() {
        let f = func(
            "void f(int A[16], int C[20]) { int i;
               for (i = 0; i < 16; i++) { C[i] = A[i]; C[i+1] = A[i] * 2; } }",
        );
        let v = find_blocking_dep(&f, 2, false).expect("distance-1 output dep blocks factor 2");
        assert_eq!(v.array, "C");
        assert_eq!(v.distance, Some(1));
        // Factor below 2 never blocks (the transform is the identity).
        assert!(find_blocking_dep(&f, 1, false).is_none());
    }

    #[test]
    fn gate_blocks_carried_flow_dep() {
        let f = func(
            "void f(int A[17]) { int i;
               for (i = 1; i < 17; i++) { A[i] = A[i-1] + 1; } }",
        );
        let v = find_blocking_dep(&f, 4, false).expect("A[i] = A[i-1] carries at distance 1");
        assert_eq!(v.array, "A");
        assert_eq!(v.distance, Some(1));
    }

    #[test]
    fn gate_allows_distance_at_or_above_factor() {
        let f = func(
            "void f(int A[16], int C[24]) { int i;
               for (i = 0; i < 16; i++) { C[i] = A[i]; C[i+4] = A[i] * 2; } }",
        );
        // Distance 4: factors 2..4 are fine, factor 8 is not.
        assert!(find_blocking_dep(&f, 4, false).is_none());
        assert!(find_blocking_dep(&f, 8, false).is_some());
    }

    #[test]
    fn gate_allows_clean_fir_and_wavelet_shapes() {
        let fir = func(
            "void fir(int A[21], int C[17]) { int i;
               for (i = 0; i < 17; i = i + 1) {
                 C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2]; } }",
        );
        assert!(find_blocking_dep(&fir, 8, false).is_none());
        let wave = func(
            "void w(int X[16][16], int Y[16][16]) { int i; int j;
               for (i = 0; i < 10; i = i + 2) {
                 for (j = 0; j < 10; j = j + 2) {
                   Y[i][j] = X[i][j]; Y[i][j+1] = X[i][j+2];
                   Y[i+1][j] = X[i+2][j]; Y[i+1][j+1] = X[i+2][j+2]; } } }",
        );
        assert!(find_blocking_dep(&wave, 2, false).is_none());
        assert!(find_blocking_dep(&wave, 2, true).is_none());
    }

    #[test]
    fn gate_blocks_constant_index_write_and_unknown_subscripts() {
        let zivf = func(
            "void f(int A[8], int C[8]) { int i;
               for (i = 0; i < 8; i++) { C[3] = A[i]; } }",
        );
        let v = find_blocking_dep(&zivf, 2, false).expect("C[3] rewrites every iteration");
        assert_eq!(v.distance, None);
        let nonaffine = func(
            "void f(int A[8], int C[8]) { int i;
               for (i = 0; i < 4; i++) { C[i] = A[i + i]; } }",
        );
        assert!(find_blocking_dep(&nonaffine, 2, false).is_some());
    }

    #[test]
    fn outer_loop_gate_sees_inner_footprint() {
        // Unrolling the outer loop duplicates the whole inner loop, whose
        // writes B[j] cover the same cells every outer iteration.
        let f = func(
            "void f(int A[8][8], int B[8]) { int i; int j;
               for (i = 0; i < 8; i++) {
                 for (j = 0; j < 8; j++) { B[j] = A[i][j]; } } }",
        );
        let v = find_blocking_dep(&f, 2, false).expect("B[j] repeats across outer iterations");
        assert_eq!(v.array, "B");
        assert_eq!(v.loop_var, "i");
        // The strip-miner only touches the innermost loop, which is clean.
        assert!(find_blocking_dep(&f, 2, true).is_none());
    }

    #[test]
    fn scalar_only_functions_never_block() {
        let f = func(
            "void f(int* o) { int i; int s = 0;
               for (i = 0; i < 8; i++) { s = s + i; } *o = s; }",
        );
        assert!(find_blocking_dep(&f, 64, false).is_none());
    }
}
