//! Constant folding and algebraic simplification.
//!
//! One of ROCCC's "conventional optimizations" (§2). Folding runs at the AST
//! level so that loop bounds and array indices become literal constants
//! before unrolling and scalar replacement; the back end (`roccc-suifvm`)
//! folds again at the IR level after other passes expose more constants.

use crate::subst::{map_block_exprs, map_expr};
use roccc_cparse::ast::*;

/// Folds constants in every function of the program.
pub fn fold_program(p: &Program) -> Program {
    Program {
        items: p
            .items
            .iter()
            .map(|item| match item {
                Item::Function(f) => Item::Function(fold_function(f)),
                g => g.clone(),
            })
            .collect(),
    }
}

/// Folds constants in one function.
pub fn fold_function(f: &Function) -> Function {
    Function {
        body: fold_block(&f.body),
        ..f.clone()
    }
}

/// Folds constants in a block.
pub fn fold_block(b: &Block) -> Block {
    map_block_exprs(b, &mut |e| fold_expr(&e))
}

/// Folds an expression bottom-up: literal arithmetic is evaluated and
/// algebraic identities are applied (`x*1 → x`, `x+0 → x`, `x*0 → 0`,
/// `x<<0 → x`, `x&0 → 0`, `1?a:b → a`, …).
///
/// ```
/// use roccc_cparse::{parser::parse, ast::StmtKind};
/// use roccc_hlir::fold::fold_expr;
///
/// let prog = parse("int f(int x) { return x * 1 + 2 * 3; }").unwrap();
/// let e = match &prog.function("f").unwrap().body.stmts[0].kind {
///     StmtKind::Return(Some(e)) => e.clone(),
///     _ => unreachable!(),
/// };
/// assert_eq!(fold_expr(&e).to_c(), "(x + 6)");
/// ```
pub fn fold_expr(e: &Expr) -> Expr {
    map_expr(e, &mut fold_node)
}

fn fold_node(e: Expr) -> Expr {
    let span = e.span;
    match &e.kind {
        ExprKind::Unary { op, operand } => {
            if let Some(v) = operand.as_const() {
                let folded = match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::BitNot => !v,
                    UnOp::LogicalNot => (v == 0) as i64,
                };
                return Expr::int(folded, span);
            }
            e
        }
        ExprKind::Binary { op, lhs, rhs } => {
            if let (Some(l), Some(r)) = (lhs.as_const(), rhs.as_const()) {
                if let Some(v) = eval_binop(*op, l, r) {
                    return Expr::int(v, span);
                }
            }
            // Algebraic identities with one constant side.
            if let Some(simplified) = simplify_identity(*op, lhs, rhs, span) {
                return simplified;
            }
            // Reassociation: `(x ± c1) ± c2 → x ± c`. Unrolling substitutes
            // `i → i + j` into window indices like `A[i + 1]`, producing
            // `A[(i + j) + 1]`; collapsing the constants restores the
            // `i + c` affine form the memory analysis requires.
            if let Some(reassoc) = reassociate(*op, lhs, rhs, span) {
                return reassoc;
            }
            e
        }
        ExprKind::Cond {
            cond,
            then_e,
            else_e,
        } => {
            if let Some(c) = cond.as_const() {
                return if c != 0 {
                    (**then_e).clone()
                } else {
                    (**else_e).clone()
                };
            }
            e
        }
        _ => e,
    }
}

/// Evaluates a binary operation on constants; `None` for division by zero
/// (left in place so the interpreter reports it with the right span).
pub fn eval_binop(op: BinOp, l: i64, r: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => {
            if r == 0 {
                return None;
            }
            l.wrapping_div(r)
        }
        BinOp::Rem => {
            if r == 0 {
                return None;
            }
            l.wrapping_rem(r)
        }
        BinOp::Shl => {
            if r < 0 {
                return None;
            }
            l.wrapping_shl(r.min(63) as u32)
        }
        BinOp::Shr => {
            if r < 0 {
                return None;
            }
            l.wrapping_shr(r.min(63) as u32)
        }
        BinOp::Lt => (l < r) as i64,
        BinOp::Le => (l <= r) as i64,
        BinOp::Gt => (l > r) as i64,
        BinOp::Ge => (l >= r) as i64,
        BinOp::Eq => (l == r) as i64,
        BinOp::Ne => (l != r) as i64,
        BinOp::BitAnd => l & r,
        BinOp::BitXor => l ^ r,
        BinOp::BitOr => l | r,
        BinOp::LogicalAnd => ((l != 0) && (r != 0)) as i64,
        BinOp::LogicalOr => ((l != 0) || (r != 0)) as i64,
    })
}

fn simplify_identity(
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    span: roccc_cparse::span::Span,
) -> Option<Expr> {
    let lc = lhs.as_const();
    let rc = rhs.as_const();
    match op {
        BinOp::Add => {
            if rc == Some(0) {
                return Some(lhs.clone());
            }
            if lc == Some(0) {
                return Some(rhs.clone());
            }
        }
        BinOp::Sub
            if rc == Some(0) => {
                return Some(lhs.clone());
            }
        BinOp::Mul => {
            if rc == Some(1) {
                return Some(lhs.clone());
            }
            if lc == Some(1) {
                return Some(rhs.clone());
            }
            if rc == Some(0) || lc == Some(0) {
                return Some(Expr::int(0, span));
            }
        }
        BinOp::Div
            if rc == Some(1) => {
                return Some(lhs.clone());
            }
        BinOp::Shl | BinOp::Shr => {
            if rc == Some(0) {
                return Some(lhs.clone());
            }
            if lc == Some(0) {
                return Some(Expr::int(0, span));
            }
        }
        BinOp::BitAnd => {
            if rc == Some(0) || lc == Some(0) {
                return Some(Expr::int(0, span));
            }
            if rc == Some(-1) {
                return Some(lhs.clone());
            }
            if lc == Some(-1) {
                return Some(rhs.clone());
            }
        }
        BinOp::BitOr | BinOp::BitXor => {
            if rc == Some(0) {
                return Some(lhs.clone());
            }
            if lc == Some(0) {
                return Some(rhs.clone());
            }
        }
        BinOp::LogicalAnd
            // The subset has no side effects in expressions, so a constant
            // zero on either side collapses the conjunction.
            if (rc == Some(0) || lc == Some(0)) => {
                return Some(Expr::int(0, span));
            }
        BinOp::LogicalOr
            if (matches!(rc, Some(v) if v != 0) || matches!(lc, Some(v) if v != 0)) => {
                return Some(Expr::int(1, span));
            }
        _ => {}
    }
    None
}

/// Collapses constant chains: `(x + c1) + c2 → x + (c1 + c2)`, with `Sub`
/// variants and the commuted `c + (x + c1)` form. Only the outer constant
/// and the inner right-or-left constant are combined; `c - x` shapes (base
/// negated) are left alone.
fn reassociate(op: BinOp, lhs: &Expr, rhs: &Expr, span: roccc_cparse::span::Span) -> Option<Expr> {
    // Normalize the outer node to `inner + c_outer`.
    let (inner, c_outer) = match op {
        BinOp::Add => {
            if let Some(c) = rhs.as_const() {
                (lhs, c)
            } else if let Some(c) = lhs.as_const() {
                (rhs, c)
            } else {
                return None;
            }
        }
        BinOp::Sub => (lhs, rhs.as_const()?.wrapping_neg()),
        _ => return None,
    };
    // Normalize the inner node to `base + c_inner`.
    let ExprKind::Binary {
        op: iop,
        lhs: ilhs,
        rhs: irhs,
    } = &inner.kind
    else {
        return None;
    };
    let (base, c_inner) = match iop {
        BinOp::Add => {
            if let Some(c) = irhs.as_const() {
                (ilhs, c)
            } else if let Some(c) = ilhs.as_const() {
                (irhs, c)
            } else {
                return None;
            }
        }
        BinOp::Sub => (ilhs, irhs.as_const()?.wrapping_neg()),
        _ => return None,
    };
    let c = c_inner.wrapping_add(c_outer);
    if c == 0 {
        return Some((**base).clone());
    }
    let (op2, mag) = if c < 0 {
        (BinOp::Sub, c.wrapping_neg())
    } else {
        (BinOp::Add, c)
    };
    Some(Expr {
        kind: ExprKind::Binary {
            op: op2,
            lhs: base.clone(),
            rhs: Box::new(Expr::int(mag, span)),
        },
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::parser::parse;

    fn fold_ret(src: &str) -> String {
        let prog = parse(&format!("int f(int x, int y) {{ return {src}; }}")).unwrap();
        let folded = fold_function(prog.function("f").unwrap());
        match &folded.body.stmts[0].kind {
            StmtKind::Return(Some(e)) => e.to_c(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn folds_literal_arithmetic() {
        assert_eq!(fold_ret("2 + 3 * 4"), "14");
        assert_eq!(fold_ret("(10 - 4) / 3"), "2");
        assert_eq!(fold_ret("1 << 5"), "32");
        assert_eq!(fold_ret("-(3) + 1"), "-2");
        assert_eq!(fold_ret("~0 & 255"), "255");
    }

    #[test]
    fn folds_comparisons_and_logic() {
        assert_eq!(fold_ret("3 < 4"), "1");
        assert_eq!(fold_ret("3 == 4 || 1"), "1");
        assert_eq!(fold_ret("0 && x"), "0");
    }

    #[test]
    fn applies_identities() {
        assert_eq!(fold_ret("x * 1"), "x");
        assert_eq!(fold_ret("x + 0"), "x");
        assert_eq!(fold_ret("0 + x"), "x");
        assert_eq!(fold_ret("x * 0"), "0");
        assert_eq!(fold_ret("x - 0"), "x");
        assert_eq!(fold_ret("x << 0"), "x");
        assert_eq!(fold_ret("x & 0"), "0");
        assert_eq!(fold_ret("x | 0"), "x");
        assert_eq!(fold_ret("x ^ 0"), "x");
    }

    #[test]
    fn reassociates_constant_chains() {
        assert_eq!(fold_ret("(x + 1) + 2"), "(x + 3)");
        assert_eq!(fold_ret("(x - 1) + 3"), "(x + 2)");
        assert_eq!(fold_ret("(x + 5) - 2"), "(x + 3)");
        assert_eq!(fold_ret("(x - 3) - 1"), "(x - 4)");
        assert_eq!(fold_ret("(x + 2) - 2"), "x");
        assert_eq!(fold_ret("2 + (x + 1)"), "(x + 3)");
        assert_eq!(fold_ret("(1 + x) + 1"), "(x + 2)");
        // `c - x` keeps its shape (base would be negated).
        assert_eq!(fold_ret("(3 - x) + 1"), "((3 - x) + 1)");
    }

    #[test]
    fn folds_constant_ternary() {
        assert_eq!(fold_ret("1 ? x : y"), "x");
        assert_eq!(fold_ret("0 ? x : y"), "y");
        assert_eq!(fold_ret("2 > 1 ? 5 : 6"), "5");
    }

    #[test]
    fn leaves_division_by_zero_unfolded() {
        assert_eq!(fold_ret("4 / 0"), "(4 / 0)");
        assert_eq!(fold_ret("4 % 0"), "(4 % 0)");
    }

    #[test]
    fn folds_inside_loop_bounds() {
        let prog = parse(
            "void f(int A[8], int* o) { int i; int s = 0;
          for (i = 0; i < 2 * 4; i++) { s = s + A[i]; } *o = s; }",
        )
        .unwrap();
        let folded = fold_function(prog.function("f").unwrap());
        let text = folded.to_c();
        assert!(text.contains("i < 8"), "bounds folded: {text}");
    }

    #[test]
    fn nested_folding_cascades() {
        assert_eq!(fold_ret("(1 + 1) * (2 + 2)"), "8");
        assert_eq!(fold_ret("x * (3 - 2)"), "x");
    }
}
