//! Function inlining.
//!
//! The paper (§2): "Function calls will either be inlined or whenever
//! feasible made into a lookup table." Sema has already rejected recursion,
//! so inlining bottom-up over the call graph terminates. Each call site is
//! replaced by the callee body with freshly renamed locals; parameters
//! become initialized locals and `return e` becomes an assignment to a
//! result temporary.

use crate::subst::rename_vars_block;
use roccc_cparse::ast::intrinsics;
use roccc_cparse::ast::*;
use roccc_cparse::types::CType;
use std::collections::HashMap;

/// Inlines all calls to defined functions in every function of `p`.
/// Intrinsic calls (`ROCCC_*`) are left untouched.
pub fn inline_program(p: &Program) -> Program {
    let functions: HashMap<String, Function> = p
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Function(f) => Some((f.name.clone(), f.clone())),
            _ => None,
        })
        .collect();
    let mut done: HashMap<String, Function> = HashMap::new();
    // Inline bottom-up: repeatedly process functions whose callees are done.
    let mut remaining: Vec<&Function> = functions.values().collect();
    while !remaining.is_empty() {
        let mut progressed = false;
        remaining.retain(|f| {
            let callees = callee_names(&f.body);
            let ready = callees
                .iter()
                .all(|c| !functions.contains_key(c) || done.contains_key(c));
            if ready {
                let mut ctx = Inliner {
                    functions: &done,
                    counter: 0,
                };
                let inlined = Function {
                    body: ctx.block(&f.body),
                    ..(*f).clone()
                };
                done.insert(f.name.clone(), inlined);
                progressed = true;
                false
            } else {
                true
            }
        });
        assert!(
            progressed || remaining.is_empty(),
            "call graph has a cycle; sema should have rejected recursion"
        );
    }

    Program {
        items: p
            .items
            .iter()
            .map(|i| match i {
                Item::Function(f) => Item::Function(done[&f.name].clone()),
                g => g.clone(),
            })
            .collect(),
    }
}

fn callee_names(b: &Block) -> Vec<String> {
    let mut out = Vec::new();
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Call { name, args } => {
                if !intrinsics::is_intrinsic(name) {
                    out.push(name.clone());
                }
                for a in args {
                    walk_expr(a, out);
                }
            }
            ExprKind::Unary { operand, .. } => walk_expr(operand, out),
            ExprKind::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            } => {
                walk_expr(cond, out);
                walk_expr(then_e, out);
                walk_expr(else_e, out);
            }
            ExprKind::ArrayIndex { indices, .. } => {
                for i in indices {
                    walk_expr(i, out);
                }
            }
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<String>) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    walk_expr(e, out);
                }
            }
            StmtKind::Assign { value, target, .. } => {
                walk_expr(value, out);
                if let LValue::ArrayElem { indices, .. } = target {
                    for i in indices {
                        walk_expr(i, out);
                    }
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                walk_expr(cond, out);
                for st in &then_blk.stmts {
                    walk_stmt(st, out);
                }
                if let Some(e) = else_blk {
                    for st in &e.stmts {
                        walk_stmt(st, out);
                    }
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    walk_stmt(i, out);
                }
                if let Some(c) = cond {
                    walk_expr(c, out);
                }
                if let Some(st) = step {
                    walk_stmt(st, out);
                }
                for st in &body.stmts {
                    walk_stmt(st, out);
                }
            }
            StmtKind::While { cond, body } => {
                walk_expr(cond, out);
                for st in &body.stmts {
                    walk_stmt(st, out);
                }
            }
            StmtKind::Return(Some(e)) => walk_expr(e, out),
            StmtKind::Return(None) => {}
            StmtKind::Block(b) => {
                for st in &b.stmts {
                    walk_stmt(st, out);
                }
            }
            StmtKind::Expr(e) => walk_expr(e, out),
        }
    }
    for s in &b.stmts {
        walk_stmt(s, &mut out);
    }
    out
}

struct Inliner<'a> {
    functions: &'a HashMap<String, Function>,
    counter: usize,
}

impl<'a> Inliner<'a> {
    fn fresh(&mut self, base: &str) -> String {
        self.counter += 1;
        format!("{base}_inl{}", self.counter)
    }

    fn block(&mut self, b: &Block) -> Block {
        let mut stmts = Vec::new();
        for s in &b.stmts {
            self.stmt(s, &mut stmts);
        }
        Block {
            stmts,
            span: b.span,
        }
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) {
        let kind = match &s.kind {
            StmtKind::Decl { name, ty, init } => StmtKind::Decl {
                name: name.clone(),
                ty: ty.clone(),
                init: init.as_ref().map(|e| self.expr(e, out)),
            },
            StmtKind::Assign { target, op, value } => {
                let target = match target {
                    LValue::ArrayElem { name, indices } => LValue::ArrayElem {
                        name: name.clone(),
                        indices: indices.iter().map(|i| self.expr(i, out)).collect(),
                    },
                    other => other.clone(),
                };
                StmtKind::Assign {
                    target,
                    op: *op,
                    value: self.expr(value, out),
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => StmtKind::If {
                cond: self.expr(cond, out),
                then_blk: self.block(then_blk),
                else_blk: else_blk.as_ref().map(|b| self.block(b)),
            },
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                // Calls in loop headers would need hoisting into the loop;
                // sema's canonical-loop restrictions keep headers call-free,
                // so recurse only into the body.
                StmtKind::For {
                    init: init.clone(),
                    cond: cond.clone(),
                    step: step.clone(),
                    body: self.block(body),
                }
            }
            StmtKind::While { cond, body } => StmtKind::While {
                cond: cond.clone(),
                body: self.block(body),
            },
            StmtKind::Return(e) => StmtKind::Return(e.as_ref().map(|e| self.expr(e, out))),
            StmtKind::Block(b) => StmtKind::Block(self.block(b)),
            StmtKind::Expr(e) => StmtKind::Expr(self.expr(e, out)),
        };
        out.push(Stmt { kind, span: s.span });
    }

    /// Rewrites an expression, hoisting inlined call bodies into `out` and
    /// replacing each call with its result temporary.
    fn expr(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Expr {
        match &e.kind {
            ExprKind::Call { name, args } if self.functions.contains_key(name) => {
                let args: Vec<Expr> = args.iter().map(|a| self.expr(a, out)).collect();
                let callee = self.functions[name].clone();

                self.inline_call(&callee, &args, e.span, out)
            }
            ExprKind::Call { name, args } => Expr {
                kind: ExprKind::Call {
                    name: name.clone(),
                    args: args.iter().map(|a| self.expr(a, out)).collect(),
                },
                span: e.span,
            },
            ExprKind::Unary { op, operand } => Expr {
                kind: ExprKind::Unary {
                    op: *op,
                    operand: Box::new(self.expr(operand, out)),
                },
                span: e.span,
            },
            ExprKind::Binary { op, lhs, rhs } => Expr {
                kind: ExprKind::Binary {
                    op: *op,
                    lhs: Box::new(self.expr(lhs, out)),
                    rhs: Box::new(self.expr(rhs, out)),
                },
                span: e.span,
            },
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            } => Expr {
                kind: ExprKind::Cond {
                    cond: Box::new(self.expr(cond, out)),
                    then_e: Box::new(self.expr(then_e, out)),
                    else_e: Box::new(self.expr(else_e, out)),
                },
                span: e.span,
            },
            ExprKind::ArrayIndex { name, indices } => Expr {
                kind: ExprKind::ArrayIndex {
                    name: name.clone(),
                    indices: indices.iter().map(|i| self.expr(i, out)).collect(),
                },
                span: e.span,
            },
            _ => e.clone(),
        }
    }

    /// Splices `callee`'s body into `out` and returns the expression that
    /// carries its return value.
    fn inline_call(
        &mut self,
        callee: &Function,
        args: &[Expr],
        span: roccc_cparse::span::Span,
        out: &mut Vec<Stmt>,
    ) -> Expr {
        // Rename every local and parameter to a fresh name.
        let mut rename: HashMap<String, String> = HashMap::new();
        for p in &callee.params {
            rename.insert(
                p.name.clone(),
                self.fresh(&format!("{}_{}", callee.name, p.name)),
            );
        }
        let mut locals = Vec::new();
        crate::subst::collect_scalar_writes(&callee.body, &mut locals);
        let mut decls = Vec::new();
        collect_decl_names(&callee.body, &mut decls);
        for d in decls {
            rename
                .entry(d.clone())
                .or_insert_with(|| self.fresh(&format!("{}_{}", callee.name, d)));
        }

        // Bind parameters.
        for (p, a) in callee.params.iter().zip(args) {
            let ty = match &p.ty {
                CType::Int(t) => CType::Int(*t),
                other => other.clone(),
            };
            out.push(Stmt {
                kind: StmtKind::Decl {
                    name: rename[&p.name].clone(),
                    ty,
                    init: Some(a.clone()),
                },
                span,
            });
        }

        // Result temporary for non-void callees.
        let ret_name = self.fresh(&format!("{}_ret", callee.name));
        if let CType::Int(t) = &callee.ret {
            out.push(Stmt {
                kind: StmtKind::Decl {
                    name: ret_name.clone(),
                    ty: CType::Int(*t),
                    init: None,
                },
                span,
            });
        }

        // Splice the body with renames, converting `return e` into
        // `ret = e` (callees in the subset return at the tail, enforced by
        // construction: a mid-body return would need control-flow splitting).
        let renamed = rename_vars_block(&callee.body, &rename);
        for s in renamed.stmts {
            match s.kind {
                StmtKind::Return(Some(e)) => out.push(Stmt {
                    kind: StmtKind::Assign {
                        target: LValue::Var(ret_name.clone()),
                        op: None,
                        value: e,
                    },
                    span,
                }),
                StmtKind::Return(None) => {}
                _ => out.push(s),
            }
        }

        Expr::var(ret_name, span)
    }
}

fn collect_decl_names(b: &Block, out: &mut Vec<String>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl { name, .. } => out.push(name.clone()),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                collect_decl_names(then_blk, out);
                if let Some(e) = else_blk {
                    collect_decl_names(e, out);
                }
            }
            StmtKind::For { init, body, .. } => {
                if let Some(i) = init {
                    if let StmtKind::Decl { name, .. } = &i.kind {
                        out.push(name.clone());
                    }
                }
                collect_decl_names(body, out);
            }
            StmtKind::While { body, .. } => collect_decl_names(body, out),
            StmtKind::Block(b) => collect_decl_names(b, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::interp::Interpreter;
    use roccc_cparse::parser::parse;
    use std::collections::HashMap as Map;

    fn assert_equivalent_scalar(src: &str, func: &str, args: &[i64]) {
        let prog = parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let inlined = inline_program(&prog);
        let o1 = Interpreter::new(&prog)
            .call(func, args, &mut Map::new())
            .unwrap();
        let o2 = Interpreter::new(&inlined)
            .call(func, args, &mut Map::new())
            .unwrap();
        assert_eq!(o1, o2);
    }

    fn has_calls(f: &Function) -> bool {
        !callee_names(&f.body).is_empty()
    }

    #[test]
    fn inlines_simple_call() {
        let src = "int dbl(int x) { return x * 2; }
          void f(int a, int* o) { *o = dbl(a) + 1; }";
        let prog = parse(src).unwrap();
        let inlined = inline_program(&prog);
        assert!(!has_calls(inlined.function("f").unwrap()));
        assert_equivalent_scalar(src, "f", &[21]);
    }

    #[test]
    fn inlines_nested_calls() {
        let src = "int inc(int x) { return x + 1; }
          int dbl(int x) { return inc(x) * 2; }
          void f(int a, int* o) { *o = dbl(dbl(a)); }";
        let prog = parse(src).unwrap();
        let inlined = inline_program(&prog);
        assert!(!has_calls(inlined.function("f").unwrap()));
        assert!(!has_calls(inlined.function("dbl").unwrap()));
        assert_equivalent_scalar(src, "f", &[5]);
    }

    #[test]
    fn inlines_call_in_condition_and_loop_body() {
        let src = "int sq(int x) { return x * x; }
          void f(int a, int* o) { int s = 0; int i;
            for (i = 0; i < 4; i++) { s = s + sq(a + i); }
            if (sq(a) > 10) { s = s + 100; }
            *o = s; }";
        let prog = parse(src).unwrap();
        let inlined = inline_program(&prog);
        assert!(!has_calls(inlined.function("f").unwrap()));
        assert_equivalent_scalar(src, "f", &[3]);
        assert_equivalent_scalar(src, "f", &[0]);
    }

    #[test]
    fn callee_with_internal_branching() {
        let src = "int absv(int x) { int r; if (x < 0) { r = -x; } else { r = x; } return r; }
          void f(int a, int b, int* o) { *o = absv(a - b) + absv(b - a); }";
        assert_equivalent_scalar(src, "f", &[3, 9]);
        assert_equivalent_scalar(src, "f", &[9, 3]);
    }

    #[test]
    fn intrinsics_are_not_inlined() {
        let src = "void f(int a, int* o) {
          int s; int t;
          t = ROCCC_load_prev(s) + a;
          ROCCC_store2next(s, t);
          *o = t; }";
        let prog = parse(src).unwrap();
        let inlined = inline_program(&prog);
        let text = inlined.to_c();
        assert!(text.contains("ROCCC_load_prev"));
        assert!(text.contains("ROCCC_store2next"));
    }

    #[test]
    fn repeated_calls_get_distinct_temporaries() {
        let src = "int id(int x) { return x; }
          void f(int a, int* o) { *o = id(a) + id(a + 1) + id(a + 2); }";
        let prog = parse(src).unwrap();
        let inlined = inline_program(&prog);
        let text = inlined.function("f").unwrap().to_c();
        assert!(text.contains("id_ret"));
        assert_equivalent_scalar(src, "f", &[10]);
    }
}
