//! AST rewriting helpers shared by the loop transformations.

use roccc_cparse::ast::*;

/// Applies `f` bottom-up to every expression inside `e`, rebuilding the tree.
pub fn map_expr(e: &Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let kind = match &e.kind {
        ExprKind::IntLit(v) => ExprKind::IntLit(*v),
        ExprKind::Var(n) => ExprKind::Var(n.clone()),
        ExprKind::ArrayIndex { name, indices } => ExprKind::ArrayIndex {
            name: name.clone(),
            indices: indices.iter().map(|i| map_expr(i, f)).collect(),
        },
        ExprKind::Unary { op, operand } => ExprKind::Unary {
            op: *op,
            operand: Box::new(map_expr(operand, f)),
        },
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op: *op,
            lhs: Box::new(map_expr(lhs, f)),
            rhs: Box::new(map_expr(rhs, f)),
        },
        ExprKind::Cond {
            cond,
            then_e,
            else_e,
        } => ExprKind::Cond {
            cond: Box::new(map_expr(cond, f)),
            then_e: Box::new(map_expr(then_e, f)),
            else_e: Box::new(map_expr(else_e, f)),
        },
        ExprKind::Call { name, args } => ExprKind::Call {
            name: name.clone(),
            args: args.iter().map(|a| map_expr(a, f)).collect(),
        },
    };
    f(Expr { kind, span: e.span })
}

/// Replaces every read of variable `var` with `replacement`.
pub fn subst_var(e: &Expr, var: &str, replacement: &Expr) -> Expr {
    map_expr(e, &mut |x| match &x.kind {
        ExprKind::Var(n) if n == var => Expr {
            kind: replacement.kind.clone(),
            span: x.span,
        },
        _ => x,
    })
}

/// Substitutes `var` in every expression position of a statement tree.
pub fn subst_var_stmt(s: &Stmt, var: &str, replacement: &Expr) -> Stmt {
    map_stmt_exprs(s, &mut |e| subst_var(&e, var, replacement))
}

/// Applies `f` to every top-level expression of a statement tree (conditions,
/// right-hand sides, indices, initializers), recursing through blocks.
pub fn map_stmt_exprs(s: &Stmt, f: &mut impl FnMut(Expr) -> Expr) -> Stmt {
    let kind = match &s.kind {
        StmtKind::Decl { name, ty, init } => StmtKind::Decl {
            name: name.clone(),
            ty: ty.clone(),
            init: init.as_ref().map(|e| f(e.clone())),
        },
        StmtKind::Assign { target, op, value } => StmtKind::Assign {
            target: map_lvalue(target, f),
            op: *op,
            value: f(value.clone()),
        },
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => StmtKind::If {
            cond: f(cond.clone()),
            then_blk: map_block_exprs(then_blk, f),
            else_blk: else_blk.as_ref().map(|b| map_block_exprs(b, f)),
        },
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => StmtKind::For {
            init: init.as_ref().map(|st| Box::new(map_stmt_exprs(st, f))),
            cond: cond.as_ref().map(|e| f(e.clone())),
            step: step.as_ref().map(|st| Box::new(map_stmt_exprs(st, f))),
            body: map_block_exprs(body, f),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: f(cond.clone()),
            body: map_block_exprs(body, f),
        },
        StmtKind::Return(e) => StmtKind::Return(e.as_ref().map(|e| f(e.clone()))),
        StmtKind::Block(b) => StmtKind::Block(map_block_exprs(b, f)),
        StmtKind::Expr(e) => StmtKind::Expr(f(e.clone())),
    };
    Stmt { kind, span: s.span }
}

/// Applies `f` to every expression in a block.
pub fn map_block_exprs(b: &Block, f: &mut impl FnMut(Expr) -> Expr) -> Block {
    Block {
        stmts: b.stmts.iter().map(|s| map_stmt_exprs(s, f)).collect(),
        span: b.span,
    }
}

fn map_lvalue(lv: &LValue, f: &mut impl FnMut(Expr) -> Expr) -> LValue {
    match lv {
        LValue::Var(n) => LValue::Var(n.clone()),
        LValue::ArrayElem { name, indices } => LValue::ArrayElem {
            name: name.clone(),
            indices: indices.iter().map(|e| f(e.clone())).collect(),
        },
        LValue::Deref(n) => LValue::Deref(n.clone()),
    }
}

/// Collects the names of all variables read anywhere in `e`.
pub fn collect_var_reads(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::IntLit(_) => {}
        ExprKind::Var(n) => out.push(n.clone()),
        ExprKind::ArrayIndex { indices, .. } => {
            for i in indices {
                collect_var_reads(i, out);
            }
        }
        ExprKind::Unary { operand, .. } => collect_var_reads(operand, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_var_reads(lhs, out);
            collect_var_reads(rhs, out);
        }
        ExprKind::Cond {
            cond,
            then_e,
            else_e,
        } => {
            collect_var_reads(cond, out);
            collect_var_reads(then_e, out);
            collect_var_reads(else_e, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_var_reads(a, out);
            }
        }
    }
}

/// Collects scalar variables written anywhere in a block (assignments and
/// declarations with initializers), recursing into nested control flow.
pub fn collect_scalar_writes(b: &Block, out: &mut Vec<String>) {
    for s in &b.stmts {
        collect_scalar_writes_stmt(s, out);
    }
}

fn collect_scalar_writes_stmt(s: &Stmt, out: &mut Vec<String>) {
    match &s.kind {
        StmtKind::Decl { name, init, .. } => {
            if init.is_some() {
                out.push(name.clone());
            }
        }
        StmtKind::Assign { target, .. } => {
            if let LValue::Var(n) = target {
                out.push(n.clone());
            }
        }
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            collect_scalar_writes(then_blk, out);
            if let Some(e) = else_blk {
                collect_scalar_writes(e, out);
            }
        }
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                collect_scalar_writes_stmt(i, out);
            }
            if let Some(st) = step {
                collect_scalar_writes_stmt(st, out);
            }
            collect_scalar_writes(body, out);
        }
        StmtKind::While { body, .. } => collect_scalar_writes(body, out),
        StmtKind::Block(b) => collect_scalar_writes(b, out),
        StmtKind::Return(_) | StmtKind::Expr(_) => {}
    }
}

/// Renames every variable occurrence (reads, writes, declarations) using the
/// provided mapping; names absent from the map are left unchanged.
pub fn rename_vars_stmt(s: &Stmt, map: &std::collections::HashMap<String, String>) -> Stmt {
    let rename = |n: &String| map.get(n).cloned().unwrap_or_else(|| n.clone());
    let kind = match &s.kind {
        StmtKind::Decl { name, ty, init } => StmtKind::Decl {
            name: rename(name),
            ty: ty.clone(),
            init: init.as_ref().map(|e| rename_vars_expr(e, map)),
        },
        StmtKind::Assign { target, op, value } => StmtKind::Assign {
            target: rename_lvalue(target, map),
            op: *op,
            value: rename_vars_expr(value, map),
        },
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => StmtKind::If {
            cond: rename_vars_expr(cond, map),
            then_blk: rename_vars_block(then_blk, map),
            else_blk: else_blk.as_ref().map(|b| rename_vars_block(b, map)),
        },
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => StmtKind::For {
            init: init.as_ref().map(|st| Box::new(rename_vars_stmt(st, map))),
            cond: cond.as_ref().map(|e| rename_vars_expr(e, map)),
            step: step.as_ref().map(|st| Box::new(rename_vars_stmt(st, map))),
            body: rename_vars_block(body, map),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: rename_vars_expr(cond, map),
            body: rename_vars_block(body, map),
        },
        StmtKind::Return(e) => StmtKind::Return(e.as_ref().map(|e| rename_vars_expr(e, map))),
        StmtKind::Block(b) => StmtKind::Block(rename_vars_block(b, map)),
        StmtKind::Expr(e) => StmtKind::Expr(rename_vars_expr(e, map)),
    };
    Stmt { kind, span: s.span }
}

/// Renames variables in a block. See [`rename_vars_stmt`].
pub fn rename_vars_block(b: &Block, map: &std::collections::HashMap<String, String>) -> Block {
    Block {
        stmts: b.stmts.iter().map(|s| rename_vars_stmt(s, map)).collect(),
        span: b.span,
    }
}

/// Renames variables in an expression. See [`rename_vars_stmt`].
pub fn rename_vars_expr(e: &Expr, map: &std::collections::HashMap<String, String>) -> Expr {
    map_expr(e, &mut |x| match &x.kind {
        ExprKind::Var(n) => match map.get(n) {
            Some(new) => Expr {
                kind: ExprKind::Var(new.clone()),
                span: x.span,
            },
            None => x,
        },
        ExprKind::ArrayIndex { name, indices } => match map.get(name) {
            Some(new) => Expr {
                kind: ExprKind::ArrayIndex {
                    name: new.clone(),
                    indices: indices.clone(),
                },
                span: x.span,
            },
            None => x,
        },
        _ => x,
    })
}

fn rename_lvalue(lv: &LValue, map: &std::collections::HashMap<String, String>) -> LValue {
    let rename = |n: &String| map.get(n).cloned().unwrap_or_else(|| n.clone());
    match lv {
        LValue::Var(n) => LValue::Var(rename(n)),
        LValue::ArrayElem { name, indices } => LValue::ArrayElem {
            name: rename(name),
            indices: indices.clone(),
        },
        LValue::Deref(n) => LValue::Deref(rename(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::parser::parse;
    use roccc_cparse::span::Span;

    fn expr_of(src: &str) -> Expr {
        // Parse `int f() { return <src>; }` and pull out the expression.
        let prog = parse(&format!("int f(int a, int b, int i) {{ return {src}; }}")).unwrap();
        match &prog.function("f").unwrap().body.stmts[0].kind {
            StmtKind::Return(Some(e)) => e.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn subst_replaces_all_occurrences() {
        let e = expr_of("a + a * b");
        let replaced = subst_var(&e, "a", &Expr::int(7, Span::dummy()));
        assert_eq!(replaced.to_c(), "(7 + (7 * b))");
    }

    #[test]
    fn subst_reaches_array_indices() {
        let prog = parse("void f(int A[8], int i, int* o) { *o = A[i + 1]; }").unwrap();
        let f = prog.function("f").unwrap();
        let s = subst_var_stmt(&f.body.stmts[0], "i", &Expr::int(3, Span::dummy()));
        match &s.kind {
            StmtKind::Assign { value, .. } => assert_eq!(value.to_c(), "A[(3 + 1)]"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn collect_reads_finds_nested() {
        let e = expr_of("a > 0 ? b : a + i");
        let mut reads = Vec::new();
        collect_var_reads(&e, &mut reads);
        reads.sort();
        assert_eq!(reads, vec!["a", "a", "b", "i"]);
    }

    #[test]
    fn rename_renames_decls_and_uses() {
        let prog = parse("void f() { int x = 1; int y = x + 2; }").unwrap();
        let f = prog.function("f").unwrap();
        let mut map = std::collections::HashMap::new();
        map.insert("x".to_string(), "x_1".to_string());
        let renamed = rename_vars_block(&f.body, &map);
        let text: String = renamed.stmts.iter().map(|s| format!("{s:?}")).collect();
        assert!(text.contains("x_1"));
        assert!(!text.contains("\"x\""));
    }

    #[test]
    fn collect_writes_descends_into_branches() {
        let prog = parse("void f(int c) { int a; if (c) { a = 1; } else { a = 2; } }").unwrap();
        let f = prog.function("f").unwrap();
        let mut writes = Vec::new();
        collect_scalar_writes(&f.body, &mut writes);
        assert_eq!(writes, vec!["a", "a"]);
    }
}
