//! Kernel extraction: scalar replacement and feedback detection.
//!
//! This pass reproduces §4.1–§4.2.1 of the paper:
//!
//! * **Scalar replacement** (Figure 3 (a) → (b)) isolates memory accesses
//!   from computation: every affine array read `A[i+c]` becomes a scalar
//!   `A<k>` loaded at the top of the loop body, every array write becomes a
//!   scalar `Tmp<k>` stored at the bottom.
//! * **Feedback detection** (Figure 4) finds loop-carried scalars and
//!   annotates them with `ROCCC_load_prev` / `ROCCC_store2next` in the
//!   exported data-path function.
//! * The highlighted computation region is **exported** as a stand-alone
//!   function (Figure 3 (c) / 4 (c)) that the back end lowers to the
//!   data-path, while the loop statement and the load/store code drive the
//!   controller and smart-buffer generators.

use crate::fold::{fold_expr, fold_program};
use crate::inline::inline_program;
use crate::kernel::*;
use crate::loops::{recognize, CanonLoop};
use crate::subst::{collect_var_reads, map_block_exprs, rename_vars_block};
use roccc_cparse::ast::intrinsics;
use roccc_cparse::ast::*;
use roccc_cparse::error::{CError, CResult, Stage};
use roccc_cparse::span::Span;
use roccc_cparse::types::{CType, IntType};
use std::collections::{BTreeMap, HashMap, HashSet};

fn err(span: Span, msg: impl Into<String>) -> CError {
    CError::new(Stage::Sema, span, msg)
}

/// Extracts the hardware kernel from function `func_name` of `program`.
///
/// The program is inlined and constant-folded first. The function must be
/// either straight-line scalar code, or a 1- or 2-deep canonical loop nest
/// with affine array accesses.
///
/// # Errors
///
/// Returns a diagnostic when the function is missing, fails semantic
/// analysis, or falls outside the supported shape (non-affine indices,
/// array accesses in straight-line code, loops deeper than two, …).
pub fn extract_kernel(program: &Program, func_name: &str) -> CResult<Kernel> {
    let program = fold_program(&inline_program(program));
    let sema = roccc_cparse::sema::check(&program)?;
    let f = program
        .function(func_name)
        .ok_or_else(|| err(Span::dummy(), format!("unknown function `{func_name}`")))?;
    // Transformations such as partial unrolling with a remainder wrap their
    // result in a bare block; splice those so the loop partition below sees
    // the loop (and reports accurate diagnostics for what surrounds it).
    let f = &Function {
        body: flatten_top_blocks(&f.body),
        ..f.clone()
    };
    let info = &sema.functions[func_name];

    // Partition top-level statements: prologue / loop / epilogue.
    let loop_pos = f
        .body
        .stmts
        .iter()
        .position(|s| matches!(s.kind, StmtKind::For { .. }));

    match loop_pos {
        None => extract_straight_line(&program, f, info),
        Some(pos) => extract_loop_kernel(&program, f, info, pos),
    }
}

fn scalar_ty(info: &roccc_cparse::sema::FunctionInfo, name: &str) -> Option<IntType> {
    match info.vars.get(name) {
        Some(CType::Int(t)) => Some(*t),
        Some(CType::Ptr(t)) => Some(*t),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Straight-line kernels (fully unrolled or naturally scalar).
// ---------------------------------------------------------------------------

fn extract_straight_line(
    program: &Program,
    f: &Function,
    info: &roccc_cparse::sema::FunctionInfo,
) -> CResult<Kernel> {
    // No loops anywhere, no array parameters.
    if contains_loop(&f.body) {
        return Err(err(
            f.span,
            "kernel has nested loops; fully unroll before extraction",
        ));
    }
    for p in &f.params {
        if matches!(p.ty, CType::Array(..)) {
            return Err(err(
                p.span,
                "straight-line kernels cannot take array parameters; use a loop kernel",
            ));
        }
    }

    let scalar_inputs: Vec<(String, IntType)> = f
        .params
        .iter()
        .filter_map(|p| match &p.ty {
            CType::Int(t) => Some((p.name.clone(), *t)),
            _ => None,
        })
        .collect();
    let scalar_outputs: Vec<(String, IntType)> = f
        .params
        .iter()
        .filter_map(|p| match &p.ty {
            CType::Ptr(t) => Some((p.name.clone(), *t)),
            _ => None,
        })
        .collect();

    let dp_func = Function {
        name: format!("{}_dp", f.name),
        ..f.clone()
    };

    let _ = (program, info);
    Ok(Kernel {
        name: f.name.clone(),
        dims: vec![],
        windows: vec![],
        outputs: vec![],
        scalar_inputs,
        scalar_outputs,
        feedback: vec![],
        live_out: vec![],
        dp_func,
        rewritten: f.clone(),
    })
}

/// Splices bare `{ … }` statements into their parent at the top level only
/// (loop and branch bodies are left alone).
fn flatten_top_blocks(b: &Block) -> Block {
    let mut stmts = Vec::new();
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Block(inner) => stmts.extend(flatten_top_blocks(inner).stmts),
            _ => stmts.push(s.clone()),
        }
    }
    Block {
        stmts,
        span: b.span,
    }
}

fn contains_loop(b: &Block) -> bool {
    b.stmts.iter().any(|s| match &s.kind {
        StmtKind::For { .. } | StmtKind::While { .. } => true,
        StmtKind::If {
            then_blk, else_blk, ..
        } => contains_loop(then_blk) || else_blk.as_ref().is_some_and(contains_loop),
        StmtKind::Block(b) => contains_loop(b),
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Loop kernels.
// ---------------------------------------------------------------------------

fn extract_loop_kernel(
    program: &Program,
    f: &Function,
    info: &roccc_cparse::sema::FunctionInfo,
    loop_pos: usize,
) -> CResult<Kernel> {
    let prologue = &f.body.stmts[..loop_pos];
    let loop_stmt = &f.body.stmts[loop_pos];
    let epilogue = &f.body.stmts[loop_pos + 1..];

    // -- prologue: declarations and constant initializations only ----------
    let mut pre_values: HashMap<String, i64> = HashMap::new();
    let mut pre_decls: HashSet<String> = HashSet::new();
    for s in prologue {
        match &s.kind {
            StmtKind::Decl { name, init, ty } => {
                if !matches!(ty, CType::Int(_)) {
                    return Err(err(s.span, "only scalar locals may precede the kernel loop"));
                }
                pre_decls.insert(name.clone());
                if let Some(e) = init {
                    let v = e
                        .as_const()
                        .ok_or_else(|| err(e.span, "pre-loop initializer must be constant"))?;
                    pre_values.insert(name.clone(), v);
                }
            }
            StmtKind::Assign {
                target: LValue::Var(name),
                op: None,
                value,
            } if pre_decls.contains(name) => {
                let v = value
                    .as_const()
                    .ok_or_else(|| err(value.span, "pre-loop assignment must be constant"))?;
                pre_values.insert(name.clone(), v);
            }
            _ => {
                return Err(err(
                    s.span,
                    "unsupported statement before the kernel loop (only declarations and constant initializations)",
                ))
            }
        }
    }

    // -- loop nest ----------------------------------------------------------
    let l1 = recognize(loop_stmt).ok_or_else(|| {
        err(
            loop_stmt.span,
            "kernel loop is not in canonical counted form",
        )
    })?;
    let (dims, body) = recognize_nest(&l1)?;
    if contains_loop(&body) {
        return Err(err(
            loop_stmt.span,
            "loop nests deeper than two are not supported; strip-mine or unroll first",
        ));
    }
    let loop_vars: Vec<String> = dims.iter().map(|d| d.var.clone()).collect();

    // -- classify arrays ----------------------------------------------------
    let array_params: HashMap<String, (IntType, Vec<usize>)> = f
        .params
        .iter()
        .filter_map(|p| match &p.ty {
            CType::Array(t, d) => Some((p.name.clone(), (*t, d.clone()))),
            _ => None,
        })
        .collect();
    let const_tables: HashSet<String> = program
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Global(g) if g.is_const => Some(g.name.clone()),
            _ => None,
        })
        .collect();

    let mut reads: BTreeMap<String, Vec<Vec<AffineIndex>>> = BTreeMap::new();
    collect_array_reads(&body, &array_params, &const_tables, &loop_vars, &mut reads)?;

    // -- build windows and the read-rename map -------------------------------
    let mut windows = Vec::new();
    let mut read_rename: HashMap<(String, Vec<AffineIndex>), String> = HashMap::new();
    for (array, mut idxs) in reads {
        let (elem, adims) = array_params[&array].clone();
        idxs.sort_by_key(|ix| ix.iter().map(|a| a.offset).collect::<Vec<_>>());
        idxs.dedup();
        let mut wreads = Vec::new();
        for (k, ix) in idxs.into_iter().enumerate() {
            let scalar = format!("{array}{k}");
            read_rename.insert((array.clone(), ix.clone()), scalar.clone());
            wreads.push(WindowRead { scalar, index: ix });
        }
        windows.push(WindowSpec {
            array,
            elem,
            dims: adims,
            reads: wreads,
        });
    }

    // -- rewrite the body -----------------------------------------------------
    let mut rewriter = BodyRewriter {
        array_params: &array_params,
        loop_vars: &loop_vars,
        read_rename: &read_rename,
        outputs: BTreeMap::new(),
        tmp_counter: 0,
        compute: Vec::new(),
        error: None,
    };
    for s in &body.stmts {
        rewriter.stmt(s);
    }
    if let Some(e) = rewriter.error {
        return Err(e);
    }
    let compute = rewriter.compute;
    if std::env::var("ROCCC_DEBUG_EXTRACT").is_ok() {
        for s in &compute {
            eprintln!("compute: {s:?}");
        }
    }
    let outputs: Vec<OutputSpec> = rewriter
        .outputs
        .into_iter()
        .map(|(array, writes)| {
            let (elem, adims) = array_params[&array].clone();
            OutputSpec {
                array,
                elem,
                dims: adims,
                writes,
            }
        })
        .collect();
    // Arrays that are both read and written would need in-loop memory
    // dependences the execution model (BRAM in, BRAM out) does not provide.
    for o in &outputs {
        if windows.iter().any(|w| w.array == o.array) {
            return Err(err(
                loop_stmt.span,
                format!("array `{}` is both read and written in the loop", o.array),
            ));
        }
        // Distinct per-iteration writes become parallel write lanes merged
        // order-insensitively by the system generator; any pair that can
        // target the same element would silently lose the later value.
        if let Some((i, j, dist)) = crate::deps::overlapping_writes(&o.writes, &dims) {
            let d: Vec<String> = dist.iter().map(|x| x.to_string()).collect();
            return Err(err(
                loop_stmt.span,
                format!(
                    "L012-overlapping-writes: output array `{}` writes `[{}]` and `[{}]` \
                     can touch the same element (iteration distance ({})); the parallel \
                     write lanes cannot preserve program order between them",
                    o.array,
                    o.writes[i]
                        .index
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join("]["),
                    o.writes[j]
                        .index
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join("]["),
                    d.join(", "),
                ),
            ));
        }
    }

    // -- feedback detection ---------------------------------------------------
    // A prologue scalar that the compute body both reads and writes is
    // loop-carried.
    let mut body_reads = Vec::new();
    for s in &compute {
        collect_stmt_reads_full(s, &mut body_reads);
    }
    let body_reads: HashSet<String> = body_reads.into_iter().collect();
    let mut body_writes = Vec::new();
    crate::subst::collect_scalar_writes(
        &Block {
            stmts: compute.clone(),
            span: body.span,
        },
        &mut body_writes,
    );
    let body_writes: HashSet<String> = body_writes.into_iter().collect();

    let mut feedback = Vec::new();
    let mut const_prologue: HashMap<String, i64> = HashMap::new();
    for name in &pre_decls {
        let read = body_reads.contains(name);
        let written = body_writes.contains(name);
        let ty = scalar_ty(info, name)
            .ok_or_else(|| err(f.span, format!("`{name}` has no scalar type")))?;
        match (read, written) {
            (true, true) => feedback.push(FeedbackVar {
                name: name.clone(),
                ty,
                init: pre_values.get(name).copied().unwrap_or(0),
            }),
            (true, false) => {
                // Read-only constant: propagate its value.
                let v = pre_values.get(name).copied().ok_or_else(|| {
                    err(
                        f.span,
                        format!("`{name}` is read in the loop but never initialized"),
                    )
                })?;
                const_prologue.insert(name.clone(), v);
            }
            _ => {} // dead or write-only: ignore.
        }
    }
    feedback.sort_by(|a, b| a.name.cmp(&b.name));

    // -- epilogue: exports of feedback finals ---------------------------------
    let mut live_out = Vec::new();
    for s in epilogue {
        match &s.kind {
            StmtKind::Assign {
                target: LValue::Deref(out),
                op: None,
                value,
            } => match &value.kind {
                ExprKind::Var(v) if feedback.iter().any(|fb| &fb.name == v) => {
                    live_out.push(v.clone());
                    let _ = out;
                }
                _ => {
                    return Err(err(
                        s.span,
                        "post-loop statements may only export feedback variables",
                    ))
                }
            },
            StmtKind::Return(None) => {}
            _ => return Err(err(s.span, "unsupported statement after the kernel loop")),
        }
    }

    // -- scalar live-ins -------------------------------------------------------
    let scalar_params: HashSet<String> = f
        .params
        .iter()
        .filter(|p| matches!(p.ty, CType::Int(_)))
        .map(|p| p.name.clone())
        .collect();
    let mut scalar_inputs: Vec<(String, IntType)> = body_reads
        .iter()
        .filter(|n| scalar_params.contains(*n))
        .map(|n| (n.clone(), scalar_ty(info, n).expect("param typed")))
        .collect();
    scalar_inputs.sort();

    // -- substitute propagated constants --------------------------------------
    let compute: Vec<Stmt> = compute
        .iter()
        .map(|s| {
            let mut s = s.clone();
            for (name, v) in &const_prologue {
                s = crate::subst::subst_var_stmt(&s, name, &Expr::int(*v, s.span));
            }
            crate::subst::map_stmt_exprs(&s, &mut |e| fold_expr(&e))
        })
        .collect();

    // -- build the data-path function (Figure 3 (c) / 4 (c)) -------------------
    let dp_func = build_dp_func(
        f,
        info,
        &windows,
        &outputs,
        &scalar_inputs,
        &feedback,
        &live_out,
        &compute,
    )?;

    // -- build the rewritten function (Figure 3 (b)) ----------------------------
    let rewritten = build_rewritten(
        f, info, &windows, &outputs, &feedback, &compute, loop_pos, &dims,
    )?;

    Ok(Kernel {
        name: f.name.clone(),
        dims,
        windows,
        outputs,
        scalar_inputs,
        scalar_outputs: vec![],
        feedback,
        live_out,
        dp_func,
        rewritten,
    })
}

/// Recognizes a 1- or 2-deep nest rooted at `l1`, returning normalized
/// dimensions (outermost first) and the innermost body.
fn recognize_nest(l1: &CanonLoop) -> CResult<(Vec<LoopDim>, Block)> {
    let dim1 = to_dim(l1)?;
    // A 2-deep nest is a body consisting solely of one canonical loop
    // (allowing leading declarations of the inner induction variable).
    let inner_candidates: Vec<&Stmt> = l1
        .body
        .stmts
        .iter()
        .filter(|s| !matches!(s.kind, StmtKind::Decl { init: None, .. }))
        .collect();
    if inner_candidates.len() == 1 {
        if let Some(l2) = recognize(inner_candidates[0]) {
            let dim2 = to_dim(&l2)?;
            return Ok((vec![dim1, dim2], l2.body));
        }
    }
    Ok((vec![dim1], l1.body.clone()))
}

fn to_dim(l: &CanonLoop) -> CResult<LoopDim> {
    let trip = l
        .trip_count()
        .ok_or_else(|| err(l.span, "loop trip count is not statically known"))?;
    let bound = l.start + trip as i64 * l.step;
    Ok(LoopDim {
        var: l.var.clone(),
        start: l.start,
        bound,
        step: l.step,
        trip,
    })
}

/// Collects affine reads of input arrays throughout a block.
fn collect_array_reads(
    b: &Block,
    arrays: &HashMap<String, (IntType, Vec<usize>)>,
    const_tables: &HashSet<String>,
    loop_vars: &[String],
    out: &mut BTreeMap<String, Vec<Vec<AffineIndex>>>,
) -> CResult<()> {
    let mut error = None;
    // Reads occur in every expression position, so walk each top-level
    // expression bottom-up with `map_expr` to reach nested `ArrayIndex`
    // nodes.
    let mut visit_top = |top: Expr| -> Expr {
        let _ = crate::subst::map_expr(&top, &mut |e| {
            if let ExprKind::ArrayIndex { name, indices } = &e.kind {
                if arrays.contains_key(name) {
                    match indices
                        .iter()
                        .map(|ix| affine(ix, loop_vars))
                        .collect::<Option<Vec<_>>>()
                    {
                        Some(aff) => out.entry(name.clone()).or_default().push(aff),
                        None => {
                            if error.is_none() {
                                error = Some(err(
                                    e.span,
                                    format!(
                                        "non-affine index into `{name}`; ROCCC requires `i + c` form"
                                    ),
                                ));
                            }
                        }
                    }
                } else if !const_tables.contains(name) {
                    // Local array or unknown: leave to the back end (LUT
                    // for const tables) — locals are rejected here.
                    if error.is_none() {
                        error = Some(err(
                            e.span,
                            format!("array `{name}` is neither a parameter nor a const table"),
                        ));
                    }
                }
            }
            e
        });
        top
    };
    let _ = map_block_exprs(b, &mut visit_top);
    // Remove entries that are exclusively writes: handled by the rewriter.
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Recognizes `i`, `i + c`, `i - c`, `c + i`, or `c`.
pub(crate) fn affine(e: &Expr, loop_vars: &[String]) -> Option<AffineIndex> {
    match &e.kind {
        ExprKind::IntLit(c) => Some(AffineIndex {
            var: None,
            offset: *c,
        }),
        ExprKind::Var(v) if loop_vars.contains(v) => Some(AffineIndex {
            var: Some(v.clone()),
            offset: 0,
        }),
        ExprKind::Binary { op, lhs, rhs } => {
            let (var, c) = match (&lhs.kind, &rhs.kind, op) {
                (ExprKind::Var(v), ExprKind::IntLit(c), BinOp::Add) => (v.clone(), *c),
                (ExprKind::IntLit(c), ExprKind::Var(v), BinOp::Add) => (v.clone(), *c),
                (ExprKind::Var(v), ExprKind::IntLit(c), BinOp::Sub) => (v.clone(), -*c),
                _ => return None,
            };
            if loop_vars.contains(&var) {
                Some(AffineIndex {
                    var: Some(var),
                    offset: c,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Rewrites the loop body: array reads → window scalars, array writes →
/// `Tmp<k>` assignments.
struct BodyRewriter<'a> {
    array_params: &'a HashMap<String, (IntType, Vec<usize>)>,
    loop_vars: &'a [String],
    read_rename: &'a HashMap<(String, Vec<AffineIndex>), String>,
    outputs: BTreeMap<String, Vec<OutputWrite>>,
    tmp_counter: usize,
    compute: Vec<Stmt>,
    error: Option<CError>,
}

impl<'a> BodyRewriter<'a> {
    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Assign {
                target: LValue::ArrayElem { name, indices },
                op: None,
                value,
            } if self.array_params.contains_key(name) => {
                // Array write: becomes `Tmp<k> = value`.
                let aff = indices
                    .iter()
                    .map(|ix| affine(ix, self.loop_vars))
                    .collect::<Option<Vec<_>>>();
                let Some(aff) = aff else {
                    self.error.get_or_insert(err(
                        s.span,
                        format!("non-affine store index into `{name}`"),
                    ));
                    return;
                };
                let scalar = format!("Tmp{}", self.tmp_counter);
                self.tmp_counter += 1;
                let (elem, _) = self.array_params[name];
                let init = self.expr(value);
                self.compute.push(Stmt {
                    kind: StmtKind::Decl {
                        name: scalar.clone(),
                        ty: CType::Int(elem),
                        init: Some(init),
                    },
                    span: s.span,
                });
                self.outputs
                    .entry(name.clone())
                    .or_default()
                    .push(OutputWrite { scalar, index: aff });
            }
            StmtKind::Assign { target, op, value } => {
                if let LValue::ArrayElem { name, .. } = target {
                    if self.array_params.contains_key(name) {
                        self.error.get_or_insert(err(
                            s.span,
                            "compound assignment to output arrays is not supported",
                        ));
                        return;
                    }
                }
                let value = self.expr(value);
                self.compute.push(Stmt {
                    kind: StmtKind::Assign {
                        target: target.clone(),
                        op: *op,
                        value,
                    },
                    span: s.span,
                });
            }
            StmtKind::Decl { name, ty, init } => {
                let init = init.as_ref().map(|e| self.expr(e));
                self.compute.push(Stmt {
                    kind: StmtKind::Decl {
                        name: name.clone(),
                        ty: ty.clone(),
                        init,
                    },
                    span: s.span,
                });
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                // Array writes inside branches would need predicated stores;
                // reject them, but allow scalar computation.
                if block_writes_arrays(then_blk, self.array_params)
                    || else_blk
                        .as_ref()
                        .is_some_and(|b| block_writes_arrays(b, self.array_params))
                {
                    self.error.get_or_insert(err(
                        s.span,
                        "array stores inside branches are not supported; compute into a scalar and store unconditionally",
                    ));
                    return;
                }
                let cond = self.expr(cond);
                let then_blk = self.rewrite_block(then_blk);
                let else_blk = else_blk.as_ref().map(|b| self.rewrite_block(b));
                self.compute.push(Stmt {
                    kind: StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    },
                    span: s.span,
                });
            }
            StmtKind::Block(b) => {
                let inner = self.rewrite_block(b);
                self.compute.push(Stmt {
                    kind: StmtKind::Block(inner),
                    span: s.span,
                });
            }
            StmtKind::Expr(e) => {
                let e = self.expr(e);
                self.compute.push(Stmt {
                    kind: StmtKind::Expr(e),
                    span: s.span,
                });
            }
            StmtKind::Return(_) | StmtKind::For { .. } | StmtKind::While { .. } => {
                self.error.get_or_insert(err(
                    s.span,
                    "unsupported statement inside the kernel loop body",
                ));
            }
        }
    }

    fn rewrite_block(&mut self, b: &Block) -> Block {
        let saved = std::mem::take(&mut self.compute);
        for s in &b.stmts {
            self.stmt(s);
        }
        let stmts = std::mem::replace(&mut self.compute, saved);
        Block {
            stmts,
            span: b.span,
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        crate::subst::map_expr(e, &mut |x| {
            if let ExprKind::ArrayIndex { name, indices } = &x.kind {
                if self.array_params.contains_key(name) {
                    if let Some(aff) = indices
                        .iter()
                        .map(|ix| affine(ix, self.loop_vars))
                        .collect::<Option<Vec<_>>>()
                    {
                        if let Some(scalar) = self.read_rename.get(&(name.clone(), aff)) {
                            return Expr::var(scalar.clone(), x.span);
                        }
                    }
                }
            }
            x
        })
    }
}

fn block_writes_arrays(b: &Block, arrays: &HashMap<String, (IntType, Vec<usize>)>) -> bool {
    b.stmts.iter().any(|s| match &s.kind {
        StmtKind::Assign {
            target: LValue::ArrayElem { name, .. },
            ..
        } => arrays.contains_key(name),
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            block_writes_arrays(then_blk, arrays)
                || else_blk
                    .as_ref()
                    .is_some_and(|e| block_writes_arrays(e, arrays))
        }
        StmtKind::Block(inner) => block_writes_arrays(inner, arrays),
        _ => false,
    })
}

#[allow(clippy::collapsible_match)]
fn collect_stmt_reads_full(s: &Stmt, out: &mut Vec<String>) {
    match &s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                collect_var_reads(e, out);
            }
        }
        StmtKind::Assign { target, op, value } => {
            collect_var_reads(value, out);
            // Compound assignment reads the target too.
            if op.is_some() {
                if let LValue::Var(n) = target {
                    out.push(n.clone());
                }
            }
            if let LValue::ArrayElem { indices, .. } = target {
                for i in indices {
                    collect_var_reads(i, out);
                }
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            collect_var_reads(cond, out);
            for st in &then_blk.stmts {
                collect_stmt_reads_full(st, out);
            }
            if let Some(e) = else_blk {
                for st in &e.stmts {
                    collect_stmt_reads_full(st, out);
                }
            }
        }
        StmtKind::Block(b) => {
            for st in &b.stmts {
                collect_stmt_reads_full(st, out);
            }
        }
        StmtKind::Expr(e) => collect_var_reads(e, out),
        StmtKind::Return(Some(e)) => collect_var_reads(e, out),
        _ => {}
    }
}

/// Builds the exported data-path function (Figure 3 (c) / 4 (c)).
#[allow(clippy::too_many_arguments)]
fn build_dp_func(
    f: &Function,
    info: &roccc_cparse::sema::FunctionInfo,
    windows: &[WindowSpec],
    outputs: &[OutputSpec],
    scalar_inputs: &[(String, IntType)],
    feedback: &[FeedbackVar],
    live_out: &[String],
    compute: &[Stmt],
) -> CResult<Function> {
    let sp = f.span;
    let mut params = Vec::new();
    for w in windows {
        for r in &w.reads {
            params.push(Param {
                name: r.scalar.clone(),
                ty: CType::Int(w.elem),
                span: sp,
            });
        }
    }
    for (name, t) in scalar_inputs {
        params.push(Param {
            name: name.clone(),
            ty: CType::Int(*t),
            span: sp,
        });
    }
    for o in outputs {
        for w in &o.writes {
            params.push(Param {
                name: w.scalar.clone(),
                ty: CType::Ptr(o.elem),
                span: sp,
            });
        }
    }
    for name in live_out {
        let fb = feedback
            .iter()
            .find(|fb| &fb.name == name)
            .expect("live_out names come from feedback");
        params.push(Param {
            name: format!("{name}_final"),
            ty: CType::Ptr(fb.ty),
            span: sp,
        });
    }

    let mut stmts: Vec<Stmt> = Vec::new();
    // Feedback prologue: `ty s; ty s_cur = ROCCC_load_prev(s);`
    let mut fb_rename: HashMap<String, String> = HashMap::new();
    for fb in feedback {
        let cur = format!("{}_cur", fb.name);
        fb_rename.insert(fb.name.clone(), cur.clone());
        stmts.push(Stmt {
            kind: StmtKind::Decl {
                name: fb.name.clone(),
                ty: CType::Int(fb.ty),
                init: None,
            },
            span: sp,
        });
        stmts.push(Stmt {
            kind: StmtKind::Decl {
                name: cur,
                ty: CType::Int(fb.ty),
                init: Some(Expr {
                    kind: ExprKind::Call {
                        name: intrinsics::LOAD_PREV.to_string(),
                        args: vec![Expr::var(fb.name.clone(), sp)],
                    },
                    span: sp,
                }),
            },
            span: sp,
        });
    }

    // Compute body: feedback vars renamed to `_cur`; `Tmp<k>` declarations
    // become writes through the out-pointers.
    let out_scalars: HashSet<String> = outputs
        .iter()
        .flat_map(|o| o.writes.iter().map(|w| w.scalar.clone()))
        .collect();
    let compute_block = rename_vars_block(
        &Block {
            stmts: compute.to_vec(),
            span: sp,
        },
        &fb_rename,
    );
    for s in compute_block.stmts {
        match &s.kind {
            StmtKind::Decl {
                name,
                init: Some(init),
                ..
            } if out_scalars.contains(name) => {
                stmts.push(Stmt {
                    kind: StmtKind::Assign {
                        target: LValue::Deref(name.clone()),
                        op: None,
                        value: init.clone(),
                    },
                    span: s.span,
                });
            }
            _ => stmts.push(s),
        }
    }

    // Feedback epilogue: `ROCCC_store2next(s, s_cur);` and exports.
    for fb in feedback {
        let cur = &fb_rename[&fb.name];
        stmts.push(Stmt {
            kind: StmtKind::Expr(Expr {
                kind: ExprKind::Call {
                    name: intrinsics::STORE_NEXT.to_string(),
                    args: vec![Expr::var(fb.name.clone(), sp), Expr::var(cur.clone(), sp)],
                },
                span: sp,
            }),
            span: sp,
        });
    }
    for name in live_out {
        let cur = &fb_rename[name];
        stmts.push(Stmt {
            kind: StmtKind::Assign {
                target: LValue::Deref(format!("{name}_final")),
                op: None,
                value: Expr::var(cur.clone(), sp),
            },
            span: sp,
        });
    }

    let _ = info;
    Ok(Function {
        name: format!("{}_dp", f.name),
        ret: CType::Void,
        params,
        body: Block { stmts, span: sp },
        span: sp,
    })
}

/// Builds the Figure 3 (b)-style function: same signature as the original,
/// loop body = loads; compute; stores.
#[allow(clippy::too_many_arguments)]
fn build_rewritten(
    f: &Function,
    info: &roccc_cparse::sema::FunctionInfo,
    windows: &[WindowSpec],
    outputs: &[OutputSpec],
    feedback: &[FeedbackVar],
    compute: &[Stmt],
    loop_pos: usize,
    dims: &[LoopDim],
) -> CResult<Function> {
    let sp = f.span;
    let _ = (info, feedback);

    let mut body_stmts: Vec<Stmt> = Vec::new();
    // Loads.
    for w in windows {
        for r in &w.reads {
            let indices: Vec<Expr> = r.index.iter().map(|a| affine_to_expr(a, sp)).collect();
            body_stmts.push(Stmt {
                kind: StmtKind::Decl {
                    name: r.scalar.clone(),
                    ty: CType::Int(w.elem),
                    init: Some(Expr {
                        kind: ExprKind::ArrayIndex {
                            name: w.array.clone(),
                            indices,
                        },
                        span: sp,
                    }),
                },
                span: sp,
            });
        }
    }
    // Compute.
    body_stmts.extend(compute.iter().cloned());
    // Stores.
    for o in outputs {
        for w in &o.writes {
            let indices: Vec<Expr> = w.index.iter().map(|a| affine_to_expr(a, sp)).collect();
            body_stmts.push(Stmt {
                kind: StmtKind::Assign {
                    target: LValue::ArrayElem {
                        name: o.array.clone(),
                        indices,
                    },
                    op: None,
                    value: Expr::var(w.scalar.clone(), sp),
                },
                span: sp,
            });
        }
    }

    // Rebuild the nest around the new body.
    let mut nest = Block {
        stmts: body_stmts,
        span: sp,
    };
    for dim in dims.iter().rev() {
        let l = CanonLoop {
            var: dim.var.clone(),
            decl_ty: None,
            start: dim.start,
            bound: dim.bound,
            cmp: BinOp::Lt,
            step: dim.step,
            body: nest,
            span: sp,
        };
        nest = Block {
            stmts: vec![l.to_stmt()],
            span: sp,
        };
    }

    // Induction variables may have been declared in headers originally; add
    // declarations when the original function body declared them in the
    // prologue (they survive there), otherwise declare here.
    let mut stmts: Vec<Stmt> = f.body.stmts[..loop_pos].to_vec();
    let declared: HashSet<String> = {
        let mut names = Vec::new();
        for s in &stmts {
            if let StmtKind::Decl { name, .. } = &s.kind {
                names.push(name.clone());
            }
        }
        names.into_iter().collect()
    };
    for dim in dims {
        if !declared.contains(&dim.var) {
            stmts.push(Stmt {
                kind: StmtKind::Decl {
                    name: dim.var.clone(),
                    ty: CType::Int(IntType::int()),
                    init: None,
                },
                span: sp,
            });
        }
    }
    stmts.extend(nest.stmts);
    stmts.extend(f.body.stmts[loop_pos + 1..].to_vec());

    Ok(Function {
        body: Block {
            stmts,
            span: f.body.span,
        },
        ..f.clone()
    })
}

fn affine_to_expr(a: &AffineIndex, sp: Span) -> Expr {
    match (&a.var, a.offset) {
        (None, c) => Expr::int(c, sp),
        (Some(v), 0) => Expr::var(v.clone(), sp),
        (Some(v), c) if c > 0 => Expr {
            kind: ExprKind::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::var(v.clone(), sp)),
                rhs: Box::new(Expr::int(c, sp)),
            },
            span: sp,
        },
        (Some(v), c) => Expr {
            kind: ExprKind::Binary {
                op: BinOp::Sub,
                lhs: Box::new(Expr::var(v.clone(), sp)),
                rhs: Box::new(Expr::int(-c, sp)),
            },
            span: sp,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::interp::Interpreter;
    use roccc_cparse::parser::parse;

    const FIR: &str = "void fir(int A[21], int C[17]) { int i;
      for (i = 0; i < 17; i = i + 1) {
        C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4]; } }";

    const ACC: &str = "void acc(int A[32], int* out) {
      int sum = 0; int i;
      for (i = 0; i < 32; i++) { sum = sum + A[i]; }
      *out = sum; }";

    #[test]
    fn fir_window_matches_figure3() {
        let prog = parse(FIR).unwrap();
        let k = extract_kernel(&prog, "fir").unwrap();
        assert_eq!(k.dims.len(), 1);
        assert_eq!(k.dims[0].trip, 17);
        assert_eq!(k.windows.len(), 1);
        let w = &k.windows[0];
        assert_eq!(w.array, "A");
        assert_eq!(w.extent(), vec![5]);
        let scalars: Vec<&str> = w.reads.iter().map(|r| r.scalar.as_str()).collect();
        assert_eq!(scalars, vec!["A0", "A1", "A2", "A3", "A4"]);
        assert_eq!(k.outputs.len(), 1);
        assert_eq!(k.outputs[0].writes[0].scalar, "Tmp0");
        assert!(k.feedback.is_empty());
    }

    #[test]
    fn fir_dp_func_matches_figure3c() {
        let prog = parse(FIR).unwrap();
        let k = extract_kernel(&prog, "fir").unwrap();
        let dp = &k.dp_func;
        assert_eq!(dp.name, "fir_dp");
        let names: Vec<&str> = dp.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["A0", "A1", "A2", "A3", "A4", "Tmp0"]);
        assert!(matches!(dp.params[5].ty, CType::Ptr(_)));
        // Body is a single `*Tmp0 = …` statement.
        assert_eq!(dp.body.stmts.len(), 1);
        // And it is executable: 3*1 + 5*2 + 7*3 + 9*4 - 5 = 65.
        roccc_cparse::sema::check(&prog_with(dp)).unwrap();
        let prog_dp = prog_with(dp);
        let mut interp = Interpreter::new(&prog_dp);
        let out = interp
            .call("fir_dp", &[1, 2, 3, 4, 5], &mut Default::default())
            .unwrap();
        assert_eq!(out.outputs["Tmp0"], 65);
    }

    fn prog_with(f: &Function) -> Program {
        Program {
            items: vec![Item::Function(f.clone())],
        }
    }

    #[test]
    fn fir_rewritten_is_equivalent() {
        let prog = parse(FIR).unwrap();
        let k = extract_kernel(&prog, "fir").unwrap();
        let prog2 = prog_with(&k.rewritten);
        let a: Vec<i64> = (0..21).map(|x| (x * 13 % 29) - 7).collect();
        let mut a1 = std::collections::HashMap::new();
        a1.insert("A".to_string(), a.clone());
        a1.insert("C".to_string(), vec![0i64; 17]);
        let mut a2 = a1.clone();
        Interpreter::new(&prog).call("fir", &[], &mut a1).unwrap();
        Interpreter::new(&prog2).call("fir", &[], &mut a2).unwrap();
        assert_eq!(a1["C"], a2["C"]);
    }

    #[test]
    fn accumulator_detects_feedback() {
        let prog = parse(ACC).unwrap();
        let k = extract_kernel(&prog, "acc").unwrap();
        assert_eq!(k.feedback.len(), 1);
        assert_eq!(k.feedback[0].name, "sum");
        assert_eq!(k.feedback[0].init, 0);
        assert_eq!(k.live_out, vec!["sum"]);
        // dp function uses the macros, as in Figure 4 (c).
        let text = k.dp_func.to_c();
        assert!(text.contains("ROCCC_load_prev(sum)"), "{text}");
        assert!(text.contains("ROCCC_store2next(sum"), "{text}");
        assert!(text.contains("*sum_final"), "{text}");
    }

    #[test]
    fn accumulator_dp_streams_correctly() {
        let prog = parse(ACC).unwrap();
        let k = extract_kernel(&prog, "acc").unwrap();
        let prog_dp = prog_with(&k.dp_func);
        roccc_cparse::sema::check(&prog_dp).unwrap();
        let mut interp = Interpreter::new(&prog_dp);
        let mut total = 0;
        for x in [5, -2, 9] {
            total += x;
            let out = interp
                .call("acc_dp", &[x], &mut Default::default())
                .unwrap();
            assert_eq!(out.outputs["sum_final"], total);
        }
    }

    #[test]
    fn straight_line_kernel_extracts() {
        let src = "void comb(uint8 x, uint8* o) { *o = (x & 15) + (x >> 4); }";
        let prog = parse(src).unwrap();
        let k = extract_kernel(&prog, "comb").unwrap();
        assert!(k.dims.is_empty());
        assert_eq!(
            k.scalar_inputs,
            vec![("x".to_string(), IntType::unsigned(8))]
        );
        assert_eq!(
            k.scalar_outputs,
            vec![("o".to_string(), IntType::unsigned(8))]
        );
        assert_eq!(k.dp_func.name, "comb_dp");
    }

    #[test]
    fn two_dimensional_window() {
        let src = "void blur(int A[8][8], int B[8][8]) { int i; int j;
          for (i = 0; i < 6; i++) {
            for (j = 0; j < 6; j++) {
              B[i][j] = A[i][j] + A[i][j+1] + A[i+1][j] + A[i+1][j+1]; } } }";
        let prog = parse(src).unwrap();
        let k = extract_kernel(&prog, "blur").unwrap();
        assert_eq!(k.dims.len(), 2);
        assert_eq!(k.windows[0].extent(), vec![2, 2]);
        assert_eq!(k.windows[0].reads.len(), 4);
    }

    #[test]
    fn scalar_live_ins_become_ports() {
        let src = "void scale(int A[16], int B[16], int gain) { int i;
          for (i = 0; i < 16; i++) { B[i] = A[i] * gain; } }";
        let prog = parse(src).unwrap();
        let k = extract_kernel(&prog, "scale").unwrap();
        assert_eq!(k.scalar_inputs, vec![("gain".to_string(), IntType::int())]);
        let ports = k.input_ports();
        assert_eq!(ports.last().unwrap().0, "gain");
    }

    #[test]
    fn read_only_prologue_constants_propagate() {
        let src = "void f(int A[8], int B[8]) { int k = 3; int i;
          for (i = 0; i < 8; i++) { B[i] = A[i] * k; } }";
        let prog = parse(src).unwrap();
        let k = extract_kernel(&prog, "f").unwrap();
        assert!(k.feedback.is_empty());
        let text = k.dp_func.to_c();
        assert!(text.contains("* 3") || text.contains("(A0 * 3)"), "{text}");
    }

    #[test]
    fn rejects_non_affine_index() {
        let src = "void f(int A[8], int B[8]) { int i;
          for (i = 0; i < 4; i++) { B[i] = A[i * 2]; } }";
        let prog = parse(src).unwrap();
        let e = extract_kernel(&prog, "f").unwrap_err();
        assert!(e.message.contains("non-affine"), "{}", e.message);
    }

    #[test]
    fn rejects_conditional_array_store() {
        let src = "void f(int A[8], int B[8]) { int i;
          for (i = 0; i < 8; i++) { if (A[i] > 0) { B[i] = 1; } } }";
        let prog = parse(src).unwrap();
        let e = extract_kernel(&prog, "f").unwrap_err();
        assert!(e.message.contains("branches"), "{}", e.message);
    }

    #[test]
    fn branches_on_scalars_are_allowed() {
        // The paper's mul_acc: new-data flag selects accumulate vs hold.
        let src = "void mul_acc(int12 a[64], int12 b[64], uint1 nd[64], int* out) {
          int acc = 0; int i;
          for (i = 0; i < 64; i++) {
            int p; p = 0;
            if (nd[i]) { p = a[i] * b[i]; }
            acc = acc + p; }
          *out = acc; }";
        let prog = parse(src).unwrap();
        let k = extract_kernel(&prog, "mul_acc").unwrap();
        assert_eq!(k.feedback.len(), 1);
        assert_eq!(k.feedback[0].name, "acc");
        assert_eq!(k.windows.len(), 3);
    }

    #[test]
    fn mul_acc_rewritten_equivalent() {
        let src = "void mul_acc(int12 a[16], int12 b[16], uint1 nd[16], int* out) {
          int acc = 0; int i;
          for (i = 0; i < 16; i++) {
            int p; p = 0;
            if (nd[i]) { p = a[i] * b[i]; }
            acc = acc + p; }
          *out = acc; }";
        let prog = parse(src).unwrap();
        let k = extract_kernel(&prog, "mul_acc").unwrap();
        let prog2 = prog_with(&k.rewritten);
        let mk = || {
            let mut m = std::collections::HashMap::new();
            m.insert(
                "a".to_string(),
                (0..16).map(|x| x * 3 - 8).collect::<Vec<i64>>(),
            );
            m.insert(
                "b".to_string(),
                (0..16).map(|x| 5 - x).collect::<Vec<i64>>(),
            );
            m.insert(
                "nd".to_string(),
                (0..16).map(|x| x % 2).collect::<Vec<i64>>(),
            );
            m
        };
        let mut m1 = mk();
        let mut m2 = mk();
        let o1 = Interpreter::new(&prog)
            .call("mul_acc", &[], &mut m1)
            .unwrap();
        let o2 = Interpreter::new(&prog2)
            .call("mul_acc", &[], &mut m2)
            .unwrap();
        assert_eq!(o1.outputs["out"], o2.outputs["out"]);
    }

    #[test]
    fn strided_window_records_step() {
        let src = "void decim(int A[32], int B[16]) { int i;
          for (i = 0; i < 16; i++) { B[i] = A[i + i] ; } }";
        // `A[i+i]` is non-affine in our form — expect rejection.
        let prog = parse(src).unwrap();
        assert!(extract_kernel(&prog, "decim").is_err());
    }

    #[test]
    fn input_output_ports_ordered() {
        let prog = parse(FIR).unwrap();
        let k = extract_kernel(&prog, "fir").unwrap();
        let inputs: Vec<String> = k.input_ports().into_iter().map(|(n, _)| n).collect();
        assert_eq!(inputs, vec!["A0", "A1", "A2", "A3", "A4"]);
        let outputs: Vec<String> = k.output_ports().into_iter().map(|(n, _)| n).collect();
        assert_eq!(outputs, vec!["Tmp0"]);
    }
}
