//! Loop fusion.
//!
//! Another of ROCCC's FPGA-specific loop optimizations (§2): two adjacent
//! counted loops with identical headers are merged into one, so a single
//! controller/smart-buffer pass feeds one wider data-path instead of two
//! sequential circuits.
//!
//! Legality here is intentionally conservative (matching a production HLS
//! front end's "prove it or skip it" stance): the loops must have identical
//! `(start, bound, cmp, step)`, and the second body must not read any array
//! element or scalar that the first body writes at a *different* iteration
//! — we require that every array the first loop writes is accessed by the
//! second only at exactly the same index expressions, and that scalars
//! written by either body are disjoint from scalars used by the other.

use crate::loops::{recognize, CanonLoop};
use crate::subst::{collect_scalar_writes, collect_var_reads};
use roccc_cparse::ast::*;
use std::collections::HashSet;

/// Fuses adjacent fusable loops throughout the function. Repeats until a
/// fixed point so chains of three or more loops collapse.
pub fn fuse_function(f: &Function) -> Function {
    let mut body = f.body.clone();
    loop {
        let (new_body, changed) = fuse_block(&body);
        body = new_body;
        if !changed {
            break;
        }
    }
    Function { body, ..f.clone() }
}

fn fuse_block(b: &Block) -> (Block, bool) {
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut changed = false;
    for s in &b.stmts {
        // Recurse into structured statements first.
        let s = match &s.kind {
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (t, c1) = fuse_block(then_blk);
                let (e, c2) = match else_blk {
                    Some(e) => {
                        let (e, c) = fuse_block(e);
                        (Some(e), c)
                    }
                    None => (None, false),
                };
                changed |= c1 | c2;
                Stmt {
                    kind: StmtKind::If {
                        cond: cond.clone(),
                        then_blk: t,
                        else_blk: e,
                    },
                    span: s.span,
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let (nb, c) = fuse_block(body);
                changed |= c;
                Stmt {
                    kind: StmtKind::For {
                        init: init.clone(),
                        cond: cond.clone(),
                        step: step.clone(),
                        body: nb,
                    },
                    span: s.span,
                }
            }
            StmtKind::Block(inner) => {
                let (nb, c) = fuse_block(inner);
                changed |= c;
                Stmt {
                    kind: StmtKind::Block(nb),
                    span: s.span,
                }
            }
            _ => s.clone(),
        };

        // Try to fuse with the previous statement.
        if let Some(prev) = stmts.last() {
            if let (Some(l1), Some(l2)) = (recognize(prev), recognize(&s)) {
                if headers_match(&l1, &l2) && bodies_independent(&l1, &l2) {
                    let fused = fuse_pair(&l1, &l2);
                    stmts.pop();
                    stmts.push(fused.to_stmt());
                    changed = true;
                    continue;
                }
            }
        }
        stmts.push(s);
    }
    (
        Block {
            stmts,
            span: b.span,
        },
        changed,
    )
}

fn headers_match(a: &CanonLoop, b: &CanonLoop) -> bool {
    a.start == b.start && a.bound == b.bound && a.cmp == b.cmp && a.step == b.step
}

/// Conservative independence check described in the module docs.
fn bodies_independent(a: &CanonLoop, b: &CanonLoop) -> bool {
    let mut writes_a = Vec::new();
    collect_scalar_writes(&a.body, &mut writes_a);
    let mut writes_b = Vec::new();
    collect_scalar_writes(&b.body, &mut writes_b);
    let writes_a: HashSet<_> = writes_a.into_iter().collect();
    let writes_b: HashSet<_> = writes_b.into_iter().collect();

    let reads_a = block_var_reads(&a.body);
    let reads_b = block_var_reads(&b.body);

    // Scalars must not flow between the bodies in either direction, except
    // through the induction variable (same in both).
    let cross = |w: &HashSet<String>, r: &HashSet<String>, ind: &str| {
        w.iter().any(|v| v != ind && r.contains(v))
    };
    if cross(&writes_a, &reads_b, &a.var)
        || cross(&writes_b, &reads_a, &a.var)
        || writes_a.intersection(&writes_b).any(|v| v != &a.var)
    {
        return false;
    }

    // Arrays written by one loop must not be touched by the other at all
    // (index-equality reasoning is left to a smarter dependence test).
    let (aw, ar) = array_accesses(&a.body);
    let (bw, br) = array_accesses(&b.body);
    if aw.iter().any(|arr| bw.contains(arr) || br.contains(arr)) {
        return false;
    }
    if bw.iter().any(|arr| aw.contains(arr) || ar.contains(arr)) {
        return false;
    }
    true
}

fn block_var_reads(b: &Block) -> HashSet<String> {
    let mut reads = Vec::new();
    for s in &b.stmts {
        collect_stmt_reads(s, &mut reads);
    }
    reads.into_iter().collect()
}

fn collect_stmt_reads(s: &Stmt, out: &mut Vec<String>) {
    match &s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                collect_var_reads(e, out);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            collect_var_reads(value, out);
            if let LValue::ArrayElem { indices, .. } = target {
                for i in indices {
                    collect_var_reads(i, out);
                }
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            collect_var_reads(cond, out);
            for st in &then_blk.stmts {
                collect_stmt_reads(st, out);
            }
            if let Some(e) = else_blk {
                for st in &e.stmts {
                    collect_stmt_reads(st, out);
                }
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                collect_stmt_reads(i, out);
            }
            if let Some(c) = cond {
                collect_var_reads(c, out);
            }
            if let Some(st) = step {
                collect_stmt_reads(st, out);
            }
            for st in &body.stmts {
                collect_stmt_reads(st, out);
            }
        }
        StmtKind::While { cond, body } => {
            collect_var_reads(cond, out);
            for st in &body.stmts {
                collect_stmt_reads(st, out);
            }
        }
        StmtKind::Return(Some(e)) => collect_var_reads(e, out),
        StmtKind::Return(None) => {}
        StmtKind::Block(b) => {
            for st in &b.stmts {
                collect_stmt_reads(st, out);
            }
        }
        StmtKind::Expr(e) => collect_var_reads(e, out),
    }
}

/// Returns (written arrays, read arrays) in a block.
fn array_accesses(b: &Block) -> (HashSet<String>, HashSet<String>) {
    let mut writes = HashSet::new();
    let mut reads = HashSet::new();
    fn walk_expr(e: &Expr, reads: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::ArrayIndex { name, indices } => {
                reads.insert(name.clone());
                for i in indices {
                    walk_expr(i, reads);
                }
            }
            ExprKind::Unary { operand, .. } => walk_expr(operand, reads),
            ExprKind::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, reads);
                walk_expr(rhs, reads);
            }
            ExprKind::Cond {
                cond,
                then_e,
                else_e,
            } => {
                walk_expr(cond, reads);
                walk_expr(then_e, reads);
                walk_expr(else_e, reads);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    walk_expr(a, reads);
                }
            }
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, writes: &mut HashSet<String>, reads: &mut HashSet<String>) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    walk_expr(e, reads);
                }
            }
            StmtKind::Assign { target, value, .. } => {
                walk_expr(value, reads);
                if let LValue::ArrayElem { name, indices } = target {
                    writes.insert(name.clone());
                    for i in indices {
                        walk_expr(i, reads);
                    }
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                walk_expr(cond, reads);
                for st in &then_blk.stmts {
                    walk_stmt(st, writes, reads);
                }
                if let Some(e) = else_blk {
                    for st in &e.stmts {
                        walk_stmt(st, writes, reads);
                    }
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    walk_stmt(i, writes, reads);
                }
                if let Some(c) = cond {
                    walk_expr(c, reads);
                }
                if let Some(st) = step {
                    walk_stmt(st, writes, reads);
                }
                for st in &body.stmts {
                    walk_stmt(st, writes, reads);
                }
            }
            StmtKind::While { cond, body } => {
                walk_expr(cond, reads);
                for st in &body.stmts {
                    walk_stmt(st, writes, reads);
                }
            }
            StmtKind::Return(Some(e)) => walk_expr(e, reads),
            StmtKind::Return(None) => {}
            StmtKind::Block(b) => {
                for st in &b.stmts {
                    walk_stmt(st, writes, reads);
                }
            }
            StmtKind::Expr(e) => walk_expr(e, reads),
        }
    }
    for s in &b.stmts {
        walk_stmt(s, &mut writes, &mut reads);
    }
    (writes, reads)
}

fn fuse_pair(a: &CanonLoop, b: &CanonLoop) -> CanonLoop {
    // Rename b's induction variable to a's (headers are identical).
    let renamed: Vec<Stmt> = b
        .body
        .stmts
        .iter()
        .map(|s| crate::subst::subst_var_stmt(s, &b.var, &Expr::var(a.var.clone(), b.span)))
        .collect();
    let mut stmts = a.body.stmts.clone();
    stmts.extend(renamed);
    CanonLoop {
        body: Block {
            stmts,
            span: a.body.span,
        },
        ..a.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::interp::Interpreter;
    use roccc_cparse::parser::parse;
    use std::collections::HashMap;

    fn count_loops(f: &Function) -> usize {
        f.body
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::For { .. }))
            .count()
    }

    #[test]
    fn fuses_independent_maps() {
        let src = "void f(int A[8], int B[8], int C[8], int D[8]) { int i; int j;
          for (i = 0; i < 8; i++) { B[i] = A[i] * 2; }
          for (j = 0; j < 8; j++) { D[j] = C[j] + 1; } }";
        let prog = parse(src).unwrap();
        let fused = fuse_function(prog.function("f").unwrap());
        assert_eq!(count_loops(&fused), 1, "{}", fused.to_c());

        // Semantics preserved.
        let mut prog2 = prog.clone();
        for item in &mut prog2.items {
            if let Item::Function(g) = item {
                *g = fused.clone();
            }
        }
        let mk = || {
            let mut m = HashMap::new();
            for n in ["A", "B", "C", "D"] {
                m.insert(
                    n.to_string(),
                    (0..8).map(|x| x * x - 3).collect::<Vec<i64>>(),
                );
            }
            m
        };
        let mut a1 = mk();
        let mut a2 = mk();
        Interpreter::new(&prog).call("f", &[], &mut a1).unwrap();
        Interpreter::new(&prog2).call("f", &[], &mut a2).unwrap();
        assert_eq!(a1, a2);
    }

    #[test]
    fn refuses_flow_dependent_loops() {
        let src = "void f(int A[8], int B[8], int C[8]) { int i; int j;
          for (i = 0; i < 8; i++) { B[i] = A[i] * 2; }
          for (j = 0; j < 8; j++) { C[j] = B[7 - j]; } }";
        let prog = parse(src).unwrap();
        let fused = fuse_function(prog.function("f").unwrap());
        assert_eq!(count_loops(&fused), 2);
    }

    #[test]
    fn refuses_mismatched_headers() {
        let src = "void f(int A[8], int B[8]) { int i; int j;
          for (i = 0; i < 8; i++) { A[i] = i; }
          for (j = 0; j < 4; j++) { B[j] = j; } }";
        let prog = parse(src).unwrap();
        let fused = fuse_function(prog.function("f").unwrap());
        assert_eq!(count_loops(&fused), 2);
    }

    #[test]
    fn fuses_chain_of_three() {
        let src = "void f(int A[4], int B[4], int C[4]) { int i; int j; int k;
          for (i = 0; i < 4; i++) { A[i] = i; }
          for (j = 0; j < 4; j++) { B[j] = j * 2; }
          for (k = 0; k < 4; k++) { C[k] = k * 3; } }";
        let prog = parse(src).unwrap();
        let fused = fuse_function(prog.function("f").unwrap());
        assert_eq!(count_loops(&fused), 1);
    }

    #[test]
    fn refuses_scalar_flow() {
        let src = "void f(int A[8], int B[8], int* o) { int i; int j; int s = 0;
          for (i = 0; i < 8; i++) { s = s + A[i]; }
          for (j = 0; j < 8; j++) { B[j] = s; } *o = s; }";
        let prog = parse(src).unwrap();
        let fused = fuse_function(prog.function("f").unwrap());
        assert_eq!(count_loops(&fused), 2);
    }
}
