//! Canonical loop recognition shared by the loop transformations.
//!
//! ROCCC (and this reproduction) handles counted `for` loops of the shape
//! the paper uses throughout: `for (i = c0; i < c1; i = i + c2)` with
//! constant bounds and step, possibly declaring the induction variable in
//! the header. Recognition produces a [`CanonLoop`] carrying everything the
//! unroller, strip-miner and smart-buffer generator need.

use roccc_cparse::ast::*;
use roccc_cparse::types::CType;

/// A recognized counted loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonLoop {
    /// Induction variable name.
    pub var: String,
    /// Type when the header declares the variable (`for (int i = …)`).
    pub decl_ty: Option<CType>,
    /// Initial value.
    pub start: i64,
    /// Loop bound (right-hand side of the comparison).
    pub bound: i64,
    /// Comparison operator (`<`, `<=` or `!=`).
    pub cmp: BinOp,
    /// Step added each iteration (always positive in the subset).
    pub step: i64,
    /// Loop body.
    pub body: Block,
    /// Span of the original statement.
    pub span: roccc_cparse::span::Span,
}

impl CanonLoop {
    /// Number of iterations the loop executes, when well-defined.
    ///
    /// ```
    /// use roccc_cparse::parser::parse;
    /// use roccc_hlir::loops::recognize;
    ///
    /// let prog = parse("void f(int A[8]) { int i; for (i = 0; i < 8; i += 2) { A[i] = 0; } }").unwrap();
    /// let f = prog.function("f").unwrap();
    /// let l = recognize(&f.body.stmts[1]).unwrap();
    /// assert_eq!(l.trip_count(), Some(4));
    /// ```
    pub fn trip_count(&self) -> Option<u64> {
        if self.step <= 0 {
            return None;
        }
        let distance = match self.cmp {
            BinOp::Lt => self.bound - self.start,
            BinOp::Le => self.bound - self.start + 1,
            BinOp::Ne => {
                let d = self.bound - self.start;
                if d % self.step != 0 || d < 0 {
                    return None;
                }
                d
            }
            _ => return None,
        };
        if distance <= 0 {
            return Some(0);
        }
        Some(((distance + self.step - 1) / self.step) as u64)
    }

    /// The induction-variable value for iteration `k` (0-based).
    pub fn iter_value(&self, k: u64) -> i64 {
        self.start + self.step * k as i64
    }

    /// Rebuilds an equivalent `for` statement from (possibly modified)
    /// fields.
    pub fn to_stmt(&self) -> Stmt {
        let sp = self.span;
        let init: Stmt = match &self.decl_ty {
            Some(ty) => Stmt {
                kind: StmtKind::Decl {
                    name: self.var.clone(),
                    ty: ty.clone(),
                    init: Some(Expr::int(self.start, sp)),
                },
                span: sp,
            },
            None => Stmt {
                kind: StmtKind::Assign {
                    target: LValue::Var(self.var.clone()),
                    op: None,
                    value: Expr::int(self.start, sp),
                },
                span: sp,
            },
        };
        let cond = Expr {
            kind: ExprKind::Binary {
                op: self.cmp,
                lhs: Box::new(Expr::var(self.var.clone(), sp)),
                rhs: Box::new(Expr::int(self.bound, sp)),
            },
            span: sp,
        };
        let step = Stmt {
            kind: StmtKind::Assign {
                target: LValue::Var(self.var.clone()),
                op: Some(BinOp::Add),
                value: Expr::int(self.step, sp),
            },
            span: sp,
        };
        Stmt {
            kind: StmtKind::For {
                init: Some(Box::new(init)),
                cond: Some(cond),
                step: Some(Box::new(step)),
                body: self.body.clone(),
            },
            span: sp,
        }
    }
}

/// Attempts to recognize `stmt` as a canonical counted loop.
///
/// Returns `None` when the statement is not a `for` loop or its header is
/// not in the constant-bound form (`i = c0; i </<=/!= c1; i = i + c2`,
/// `i += c2`, or `i++`).
pub fn recognize(stmt: &Stmt) -> Option<CanonLoop> {
    let (init, cond, step, body) = match &stmt.kind {
        StmtKind::For {
            init: Some(init),
            cond: Some(cond),
            step: Some(step),
            body,
        } => (init, cond, step, body),
        _ => return None,
    };

    // Init: `i = c0` or `int i = c0`.
    let (var, decl_ty, start) = match &init.kind {
        StmtKind::Assign {
            target: LValue::Var(v),
            op: None,
            value,
        } => (v.clone(), None, value.as_const()?),
        StmtKind::Decl {
            name,
            ty,
            init: Some(value),
        } => (name.clone(), Some(ty.clone()), value.as_const()?),
        _ => return None,
    };

    // Condition: `i <cmp> c1`.
    let (cmp, bound) = match &cond.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            let lhs_is_var = matches!(&lhs.kind, ExprKind::Var(n) if *n == var);
            if !lhs_is_var {
                return None;
            }
            match op {
                BinOp::Lt | BinOp::Le | BinOp::Ne => (*op, rhs.as_const()?),
                _ => return None,
            }
        }
        _ => return None,
    };

    // Step: `i = i + c2`, `i += c2` (incl. desugared `i++`).
    let step_val = match &step.kind {
        StmtKind::Assign {
            target: LValue::Var(v),
            op: Some(BinOp::Add),
            value,
        } if *v == var => value.as_const()?,
        StmtKind::Assign {
            target: LValue::Var(v),
            op: None,
            value,
        } if *v == var => match &value.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                lhs,
                rhs,
            } => {
                let lhs_is_var = matches!(&lhs.kind, ExprKind::Var(n) if *n == var);
                if !lhs_is_var {
                    return None;
                }
                rhs.as_const()?
            }
            _ => return None,
        },
        _ => return None,
    };
    if step_val <= 0 {
        return None;
    }

    Some(CanonLoop {
        var,
        decl_ty,
        start,
        bound,
        cmp,
        step: step_val,
        body: body.clone(),
        span: stmt.span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::parser::parse;

    fn first_loop(src: &str) -> Option<CanonLoop> {
        let prog = parse(src).unwrap();
        let f = prog.items.iter().find_map(|i| match i {
            Item::Function(f) => Some(f),
            _ => None,
        })?;
        f.body.stmts.iter().find_map(recognize)
    }

    #[test]
    fn recognizes_paper_style_loop() {
        let l =
            first_loop("void f(int A[17]) { int i; for (i = 0; i < 17; i = i + 1) { A[i] = 0; } }")
                .unwrap();
        assert_eq!(l.var, "i");
        assert_eq!((l.start, l.bound, l.step), (0, 17, 1));
        assert_eq!(l.trip_count(), Some(17));
    }

    #[test]
    fn recognizes_increment_forms() {
        let l =
            first_loop("void f(int A[32]) { for (int i = 0; i < 32; i++) { A[i] = 1; } }").unwrap();
        assert_eq!(l.step, 1);
        assert!(l.decl_ty.is_some());
        let l2 =
            first_loop("void f(int A[32]) { int i; for (i = 4; i <= 30; i += 2) { A[i] = 1; } }")
                .unwrap();
        assert_eq!(l2.trip_count(), Some(14));
    }

    #[test]
    fn rejects_non_constant_bounds() {
        assert!(first_loop(
            "void f(int n, int A[8]) { int i; for (i = 0; i < n; i++) { A[i] = 0; } }"
        )
        .is_none());
        assert!(
            first_loop("void f(int A[8]) { int i; for (i = 0; i > -8; i++) { A[0] = 0; } }")
                .is_none()
        );
    }

    #[test]
    fn ne_condition_requires_exact_step() {
        let l = first_loop("void f(int A[8]) { int i; for (i = 0; i != 8; i += 2) { A[i] = 0; } }")
            .unwrap();
        assert_eq!(l.trip_count(), Some(4));
        let l2 =
            first_loop("void f(int A[8]) { int i; for (i = 0; i != 7; i += 2) { A[i] = 0; } }")
                .unwrap();
        assert_eq!(l2.trip_count(), None);
    }

    #[test]
    fn iter_values_follow_step() {
        let l =
            first_loop("void f(int A[16]) { int i; for (i = 3; i < 16; i += 4) { A[i] = 0; } }")
                .unwrap();
        let vals: Vec<i64> = (0..l.trip_count().unwrap())
            .map(|k| l.iter_value(k))
            .collect();
        assert_eq!(vals, vec![3, 7, 11, 15]);
    }

    #[test]
    fn to_stmt_round_trips() {
        let l = first_loop("void f(int A[8]) { int i; for (i = 0; i < 8; i++) { A[i] = 0; } }")
            .unwrap();
        let rebuilt = l.to_stmt();
        let l2 = recognize(&rebuilt).unwrap();
        assert_eq!(l.trip_count(), l2.trip_count());
        assert_eq!(l.var, l2.var);
    }

    #[test]
    fn zero_trip_loops() {
        let l = first_loop("void f(int A[8]) { int i; for (i = 8; i < 8; i++) { A[i] = 0; } }")
            .unwrap();
        assert_eq!(l.trip_count(), Some(0));
    }
}
