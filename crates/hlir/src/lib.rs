//! # roccc-hlir — loop-level IR and transformations
//!
//! The "SUIF level" of the ROCCC reproduction: transformations that run on
//! the structured C AST before the kernel is lowered to the virtual-machine
//! IR. Implements the passes named in §2 of the paper:
//!
//! * [`fold`] — constant folding and algebraic simplification;
//! * [`inline`] — function inlining (the subset has no recursion);
//! * [`unroll`] — full and partial loop unrolling;
//! * [`stripmine`] — loop strip-mining (FPGA-specific);
//! * [`fusion`] — loop fusion (FPGA-specific);
//! * [`extract`] — scalar replacement + feedback detection, producing a
//!   [`kernel::Kernel`]: the data-path function (Figure 3 (c) / 4 (c)), the
//!   window specifications for the smart buffer, and the loop information
//!   for the controllers.
//!
//! ```
//! use roccc_cparse::parser::parse;
//! use roccc_hlir::extract::extract_kernel;
//!
//! # fn main() -> Result<(), roccc_cparse::error::CError> {
//! let prog = parse(
//!     "void fir(int A[21], int C[17]) { int i;
//!        for (i = 0; i < 17; i = i + 1) {
//!          C[i] = 3*A[i] + 5*A[i+1] + 7*A[i+2] + 9*A[i+3] - A[i+4]; } }",
//! )?;
//! let kernel = extract_kernel(&prog, "fir")?;
//! assert_eq!(kernel.windows[0].extent(), vec![5]); // the 5-tap sliding window
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod deps;
pub mod extract;
pub mod fold;
pub mod fusion;
pub mod inline;
pub mod kernel;
pub mod loops;
pub mod stripmine;
pub mod subst;
pub mod unroll;

pub use extract::extract_kernel;
pub use kernel::{FeedbackVar, Kernel, LoopDim, OutputSpec, WindowSpec};
