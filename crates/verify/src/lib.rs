//! # roccc-verify — phase-indexed static verification
//!
//! The compile pipeline (§4 of the reproduced paper) only produces
//! correct hardware because each phase preserves strong structural
//! invariants: SSA single assignment in the IR, an acyclic latch-balanced
//! data path whose one legal feedback loop (`LPR→…→SNX`) is registered,
//! and a netlist where every wire has exactly one driver and every cycle
//! crosses a register. This crate checks those invariants *after* each
//! phase and reports violations as uniform [`Diagnostic`] values with
//! stable codes (`S004-multiple-def`, `D001-comb-cycle`,
//! `N003-comb-loop`, …), so a transform bug surfaces as a named finding
//! instead of silently becoming wrong VHDL.
//!
//! * [`verify_ir`] — CFG well-formedness and SSA invariants (`S0xx`);
//! * [`verify_ranges`] — consistency of value-range annotations against
//!   the SSA IR they describe (`W0xx`, IR half);
//! * [`verify_datapath`] — acyclicity, stage monotonicity/latch balance,
//!   bit-width soundness against the narrowing rules (`D0xx`);
//! * [`verify_netlist`] — drivers, combinational loops, port widths,
//!   dead cells (`N0xx`);
//! * [`verify_pipeline`] — multi-kernel streaming pipeline composition:
//!   port bindings, rate balance, FIFO sizing, deadlock freedom (`P0xx`);
//! * [`verify_deps`] — dependence-graph well-formedness, recurrence
//!   completeness, MinII arithmetic, and transform-legality re-checks
//!   (`L0xx`);
//! * [`verify_schedule`] — modulo-schedule legality re-derived from the
//!   schedule artifact: MRT resource conflicts, recurrence slack,
//!   achieved II vs MinII, prologue/epilogue coverage (`M0xx`);
//! * [`verify_certificate`] — structural re-check of `roccc-prove`
//!   translation-validation certificates: refuted output equivalence,
//!   valid-grid divergence, unproven obligations, malformed
//!   certificates (`E0xx`);
//! * the VHDL linter in `roccc-vhdl` emits the same [`Diagnostic`] type
//!   with `V0xx` codes.
//!
//! How strictly findings gate a compile is a [`VerifyLevel`]: `Off`,
//! `Warn` (errors abort, warnings surface) or `Deny` (anything aborts).

#![warn(missing_docs)]

pub mod datapath;
pub mod deps;
pub mod diag;
pub mod ir;
pub mod netlist;
pub mod pipeline;
pub mod prove;
pub mod ranges;
pub mod schedule;

pub use datapath::verify_datapath;
pub use deps::verify_deps;
pub use diag::{Diagnostic, Loc, Phase, Severity, VerifyLevel};
pub use ir::verify_ir;
pub use netlist::verify_netlist;
pub use pipeline::{
    pipeline_code_severity, verify_pipeline, BindView, ChannelView, PipelineView, PortView,
    StageView,
};
pub use prove::{
    prove_code_severity, verify_certificate, CertificateView, CounterexampleView, ObligationView,
    PROVE_SCHEMA,
};
pub use ranges::{verify_fresh_ranges, verify_ranges};
pub use schedule::verify_schedule;
