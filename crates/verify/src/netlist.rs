//! Netlist-phase checks: drivers, combinational loops, widths, liveness.
//!
//! The word-level netlist is one step from VHDL: every wire must have
//! exactly one driver, every register a data input, and every cycle must
//! be split by a register edge — a combinational loop would synthesize
//! to a ring oscillator, not the paper's pipelined data path.

use crate::diag::{Diagnostic, Loc, Phase};
use roccc_netlist::{CellId, CellKind, Netlist};
use roccc_suifvm::ir::Opcode;

fn err(code: &'static str, cell: u32, msg: String) -> Diagnostic {
    Diagnostic::error(Phase::Netlist, code, Loc::Cell(cell), msg)
}

/// Runs every netlist-phase check over `nl` and returns the findings
/// (empty = clean).
///
/// * `N001-undriven-reg` — a register whose data input was never
///   connected (an undriven wire after synthesis);
/// * `N002-missing-ref` — a cell, ROM, input port or output net index
///   out of range (the multiply-driven analog: in this representation a
///   net has exactly one driver by construction, so the failure mode is
///   a reference to a driver that does not exist);
/// * `N003-comb-loop` — a cycle through combinational cells only, with
///   no register on any edge to split it;
/// * `N004-comb-order` — a combinational cell reading a later
///   combinational cell (topological-order violation; registers are the
///   only legal backward edges);
/// * `N005-width-mismatch` — a register latching a wire of a different
///   width or signedness than its own (feedback latches are closed
///   through an explicit `CVT`, so any residual mismatch is a lowering
///   bug; output registers may truncate and are exempt, as are
///   balancing registers fed directly by another register — the `LPR`
///   read of a feedback latch is narrowed at its consumers, not at the
///   latch);
/// * `N006-width-bounds` — a wire width of 0 or above 64 bits (the
///   simulator's word size);
/// * `N007-dead-cell` (warning) — a cell that no output port or
///   feedback register transitively reads (unused input-port cells are
///   exempt: every port is instantiated by convention);
/// * `N008-duplicate-port` — two input or output ports sharing a name;
/// * `W005-cell-wraps-range` — a cell annotated as wrap-free (its wire
///   carries an exact value inside a proven range) but too narrow to
///   hold every value of that range, or annotated with an empty range.
///   Only emitted when range narrowing stamped annotations.
pub fn verify_netlist(nl: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = nl.cells.len();
    let ok = |c: CellId| (c.0 as usize) < n;

    // --- References (everything later indexes through them) -------------
    for (i, c) in nl.cells.iter().enumerate() {
        match &c.kind {
            CellKind::Op { op, srcs, imm } => {
                for s in srcs {
                    if !ok(*s) {
                        out.push(err(
                            "N002-missing-ref",
                            i as u32,
                            format!("cell n{i} ({op}) reads missing cell {s}"),
                        ));
                    }
                }
                if *op == Opcode::Lut && (*imm < 0 || *imm as usize >= nl.roms.len()) {
                    out.push(err(
                        "N002-missing-ref",
                        i as u32,
                        format!("cell n{i} references ROM {imm} of {}", nl.roms.len()),
                    ));
                }
            }
            CellKind::Reg { d: Some(d), .. } if !ok(*d) => {
                out.push(err(
                    "N002-missing-ref",
                    i as u32,
                    format!("register n{i} driven by missing cell {d}"),
                ));
            }
            CellKind::Input(k) if *k >= nl.inputs.len() => {
                out.push(err(
                    "N002-missing-ref",
                    i as u32,
                    format!("cell n{i} reads missing input port {k}"),
                ));
            }
            _ => {}
        }
    }
    for (name, _, net) in &nl.outputs {
        if !ok(*net) {
            out.push(Diagnostic::error(
                Phase::Netlist,
                "N002-missing-ref",
                Loc::None,
                format!("output {name} driven by missing net {net}"),
            ));
        }
    }
    for (name, net) in &nl.feedback_regs {
        if !ok(*net) {
            out.push(Diagnostic::error(
                Phase::Netlist,
                "N002-missing-ref",
                Loc::None,
                format!("feedback register {name} is missing net {net}"),
            ));
        } else if !matches!(nl.cells[net.0 as usize].kind, CellKind::Reg { .. }) {
            out.push(err(
                "N002-missing-ref",
                net.0,
                format!("feedback net {name} ({net}) is not a register"),
            ));
        }
    }
    if !out.is_empty() {
        return out;
    }

    // --- Drivers and ordering -------------------------------------------
    for (i, c) in nl.cells.iter().enumerate() {
        match &c.kind {
            CellKind::Reg { d: None, .. } => out.push(err(
                "N001-undriven-reg",
                i as u32,
                format!("register n{i} has no data input"),
            )),
            CellKind::Op { op, srcs, .. } => {
                for s in srcs {
                    if s.0 as usize >= i
                        && !matches!(nl.cells[s.0 as usize].kind, CellKind::Reg { .. })
                    {
                        out.push(err(
                            "N004-comb-order",
                            i as u32,
                            format!("cell n{i} ({op}) reads later combinational cell {s}"),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    // --- Combinational loops --------------------------------------------
    // DFS over combinational edges only; registers cut every legal cycle.
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if state[root] != 0 {
            continue;
        }
        stack.push((root, 0));
        state[root] = 1;
        while let Some(&mut (cell, ref mut edge)) = stack.last_mut() {
            let srcs = match &nl.cells[cell].kind {
                CellKind::Op { srcs, .. } => srcs.as_slice(),
                _ => &[],
            };
            if *edge < srcs.len() {
                let next = srcs[*edge].0 as usize;
                *edge += 1;
                if matches!(nl.cells[next].kind, CellKind::Reg { .. }) {
                    continue;
                }
                match state[next] {
                    0 => {
                        state[next] = 1;
                        stack.push((next, 0));
                    }
                    1 => out.push(err(
                        "N003-comb-loop",
                        cell as u32,
                        format!(
                            "cell n{cell} closes a combinational loop through n{next} with no \
                             register to split it"
                        ),
                    )),
                    _ => {}
                }
            } else {
                state[cell] = 2;
                stack.pop();
            }
        }
    }

    // --- Widths -----------------------------------------------------------
    let output_regs: std::collections::HashSet<u32> =
        nl.outputs.iter().map(|(_, _, net)| net.0).collect();
    for (i, c) in nl.cells.iter().enumerate() {
        if c.width == 0 || c.width > 64 {
            out.push(err(
                "N006-width-bounds",
                i as u32,
                format!("cell n{i} is {} bits wide, outside 1..=64", c.width),
            ));
        }
        if let CellKind::Reg {
            d: Some(d),
            stage_gate,
            ..
        } = &c.kind
        {
            if output_regs.contains(&(i as u32)) {
                continue; // output registers may truncate to the port type
            }
            let src = &nl.cells[d.0 as usize];
            let lenient = stage_gate.is_none() && matches!(src.kind, CellKind::Reg { .. });
            if !lenient && (src.width != c.width || src.signed != c.signed) {
                out.push(err(
                    "N005-width-mismatch",
                    i as u32,
                    format!(
                        "register n{i} ({}) latches {d} ({}); lowering should have \
                         inserted a CVT",
                        c.ty(),
                        src.ty()
                    ),
                ));
            }
        }
    }

    // --- Range annotations (wrap-freedom of narrowed cells) --------------
    // An annotation asserts the cell's wire carries an exact value inside
    // the range; a width too small to hold the whole range would wrap it.
    // Silent when the compile ran without range narrowing (no
    // annotations).
    for (i, c) in nl.cells.iter().enumerate() {
        let Some(r) = nl.range_of(CellId(i as u32)) else {
            continue;
        };
        if r.lo > r.hi {
            out.push(err(
                "W005-cell-wraps-range",
                i as u32,
                format!("cell n{i} annotated with empty range [{}, {}]", r.lo, r.hi),
            ));
        } else if c.width < r.bits(c.signed).max(1) {
            out.push(err(
                "W005-cell-wraps-range",
                i as u32,
                format!(
                    "cell n{i} is {} bits wide but its wrap-free range [{}, {}] needs {} \
                     bits ({})",
                    c.width,
                    r.lo,
                    r.hi,
                    r.bits(c.signed),
                    if c.signed { "signed" } else { "unsigned" },
                ),
            ));
        }
    }

    // --- Liveness ---------------------------------------------------------
    let mut live = vec![false; n];
    let mut work: Vec<usize> = nl
        .outputs
        .iter()
        .map(|(_, _, net)| net.0 as usize)
        .chain(nl.feedback_regs.iter().map(|(_, net)| net.0 as usize))
        .collect();
    for &w in &work {
        live[w] = true;
    }
    while let Some(c) = work.pop() {
        let push = |work: &mut Vec<usize>, live: &mut Vec<bool>, s: CellId| {
            if !live[s.0 as usize] {
                live[s.0 as usize] = true;
                work.push(s.0 as usize);
            }
        };
        match &nl.cells[c].kind {
            CellKind::Op { srcs, .. } => {
                for s in srcs {
                    push(&mut work, &mut live, *s);
                }
            }
            CellKind::Reg { d: Some(d), .. } => push(&mut work, &mut live, *d),
            _ => {}
        }
    }
    for (i, c) in nl.cells.iter().enumerate() {
        if !live[i] && !matches!(c.kind, CellKind::Input(_)) {
            out.push(Diagnostic::warning(
                Phase::Netlist,
                "N007-dead-cell",
                Loc::Cell(i as u32),
                format!("cell n{i} is never read by an output or feedback register"),
            ));
        }
    }

    // --- Port names --------------------------------------------------------
    let mut seen = std::collections::HashSet::new();
    for (name, _) in &nl.inputs {
        if !seen.insert(name.as_str()) {
            out.push(Diagnostic::error(
                Phase::Netlist,
                "N008-duplicate-port",
                Loc::None,
                format!("two input ports named `{name}`"),
            ));
        }
    }
    let mut seen = std::collections::HashSet::new();
    for (name, _, _) in &nl.outputs {
        if !seen.insert(name.as_str()) {
            out.push(Diagnostic::error(
                Phase::Netlist,
                "N008-duplicate-port",
                Loc::None,
                format!("two output ports named `{name}`"),
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::parser::parse;
    use roccc_datapath::{build_datapath, narrow_widths, pipeline_datapath, DefaultDelayModel};
    use roccc_netlist::{netlist_from_datapath, Cell};
    use roccc_suifvm::{lower_function, optimize, to_ssa};

    fn nl_of(src: &str, func: &str, period: f64) -> Netlist {
        let prog = parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function(func).unwrap();
        let mut ir = lower_function(&prog, f, &[]).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        let mut dp = build_datapath(&ir).unwrap();
        pipeline_datapath(&mut dp, period, &DefaultDelayModel);
        narrow_widths(&mut dp);
        netlist_from_datapath(&dp)
    }

    const DEEP: &str = "void f(int a, int b, int* o) { *o = (a * b) * (a + b) * 3 + a; }";

    #[test]
    fn clean_netlist_passes() {
        assert_eq!(verify_netlist(&nl_of(DEEP, "f", 4.0)), vec![]);
        assert_eq!(verify_netlist(&nl_of(DEEP, "f", 1000.0)), vec![]);
    }

    #[test]
    fn ranged_netlist_passes_and_catches_wrapping_annotation() {
        // Build with range annotations (inputs pinned so narrowing bites).
        let prog = parse("void f(int a, int b, int* o) { *o = (a + b < 12) ? a : b; }").unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function("f").unwrap();
        let mut ir = lower_function(&prog, f, &[]).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        let ranges = roccc_suifvm::range::analyze_with_inputs(&ir, &[Some((0, 7)), Some((0, 7))]);
        let mut dp = roccc_datapath::build_datapath_ranged(&ir, Some(&ranges)).unwrap();
        pipeline_datapath(&mut dp, 1000.0, &DefaultDelayModel);
        narrow_widths(&mut dp);
        let nl = netlist_from_datapath(&dp);
        assert!(
            nl.ranges.iter().any(|r| r.is_some()),
            "expected wrap-free annotations"
        );
        assert_eq!(verify_netlist(&nl), vec![]);

        // Corrupt fixture: shrink an annotated multi-bit cell below its
        // range — the wire can no longer hold every value it claims.
        let mut bad = nl.clone();
        let i = bad
            .cells
            .iter()
            .zip(&bad.ranges)
            .position(|(c, r)| r.is_some_and(|r| r.bits(c.signed).max(1) > 1))
            .expect("an annotated cell needing more than one bit");
        bad.cells[i].width = 1;
        let diags = verify_netlist(&bad);
        assert!(
            diags.iter().any(|d| d.code == "W005-cell-wraps-range"),
            "{diags:?}"
        );
    }

    #[test]
    fn undriven_register_is_reported() {
        let mut nl = nl_of(DEEP, "f", 4.0);
        nl.add(Cell {
            kind: CellKind::Reg {
                d: None,
                init: 0,
                stage_gate: None,
            },
            width: 8,
            signed: false,
        });
        let diags = verify_netlist(&nl);
        assert!(
            diags.iter().any(|d| d.code == "N001-undriven-reg"),
            "{diags:?}"
        );
    }

    #[test]
    fn comb_loop_is_reported() {
        let mut nl = nl_of(DEEP, "f", 1000.0);
        // Two mutually-referencing combinational cells.
        let a = CellId(nl.cells.len() as u32);
        let b = CellId(nl.cells.len() as u32 + 1);
        nl.add(Cell {
            kind: CellKind::Op {
                op: Opcode::Not,
                srcs: vec![b].into(),
                imm: 0,
            },
            width: 8,
            signed: false,
        });
        nl.add(Cell {
            kind: CellKind::Op {
                op: Opcode::Not,
                srcs: vec![a].into(),
                imm: 0,
            },
            width: 8,
            signed: false,
        });
        let diags = verify_netlist(&nl);
        assert!(
            diags.iter().any(|d| d.code == "N003-comb-loop"),
            "{diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.code == "N004-comb-order"),
            "{diags:?}"
        );
    }

    #[test]
    fn register_width_mismatch_is_reported() {
        let mut nl = nl_of(DEEP, "f", 4.0);
        // Find a balancing register that is neither an output register nor
        // fed by another register, and skew its width.
        let outs: std::collections::HashSet<usize> = nl
            .outputs
            .iter()
            .map(|(_, _, net)| net.0 as usize)
            .collect();
        let victim = nl
            .cells
            .iter()
            .enumerate()
            .position(|(i, c)| match &c.kind {
                CellKind::Reg {
                    d: Some(d),
                    stage_gate: None,
                    ..
                } => {
                    !outs.contains(&i)
                        && !matches!(nl.cells[d.0 as usize].kind, CellKind::Reg { .. })
                }
                _ => false,
            })
            .expect("pipelined netlist has balancing registers");
        nl.cells[victim].width += 5;
        let diags = verify_netlist(&nl);
        assert!(
            diags.iter().any(|d| d.code == "N005-width-mismatch"),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_cell_is_a_warning() {
        let mut nl = nl_of(DEEP, "f", 1000.0);
        let x = nl.constant(7);
        nl.add(Cell {
            kind: CellKind::Op {
                op: Opcode::Not,
                srcs: vec![x].into(),
                imm: 0,
            },
            width: 4,
            signed: false,
        });
        let diags = verify_netlist(&nl);
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "N007-dead-cell")
            .collect();
        assert_eq!(dead.len(), 2, "{diags:?}");
        assert!(dead.iter().all(|d| d.severity == crate::Severity::Warning));
    }

    #[test]
    fn duplicate_output_port_is_reported() {
        let mut nl = nl_of(DEEP, "f", 1000.0);
        let dup = nl.outputs[0];
        nl.outputs.push(dup);
        let diags = verify_netlist(&nl);
        assert!(
            diags.iter().any(|d| d.code == "N008-duplicate-port"),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_ref_is_reported() {
        let mut nl = nl_of(DEEP, "f", 1000.0);
        nl.add(Cell {
            kind: CellKind::Op {
                op: Opcode::Not,
                srcs: vec![CellId(9999)].into(),
                imm: 0,
            },
            width: 4,
            signed: false,
        });
        let diags = verify_netlist(&nl);
        assert!(
            diags.iter().any(|d| d.code == "N002-missing-ref"),
            "{diags:?}"
        );
    }
}
