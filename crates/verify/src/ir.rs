//! SUIFvm-phase checks: CFG well-formedness and SSA invariants.
//!
//! The paper's back end leans on two structural guarantees (§4.2.1):
//! the CFG of a data-path function is a DAG of blocks with explicit
//! terminators, and after SSA construction "every virtual register is
//! assigned only once" with every use dominated by its definition.
//! These checks make both machine-verifiable.

use crate::diag::{Diagnostic, Loc, Phase};
use roccc_suifvm::dom::DomInfo;
use roccc_suifvm::ir::{BlockId, FunctionIr, Instr, Opcode, Terminator, VReg};
use std::collections::HashMap;

/// Where a register is defined inside its block.
#[derive(Clone, Copy)]
enum DefSite {
    /// A phi node (phis execute before every instruction of the block).
    Phi,
    /// The `i`-th instruction of the block.
    Instr(usize),
}

fn err(code: &'static str, loc: Loc, msg: String) -> Diagnostic {
    Diagnostic::error(Phase::SuifVm, code, loc, msg)
}

/// The operand count an opcode requires, if fixed.
pub(crate) fn expected_arity(op: Opcode) -> usize {
    match op {
        Opcode::Arg | Opcode::Ldc | Opcode::Lpr => 0,
        Opcode::Mov
        | Opcode::Cvt
        | Opcode::Neg
        | Opcode::Not
        | Opcode::Bool
        | Opcode::Lut
        | Opcode::Snx => 1,
        Opcode::Mux => 3,
        _ => 2,
    }
}

/// Runs every SuifVM-phase check over `f` and returns the findings
/// (empty = clean). Checks marked *SSA* only run when `f.is_ssa`.
///
/// * `S001-bad-edge` — a terminator or phi argument names a block that
///   does not exist;
/// * `S002-block-id-mismatch` — a block's `id` disagrees with its index;
/// * `S003-invalid-vreg` — a register was never allocated
///   (`vreg_types` has no entry for it);
/// * `S004-multiple-def` (*SSA*) — a register assigned more than once;
/// * `S005-undefined-vreg` — a use (source, phi argument, branch
///   condition or output register) with no definition anywhere;
/// * `S006-undominated-use` (*SSA*) — a definition that does not
///   dominate one of its uses;
/// * `S007-phi-arity` — phi argument list disagrees with the block's
///   predecessors;
/// * `S008-missing-dst` — a value-producing instruction without a
///   destination (only `SNX` may omit one);
/// * `S009-bad-arity` — wrong operand count for the opcode;
/// * `S010-bad-slot` — `LPR`/`SNX` feedback slot or `LUT` table index
///   out of range;
/// * `S011-unreachable-block` (warning) — a block the entry cannot reach.
pub fn verify_ir(f: &FunctionIr) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let nblocks = f.blocks.len();
    let nregs = f.vreg_types.len();
    if nblocks == 0 {
        out.push(err(
            "S001-bad-edge",
            Loc::None,
            "function has no blocks (no entry)".into(),
        ));
        return out;
    }

    let block_ok = |b: BlockId| (b.0 as usize) < nblocks;
    let reg_ok = |r: VReg| (r.0 as usize) < nregs;

    // --- CFG shape -----------------------------------------------------
    for (i, b) in f.blocks.iter().enumerate() {
        let loc = Loc::Block(b.id.0);
        if b.id.0 as usize != i {
            out.push(err(
                "S002-block-id-mismatch",
                loc,
                format!("block at index {i} carries id {}", b.id),
            ));
        }
        for s in b.term.successors() {
            if !block_ok(s) {
                out.push(err(
                    "S001-bad-edge",
                    loc,
                    format!("terminator of {} targets missing block {s}", b.id),
                ));
            }
        }
        for p in &b.phis {
            for (pred, _) in &p.args {
                if !block_ok(*pred) {
                    out.push(err(
                        "S001-bad-edge",
                        loc,
                        format!("phi {} in {} names missing block {pred}", p.dst, b.id),
                    ));
                }
            }
        }
    }
    // Later checks index blocks by id; bail out while the CFG itself is
    // inconsistent rather than double-report from a corrupt shape.
    if out
        .iter()
        .any(|d| d.code == "S001-bad-edge" || d.code == "S002-block-id-mismatch")
    {
        return out;
    }

    // --- Register validity and definition sites ------------------------
    let mut defs: HashMap<VReg, (BlockId, DefSite)> = HashMap::new();
    let report_invalid = |out: &mut Vec<Diagnostic>, r: VReg, what: &str, loc: Loc| {
        if !reg_ok(r) {
            out.push(err(
                "S003-invalid-vreg",
                loc,
                format!("{what} names unallocated register {r}"),
            ));
            false
        } else {
            true
        }
    };
    for b in &f.blocks {
        let loc = Loc::Block(b.id.0);
        for p in &b.phis {
            if report_invalid(&mut out, p.dst, "phi destination", loc)
                && f.is_ssa
                && defs.insert(p.dst, (b.id, DefSite::Phi)).is_some()
            {
                out.push(err(
                    "S004-multiple-def",
                    loc,
                    format!("{} defined more than once (phi in {})", p.dst, b.id),
                ));
            } else if !f.is_ssa {
                defs.entry(p.dst).or_insert((b.id, DefSite::Phi));
            }
            for (_, a) in &p.args {
                report_invalid(&mut out, *a, "phi argument", loc);
            }
        }
        for (i, instr) in b.instrs.iter().enumerate() {
            if let Some(d) = instr.dst {
                if report_invalid(&mut out, d, "destination", loc) {
                    if f.is_ssa {
                        if defs.insert(d, (b.id, DefSite::Instr(i))).is_some() {
                            out.push(err(
                                "S004-multiple-def",
                                loc,
                                format!("{d} defined more than once (in {})", b.id),
                            ));
                        }
                    } else {
                        defs.entry(d).or_insert((b.id, DefSite::Instr(i)));
                    }
                }
            }
            for s in &instr.srcs {
                report_invalid(&mut out, *s, "source operand", loc);
            }
            check_instr_shape(&mut out, instr, b.id, f);
        }
        if let Terminator::Branch { cond, .. } = &b.term {
            report_invalid(&mut out, *cond, "branch condition", loc);
        }
    }
    for r in &f.output_srcs {
        report_invalid(&mut out, *r, "output register", Loc::None);
    }

    // --- Phi arity vs. predecessors ------------------------------------
    let preds = f.predecessors();
    for b in &f.blocks {
        let loc = Loc::Block(b.id.0);
        let bp = &preds[b.id.0 as usize];
        for p in &b.phis {
            if p.args.len() != bp.len() {
                out.push(err(
                    "S007-phi-arity",
                    loc,
                    format!(
                        "phi {} in {} has {} arguments for {} predecessors",
                        p.dst,
                        b.id,
                        p.args.len(),
                        bp.len()
                    ),
                ));
            } else {
                for (pred, _) in &p.args {
                    if !bp.contains(pred) {
                        out.push(err(
                            "S007-phi-arity",
                            loc,
                            format!(
                                "phi {} in {} names {pred}, which is not a predecessor",
                                p.dst, b.id
                            ),
                        ));
                    }
                }
            }
        }
    }

    // --- Reachability ---------------------------------------------------
    let mut reachable = vec![false; nblocks];
    let mut stack = vec![f.entry()];
    reachable[0] = true;
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.successors() {
            if !reachable[s.0 as usize] {
                reachable[s.0 as usize] = true;
                stack.push(s);
            }
        }
    }
    for b in &f.blocks {
        if !reachable[b.id.0 as usize] {
            out.push(Diagnostic::warning(
                Phase::SuifVm,
                "S011-unreachable-block",
                Loc::Block(b.id.0),
                format!("block {} is unreachable from the entry", b.id),
            ));
        }
    }

    // --- Uses: defined, and (SSA) dominated by their definition ---------
    let dom = f.is_ssa.then(|| DomInfo::compute(f));
    let check_use = |out: &mut Vec<Diagnostic>, r: VReg, block: BlockId, at: DefSite| {
        if !reg_ok(r) {
            return; // already reported as S003
        }
        let Some(&(def_block, def_site)) = defs.get(&r) else {
            out.push(err(
                "S005-undefined-vreg",
                Loc::Block(block.0),
                format!("{r} used in {block} but never defined"),
            ));
            return;
        };
        let Some(dom) = &dom else { return };
        if !reachable[block.0 as usize] {
            return; // dominance is meaningless off the reachable CFG
        }
        let dominated = if def_block == block {
            match (def_site, at) {
                (DefSite::Phi, _) => true,
                (DefSite::Instr(_), DefSite::Phi) => false,
                (DefSite::Instr(d), DefSite::Instr(u)) => d < u,
            }
        } else {
            dom.dominates(def_block, block)
        };
        if !dominated {
            out.push(err(
                "S006-undominated-use",
                Loc::Block(block.0),
                format!(
                    "{r} used in {block} but its definition in {def_block} does not dominate it"
                ),
            ));
        }
    };
    for b in &f.blocks {
        for p in &b.phis {
            // A phi argument is really a use at the end of the incoming
            // edge: the definition must dominate the predecessor.
            for (pred, a) in &p.args {
                check_use(&mut out, *a, *pred, DefSite::Instr(usize::MAX));
            }
        }
        for (i, instr) in b.instrs.iter().enumerate() {
            for s in &instr.srcs {
                check_use(&mut out, *s, b.id, DefSite::Instr(i));
            }
        }
        if let Terminator::Branch { cond, .. } = &b.term {
            check_use(&mut out, *cond, b.id, DefSite::Instr(usize::MAX));
        }
    }
    for r in &f.output_srcs {
        if reg_ok(*r) && !defs.contains_key(r) {
            out.push(err(
                "S005-undefined-vreg",
                Loc::None,
                format!("output register {r} never defined"),
            ));
        }
    }

    out
}

/// Per-instruction shape checks (destination presence, operand count,
/// immediate ranges).
fn check_instr_shape(out: &mut Vec<Diagnostic>, instr: &Instr, block: BlockId, f: &FunctionIr) {
    let loc = Loc::Block(block.0);
    match (instr.op, instr.dst) {
        (Opcode::Snx, Some(d)) => out.push(err(
            "S008-missing-dst",
            loc,
            format!("snx in {block} must not produce a value, but writes {d}"),
        )),
        (Opcode::Snx, None) => {}
        (op, None) => out.push(err(
            "S008-missing-dst",
            loc,
            format!("{op} in {block} has no destination register"),
        )),
        _ => {}
    }
    let want = expected_arity(instr.op);
    if instr.srcs.len() != want {
        out.push(err(
            "S009-bad-arity",
            loc,
            format!(
                "{} in {block} has {} operands, expected {want}",
                instr.op,
                instr.srcs.len()
            ),
        ));
    }
    match instr.op {
        Opcode::Lpr | Opcode::Snx if (instr.imm < 0 || instr.imm as usize >= f.feedback.len()) => {
            out.push(err(
                "S010-bad-slot",
                loc,
                format!(
                    "{} in {block} names feedback slot {} of {}",
                    instr.op,
                    instr.imm,
                    f.feedback.len()
                ),
            ));
        }
        Opcode::Lut if (instr.imm < 0 || instr.imm as usize >= f.luts.len()) => {
            out.push(err(
                "S010-bad-slot",
                loc,
                format!(
                    "lut in {block} names table {} of {}",
                    instr.imm,
                    f.luts.len()
                ),
            ));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::parser::parse;
    use roccc_suifvm::{lower_function, optimize, to_ssa};

    fn ssa_ir(src: &str, func: &str) -> FunctionIr {
        let prog = parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function(func).unwrap();
        let mut ir = lower_function(&prog, f, &[]).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        ir
    }

    const BRANCHY: &str = "void f(int a, int b, int* o) {
        int x;
        if (a < b) { x = a * 3; } else { x = b - a; }
        *o = x + 1; }";

    #[test]
    fn clean_ssa_ir_passes() {
        let ir = ssa_ir(BRANCHY, "f");
        assert_eq!(verify_ir(&ir), vec![]);
    }

    #[test]
    fn bad_edge_is_reported() {
        let mut ir = ssa_ir(BRANCHY, "f");
        ir.blocks[0].term = Terminator::Jump(BlockId(99));
        let codes: Vec<_> = verify_ir(&ir).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"S001-bad-edge"), "{codes:?}");
    }

    #[test]
    fn double_definition_is_reported() {
        let mut ir = ssa_ir(BRANCHY, "f");
        // Duplicate the first value-producing instruction.
        let dup = *ir.blocks[0]
            .instrs
            .iter()
            .find(|i| i.dst.is_some())
            .unwrap();
        ir.blocks[0].instrs.push(dup);
        let diags = verify_ir(&ir);
        assert!(
            diags.iter().any(|d| d.code == "S004-multiple-def"),
            "{diags:?}"
        );
    }

    #[test]
    fn undominated_use_is_reported() {
        let mut ir = ssa_ir(BRANCHY, "f");
        // Find a register defined in a branch arm (bb != 0) and use it in
        // the entry block, before the definition can dominate it.
        let arm_def = ir
            .blocks
            .iter()
            .skip(1)
            .flat_map(|b| b.instrs.iter())
            .find_map(|i| i.dst)
            .expect("branchy kernel defines values in arms");
        let ty = ir.ty(arm_def);
        let d = ir.new_vreg(ty);
        ir.blocks[0]
            .instrs
            .insert(0, Instr::new(Opcode::Mov, d, vec![arm_def], 0, ty));
        let diags = verify_ir(&ir);
        assert!(
            diags.iter().any(|d| d.code == "S006-undominated-use"),
            "{diags:?}"
        );
    }

    #[test]
    fn phi_arity_mismatch_is_reported() {
        let mut ir = ssa_ir(BRANCHY, "f");
        let join = ir
            .blocks
            .iter()
            .position(|b| !b.phis.is_empty())
            .expect("branchy kernel has a phi");
        ir.blocks[join].phis[0].args.pop();
        let diags = verify_ir(&ir);
        assert!(
            diags.iter().any(|d| d.code == "S007-phi-arity"),
            "{diags:?}"
        );
    }

    #[test]
    fn undefined_vreg_is_reported() {
        let mut ir = ssa_ir(BRANCHY, "f");
        let ghost = ir.new_vreg(roccc_cparse::types::IntType::int());
        let last = ir.blocks.len() - 1;
        let dst = ir.new_vreg(roccc_cparse::types::IntType::int());
        ir.blocks[last].instrs.push(Instr::new(
            Opcode::Mov,
            dst,
            vec![ghost],
            0,
            roccc_cparse::types::IntType::int(),
        ));
        let diags = verify_ir(&ir);
        assert!(
            diags.iter().any(|d| d.code == "S005-undefined-vreg"),
            "{diags:?}"
        );
    }

    #[test]
    fn invalid_vreg_and_arity_are_reported() {
        let mut ir = ssa_ir("void g(int a, int* o) { *o = a + 2; }", "g");
        let ty = roccc_cparse::types::IntType::int();
        let d = ir.new_vreg(ty);
        // A register index far beyond the allocator.
        ir.blocks[0]
            .instrs
            .push(Instr::new(Opcode::Mov, d, vec![VReg(4096)], 0, ty));
        let d2 = ir.new_vreg(ty);
        // add with one operand.
        ir.blocks[0]
            .instrs
            .push(Instr::new(Opcode::Add, d2, vec![d], 0, ty));
        let codes: Vec<_> = verify_ir(&ir).iter().map(|d| d.code).collect();
        assert!(codes.contains(&"S003-invalid-vreg"), "{codes:?}");
        assert!(codes.contains(&"S009-bad-arity"), "{codes:?}");
    }

    #[test]
    fn bad_feedback_slot_is_reported() {
        let mut ir = ssa_ir("void g(int a, int* o) { *o = a + 2; }", "g");
        let ty = roccc_cparse::types::IntType::int();
        let d = ir.new_vreg(ty);
        ir.blocks[0]
            .instrs
            .insert(0, Instr::new(Opcode::Lpr, d, vec![], 3, ty));
        let diags = verify_ir(&ir);
        assert!(diags.iter().any(|d| d.code == "S010-bad-slot"), "{diags:?}");
    }

    #[test]
    fn unreachable_block_is_a_warning() {
        let mut ir = ssa_ir("void g(int a, int* o) { *o = a + 2; }", "g");
        ir.new_block(); // dangling, nothing jumps to it
        let diags = verify_ir(&ir);
        let hit = diags
            .iter()
            .find(|d| d.code == "S011-unreachable-block")
            .expect("dangling block flagged");
        assert_eq!(hit.severity, crate::Severity::Warning);
    }
}
