//! Range-annotation checks over the SSA IR (`W0xx` family, IR half).
//!
//! The range analysis (`roccc_suifvm::range`) claims, per virtual
//! register, a sound interval plus known-zero bits over the register's
//! *exact* `i64` value. Downstream consumers — range-driven narrowing,
//! constant folding, the datapath `W003`/`W004` checks — trust those
//! claims, so this module re-checks their internal consistency against
//! the IR they describe:
//!
//! * `W001-range-malformed` — an empty interval (`lo > hi`), a
//!   known-zero mask on a possibly-negative range (negative values
//!   sign-extend ones into every high bit), an upper bound above the
//!   mask-implied cap, or an interval escaping the defining
//!   instruction's declared sub-64-bit type (forward width inference is
//!   value-preserving below the 64-bit saturation cap, so the exact
//!   value always fits);
//! * `W002-range-const-mismatch` — an `LDC` destination whose range
//!   does not contain the loaded immediate: the one case where the
//!   exact value is known syntactically, so any sound range must
//!   contain it.

use crate::diag::{Diagnostic, Loc, Phase};
use roccc_cparse::types::IntType;
use roccc_suifvm::ir::{FunctionIr, Opcode, VReg};
use roccc_suifvm::range::RangeMap;
use std::collections::HashMap;

fn rerr(block: u32, reg: VReg, msg: String) -> Diagnostic {
    Diagnostic::error(
        Phase::SuifVm,
        "W001-range-malformed",
        Loc::Block(block),
        format!("{reg}: {msg}"),
    )
}

/// Checks every range annotation in `map` against the IR it describes.
/// Returns the findings (empty = clean). Registers without annotations
/// are never findings: the analysis is partial by design.
pub fn verify_ranges(ir: &FunctionIr, map: &RangeMap) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Where (block, type) each register is defined: instruction
    // destinations and phi destinations.
    let mut def: HashMap<VReg, (u32, IntType)> = HashMap::new();
    for b in &ir.blocks {
        for phi in &b.phis {
            def.insert(phi.dst, (b.id.0, phi.ty));
        }
        for ins in &b.instrs {
            if let Some(d) = ins.dst {
                def.insert(d, (b.id.0, ins.ty));
            }
        }
    }

    for (reg, r) in map.iter() {
        let (block, ty) = match def.get(&reg) {
            Some(&(b, t)) => (b, Some(t)),
            None => (0, None),
        };
        if r.lo > r.hi {
            out.push(rerr(
                block,
                reg,
                format!("empty range [{}, {}]", r.lo, r.hi),
            ));
            continue;
        }
        if r.lo < 0 && r.known_zero != 0 {
            out.push(rerr(
                block,
                reg,
                format!(
                    "range [{}, {}] may go negative but claims known-zero bits {:#x}",
                    r.lo, r.hi, r.known_zero
                ),
            ));
        } else if r.lo >= 0 && r.hi > (!r.known_zero & (i64::MAX as u64)) as i64 {
            out.push(rerr(
                block,
                reg,
                format!(
                    "upper bound {} exceeds the cap implied by known-zero mask {:#x}",
                    r.hi, r.known_zero
                ),
            ));
        }
        if let Some(ty) = ty {
            if ty.bits < IntType::MAX_BITS && (r.lo < ty.min_value() || r.hi > ty.max_value()) {
                out.push(rerr(
                    block,
                    reg,
                    format!("range [{}, {}] escapes the defining type {ty}", r.lo, r.hi),
                ));
            }
        }
    }

    // LDC destinations: the exact value is the immediate itself.
    for b in &ir.blocks {
        for ins in &b.instrs {
            if ins.op != Opcode::Ldc {
                continue;
            }
            let Some(d) = ins.dst else { continue };
            let Some(r) = map.get(d) else { continue };
            if !r.contains(ins.imm) {
                out.push(Diagnostic::error(
                    Phase::SuifVm,
                    "W002-range-const-mismatch",
                    Loc::Block(b.id.0),
                    format!(
                        "{d}: LDC loads {} but its range [{}, {}] excludes it",
                        ins.imm, r.lo, r.hi
                    ),
                ));
            }
        }
    }

    out
}

/// Convenience: analyze `ir` and verify the result in one step (used by
/// the pipeline gate and the tests).
pub fn verify_fresh_ranges(ir: &FunctionIr) -> (RangeMap, Vec<Diagnostic>) {
    let map = roccc_suifvm::range::analyze(ir);
    let diags = verify_ranges(ir, &map);
    (map, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::parser::parse;
    use roccc_suifvm::range::{analyze, ValueRange};
    use roccc_suifvm::{lower_function, optimize, to_ssa};

    fn ir_of(src: &str, func: &str) -> FunctionIr {
        let prog = parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function(func).unwrap();
        let mut ir = lower_function(&prog, f, &[]).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        ir
    }

    const SRC: &str = "void f(int a, int b, int* o) { *o = (a + b) * 3 + (a & 15); }";

    #[test]
    fn fresh_analysis_is_clean() {
        let ir = ir_of(SRC, "f");
        let (map, diags) = verify_fresh_ranges(&ir);
        assert!(!map.is_empty());
        assert_eq!(diags, vec![]);
    }

    #[test]
    fn empty_interval_is_w001() {
        let ir = ir_of(SRC, "f");
        let mut map = analyze(&ir);
        let reg = map.iter().next().unwrap().0;
        map.set(
            reg,
            ValueRange {
                lo: 5,
                hi: 4,
                known_zero: 0,
            },
        );
        let diags = verify_ranges(&ir, &map);
        assert!(
            diags.iter().any(|d| d.code == "W001-range-malformed"),
            "{diags:?}"
        );
    }

    #[test]
    fn negative_range_with_mask_is_w001() {
        let ir = ir_of(SRC, "f");
        let mut map = analyze(&ir);
        let reg = map.iter().next().unwrap().0;
        map.set(
            reg,
            ValueRange {
                lo: -1,
                hi: 4,
                known_zero: 0x8,
            },
        );
        let diags = verify_ranges(&ir, &map);
        assert!(
            diags.iter().any(|d| d.code == "W001-range-malformed"),
            "{diags:?}"
        );
    }

    #[test]
    fn type_escape_is_w001() {
        // `a & 15` has a 4-bit unsigned declared type; a range claiming
        // values beyond 15 escapes it.
        let ir = ir_of(SRC, "f");
        let mut map = analyze(&ir);
        let and_dst = ir
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find(|i| i.op == Opcode::And)
            .and_then(|i| i.dst)
            .expect("an AND instruction");
        map.set(and_dst, ValueRange::interval(0, 99));
        let diags = verify_ranges(&ir, &map);
        assert!(
            diags.iter().any(|d| d.code == "W001-range-malformed"),
            "{diags:?}"
        );
    }

    #[test]
    fn ldc_exclusion_is_w002() {
        let ir = ir_of(SRC, "f");
        let mut map = analyze(&ir);
        let ldc_dst = ir
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find(|i| i.op == Opcode::Ldc)
            .and_then(|i| i.dst)
            .expect("an LDC instruction");
        map.set(ldc_dst, ValueRange::interval(1000, 2000));
        let diags = verify_ranges(&ir, &map);
        assert!(
            diags.iter().any(|d| d.code == "W002-range-const-mismatch"),
            "{diags:?}"
        );
    }
}
