//! Dependence-graph and MinII verification (`L0xx`).
//!
//! Re-checks a `suifvm::deps::DepGraph` artifact from independent
//! evidence: the kernel description it was derived from and the SSA IR
//! whose feedback cycles it summarizes. Like every family in this crate,
//! the checks trust nothing the producing pass computed — edges are
//! recomputed from the affine subscripts, recurrence slots from LPR→SNX
//! reachability, and the MinII arithmetic from its definition.
//!
//! * `L001-malformed-graph` — structural integrity: edge endpoints in
//!   range, distance-vector lengths matching the dimension count,
//!   recurrence slots naming real feedback variables, sane distances;
//! * `L002-edge-mismatch` — the access list and surviving edges must
//!   match a recomputation from the kernel's windows and outputs;
//! * `L003-missing-recurrence` — a feedback slot whose next value
//!   depends on its previous value must appear as a recurrence (and only
//!   cyclic slots may);
//! * `L004-mii-inconsistent` — `RecMII = max ⌈latency/distance⌉`,
//!   `ResMII = ⌈used/available⌉`, `MinII = max(RecMII, ResMII, 1)`;
//! * `L005-overlapping-writes` — transform-legality re-check: no two
//!   distinct per-iteration writes of one output array may be able to
//!   touch the same element (the parallel write lanes cannot order
//!   them).

use crate::diag::{Diagnostic, Loc, Phase};
use roccc_hlir::deps::overlapping_writes;
use roccc_hlir::Kernel;
use roccc_suifvm::deps::{find_recurrences, memory_edges, res_mii, DepGraph};
use roccc_suifvm::ir::{FunctionIr, Opcode};

fn err(code: &'static str, message: impl Into<String>) -> Diagnostic {
    Diagnostic::error(Phase::Deps, code, Loc::None, message)
}

/// Runs every `L0xx` check over a dependence-graph artifact.
pub fn verify_deps(graph: &DepGraph, kernel: &Kernel, ir: &FunctionIr) -> Vec<Diagnostic> {
    let mut v = Vec::new();

    // -- L001: structural integrity ------------------------------------------
    let n = graph.accesses.len();
    let ndims = graph.dims.len();
    for (i, e) in graph.edges.iter().enumerate() {
        if e.src >= n || e.dst >= n {
            v.push(err(
                "L001-malformed-graph",
                format!(
                    "edge {i} endpoints a{} -> a{} out of range ({n} accesses)",
                    e.src, e.dst
                ),
            ));
        }
        if e.dist.len() != ndims {
            v.push(err(
                "L001-malformed-graph",
                format!(
                    "edge {i} has {} distance entries for {ndims} loop dims",
                    e.dist.len()
                ),
            ));
        }
    }
    for r in &graph.recurrences {
        if r.slot >= kernel.feedback.len() {
            v.push(err(
                "L001-malformed-graph",
                format!(
                    "recurrence `{}` names feedback slot {} of {}",
                    r.name,
                    r.slot,
                    kernel.feedback.len()
                ),
            ));
        } else if kernel.feedback[r.slot].name != r.name {
            v.push(err(
                "L001-malformed-graph",
                format!(
                    "recurrence slot {} is `{}` but the graph calls it `{}`",
                    r.slot, kernel.feedback[r.slot].name, r.name
                ),
            ));
        }
        if r.distance == 0 || r.latency_cycles == 0 {
            v.push(err(
                "L001-malformed-graph",
                format!(
                    "recurrence `{}` has distance {} / latency {} cycles (both must be >= 1)",
                    r.name, r.distance, r.latency_cycles
                ),
            ));
        }
    }
    if graph.min_ii == 0 {
        v.push(err("L001-malformed-graph", "min_ii must be at least 1"));
    }

    // -- L002: edges must match a recomputation ------------------------------
    let (want_acc, want_edges) = memory_edges(kernel);
    if graph.accesses.len() != want_acc.len()
        || graph
            .accesses
            .iter()
            .zip(&want_acc)
            .any(|(a, b)| a.array != b.array || a.write != b.write || a.index != b.index)
    {
        v.push(err(
            "L002-edge-mismatch",
            format!(
                "access list disagrees with the kernel: artifact has {}, recomputation {}",
                graph.accesses.len(),
                want_acc.len()
            ),
        ));
    } else if graph.edges.len() != want_edges.len()
        || graph.edges.iter().zip(&want_edges).any(|(a, b)| {
            a.src != b.src
                || a.dst != b.dst
                || a.kind != b.kind
                || a.dist != b.dist
                || a.carried != b.carried
        })
    {
        v.push(err(
            "L002-edge-mismatch",
            format!(
                "dependence edges disagree with recomputation from the kernel \
                 (artifact {}, recomputed {})",
                graph.edges.len(),
                want_edges.len()
            ),
        ));
    }

    // -- L003: recurrence completeness ---------------------------------------
    let zero = |_: Opcode, _: u8| 0.0;
    let cyclic: Vec<usize> = find_recurrences(ir, 1.0, &zero)
        .iter()
        .map(|r| r.slot)
        .collect();
    let listed: Vec<usize> = graph.recurrences.iter().map(|r| r.slot).collect();
    for s in &cyclic {
        if !listed.contains(s) {
            let name = ir
                .feedback
                .get(*s)
                .map(|f| f.name.as_str().to_string())
                .unwrap_or_default();
            v.push(err(
                "L003-missing-recurrence",
                format!(
                    "feedback slot {s} (`{name}`) carries an LPR->SNX cycle \
                     but the graph lists no recurrence for it"
                ),
            ));
        }
    }
    for s in &listed {
        if !cyclic.contains(s) {
            v.push(err(
                "L003-missing-recurrence",
                format!("graph lists a recurrence for slot {s}, which has no LPR->SNX cycle"),
            ));
        }
    }

    // -- L004: MinII arithmetic ----------------------------------------------
    for r in &graph.recurrences {
        let want = r.latency_cycles.div_ceil(r.distance.max(1)).max(1);
        if r.mii != want {
            v.push(err(
                "L004-mii-inconsistent",
                format!(
                    "recurrence `{}`: MII {} but ceil({}/{}) = {want}",
                    r.name, r.mii, r.latency_cycles, r.distance
                ),
            ));
        }
    }
    let want_rec = graph
        .recurrences
        .iter()
        .map(|r| r.mii)
        .max()
        .unwrap_or(1)
        .max(1);
    if graph.rec_mii != want_rec {
        v.push(err(
            "L004-mii-inconsistent",
            format!("rec_mii {} but recurrences imply {want_rec}", graph.rec_mii),
        ));
    }
    let want_res = res_mii(graph.mult_blocks_used, graph.mult_blocks_avail);
    if graph.res_mii != want_res {
        v.push(err(
            "L004-mii-inconsistent",
            format!(
                "res_mii {} but {} blocks over {:?} imply {want_res}",
                graph.res_mii, graph.mult_blocks_used, graph.mult_blocks_avail
            ),
        ));
    }
    let want_min = graph.rec_mii.max(graph.res_mii).max(1);
    if graph.min_ii != want_min {
        v.push(err(
            "L004-mii-inconsistent",
            format!(
                "min_ii {} but max(rec {}, res {}, 1) = {want_min}",
                graph.min_ii, graph.rec_mii, graph.res_mii
            ),
        ));
    }

    // -- L005: transform-legality re-check -----------------------------------
    for o in &kernel.outputs {
        if let Some((i, j, dist)) = overlapping_writes(&o.writes, &kernel.dims) {
            let d: Vec<String> = dist.iter().map(|x| x.to_string()).collect();
            v.push(err(
                "L005-overlapping-writes",
                format!(
                    "output array `{}` writes {i} and {j} can touch the same element \
                     (distance ({})); write lanes cannot preserve program order",
                    o.array,
                    d.join(", ")
                ),
            ));
        }
    }

    v
}
