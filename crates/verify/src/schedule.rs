//! Modulo-schedule verification (`M0xx`).
//!
//! Re-derives the legality of a [`Schedule`] artifact from independent
//! evidence: the data path it schedules and the dependence graph whose
//! MinII bounds it worked against. Nothing the scheduler computed is
//! trusted — the modulo reservation table is rebuilt from the slot
//! assignment, recurrence slack from the LPR/SNX slots, and the II
//! arithmetic from its definitions.
//!
//! * `M001-malformed-schedule` — structural integrity: one slot per
//!   data-path op, a positive II, a length matching the latest slot,
//!   slots agreeing with the (rescheduled) op stages, no dependence edge
//!   scheduled backwards, and the data path stamped with the same II;
//! * `M002-modulo-resource-conflict` — the MRT rebuilt from the slots
//!   must match the recorded peak, and (for a real modulo schedule) no
//!   congruence row may demand more block-multiplier tiles than the
//!   device budget;
//! * `M003-recurrence-slack` — every recurrence must close within its
//!   window: `t(SNX) − t(LPR) ≤ distance · II − 1`;
//! * `M004-ii-below-min` — `RecMII`/`ResMII` recomputed from the
//!   recurrence list and the data path's multiplier tiles must match the
//!   artifact, and a non-fallback schedule may not claim an II below
//!   their maximum;
//! * `M005-prologue-epilogue` — stage count and fill/drain cycles must
//!   cover the schedule length: `stage_count = ⌈len/II⌉`, prologue =
//!   epilogue = `(stage_count − 1) · II`, and `stage_count · II ≥ len`.

use crate::diag::{Diagnostic, Loc, Phase};
use roccc_datapath::graph::{Datapath, Value};
use roccc_schedule::{mrt_rows, mult_tiles, Schedule};
use roccc_suifvm::deps::DepGraph;
use roccc_suifvm::ir::Opcode;

fn err(code: &'static str, loc: Loc, message: impl Into<String>) -> Diagnostic {
    Diagnostic::error(Phase::Schedule, code, loc, message)
}

/// Runs every `M0xx` check over a modulo-schedule artifact.
pub fn verify_schedule(s: &Schedule, dp: &Datapath, deps: &DepGraph) -> Vec<Diagnostic> {
    let mut v = Vec::new();

    // -- M001: structural integrity ------------------------------------------
    if s.ii == 0 {
        v.push(err(
            "M001-malformed-schedule",
            Loc::None,
            "initiation interval must be at least 1",
        ));
    }
    if s.slots.len() != dp.ops.len() {
        v.push(err(
            "M001-malformed-schedule",
            Loc::None,
            format!("{} slots for {} data-path ops", s.slots.len(), dp.ops.len()),
        ));
        // Every later check indexes slots by op: bail out.
        return v;
    }
    let want_len = s.slots.iter().copied().max().unwrap_or(0) + 1;
    if s.len != want_len {
        v.push(err(
            "M001-malformed-schedule",
            Loc::None,
            format!(
                "schedule length {} but the latest slot implies {want_len}",
                s.len
            ),
        ));
    }
    for (i, op) in dp.ops.iter().enumerate() {
        if s.slots[i] != op.stage {
            v.push(err(
                "M001-malformed-schedule",
                Loc::Op(i as u32),
                format!(
                    "op {i} scheduled at slot {} but the data path stages it at {}",
                    s.slots[i], op.stage
                ),
            ));
        }
        for src in &op.srcs {
            if let Value::Op(o) = src {
                if s.slots[o.0 as usize] > s.slots[i] {
                    v.push(err(
                        "M001-malformed-schedule",
                        Loc::Op(i as u32),
                        format!(
                            "op {i} at slot {} consumes op {} scheduled later at slot {}",
                            s.slots[i], o.0, s.slots[o.0 as usize]
                        ),
                    ));
                }
            }
        }
    }
    if u64::from(dp.ii.max(1)) != s.ii.max(1) {
        v.push(err(
            "M001-malformed-schedule",
            Loc::None,
            format!(
                "data path is stamped with II {} but the schedule claims {}",
                dp.ii, s.ii
            ),
        ));
    }

    let ii = s.ii.max(1);

    // -- M002: modulo reservation table --------------------------------------
    let rows = mrt_rows(dp, &s.slots, ii);
    let peak = rows.iter().copied().max().unwrap_or(0);
    if peak != s.mrt_peak {
        v.push(err(
            "M002-modulo-resource-conflict",
            Loc::None,
            format!(
                "recorded MRT peak {} but the slot assignment implies {peak}",
                s.mrt_peak
            ),
        ));
    }
    if s.fallback.is_none() {
        if let Some(avail) = s.mult_blocks_avail {
            for (row, demand) in rows.iter().enumerate() {
                if *demand > avail {
                    v.push(err(
                        "M002-modulo-resource-conflict",
                        Loc::None,
                        format!(
                            "MRT row {row} (slots ≡ {row} mod {ii}) demands {demand} \
                             block-multiplier tile(s) but only {avail} available"
                        ),
                    ));
                }
            }
        }
    }

    // -- M003: recurrence slack ----------------------------------------------
    for r in &deps.recurrences {
        let Some((_, snx_v)) = dp.feedback.get(r.slot) else {
            v.push(err(
                "M003-recurrence-slack",
                Loc::None,
                format!(
                    "recurrence `{}` names feedback slot {} of {}",
                    r.name,
                    r.slot,
                    dp.feedback.len()
                ),
            ));
            continue;
        };
        let Value::Op(snx_op) = *snx_v else {
            continue; // Constant/input next-value: no cycle to close.
        };
        let t_lpr = dp
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.op == Opcode::Lpr && o.imm == r.slot as i64)
            .map(|(i, _)| s.slots[i])
            .min();
        let Some(t_lpr) = t_lpr else { continue };
        let t_snx = s.slots[snx_op.0 as usize];
        let slack = u64::from(t_snx.saturating_sub(t_lpr));
        let limit = r.distance.max(1) * ii - 1;
        if slack > limit {
            v.push(err(
                "M003-recurrence-slack",
                Loc::Op(snx_op.0),
                format!(
                    "recurrence `{}` spans {slack} slot(s) from LPR to SNX but \
                     distance {} at II {ii} allows at most {limit}",
                    r.name, r.distance
                ),
            ));
        }
    }

    // -- M004: II arithmetic --------------------------------------------------
    let want_rec = deps
        .recurrences
        .iter()
        .map(|r| r.mii)
        .max()
        .unwrap_or(1)
        .max(1);
    if s.rec_mii != want_rec {
        v.push(err(
            "M004-ii-below-min",
            Loc::None,
            format!(
                "rec_mii {} but the recurrence list implies {want_rec}",
                s.rec_mii
            ),
        ));
    }
    let total_tiles: u64 = (0..dp.ops.len()).map(|i| mult_tiles(dp, i)).sum();
    let want_res = match s.mult_blocks_avail {
        Some(a) if a > 0 => total_tiles.div_ceil(a).max(1),
        _ => 1,
    };
    if s.res_mii != want_res {
        v.push(err(
            "M004-ii-below-min",
            Loc::None,
            format!(
                "res_mii {} but {total_tiles} tile(s) over {:?} imply {want_res}",
                s.res_mii, s.mult_blocks_avail
            ),
        ));
    }
    let want_min = want_rec.max(want_res);
    if s.min_ii != want_min {
        v.push(err(
            "M004-ii-below-min",
            Loc::None,
            format!(
                "min_ii {} but max(rec {want_rec}, res {want_res}) = {want_min}",
                s.min_ii
            ),
        ));
    }
    // A fallback schedule re-emits the latch pipeline (II 1, budget priced
    // as unshared), so only real modulo schedules must clear the bound.
    if s.fallback.is_none() && ii < want_min {
        v.push(err(
            "M004-ii-below-min",
            Loc::None,
            format!("achieved II {ii} is below MinII {want_min}"),
        ));
    }

    // -- M005: prologue/epilogue coverage -------------------------------------
    let want_stages = u64::from(s.len).div_ceil(ii) as u32;
    if s.stage_count != want_stages {
        v.push(err(
            "M005-prologue-epilogue",
            Loc::None,
            format!(
                "stage count {} but ⌈{}/{}⌉ = {want_stages}",
                s.stage_count, s.len, ii
            ),
        ));
    }
    let want_fill = (u64::from(want_stages.max(1)) - 1) * ii;
    if s.prologue_cycles != want_fill || s.epilogue_cycles != want_fill {
        v.push(err(
            "M005-prologue-epilogue",
            Loc::None,
            format!(
                "prologue {} / epilogue {} cycle(s) but {} stage(s) at II {ii} fill in {want_fill}",
                s.prologue_cycles, s.epilogue_cycles, want_stages
            ),
        ));
    }
    if u64::from(s.stage_count) * ii < u64::from(s.len) {
        v.push(err(
            "M005-prologue-epilogue",
            Loc::None,
            format!(
                "{} stage(s) at II {ii} cover {} slot(s), short of the schedule length {}",
                s.stage_count,
                u64::from(s.stage_count) * ii,
                s.len
            ),
        ));
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_datapath::{build_datapath, narrow_widths, pipeline_datapath, DefaultDelayModel};
    use roccc_schedule::modulo_schedule;
    use roccc_suifvm::{lower_function, optimize, to_ssa};

    fn dp_of(src: &str, func: &str, period: f64) -> Datapath {
        let prog = roccc_cparse::parser::parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function(func).unwrap();
        let mut ir = lower_function(&prog, f, &[]).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        let mut dp = build_datapath(&ir).unwrap();
        pipeline_datapath(&mut dp, period, &DefaultDelayModel);
        narrow_widths(&mut dp);
        dp
    }

    fn deps_of(dp: &Datapath) -> DepGraph {
        DepGraph {
            dims: vec![],
            accesses: vec![],
            edges: vec![],
            recurrences: vec![],
            unknown_accesses: 0,
            mult_blocks_used: 0,
            mult_blocks_avail: None,
            rec_mii: 1,
            res_mii: 1,
            min_ii: 1,
            body_latency: dp.num_stages,
        }
    }

    fn fixture() -> (Schedule, Datapath, DepGraph) {
        let dp = dp_of(
            "void f(int16 a, int16 b, int16 c, int16 d, int* o) {
               *o = a * b + c * d + a; }",
            "f",
            5.0,
        );
        let deps = deps_of(&dp);
        let s = modulo_schedule(&dp, &deps, 0, &DefaultDelayModel);
        (s, dp, deps)
    }

    fn codes(v: &[Diagnostic]) -> Vec<&'static str> {
        v.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_schedule_has_no_findings() {
        let (s, dp, deps) = fixture();
        assert!(verify_schedule(&s, &dp, &deps).is_empty());
    }

    #[test]
    fn m001_flags_slot_arity_and_inversion() {
        let (mut s, dp, deps) = fixture();
        s.slots.pop();
        assert!(codes(&verify_schedule(&s, &dp, &deps)).contains(&"M001-malformed-schedule"));

        let (mut s, dp, deps) = fixture();
        // Move the last op before its sources: an inversion (and a stage
        // disagreement with the data path).
        *s.slots.last_mut().unwrap() = 0;
        let found = codes(&verify_schedule(&s, &dp, &deps));
        assert!(found.contains(&"M001-malformed-schedule"), "{found:?}");
    }

    #[test]
    fn m002_flags_mrt_peak_lie() {
        let (mut s, dp, deps) = fixture();
        s.mrt_peak += 1;
        let found = codes(&verify_schedule(&s, &dp, &deps));
        assert!(
            found.contains(&"M002-modulo-resource-conflict"),
            "{found:?}"
        );
    }

    #[test]
    fn m003_flags_excess_recurrence_slack() {
        // An accumulator kernel with a genuine LPR→SNX recurrence.
        let prog = roccc_cparse::parser::parse(
            "void acc(int t0, int* t1) {
               int s; int c = ROCCC_load_prev(s) + t0;
               ROCCC_store2next(s, c);
               *t1 = c; }",
        )
        .unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function("acc").unwrap();
        let fb = vec![roccc_hlir::kernel::FeedbackVar {
            name: "s".into(),
            ty: roccc_cparse::types::IntType::int(),
            init: 0,
        }];
        let mut ir = lower_function(&prog, f, &fb).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        let mut dp = build_datapath(&ir).unwrap();
        pipeline_datapath(&mut dp, 100.0, &DefaultDelayModel);
        narrow_widths(&mut dp);
        let mut deps = deps_of(&dp);
        deps.recurrences.push(roccc_suifvm::deps::Recurrence {
            slot: 0,
            name: "s".into(),
            ops: 2,
            latency_ns: 1.0,
            latency_cycles: 1,
            distance: 1,
            mii: 1,
        });
        let mut s = modulo_schedule(&dp, &deps, 0, &DefaultDelayModel);
        assert!(verify_schedule(&s, &dp, &deps).is_empty());
        // Corrupt: stretch the SNX op's slot past the window.
        let Value::Op(snx) = dp.feedback[0].1 else {
            panic!("SNX closes on an op");
        };
        s.slots[snx.0 as usize] += 3;
        s.len += 3;
        let found = codes(&verify_schedule(&s, &dp, &deps));
        assert!(found.contains(&"M003-recurrence-slack"), "{found:?}");
    }

    #[test]
    fn m004_flags_ii_below_min() {
        let (mut s, mut dp, deps) = fixture();
        // Claim a budget that makes MinII 2 while still claiming II 1.
        s.mult_blocks_avail = Some(1);
        s.res_mii = 2;
        s.min_ii = 2;
        dp.ii = 1;
        let found = codes(&verify_schedule(&s, &dp, &deps));
        assert!(found.contains(&"M004-ii-below-min"), "{found:?}");
    }

    #[test]
    fn m005_flags_uncovered_schedule() {
        let (mut s, dp, deps) = fixture();
        s.stage_count = 0;
        s.prologue_cycles = 0;
        s.epilogue_cycles = 0;
        let found = codes(&verify_schedule(&s, &dp, &deps));
        assert!(found.contains(&"M005-prologue-epilogue"), "{found:?}");
    }
}
