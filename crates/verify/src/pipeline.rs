//! Process-network (streaming pipeline) verification — the `P0xx` family.
//!
//! `roccc-stream` composes compiled kernels into a dataflow pipeline:
//! stages connected by sized FIFO channels. This module checks the
//! *composition* invariants that no single-kernel phase can see:
//!
//! * every port binding resolves to a real stage port (`P001`);
//! * producer and consumer move the same number of elements over each
//!   channel, and the consumer never asks for an address the producer's
//!   address space cannot cover (`P002`);
//! * every FIFO is at least as deep as the producer's reorder span plus
//!   one burst — shallower channels deadlock: the producer blocks on a
//!   full FIFO whose head element cannot commit until a *later* write
//!   arrives (`P003`);
//! * no consumer port is driven by two producers (`P004`);
//! * statically underivable rates fell back to a whole-array FIFO
//!   (`P005`, warning);
//! * the stage graph is acyclic — a Kahn-network cycle with finite FIFOs
//!   and no initial tokens cannot fire (`P006`);
//! * a channel narrows the element width producer → consumer (`P007`,
//!   warning).
//!
//! The checks run over a plain-data [`PipelineView`] so this crate stays
//! independent of `roccc-stream`; the stream crate populates the view
//! from its compiled pipeline and gates the findings under the usual
//! [`crate::VerifyLevel`] rules.

use crate::diag::{Diagnostic, Loc, Phase, Severity};

/// One array port of a stage, as the checks need it.
#[derive(Debug, Clone)]
pub struct PortView {
    /// Array (function parameter) name.
    pub array: String,
    /// Flat element count of the declared array.
    pub len: usize,
    /// Element width in bits.
    pub elem_bits: u8,
}

/// A stage's streamable surface: its input windows and output arrays.
#[derive(Debug, Clone, Default)]
pub struct StageView {
    /// Stage name (unique within the pipeline).
    pub name: String,
    /// Input window arrays.
    pub inputs: Vec<PortView>,
    /// Output arrays.
    pub outputs: Vec<PortView>,
}

/// One `producer.array -> consumer.array` binding as written in the
/// pipeline description (resolved or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindView {
    /// Producer stage name.
    pub from_stage: String,
    /// Producer output array.
    pub from_array: String,
    /// Consumer stage name.
    pub to_stage: String,
    /// Consumer input array.
    pub to_array: String,
}

impl std::fmt::Display for BindView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{} -> {}.{}",
            self.from_stage, self.from_array, self.to_stage, self.to_array
        )
    }
}

/// A resolved channel with its statically derived rate facts.
#[derive(Debug, Clone)]
pub struct ChannelView {
    /// The binding this channel realizes.
    pub bind: BindView,
    /// Flat element count of the producer's output array.
    pub produced_len: usize,
    /// Flat element count of the consumer's input array.
    pub consumed_len: usize,
    /// Producer element width (bits).
    pub producer_bits: u8,
    /// Consumer element width (bits).
    pub consumer_bits: u8,
    /// Elements the producer pushes per firing.
    pub burst: usize,
    /// Deadlock-free minimum FIFO depth (reorder span + burst).
    pub min_depth: usize,
    /// Configured/derived FIFO depth.
    pub depth: usize,
    /// Whether the producer's rates were statically derivable.
    pub static_rates: bool,
    /// First flat address the consumer's scan reads.
    pub first_consumed_addr: i64,
}

/// Everything the `P0xx` checks need to know about one pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineView {
    /// Pipeline name (for messages only).
    pub name: String,
    /// All stages, in declaration order.
    pub stages: Vec<StageView>,
    /// All bindings, explicit and auto-derived, resolved or not.
    pub binds: Vec<BindView>,
    /// The channels built from the resolvable bindings.
    pub channels: Vec<ChannelView>,
}

fn err(code: &'static str, msg: String) -> Diagnostic {
    Diagnostic::error(Phase::Stream, code, Loc::None, msg)
}

fn warn(code: &'static str, msg: String) -> Diagnostic {
    Diagnostic::warning(Phase::Stream, code, Loc::None, msg)
}

/// Runs every pipeline-composition check. Returns all findings
/// (empty = clean); severities follow the registry in the module docs.
pub fn verify_pipeline(view: &PipelineView) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // P001 — every bind endpoint names a real stage port.
    for b in &view.binds {
        let from = view.stages.iter().find(|s| s.name == b.from_stage);
        let to = view.stages.iter().find(|s| s.name == b.to_stage);
        match from {
            None => out.push(err(
                "P001-dangling-port",
                format!(
                    "bind `{b}`: producer stage `{}` does not exist",
                    b.from_stage
                ),
            )),
            Some(s) if !s.outputs.iter().any(|p| p.array == b.from_array) => out.push(err(
                "P001-dangling-port",
                format!(
                    "bind `{b}`: stage `{}` has no output array `{}`",
                    b.from_stage, b.from_array
                ),
            )),
            _ => {}
        }
        match to {
            None => out.push(err(
                "P001-dangling-port",
                format!("bind `{b}`: consumer stage `{}` does not exist", b.to_stage),
            )),
            Some(s) if !s.inputs.iter().any(|p| p.array == b.to_array) => out.push(err(
                "P001-dangling-port",
                format!(
                    "bind `{b}`: stage `{}` has no input window `{}`",
                    b.to_stage, b.to_array
                ),
            )),
            _ => {}
        }
    }

    // P004 — at most one producer per consumer port.
    for (i, b) in view.binds.iter().enumerate() {
        if view.binds[..i]
            .iter()
            .any(|p| p.to_stage == b.to_stage && p.to_array == b.to_array)
        {
            out.push(err(
                "P004-duplicate-driver",
                format!(
                    "input `{}.{}` is driven by more than one producer (second bind `{b}`)",
                    b.to_stage, b.to_array
                ),
            ));
        }
    }

    // Per-channel rate and sizing checks.
    for c in &view.channels {
        // P002 — element counts must balance and the consumer's scan must
        // stay inside the producer's address space.
        if c.produced_len != c.consumed_len {
            out.push(err(
                "P002-rate-mismatch",
                format!(
                    "channel `{}`: producer array holds {} elements but consumer \
                     window scans {} — the stream cannot balance",
                    c.bind, c.produced_len, c.consumed_len
                ),
            ));
        }
        if c.first_consumed_addr < 0 {
            out.push(err(
                "P002-rate-mismatch",
                format!(
                    "channel `{}`: consumer scan starts at negative address {} — \
                     the stream never produces it",
                    c.bind, c.first_consumed_addr
                ),
            ));
        }
        // P003 — depth below the deadlock-free minimum.
        if c.depth < c.min_depth {
            out.push(err(
                "P003-undersized-fifo",
                format!(
                    "channel `{}`: FIFO depth {} is below the deadlock-free minimum {} \
                     (reorder span + one burst of {}) — the producer will block on a \
                     full FIFO whose head cannot commit",
                    c.bind, c.depth, c.min_depth, c.burst
                ),
            ));
        }
        // P005 — conservative fallback in effect.
        if !c.static_rates {
            out.push(warn(
                "P005-nonstatic-rate",
                format!(
                    "channel `{}`: produce rate is not statically derivable; \
                     fell back to a whole-array FIFO of {} elements",
                    c.bind, c.depth
                ),
            ));
        }
        // P007 — width truncation across the channel.
        if c.producer_bits > c.consumer_bits {
            out.push(warn(
                "P007-width-truncation",
                format!(
                    "channel `{}`: producer elements are {} bits but the consumer \
                     reads {} bits — high bits are dropped in the stream",
                    c.bind, c.producer_bits, c.consumer_bits
                ),
            ));
        }
    }

    // P006 — the stage graph must be a DAG (Kahn network with finite,
    // initially-empty FIFOs: a cycle can never fire its first token).
    out.extend(check_acyclic(view));

    out
}

/// DFS three-color cycle check over the resolved-bind stage graph.
fn check_acyclic(view: &PipelineView) -> Vec<Diagnostic> {
    let n = view.stages.len();
    let index = |name: &str| view.stages.iter().position(|s| s.name == name);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in &view.binds {
        if let (Some(f), Some(t)) = (index(&b.from_stage), index(&b.to_stage)) {
            edges[f].push(t);
        }
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut found = Vec::new();
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS with an explicit stack of (node, next-edge).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&(node, next)) = stack.last() {
            if next < edges[node].len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let succ = edges[node][next];
                match color[succ] {
                    0 => {
                        color[succ] = 1;
                        stack.push((succ, 0));
                    }
                    1 => {
                        found.push(err(
                            "P006-pipeline-cycle",
                            format!(
                                "stage graph has a cycle through `{}` and `{}` — a \
                                 process network with empty finite FIFOs cannot fire",
                                view.stages[node].name, view.stages[succ].name
                            ),
                        ));
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    found
}

/// Severity of a stable `P0xx` code, for callers that gate by code.
pub fn pipeline_code_severity(code: &str) -> Option<Severity> {
    match code {
        "P001-dangling-port"
        | "P002-rate-mismatch"
        | "P003-undersized-fifo"
        | "P004-duplicate-driver"
        | "P006-pipeline-cycle" => Some(Severity::Error),
        "P005-nonstatic-rate" | "P007-width-truncation" => Some(Severity::Warning),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, inputs: &[(&str, usize)], outputs: &[(&str, usize)]) -> StageView {
        let port = |(a, l): &(&str, usize)| PortView {
            array: (*a).to_string(),
            len: *l,
            elem_bits: 16,
        };
        StageView {
            name: name.to_string(),
            inputs: inputs.iter().map(port).collect(),
            outputs: outputs.iter().map(port).collect(),
        }
    }

    fn bind(f: &str, fa: &str, t: &str, ta: &str) -> BindView {
        BindView {
            from_stage: f.to_string(),
            from_array: fa.to_string(),
            to_stage: t.to_string(),
            to_array: ta.to_string(),
        }
    }

    fn chan(b: BindView, depth: usize, min_depth: usize) -> ChannelView {
        ChannelView {
            bind: b,
            produced_len: 64,
            consumed_len: 64,
            producer_bits: 16,
            consumer_bits: 16,
            burst: 1,
            min_depth,
            depth,
            static_rates: true,
            first_consumed_addr: 0,
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_two_stage_pipeline_has_no_findings() {
        let view = PipelineView {
            name: "p".into(),
            stages: vec![
                stage("a", &[("X", 64)], &[("Y", 64)]),
                stage("b", &[("Y", 64)], &[("Z", 64)]),
            ],
            binds: vec![bind("a", "Y", "b", "Y")],
            channels: vec![chan(bind("a", "Y", "b", "Y"), 4, 2)],
        };
        assert!(verify_pipeline(&view).is_empty());
    }

    #[test]
    fn dangling_bind_is_p001() {
        let view = PipelineView {
            name: "p".into(),
            stages: vec![stage("a", &[], &[("Y", 64)])],
            binds: vec![bind("a", "Y", "ghost", "X"), bind("a", "Q", "a", "Y")],
            channels: vec![],
        };
        let codes = codes(&verify_pipeline(&view));
        assert!(codes.iter().filter(|c| **c == "P001-dangling-port").count() >= 2);
    }

    #[test]
    fn rate_mismatch_is_p002() {
        let mut c = chan(bind("a", "Y", "b", "Y"), 8, 2);
        c.consumed_len = 32;
        let view = PipelineView {
            name: "p".into(),
            stages: vec![stage("a", &[], &[("Y", 64)]), stage("b", &[("Y", 32)], &[])],
            binds: vec![c.bind.clone()],
            channels: vec![c],
        };
        assert!(codes(&verify_pipeline(&view)).contains(&"P002-rate-mismatch"));
    }

    #[test]
    fn undersized_fifo_is_p003() {
        let c = chan(bind("a", "Y", "b", "Y"), 2, 66);
        let view = PipelineView {
            name: "p".into(),
            stages: vec![stage("a", &[], &[("Y", 64)]), stage("b", &[("Y", 64)], &[])],
            binds: vec![c.bind.clone()],
            channels: vec![c],
        };
        assert!(codes(&verify_pipeline(&view)).contains(&"P003-undersized-fifo"));
    }

    #[test]
    fn duplicate_driver_is_p004() {
        let view = PipelineView {
            name: "p".into(),
            stages: vec![
                stage("a", &[], &[("Y", 64)]),
                stage("c", &[], &[("Z", 64)]),
                stage("b", &[("Y", 64)], &[]),
            ],
            binds: vec![bind("a", "Y", "b", "Y"), bind("c", "Z", "b", "Y")],
            channels: vec![],
        };
        assert!(codes(&verify_pipeline(&view)).contains(&"P004-duplicate-driver"));
    }

    #[test]
    fn nonstatic_rate_is_p005_warning() {
        let mut c = chan(bind("a", "Y", "b", "Y"), 64, 1);
        c.static_rates = false;
        let view = PipelineView {
            name: "p".into(),
            stages: vec![stage("a", &[], &[("Y", 64)]), stage("b", &[("Y", 64)], &[])],
            binds: vec![c.bind.clone()],
            channels: vec![c],
        };
        let diags = verify_pipeline(&view);
        let d = diags
            .iter()
            .find(|d| d.code == "P005-nonstatic-rate")
            .expect("P005");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn cycle_is_p006() {
        let view = PipelineView {
            name: "p".into(),
            stages: vec![
                stage("a", &[("Z", 64)], &[("Y", 64)]),
                stage("b", &[("Y", 64)], &[("Z", 64)]),
            ],
            binds: vec![bind("a", "Y", "b", "Y"), bind("b", "Z", "a", "Z")],
            channels: vec![],
        };
        assert!(codes(&verify_pipeline(&view)).contains(&"P006-pipeline-cycle"));
    }

    #[test]
    fn width_truncation_is_p007_warning() {
        let mut c = chan(bind("a", "Y", "b", "Y"), 8, 2);
        c.producer_bits = 32;
        c.consumer_bits = 16;
        let view = PipelineView {
            name: "p".into(),
            stages: vec![stage("a", &[], &[("Y", 64)]), stage("b", &[("Y", 64)], &[])],
            binds: vec![c.bind.clone()],
            channels: vec![c],
        };
        let diags = verify_pipeline(&view);
        let d = diags
            .iter()
            .find(|d| d.code == "P007-width-truncation")
            .expect("P007");
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn code_severities_are_registered() {
        assert_eq!(
            pipeline_code_severity("P003-undersized-fifo"),
            Some(Severity::Error)
        );
        assert_eq!(
            pipeline_code_severity("P005-nonstatic-rate"),
            Some(Severity::Warning)
        );
        assert_eq!(pipeline_code_severity("Z999"), None);
    }
}
