//! The shared diagnostic vocabulary.
//!
//! Every check in this crate (and the VHDL linter in `roccc-vhdl`) emits
//! [`Diagnostic`] values with a stable, greppable code such as
//! `S004-multiple-def` or `N003-comb-loop`, so the CLI, the compile
//! daemon and CI can report findings from every phase uniformly.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong; fatal only under
    /// [`VerifyLevel::Deny`].
    Warning,
    /// A broken invariant: the artifact must not be trusted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The compiler phase whose invariants a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// CFG/SSA invariants over the SUIFvm IR.
    SuifVm,
    /// Data-path graph invariants (cycles, stages, widths).
    Datapath,
    /// Word-level netlist invariants (drivers, loops, widths).
    Netlist,
    /// Structural lint over the generated VHDL text.
    Vhdl,
    /// Multi-kernel streaming pipeline invariants (port bindings, rate
    /// balance, FIFO sizing) checked by `verify_pipeline` (`P0xx`).
    Stream,
    /// Dependence-graph / MinII invariants and transform legality
    /// re-checks from `verify_deps` (`L0xx`).
    Deps,
    /// Modulo-schedule legality re-derived from the schedule artifact by
    /// `verify_schedule` (`M0xx`): MRT resource conflicts, recurrence
    /// slack, achieved-vs-minimum II, prologue/epilogue coverage.
    Schedule,
    /// Translation-validation certificates from `roccc-prove`, re-checked
    /// structurally by `verify_certificate` (`E0xx`): refuted output
    /// equivalence, valid-grid divergence, unproven obligations, and
    /// malformed certificates.
    Prove,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::SuifVm => write!(f, "suifvm"),
            Phase::Datapath => write!(f, "datapath"),
            Phase::Netlist => write!(f, "netlist"),
            Phase::Vhdl => write!(f, "vhdl"),
            Phase::Stream => write!(f, "stream"),
            Phase::Deps => write!(f, "deps"),
            Phase::Schedule => write!(f, "schedule"),
            Phase::Prove => write!(f, "prove"),
        }
    }
}

/// Where in the offending artifact a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// No structural anchor (whole-artifact findings).
    None,
    /// A basic block of the IR.
    Block(u32),
    /// A data-path operation.
    Op(u32),
    /// A netlist cell.
    Cell(u32),
    /// A byte range of the original C source.
    Span {
        /// Start byte offset (inclusive).
        start: usize,
        /// End byte offset (exclusive).
        end: usize,
    },
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::None => Ok(()),
            Loc::Block(b) => write!(f, "bb{b}"),
            Loc::Op(o) => write!(f, "op{o}"),
            Loc::Cell(c) => write!(f, "n{c}"),
            Loc::Span { start, end } => write!(f, "bytes {start}..{end}"),
        }
    }
}

/// One verifier or lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Warning or error.
    pub severity: Severity,
    /// Which phase's invariant was checked.
    pub phase: Phase,
    /// Stable code (`<letter><number>-<slug>`), e.g. `S004-multiple-def`.
    pub code: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// Anchor in the offending artifact.
    pub loc: Loc,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(phase: Phase, code: &'static str, loc: Loc, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            phase,
            code,
            message: message.into(),
            loc,
        }
    }

    /// A warning-severity finding.
    pub fn warning(phase: Phase, code: &'static str, loc: Loc, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            phase,
            code,
            message: message.into(),
            loc,
        }
    }

    /// Renders the diagnostic for terminal output. With `source`, a
    /// [`Loc::Span`] anchor is resolved to `line:col` of the original C
    /// text; other anchors print their structural name.
    pub fn render(&self, source: Option<&str>) -> String {
        let anchor = match (self.loc, source) {
            (Loc::None, _) => String::new(),
            (Loc::Span { start, .. }, Some(src)) => {
                let (line, col) = line_col(src, start);
                format!(" at {line}:{col}")
            }
            (loc, _) => format!(" at {loc}"),
        };
        format!(
            "{}[{}] {}: {}{anchor}",
            self.severity, self.code, self.phase, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(None))
    }
}

/// 1-based `(line, column)` of a byte offset in `source`.
fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let upto = &source[..offset.min(source.len())];
    let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = upto.bytes().rev().take_while(|&b| b != b'\n').count() + 1;
    (line, col)
}

/// How strictly the compile pipeline applies the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyLevel {
    /// Skip the verifier entirely.
    Off,
    /// Run every check; error-severity findings abort the compile,
    /// warnings are collected and surfaced.
    Warn,
    /// Run every check; any finding (warning included) aborts.
    Deny,
}

impl Default for VerifyLevel {
    /// `Warn` in debug builds (tests get the verifier for free), `Off`
    /// in release builds (production compiles opt in via `--verify`).
    fn default() -> Self {
        if cfg!(debug_assertions) {
            VerifyLevel::Warn
        } else {
            VerifyLevel::Off
        }
    }
}

impl fmt::Display for VerifyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyLevel::Off => write!(f, "off"),
            VerifyLevel::Warn => write!(f, "warn"),
            VerifyLevel::Deny => write!(f, "deny"),
        }
    }
}

impl std::str::FromStr for VerifyLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(VerifyLevel::Off),
            "warn" => Ok(VerifyLevel::Warn),
            "deny" => Ok(VerifyLevel::Deny),
            other => Err(format!("unknown verify level `{other}` (off|warn|deny)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_code_phase_and_anchor() {
        let d = Diagnostic::error(Phase::Datapath, "D001-comb-cycle", Loc::Op(7), "cycle");
        assert_eq!(
            d.to_string(),
            "error[D001-comb-cycle] datapath: cycle at op7"
        );
        let w = Diagnostic::warning(Phase::Netlist, "N007-dead-cell", Loc::Cell(3), "dead");
        assert_eq!(w.to_string(), "warning[N007-dead-cell] netlist: dead at n3");
    }

    #[test]
    fn span_renders_line_col_with_source() {
        let d = Diagnostic::error(
            Phase::SuifVm,
            "S001-bad-edge",
            Loc::Span { start: 10, end: 12 },
            "oops",
        );
        let src = "void f() {\n  int x;\n}";
        assert!(d.render(Some(src)).ends_with("at 1:11"));
        // Without source, the raw byte range is printed.
        assert!(d.render(None).ends_with("bytes 10..12"));
    }

    #[test]
    fn verify_level_parses() {
        assert_eq!("off".parse::<VerifyLevel>().unwrap(), VerifyLevel::Off);
        assert_eq!("warn".parse::<VerifyLevel>().unwrap(), VerifyLevel::Warn);
        assert_eq!("deny".parse::<VerifyLevel>().unwrap(), VerifyLevel::Deny);
        assert!("strict".parse::<VerifyLevel>().is_err());
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }
}
