//! Translation-validation certificate verification — the `E0xx` family.
//!
//! `roccc-prove` certifies that the compiled netlist is observationally
//! equivalent to the optimized SSA IR: per output port (and per feedback
//! slot) it records an *obligation* discharged by rewriting, range facts,
//! or the SAT fallback — or refuted with a concrete counterexample that
//! was replayed through `CompiledSim`, or left honestly unknown. This
//! module re-checks a certificate *structurally*, from the artifact alone:
//!
//! * `E001` — a value obligation is refuted: the netlist disagrees with
//!   the IR on a concrete, replayable input window (error);
//! * `E002` — valid-grid divergence: an output or next-state cone is not
//!   timed as one steady-state window (mixed or mis-placed leaf lags, a
//!   latency/II mismatch, or differing reset state) (error);
//! * `E003` — an obligation could not be proved or refuted within budget
//!   (warning — the certificate is honest about `Unknown`);
//! * `E004` — the certificate itself is malformed: unknown schema or
//!   status strings, a verdict inconsistent with its obligations, a
//!   refutation without a counterexample, or a counterexample that failed
//!   to reproduce under replay (error).
//!
//! The checks run over a plain-data [`CertificateView`] so this crate
//! stays independent of `roccc-prove`; the prove crate populates the view
//! from its certificate (attaching the replay result), and `roccc` gates
//! the findings under the usual [`crate::VerifyLevel`] rules.

use crate::diag::{Diagnostic, Loc, Phase, Severity};

/// The stable schema tag a well-formed certificate must carry.
pub const PROVE_SCHEMA: &str = "roccc-prove-v1";

/// One proof obligation, as the checks need it.
#[derive(Debug, Clone)]
pub struct ObligationView {
    /// Obligation name, e.g. `output C` or `next sum`.
    pub name: String,
    /// Obligation kind: `output`, `next-state`, `init`, or `valid-grid`.
    pub kind: String,
    /// Discharge status: `proved-rewrite`, `proved-range`, `proved-sat`,
    /// `refuted`, or `unknown`.
    pub status: String,
    /// Human-readable detail (lag sets, SAT budget, …).
    pub detail: String,
}

/// A counterexample as recorded in a certificate.
#[derive(Debug, Clone)]
pub struct CounterexampleView {
    /// Input windows fed from reset.
    pub windows: usize,
    /// Output port (or feedback slot) that diverges.
    pub port: String,
    /// Index of the diverging output window.
    pub window: usize,
    /// IR value at the divergence.
    pub ir_value: i64,
    /// Netlist value at the divergence.
    pub nl_value: i64,
    /// `Some(result)` when the counterexample has been re-replayed from
    /// the artifacts; `None` when no replay was attempted.
    pub replay_diverged: Option<bool>,
}

/// Plain-data image of a `roccc-prove` certificate.
#[derive(Debug, Clone)]
pub struct CertificateView {
    /// Schema tag (must equal [`PROVE_SCHEMA`]).
    pub schema: String,
    /// Kernel the certificate is about.
    pub kernel: String,
    /// Overall verdict: `equal`, `refuted`, or `unknown`.
    pub verdict: String,
    /// All obligations.
    pub obligations: Vec<ObligationView>,
    /// The counterexample backing a refuted verdict, if any.
    pub counterexample: Option<CounterexampleView>,
}

fn err(code: &'static str, msg: String) -> Diagnostic {
    Diagnostic::error(Phase::Prove, code, Loc::None, msg)
}

fn warn(code: &'static str, msg: String) -> Diagnostic {
    Diagnostic::warning(Phase::Prove, code, Loc::None, msg)
}

const KINDS: [&str; 4] = ["output", "next-state", "init", "valid-grid"];
const STATUSES: [&str; 5] = [
    "proved-rewrite",
    "proved-range",
    "proved-sat",
    "refuted",
    "unknown",
];
const VERDICTS: [&str; 3] = ["equal", "refuted", "unknown"];

/// Runs every certificate check. Returns all findings (empty = clean);
/// severities follow the registry in the module docs.
pub fn verify_certificate(view: &CertificateView) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // E004 — schema/verdict/status vocabulary.
    if view.schema != PROVE_SCHEMA {
        out.push(err(
            "E004-malformed-certificate",
            format!(
                "unknown certificate schema '{}' (want {PROVE_SCHEMA})",
                view.schema
            ),
        ));
    }
    if !VERDICTS.contains(&view.verdict.as_str()) {
        out.push(err(
            "E004-malformed-certificate",
            format!("unknown verdict '{}'", view.verdict),
        ));
    }
    if view.obligations.is_empty() {
        out.push(err(
            "E004-malformed-certificate",
            format!("certificate for '{}' carries no obligations", view.kernel),
        ));
    }
    for o in &view.obligations {
        if !KINDS.contains(&o.kind.as_str()) {
            out.push(err(
                "E004-malformed-certificate",
                format!("obligation '{}' has unknown kind '{}'", o.name, o.kind),
            ));
        }
        if !STATUSES.contains(&o.status.as_str()) {
            out.push(err(
                "E004-malformed-certificate",
                format!("obligation '{}' has unknown status '{}'", o.name, o.status),
            ));
        }
    }

    // E004 — verdict must match the obligation statuses.
    let any_refuted = view.obligations.iter().any(|o| o.status == "refuted");
    let any_unknown = view.obligations.iter().any(|o| o.status == "unknown");
    let consistent = match view.verdict.as_str() {
        "equal" => !any_refuted && !any_unknown,
        "refuted" => any_refuted,
        "unknown" => !any_refuted && any_unknown,
        _ => true, // vocabulary error already reported
    };
    if !consistent {
        out.push(err(
            "E004-malformed-certificate",
            format!(
                "verdict '{}' inconsistent with obligations ({} refuted, {} unknown)",
                view.verdict,
                view.obligations
                    .iter()
                    .filter(|o| o.status == "refuted")
                    .count(),
                view.obligations
                    .iter()
                    .filter(|o| o.status == "unknown")
                    .count()
            ),
        ));
    }
    if view.verdict == "equal" && view.counterexample.is_some() {
        out.push(err(
            "E004-malformed-certificate",
            "verdict 'equal' but a counterexample is attached".into(),
        ));
    }

    // E001 / E002 — refutations, split by obligation kind.
    for o in view.obligations.iter().filter(|o| o.status == "refuted") {
        if o.kind == "valid-grid" || o.kind == "init" {
            out.push(err(
                "E002-grid-divergence",
                format!("{}: {}", o.name, o.detail),
            ));
        } else {
            match &view.counterexample {
                Some(cex) => out.push(err(
                    "E001-output-mismatch",
                    format!(
                        "{}: IR = {} but netlist = {} on '{}' at window {} \
                         ({} replayed input window{})",
                        o.name,
                        cex.ir_value,
                        cex.nl_value,
                        cex.port,
                        cex.window,
                        cex.windows,
                        if cex.windows == 1 { "" } else { "s" }
                    ),
                )),
                None => out.push(err(
                    "E004-malformed-certificate",
                    format!("obligation '{}' refuted without a counterexample", o.name),
                )),
            }
        }
    }

    // E004 — a recorded counterexample must replay.
    if let Some(cex) = &view.counterexample {
        if cex.replay_diverged == Some(false) {
            out.push(err(
                "E004-malformed-certificate",
                format!(
                    "counterexample for '{}' does not diverge under CompiledSim replay",
                    cex.port
                ),
            ));
        }
    }

    // E003 — honest Unknowns surface as warnings.
    for o in view.obligations.iter().filter(|o| o.status == "unknown") {
        out.push(warn(
            "E003-unproven-obligation",
            format!("{}: {}", o.name, o.detail),
        ));
    }

    out
}

/// Severity of a known `E0xx` code (`None` for foreign codes) — the
/// registry row, kept next to the checks that emit each code.
pub fn prove_code_severity(code: &str) -> Option<Severity> {
    match code {
        "E001-output-mismatch" | "E002-grid-divergence" | "E004-malformed-certificate" => {
            Some(Severity::Error)
        }
        "E003-unproven-obligation" => Some(Severity::Warning),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ob(name: &str, kind: &str, status: &str) -> ObligationView {
        ObligationView {
            name: name.into(),
            kind: kind.into(),
            status: status.into(),
            detail: "d".into(),
        }
    }

    fn clean() -> CertificateView {
        CertificateView {
            schema: PROVE_SCHEMA.into(),
            kernel: "fir".into(),
            verdict: "equal".into(),
            obligations: vec![
                ob("output C", "output", "proved-rewrite"),
                ob("grid C", "valid-grid", "proved-rewrite"),
            ],
            counterexample: None,
        }
    }

    fn codes(v: &CertificateView) -> Vec<&'static str> {
        verify_certificate(v).iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_certificate_has_no_findings() {
        assert!(codes(&clean()).is_empty());
    }

    #[test]
    fn bad_schema_is_e004() {
        let mut v = clean();
        v.schema = "roccc-prove-v0".into();
        assert!(codes(&v).contains(&"E004-malformed-certificate"));
    }

    #[test]
    fn refuted_output_with_cex_is_e001() {
        let mut v = clean();
        v.verdict = "refuted".into();
        v.obligations[0].status = "refuted".into();
        v.counterexample = Some(CounterexampleView {
            windows: 1,
            port: "C".into(),
            window: 0,
            ir_value: 3,
            nl_value: 4,
            replay_diverged: Some(true),
        });
        let c = codes(&v);
        assert!(c.contains(&"E001-output-mismatch"));
        assert!(!c.contains(&"E004-malformed-certificate"));
    }

    #[test]
    fn refuted_without_cex_is_e004() {
        let mut v = clean();
        v.verdict = "refuted".into();
        v.obligations[0].status = "refuted".into();
        assert!(codes(&v).contains(&"E004-malformed-certificate"));
    }

    #[test]
    fn grid_refutation_is_e002() {
        let mut v = clean();
        v.verdict = "refuted".into();
        v.obligations[1].status = "refuted".into();
        assert!(codes(&v).contains(&"E002-grid-divergence"));
    }

    #[test]
    fn unknown_is_e003_warning() {
        let mut v = clean();
        v.verdict = "unknown".into();
        v.obligations[0].status = "unknown".into();
        let d = verify_certificate(&v);
        let w: Vec<_> = d
            .iter()
            .filter(|d| d.code == "E003-unproven-obligation")
            .collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Warning);
    }

    #[test]
    fn inconsistent_verdict_is_e004() {
        let mut v = clean();
        v.obligations[0].status = "unknown".into(); // verdict still 'equal'
        assert!(codes(&v).contains(&"E004-malformed-certificate"));
    }

    #[test]
    fn non_replaying_cex_is_e004() {
        let mut v = clean();
        v.verdict = "refuted".into();
        v.obligations[0].status = "refuted".into();
        v.counterexample = Some(CounterexampleView {
            windows: 1,
            port: "C".into(),
            window: 0,
            ir_value: 3,
            nl_value: 4,
            replay_diverged: Some(false),
        });
        assert!(codes(&v).contains(&"E004-malformed-certificate"));
    }

    #[test]
    fn severity_registry_matches() {
        assert_eq!(
            prove_code_severity("E001-output-mismatch"),
            Some(Severity::Error)
        );
        assert_eq!(
            prove_code_severity("E002-grid-divergence"),
            Some(Severity::Error)
        );
        assert_eq!(
            prove_code_severity("E003-unproven-obligation"),
            Some(Severity::Warning)
        );
        assert_eq!(
            prove_code_severity("E004-malformed-certificate"),
            Some(Severity::Error)
        );
        assert_eq!(prove_code_severity("X999-nope"), None);
    }
}
