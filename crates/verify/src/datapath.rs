//! Data-path-phase checks: acyclicity, staging and bit-width soundness.
//!
//! The pipelined data path (§4.2.2–§4.2.3) must stay a DAG — the one
//! legal feedback loop, `LPR → … → SNX`, is latched through a
//! [`Datapath::feedback`] slot and never appears as an operand edge —
//! stages must be monotone along every edge, and the narrowed hardware
//! widths must still satisfy every consumer's demand (§5's
//! port-size-and-opcode narrowing, re-derived here independently).

use crate::diag::{Diagnostic, Loc, Phase};
use crate::ir::expected_arity;
use roccc_datapath::{Datapath, Value};
use roccc_suifvm::ir::Opcode;

fn err(code: &'static str, op: u32, msg: String) -> Diagnostic {
    Diagnostic::error(Phase::Datapath, code, Loc::Op(op), msg)
}

/// Runs every datapath-phase check over `dp` and returns the findings
/// (empty = clean).
///
/// * `D001-comb-cycle` — an operand edge closes a combinational cycle
///   (self or forward reference in the topological order). The only
///   legal cycle is the latched `LPR→…→SNX` feedback loop, which lives
///   in [`Datapath::feedback`], not in operand edges;
/// * `D002-missing-ref` — an operand, node, LUT table, feedback slot,
///   output or feedback value names something out of range;
/// * `D003-stage-inversion` — a value consumed in an earlier stage than
///   the one producing it;
/// * `D004-stage-range` — an op staged at or beyond `num_stages`;
/// * `D005-feedback-stage-split` — an `LPR` and the `SNX` source of the
///   same slot placed in different stages (the latch would close over a
///   partial iteration);
/// * `D006-width-bounds` — `hw_bits` of 0 or wider than the exact type,
///   or a comparison not exactly 1 bit;
/// * `D007-width-demand` — a producer narrower than what one of its
///   consumers observes, so narrowing changed the computed value (a
///   producer whose proven range fits its `hw_bits` is exempt: its wire
///   holds the exact value no matter the demand);
/// * `D008-bad-arity` — wrong operand count for the opcode.
///
/// When ops carry range annotations (range-driven narrowing was on), the
/// `W0xx` family additionally checks the annotations themselves:
///
/// * `W003-exact-operand-narrowed` — an exact-value consumer (divide,
///   remainder, comparison, LUT index, variable shift) reads an operand
///   wire too narrow to be exact: the producer is below its forward width
///   and has no proven range fitting its `hw_bits`;
/// * `W004-range-escapes-type` — a range annotation is malformed
///   (`lo > hi`, an inconsistent known-zero mask) or claims values outside
///   the op's declared sub-64-bit type.
pub fn verify_datapath(dp: &Datapath) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = dp.ops.len();
    let op_ok = |v: Value| match v {
        Value::Op(o) => (o.0 as usize) < n,
        Value::Input(k) => k < dp.inputs.len(),
        Value::Const(_) => true,
    };

    // --- References and acyclicity (everything later depends on them) --
    for (i, op) in dp.ops.iter().enumerate() {
        for src in &op.srcs {
            match *src {
                Value::Op(o) if o.0 as usize >= i => out.push(err(
                    "D001-comb-cycle",
                    i as u32,
                    format!(
                        "op{i} ({}) consumes {o}, closing a combinational cycle; only the \
                         latched LPR->SNX feedback loop may cycle, and it lives in feedback \
                         slots, not operand edges",
                        op.op
                    ),
                )),
                v if !op_ok(v) => out.push(err(
                    "D002-missing-ref",
                    i as u32,
                    format!("op{i} ({}) reads nonexistent {v:?}", op.op),
                )),
                _ => {}
            }
        }
        if op.node.0 as usize >= dp.nodes.len() {
            out.push(err(
                "D002-missing-ref",
                i as u32,
                format!("op{i} belongs to missing {}", op.node),
            ));
        }
        match op.op {
            Opcode::Lut if op.imm < 0 || op.imm as usize >= dp.luts.len() => {
                out.push(err(
                    "D002-missing-ref",
                    i as u32,
                    format!("op{i} names LUT table {} of {}", op.imm, dp.luts.len()),
                ));
            }
            Opcode::Lpr | Opcode::Snx if op.imm < 0 || op.imm as usize >= dp.feedback.len() => {
                out.push(err(
                    "D002-missing-ref",
                    i as u32,
                    format!(
                        "op{i} ({}) names feedback slot {} of {}",
                        op.op,
                        op.imm,
                        dp.feedback.len()
                    ),
                ));
            }
            _ => {}
        }
        let want = expected_arity(op.op);
        if op.srcs.len() != want {
            out.push(err(
                "D008-bad-arity",
                i as u32,
                format!(
                    "op{i} ({}) has {} operands, expected {want}",
                    op.op,
                    op.srcs.len()
                ),
            ));
        }
    }
    for (k, port) in dp.outputs.iter().enumerate() {
        if !op_ok(port.value) {
            out.push(Diagnostic::error(
                Phase::Datapath,
                "D002-missing-ref",
                Loc::None,
                format!(
                    "output port {k} ({}) driven by nonexistent {:?}",
                    port.name, port.value
                ),
            ));
        }
    }
    for (slot_idx, (slot, v)) in dp.feedback.iter().enumerate() {
        if !op_ok(*v) {
            out.push(Diagnostic::error(
                Phase::Datapath,
                "D002-missing-ref",
                Loc::None,
                format!(
                    "feedback slot {slot_idx} ({}) latches nonexistent {v:?}",
                    slot.name
                ),
            ));
        }
    }
    // Staging and width logic below indexes through these references;
    // bail while the graph shape itself is broken.
    if !out.is_empty() {
        return out;
    }

    // --- Stages ---------------------------------------------------------
    for (i, op) in dp.ops.iter().enumerate() {
        if op.stage >= dp.num_stages {
            out.push(err(
                "D004-stage-range",
                i as u32,
                format!(
                    "op{i} staged at {} but the pipeline has {} stage(s)",
                    op.stage, dp.num_stages
                ),
            ));
            continue;
        }
        for src in &op.srcs {
            let ps = dp.stage_of(*src);
            if ps > op.stage {
                out.push(err(
                    "D003-stage-inversion",
                    i as u32,
                    format!(
                        "op{i} at stage {} consumes {src:?} produced in later stage {ps}",
                        op.stage
                    ),
                ));
            }
        }
    }
    // Latch balance: every LPR of a slot must sit in the stage where the
    // SNX of that slot latches, otherwise one physical register would be
    // read and written in different pipeline phases of the same iteration.
    for (slot_idx, (slot, snx_src)) in dp.feedback.iter().enumerate() {
        let snx_stage = dp.stage_of(*snx_src);
        for (i, op) in dp.ops.iter().enumerate() {
            if op.op == Opcode::Lpr && op.imm == slot_idx as i64 && op.stage != snx_stage {
                out.push(err(
                    "D005-feedback-stage-split",
                    i as u32,
                    format!(
                        "feedback slot {slot_idx} ({}): LPR at stage {} but SNX latches at \
                         stage {snx_stage}; the LPR->SNX path must land in a single stage",
                        slot.name, op.stage
                    ),
                ));
            }
        }
    }

    // --- Widths ---------------------------------------------------------
    for (i, op) in dp.ops.iter().enumerate() {
        if op.hw_bits == 0 || op.hw_bits > op.ty.bits {
            out.push(err(
                "D006-width-bounds",
                i as u32,
                format!(
                    "op{i} ({}) narrowed to {} bits outside 1..={} (exact type {})",
                    op.op, op.hw_bits, op.ty.bits, op.ty
                ),
            ));
        }
        if op.op.is_comparison() && op.hw_bits != 1 {
            out.push(err(
                "D006-width-bounds",
                i as u32,
                format!(
                    "op{i} ({}) is a comparison but is {} bits wide, expected 1",
                    op.op, op.hw_bits
                ),
            ));
        }
        if let Some(r) = op.range {
            if r.lo > r.hi {
                out.push(err(
                    "W004-range-escapes-type",
                    i as u32,
                    format!("op{i} ({}) carries empty range [{}, {}]", op.op, r.lo, r.hi),
                ));
            } else if (r.lo < 0 && r.known_zero != 0)
                || (r.lo >= 0 && r.hi > (!r.known_zero & (i64::MAX as u64)) as i64)
            {
                out.push(err(
                    "W004-range-escapes-type",
                    i as u32,
                    format!(
                        "op{i} ({}) range [{}, {}] contradicts known-zero mask {:#x}",
                        op.op, r.lo, r.hi, r.known_zero
                    ),
                ));
            } else if op.ty.bits < roccc_cparse::types::IntType::MAX_BITS
                && (r.lo < op.ty.min_value() || r.hi > op.ty.max_value())
            {
                out.push(err(
                    "W004-range-escapes-type",
                    i as u32,
                    format!(
                        "op{i} ({}) range [{}, {}] escapes its declared type {}",
                        op.op, r.lo, r.hi, op.ty
                    ),
                ));
            }
        }
    }
    check_width_demand(dp, &mut out);

    out
}

/// Re-derives the backward demand of every operation from the *actual*
/// consumer widths (rather than trusting the narrowing pass) and flags
/// any producer too narrow to satisfy it. The propagation rules mirror
/// `roccc_datapath::narrow_widths` exactly — this is the independent
/// soundness half of that optimization.
fn check_width_demand(dp: &Datapath, out: &mut Vec<Diagnostic>) {
    let n = dp.ops.len();
    let mut demand: Vec<u8> = vec![0; n];
    let demand_value = |demand: &mut Vec<u8>, v: Value, bits: u8| {
        if let Value::Op(o) = v {
            let i = o.0 as usize;
            demand[i] = demand[i].max(bits);
        }
    };
    let src_full = |v: &Value| -> u8 {
        match v {
            Value::Op(o) => dp.ops[o.0 as usize].ty.bits,
            Value::Input(k) => dp.inputs[*k].1.bits,
            Value::Const(c) => roccc_cparse::types::IntType::width_for(*c, *c < 0),
        }
    };
    // What an exact-value consumer must demand of `v` — mirrors the
    // `exact_demand` rule in `narrow_widths`: the full forward width, or
    // the bits of the producer's proven range when it has one (a wire
    // wide enough for the whole range carries the exact value).
    let exact_demand = |v: &Value| -> u8 {
        let full = src_full(v);
        match v {
            Value::Op(o) => {
                let src = &dp.ops[o.0 as usize];
                src.range
                    .map(|r| r.bits(src.ty.signed).max(1).min(full))
                    .unwrap_or(full)
            }
            _ => full,
        }
    };
    // Whether the wire of operand `v` provably carries the exact value:
    // full forward width, or narrowed but covered by a proven range.
    // (`Input`s and `Const`s are always exact.)
    let exact_wire = |v: &Value| -> bool {
        match v {
            Value::Op(o) => {
                let src = &dp.ops[o.0 as usize];
                src.hw_bits >= src.ty.bits
                    || src
                        .range
                        .is_some_and(|r| src.hw_bits >= r.bits(src.ty.signed).max(1))
            }
            _ => true,
        }
    };
    let exact_err = |out: &mut Vec<Diagnostic>, i: usize, op: &roccc_datapath::DpOp, v: &Value| {
        if !exact_wire(v) {
            out.push(err(
                "W003-exact-operand-narrowed",
                i as u32,
                format!(
                    "op{i} ({}) needs the exact value of {v:?}, but that wire is narrower \
                     than its forward width and no proven range covers it",
                    op.op
                ),
            ));
        }
    };

    for port in &dp.outputs {
        demand_value(&mut demand, port.value, port.ty.bits);
    }
    for (slot, v) in &dp.feedback {
        demand_value(&mut demand, *v, slot.ty.bits);
    }

    for i in (0..n).rev() {
        let op = &dp.ops[i];
        // A comparison only ever produces 0 or 1, so 1 bit is always
        // enough no matter how wide the observer; everything else must
        // cover the demand up to its exact (never-wrapping) type width.
        let cap = if op.op.is_comparison() { 1 } else { op.ty.bits };
        let need = demand[i].min(cap).max(1);
        // A proven range fitting `hw_bits` makes the wire exact, which
        // satisfies any demand — the wrap-free escape range narrowing
        // relies on.
        let range_exact = op
            .range
            .is_some_and(|r| op.hw_bits >= r.bits(op.ty.signed).max(1));
        if op.hw_bits < need && !range_exact {
            out.push(err(
                "D007-width-demand",
                i as u32,
                format!(
                    "op{i} ({}) is {} bits wide but its consumers observe {need} bits; \
                     narrowing changed the computed value",
                    op.op, op.hw_bits
                ),
            ));
        }

        // Push this op's observation down to its operands, using the width
        // it is actually built at.
        let hw = op.hw_bits.max(1);
        match op.op {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Not
            | Opcode::Neg
            | Opcode::Mov => {
                for s in &op.srcs {
                    demand_value(&mut demand, *s, hw.min(src_full(s)));
                }
            }
            Opcode::Shl => match op.srcs.get(1) {
                Some(Value::Const(c)) if *c >= 0 => {
                    demand_value(&mut demand, op.srcs[0], hw.saturating_sub(*c as u8).max(1));
                }
                _ => {
                    // Variable shifts need exact operand values.
                    for s in &op.srcs {
                        exact_err(out, i, op, s);
                        demand_value(&mut demand, *s, exact_demand(s));
                    }
                }
            },
            Opcode::Shr => match op.srcs.get(1) {
                Some(Value::Const(c)) if *c >= 0 => {
                    let need = hw
                        .saturating_add(*c as u8)
                        .min(src_full(&op.srcs[0]))
                        // A wrap-free operand wire always suffices: the
                        // exact value shifts to the exact result.
                        .min(exact_demand(&op.srcs[0]).max(hw));
                    demand_value(&mut demand, op.srcs[0], need);
                }
                _ => {
                    for s in &op.srcs {
                        exact_err(out, i, op, s);
                        demand_value(&mut demand, *s, exact_demand(s));
                    }
                }
            },
            Opcode::Cvt => demand_value(&mut demand, op.srcs[0], hw.min(op.ty.bits)),
            Opcode::Mux => {
                demand_value(&mut demand, op.srcs[0], 1);
                demand_value(&mut demand, op.srcs[1], hw.min(src_full(&op.srcs[1])));
                demand_value(&mut demand, op.srcs[2], hw.min(src_full(&op.srcs[2])));
            }
            // Exact-value consumers observe their operands' exact values:
            // the full forward width, or the proven-range width when the
            // producer carries one.
            Opcode::Div
            | Opcode::Rem
            | Opcode::Slt
            | Opcode::Sle
            | Opcode::Seq
            | Opcode::Sne
            | Opcode::Bool
            | Opcode::Lut => {
                for s in &op.srcs {
                    exact_err(out, i, op, s);
                    demand_value(&mut demand, *s, exact_demand(s));
                }
            }
            Opcode::Lpr | Opcode::Arg | Opcode::Ldc | Opcode::Snx => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roccc_cparse::parser::parse;
    use roccc_datapath::{
        build_datapath, narrow_widths, pipeline_datapath, DefaultDelayModel, OpId,
    };
    use roccc_suifvm::{lower_function, optimize, to_ssa};

    fn dp_of(src: &str, func: &str, period: f64) -> Datapath {
        let prog = parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function(func).unwrap();
        let mut ir = lower_function(&prog, f, &[]).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        let mut dp = build_datapath(&ir).unwrap();
        pipeline_datapath(&mut dp, period, &DefaultDelayModel);
        narrow_widths(&mut dp);
        dp
    }

    const DEEP: &str = "void f(int a, int b, int* o) { *o = (a * b) * (a + b) * 3 + a; }";

    #[test]
    fn clean_pipelined_datapath_passes() {
        let dp = dp_of(DEEP, "f", 4.0);
        assert!(dp.num_stages > 1, "want a multi-stage pipeline");
        assert_eq!(verify_datapath(&dp), vec![]);
    }

    #[test]
    fn forward_reference_is_a_comb_cycle() {
        let mut dp = dp_of(DEEP, "f", 1000.0);
        let last = OpId(dp.ops.len() as u32 - 1);
        dp.ops[0].srcs[0] = Value::Op(last);
        let diags = verify_datapath(&dp);
        assert!(
            diags.iter().any(|d| d.code == "D001-comb-cycle"),
            "{diags:?}"
        );
    }

    #[test]
    fn stage_inversion_is_reported() {
        let mut dp = dp_of(DEEP, "f", 4.0);
        // Pull the last op (latest stage) into stage 0: its operands now
        // come from later stages.
        let last = dp.ops.len() - 1;
        assert!(dp.ops[last].stage > 0);
        dp.ops[last].stage = 0;
        let diags = verify_datapath(&dp);
        assert!(
            diags.iter().any(|d| d.code == "D003-stage-inversion"),
            "{diags:?}"
        );
    }

    #[test]
    fn stage_out_of_range_is_reported() {
        let mut dp = dp_of(DEEP, "f", 1000.0);
        let last = dp.ops.len() - 1;
        dp.ops[last].stage = dp.num_stages + 3;
        let diags = verify_datapath(&dp);
        assert!(
            diags.iter().any(|d| d.code == "D004-stage-range"),
            "{diags:?}"
        );
    }

    #[test]
    fn over_narrowed_width_is_reported() {
        let mut dp = dp_of(DEEP, "f", 1000.0);
        // Shrink the op driving the 32-bit output below its demand.
        let driven = match dp.outputs[0].value {
            Value::Op(o) => o.0 as usize,
            _ => panic!("expected op-driven output"),
        };
        dp.ops[driven].hw_bits = 3;
        let diags = verify_datapath(&dp);
        assert!(
            diags.iter().any(|d| d.code == "D007-width-demand"),
            "{diags:?}"
        );
    }

    #[test]
    fn zero_width_is_reported() {
        let mut dp = dp_of(DEEP, "f", 1000.0);
        dp.ops[0].hw_bits = 0;
        let diags = verify_datapath(&dp);
        assert!(
            diags.iter().any(|d| d.code == "D006-width-bounds"),
            "{diags:?}"
        );
    }

    /// Build a range-annotated, range-narrowed datapath with the given
    /// input intervals.
    fn dp_ranged(src: &str, func: &str, inputs: &[Option<(i64, i64)>]) -> Datapath {
        let prog = parse(src).unwrap();
        roccc_cparse::sema::check(&prog).unwrap();
        let f = prog.function(func).unwrap();
        let mut ir = lower_function(&prog, f, &[]).unwrap();
        to_ssa(&mut ir);
        optimize(&mut ir);
        let ranges = roccc_suifvm::range::analyze_with_inputs(&ir, inputs);
        let mut dp = roccc_datapath::build_datapath_ranged(&ir, Some(&ranges)).unwrap();
        pipeline_datapath(&mut dp, 1000.0, &DefaultDelayModel);
        narrow_widths(&mut dp);
        dp
    }

    const RANGED: &str = "void f(int a, int b, int* o) { *o = (a + b < 12) ? a : b; }";

    #[test]
    fn range_narrowed_datapath_passes_with_wrap_free_escape() {
        // With inputs pinned to [0, 7], the add feeding the comparison
        // narrows to its range width (4 bits), far below its 33-bit
        // forward type — the wrap-free escape must keep D007 quiet and
        // the annotations must satisfy W003/W004.
        let dp = dp_ranged(RANGED, "f", &[Some((0, 7)), Some((0, 7))]);
        let add = dp.ops.iter().find(|o| o.op == Opcode::Add).unwrap();
        assert!(
            add.hw_bits < add.ty.bits,
            "expected range narrowing below {} bits, got {}",
            add.ty.bits,
            add.hw_bits
        );
        assert_eq!(verify_datapath(&dp), vec![]);
    }

    #[test]
    fn exact_consumer_of_unranged_narrow_wire_is_w003() {
        let mut dp = dp_ranged(RANGED, "f", &[Some((0, 7)), Some((0, 7))]);
        // Strip the annotation that justified the narrow add: its
        // comparison consumer can no longer trust the wire.
        let add = dp.ops.iter().position(|o| o.op == Opcode::Add).unwrap();
        assert!(dp.ops[add].hw_bits < dp.ops[add].ty.bits);
        dp.ops[add].range = None;
        let diags = verify_datapath(&dp);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "W003-exact-operand-narrowed"),
            "{diags:?}"
        );
    }

    #[test]
    fn corrupt_range_annotation_is_w004() {
        let dp = dp_ranged(RANGED, "f", &[Some((0, 7)), Some((0, 7))]);
        let add = dp.ops.iter().position(|o| o.op == Opcode::Add).unwrap();
        // Empty interval.
        let mut bad = dp.clone();
        bad.ops[add].range = Some(roccc_suifvm::range::ValueRange {
            lo: 5,
            hi: 4,
            known_zero: 0,
        });
        let diags = verify_datapath(&bad);
        assert!(
            diags.iter().any(|d| d.code == "W004-range-escapes-type"),
            "{diags:?}"
        );
        // Interval escaping the declared type.
        let narrow_ty = dp
            .ops
            .iter()
            .position(|o| o.ty.bits < 64 && o.range.is_some())
            .unwrap();
        let mut bad = dp.clone();
        bad.ops[narrow_ty].range = Some(roccc_suifvm::range::ValueRange::interval(
            i64::MIN,
            i64::MAX,
        ));
        let diags = verify_datapath(&bad);
        assert!(
            diags.iter().any(|d| d.code == "W004-range-escapes-type"),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_input_ref_is_reported() {
        let mut dp = dp_of(DEEP, "f", 1000.0);
        dp.ops[0].srcs[0] = Value::Input(99);
        let diags = verify_datapath(&dp);
        assert!(
            diags.iter().any(|d| d.code == "D002-missing-ref"),
            "{diags:?}"
        );
    }
}
